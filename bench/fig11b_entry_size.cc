// Figure 11(B): lookup cost vs entry size at a fixed number of entries.
//
// Larger entries -> more levels for the same N (the tree is sized by bytes)
// -> the uniform baseline's lookup cost grows while Monkey's stays flat.

#include <cstdio>

#include <algorithm>

#include "harness.h"

using namespace monkeydb;
using namespace monkeydb::bench;

int main() {
  printf("Figure 11(B): zero-result lookup cost vs entry size "
         "(N=60000, T=2 leveling, 5 bits/entry)\n\n");
  printf("%12s %8s | %13s %10s | %13s %10s | %8s\n", "entry bytes",
         "levels", "uniform I/O", "bits/key", "monkey I/O", "bits/key",
         "gain");

  for (int value_size : {16, 48, 112, 240, 496}) {
    // Average over three nearby fill sizes: a single snapshot can land
    // right at a level-transition boundary, which makes one tree state
    // unrepresentative (the paper's much larger fills average this out).
    double u_io = 0, m_io = 0, u_bits = 0, m_bits = 0;
    int levels = 0;
    const int kFills = 3;
    for (int f = 0; f < kFills; f++) {
      FillSpec spec;
      spec.num_keys = 54000 + f * 6000;
      spec.value_size = value_size;
      spec.bits_per_entry = 5.0;
      spec.buffer_bytes = 64 << 10;

      spec.monkey_filters = false;
      TestDb uniform = Fill(spec);
      spec.monkey_filters = true;
      TestDb monkey = Fill(spec);

      u_io += MeasureZeroResultLookups(&uniform, 8000).ios_per_lookup;
      m_io += MeasureZeroResultLookups(&monkey, 8000).ios_per_lookup;
      const DbStats us = uniform.db->GetStats();
      const DbStats ms = monkey.db->GetStats();
      u_bits += static_cast<double>(us.filter_bits_total) /
                us.total_disk_entries;
      m_bits += static_cast<double>(ms.filter_bits_total) /
                ms.total_disk_entries;
      levels = std::max(levels, us.deepest_level);
    }
    u_io /= kFills;
    m_io /= kFills;
    u_bits /= kFills;
    m_bits /= kFills;
    const double gain = u_io > 0 ? (u_io - m_io) / u_io : 0;
    printf("%12d %8d | %13.4f %10.2f | %13.4f %10.2f | %7.1f%%\n",
           value_size + 16, levels, u_io, u_bits, m_io, m_bits,
           gain * 100.0);
  }
  return 0;
}
