// Figure 12 (Appendix F): Monkey with a block cache of 0% / 20% / 40% of
// the data volume, under non-zero-result lookups of varying temporal
// locality. Monkey keeps its advantage; at high locality both converge as
// the cache absorbs the hot set.

#include <cstdio>

#include "harness.h"

using namespace monkeydb;
using namespace monkeydb::bench;

int main() {
  const int n = 100000;
  const size_t data_bytes = static_cast<size_t>(n) * 64;

  printf("Figure 12: non-zero-result lookups with a block cache "
         "(N=%d, T=2 leveling, 5 bits/entry)\n\n", n);

  for (double cache_frac : {0.0, 0.2, 0.4}) {
    const size_t cache_bytes =
        static_cast<size_t>(cache_frac * data_bytes);
    printf("--- cache = %.0f%% of data (%zu KB) ---\n", cache_frac * 100,
           cache_bytes >> 10);
    printf("%6s | %13s | %13s\n", "c", "uniform I/O", "monkey I/O");

    FillSpec spec;
    spec.num_keys = n;
    spec.bits_per_entry = 5.0;
    spec.buffer_bytes = 64 << 10;
    spec.block_cache_bytes = cache_bytes;

    spec.monkey_filters = false;
    TestDb uniform = Fill(spec);
    spec.monkey_filters = true;
    TestDb monkey = Fill(spec);

    for (double c : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      // Warm-up pass fills the cache with the workload's hot blocks.
      MeasureNonZeroResultLookups(&uniform, 6000, c, 900);
      MeasureNonZeroResultLookups(&monkey, 6000, c, 900);
      // Measured pass.
      const LookupResult u =
          MeasureNonZeroResultLookups(&uniform, 6000, c, 901);
      const LookupResult m =
          MeasureNonZeroResultLookups(&monkey, 6000, c, 901);
      printf("%6.1f | %13.4f | %13.4f\n", c, u.ios_per_lookup,
             m.ios_per_lookup);
    }
    printf("\n");
  }
  printf("Expected shape: with no cache, Monkey wins at every locality; "
         "with a\ncache, high-c rows converge toward 0 I/O for both while "
         "Monkey keeps a\nmargin at low/medium locality (Appendix F).\n");
  return 0;
}
