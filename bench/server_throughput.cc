// Serving-layer throughput: closed-loop (N connections x pipeline depth
// D) and open-loop (fixed offered rate, latency from the server's own
// histograms) load against an in-process MonkeyServer over real sockets.
//
// What it demonstrates (and asserts, via the emitted JSON):
//  - Pipelining: at depth 16 the executor coalesces reads into MultiGet
//    batches and writes into group-committed WriteBatches, so engine
//    calls per command collapse well under the 0.2 acceptance bound.
//  - Sharding: server_shards independent DBs behind SO_REUSEPORT scale
//    closed-loop throughput with cores. The JSON reports
//    hardware_threads so single-core CI results are read honestly —
//    shard scaling needs >= 4 cores to show its >= 2.5x.
//
// Results land in BENCH_server.json. Pass --smoke for the CI-sized run.

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "io/env.h"
#include "obs/histogram.h"
#include "server/resp_client.h"
#include "server/server.h"

namespace monkeydb {
namespace {

using Clock = std::chrono::steady_clock;

// Workload shapes. kGet pipelines coalesce into one MultiGet per shard
// per batch — this is the arm the 0.2 engine-calls/command acceptance
// bound is measured on. kMixed alternates GET/SET randomly, so batches
// split at every read/write class boundary (expected run length ~2;
// the split preserves read-your-own-writes ordering) — kept as the
// honest worst-case realism arm, not held to the bound.
enum class Workload { kGet, kMixed };

struct RunResult {
  int shards = 0;
  int connections = 0;
  int depth = 0;
  Workload workload = Workload::kGet;
  uint64_t commands = 0;
  double seconds = 0;
  double ops_per_sec = 0;
  uint64_t engine_calls = 0;
  double engine_calls_per_command = 0;
};

struct OpenLoopResult {
  double offered_rate = 0;
  double achieved_rate = 0;
  HistogramData get_latency;
  HistogramData pipeline_depth;
};

std::unique_ptr<MonkeyServer> StartServer(Env* env, int shards,
                                          const std::string& dir) {
  ServerOptions opts;
  opts.server_port = 0;
  opts.server_shards = shards;
  opts.db_options.env = env;
  std::unique_ptr<MonkeyServer> server;
  Status s = MonkeyServer::Start(opts, dir, &server);
  if (!s.ok()) {
    fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    exit(1);
  }
  return server;
}

// One closed-loop worker: keeps `depth` commands in flight on one
// connection until `stop`, keys drawn uniformly from `keyspace`.
void ClosedLoopWorker(int port, int depth, int keyspace, int seed,
                      Workload workload, std::atomic<bool>* stop,
                      std::atomic<uint64_t>* completed) {
  RespClient client;
  if (!client.Connect("127.0.0.1", port).ok()) return;
  uint64_t rng = 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(seed + 1);
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::string batch;
  RespReply reply;
  while (!stop->load(std::memory_order_relaxed)) {
    batch.clear();
    for (int i = 0; i < depth; ++i) {
      const std::string key =
          "bench" + std::to_string(next() % static_cast<uint64_t>(keyspace));
      if (workload == Workload::kGet || next() % 2 == 0) {
        RespClient::EncodeCommand({"GET", key}, &batch);
      } else {
        RespClient::EncodeCommand({"SET", key, "value-payload-64b"},
                                  &batch);
      }
    }
    if (!client.SendRaw(batch).ok()) return;
    for (int i = 0; i < depth; ++i) {
      if (!client.ReadReply(&reply).ok()) return;
    }
    completed->fetch_add(static_cast<uint64_t>(depth),
                         std::memory_order_relaxed);
  }
}

RunResult ClosedLoop(Env* env, const std::string& dir, int shards,
                     int connections, int depth, int keyspace,
                     Workload workload, double seconds) {
  auto server = StartServer(env, shards, dir);
  // Preload so GETs hit.
  {
    RespClient client;
    if (!client.Connect("127.0.0.1", server->port()).ok()) exit(1);
    std::string batch;
    for (int i = 0; i < keyspace; ++i) {
      RespClient::EncodeCommand(
          {"SET", "bench" + std::to_string(i), "value-payload-64b"},
          &batch);
    }
    if (!client.SendRaw(batch).ok()) exit(1);
    RespReply r;
    for (int i = 0; i < keyspace; ++i) {
      if (!client.ReadReply(&r).ok()) exit(1);
    }
  }
  const auto preload_calls = server->engine_calls().Total();
  const auto preload_commands = server->commands_processed();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> workers;
  const auto start = Clock::now();
  for (int i = 0; i < connections; ++i) {
    workers.emplace_back(ClosedLoopWorker, server->port(), depth, keyspace,
                         i, workload, &stop, &completed);
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  RunResult result;
  result.shards = shards;
  result.connections = connections;
  result.depth = depth;
  result.workload = workload;
  result.commands = completed.load();
  result.seconds = elapsed;
  result.ops_per_sec = static_cast<double>(result.commands) / elapsed;
  result.engine_calls = server->engine_calls().Total() - preload_calls;
  const uint64_t commands_seen =
      server->commands_processed() - preload_commands;
  result.engine_calls_per_command =
      commands_seen == 0 ? 0.0
                         : static_cast<double>(result.engine_calls) /
                               static_cast<double>(commands_seen);
  server->Stop();
  return result;
}

// Open-loop: offered load at a fixed rate (batches of `depth` GETs every
// interval), latency read from the server's own per-command histograms
// (recorded dispatch -> reply-buffered, so it excludes client think
// time). The reader drains asynchronously so a latency spike does not
// throttle the offered rate — the open-loop point of measurement.
OpenLoopResult OpenLoop(Env* env, const std::string& dir, double rate,
                        int depth, int keyspace, double seconds) {
  auto server = StartServer(env, 1, dir);
  {
    RespClient client;
    if (!client.Connect("127.0.0.1", server->port()).ok()) exit(1);
    RespReply r;
    for (int i = 0; i < keyspace; ++i) {
      if (!client
               .Command({"SET", "bench" + std::to_string(i),
                         "value-payload-64b"},
                        &r)
               .ok()) {
        exit(1);
      }
    }
  }
  server->metrics()->Reset();

  RespClient sender;
  if (!sender.Connect("127.0.0.1", server->port()).ok()) exit(1);
  std::atomic<bool> reader_stop{false};
  std::atomic<uint64_t> replies{0};
  // Drain replies on a second thread sharing the socket: the sender
  // thread only writes and this thread only reads (send/recv touch
  // disjoint client state), so a latency spike never throttles the
  // offered rate — the open-loop point of measurement.
  std::thread reader([&] {
    RespReply r;
    while (!reader_stop.load(std::memory_order_relaxed)) {
      if (!sender.ReadReply(&r).ok()) return;
      replies.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const auto interval = std::chrono::duration<double>(
      static_cast<double>(depth) / rate);
  const auto start = Clock::now();
  uint64_t sent = 0;
  uint64_t rng = 12345;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  auto deadline = start + interval;
  while (std::chrono::duration<double>(Clock::now() - start).count() <
         seconds) {
    std::string batch;
    for (int i = 0; i < depth; ++i) {
      RespClient::EncodeCommand(
          {"GET",
           "bench" +
               std::to_string(next() % static_cast<uint64_t>(keyspace))},
          &batch);
    }
    if (!sender.SendRaw(batch).ok()) break;
    sent += static_cast<uint64_t>(depth);
    std::this_thread::sleep_until(deadline);
    deadline += interval;
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  // Let in-flight replies drain, then stop the reader by closing the
  // connection out from under its blocking recv.
  for (int i = 0; i < 200 && replies.load() < sent; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  reader_stop.store(true, std::memory_order_relaxed);
  // shutdown() (not close()) unblocks the reader's in-flight recv.
  ::shutdown(sender.fd(), SHUT_RDWR);
  reader.join();
  sender.Close();

  OpenLoopResult result;
  result.offered_rate = rate;
  result.achieved_rate = static_cast<double>(replies.load()) / elapsed;
  result.get_latency =
      server->metrics()->SnapshotHistogram(Hist::kServerGetLatency);
  result.pipeline_depth =
      server->metrics()->SnapshotHistogram(Hist::kServerPipelineDepth);
  server->Stop();
  return result;
}

const char* WorkloadName(Workload w) {
  return w == Workload::kGet ? "get" : "mixed";
}

void PrintRun(const RunResult& r) {
  printf("  %-5s shards=%d conns=%-2d depth=%-3d  %9.0f ops/s  "
         "%8llu cmds  %.4f engine calls/cmd\n",
         WorkloadName(r.workload), r.shards, r.connections, r.depth,
         r.ops_per_sec, static_cast<unsigned long long>(r.commands),
         r.engine_calls_per_command);
}

}  // namespace
}  // namespace monkeydb

int main(int argc, char** argv) {
  using namespace monkeydb;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const unsigned hw_threads = std::thread::hardware_concurrency();
  const double run_seconds = smoke ? 0.4 : 3.0;
  const int keyspace = smoke ? 512 : 8192;
  const int conns = smoke ? 2 : 8;

  printf("server_throughput: %u hardware thread(s)%s\n\n", hw_threads,
         smoke ? " [smoke]" : "");
  if (hw_threads < 4) {
    printf("NOTE: fewer than 4 hardware threads — shard scaling numbers\n"
           "below are contention-bound, not the >= 2.5x a 4-core host\n"
           "shows. engine-calls-per-command is hardware-independent.\n\n");
  }

  auto env = NewMemEnv();  // Socket + engine CPU cost, no disk noise.

  printf("closed loop:\n");
  std::vector<RunResult> closed;
  int run_id = 0;
  auto run = [&](int shards, int depth, Workload w) {
    const std::string dir = "/bench-" + std::to_string(run_id++);
    closed.push_back(ClosedLoop(env.get(), dir, shards, conns, depth,
                                keyspace, w, run_seconds));
    PrintRun(closed.back());
  };
  run(1, 1, Workload::kGet);
  run(1, 16, Workload::kGet);
  run(4, 16, Workload::kGet);
  run(1, 16, Workload::kMixed);  // Class boundaries split batches.

  // The pipelining acceptance metric, measured not asserted-by-hand:
  // a depth-16 GET pipeline must come in under 0.2 engine calls per
  // command (one MultiGet per shard per batch).
  double depth16_calls_per_cmd = 1.0;
  double depth1_ops = 0, depth16_ops = 0;
  double shard1_ops = 0, shard4_ops = 0;
  for (const RunResult& r : closed) {
    if (r.workload != Workload::kGet) continue;
    if (r.shards == 1 && r.depth == 16) {
      depth16_calls_per_cmd = r.engine_calls_per_command;
      depth16_ops = r.ops_per_sec;
      shard1_ops = r.ops_per_sec;
    }
    if (r.shards == 1 && r.depth == 1) depth1_ops = r.ops_per_sec;
    if (r.shards == 4 && r.depth == 16) shard4_ops = r.ops_per_sec;
  }
  printf("\npipelining: depth 16 vs 1 = %.2fx throughput, "
         "%.4f engine calls/cmd (bound: 0.2)\n",
         depth1_ops > 0 ? depth16_ops / depth1_ops : 0,
         depth16_calls_per_cmd);
  printf("sharding:   4 vs 1 shards at depth 16 = %.2fx "
         "(meaningful on >= 4 cores only)\n\n",
         shard1_ops > 0 ? shard4_ops / shard1_ops : 0);

  printf("open loop (GET-only, fixed offered rate):\n");
  const double rate = smoke ? 2000 : 20000;
  OpenLoopResult open =
      OpenLoop(env.get(), "/bench-open", rate, 16, keyspace, run_seconds);
  printf("  offered %.0f/s achieved %.0f/s  get latency p50=%.0fus "
         "p99=%.0fus p99.9=%.0fus  pipeline depth avg=%.1f\n\n",
         open.offered_rate, open.achieved_rate, open.get_latency.p50,
         open.get_latency.p99, open.get_latency.p999,
         open.pipeline_depth.avg);

  {
    bench::BenchJsonWriter w("server_throughput");
    w.Config("smoke", smoke);
    w.BeginArray("closed_loop");
    for (const RunResult& r : closed) {
      w.BeginObject();
      w.Field("workload", WorkloadName(r.workload));
      w.Field("shards", r.shards);
      w.Field("connections", r.connections);
      w.Field("depth", r.depth);
      w.Field("ops_per_sec", r.ops_per_sec);
      w.Field("commands", r.commands);
      w.Field("engine_calls", r.engine_calls);
      w.Field("engine_calls_per_command", r.engine_calls_per_command);
      w.EndObject();
    }
    w.EndArray();
    w.BeginObject("pipelining");
    w.Field("depth16_engine_calls_per_command", depth16_calls_per_cmd);
    w.Field("bound", 0.2);
    w.Field("pass", depth16_calls_per_cmd <= 0.2);
    w.EndObject();
    w.BeginObject("shard_scaling");
    w.Field("speedup_4v1_depth16",
            shard1_ops > 0 ? shard4_ops / shard1_ops : 0.0);
    w.Field("target_on_4_cores", 2.5);
    w.EndObject();
    w.BeginObject("open_loop");
    w.Field("offered_rate", open.offered_rate);
    w.Field("achieved_rate", open.achieved_rate);
    w.Field("get_p50_us", open.get_latency.p50);
    w.Field("get_p99_us", open.get_latency.p99);
    w.Field("get_p999_us", open.get_latency.p999);
    w.Field("pipeline_depth_avg", open.pipeline_depth.avg);
    w.EndObject();
    w.WriteFile("BENCH_server.json");
  }

  if (depth16_calls_per_cmd > 0.2) {
    fprintf(stderr,
            "FAIL: depth-16 engine calls per command %.4f exceeds the "
            "0.2 acceptance bound\n",
            depth16_calls_per_cmd);
    return 1;
  }
  return 0;
}
