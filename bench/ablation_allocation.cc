// Ablation: FPR-allocation variants at the same memory budget.
//
//   uniform     — the state of the art (same bits/entry everywhere);
//   simplified  — Eqs. 5/6 (the paper's large-L approximations);
//   exact       — Eqs. 17/18 with deep-level saturation;
//   numeric     — the generalized geometry solver;
//   autotuned   — Appendix C's iterative Algorithm 1 on the capacity runs.
//
// All variants are evaluated with the model's Eq. 3 lookup cost over the
// same capacity geometry, so differences isolate the allocation itself.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bloom/bloom_math.h"
#include "monkey/fpr_allocator.h"

using namespace monkeydb;
using namespace monkeydb::monkey;

namespace {

// Memory consumed by per-level per-run FPRs over a geometry.
double MemoryUsed(const std::vector<LevelGeometry>& geometry,
                  const FprVector& fprs) {
  double memory = 0;
  for (size_t i = 0; i < geometry.size(); i++) {
    memory += -geometry[i].entries * std::log(fprs[i]) /
              bloom::kLn2Squared;
  }
  return memory;
}

// The paper's simplified forms (Eqs. 5/6): p_i = R'(T-1)/T^{Lf+1-i}
// (leveling) — implemented by deriving R from the memory-driven closed
// form, then applying the large-L profile without the (T^Lf - 1)
// normalization.
FprVector SimplifiedFprs(MergePolicy policy, double t, int levels,
                         double n, double budget) {
  FprVector exact = OptimalFprsForMemory(policy, t, levels, n, budget);
  double r = LookupCostForFprs(policy, t, exact);
  FprVector fprs(levels, 1.0);
  for (int i = 1; i <= levels; i++) {
    double p;
    if (policy == MergePolicy::kTiering) {
      p = r / std::pow(t, levels + 1 - i);
    } else {
      p = r * (t - 1.0) / std::pow(t, levels + 1 - i);
    }
    fprs[i - 1] = std::min(1.0, std::max(p, 1e-12));
  }
  return fprs;
}

}  // namespace

int main() {
  const double n = 1e8;
  const double t = 4.0;
  const int levels = 7;
  const double budget = 5.0 * n;
  const MergePolicy policy = MergePolicy::kLeveling;

  const auto geometry = CapacityGeometry(policy, t, levels, n);

  printf("Ablation: FPR allocation variants "
         "(leveling, T=%.0f, L=%d, %.0f bits/entry)\n\n", t, levels,
         budget / n);
  printf("%-12s %16s %18s\n", "variant", "R (I/Os, Eq. 3)",
         "memory used/budget");

  // Uniform.
  {
    FprVector fprs(levels, bloom::FalsePositiveRate(budget / n));
    printf("%-12s %16.6f %17.1f%%\n", "uniform",
           LookupCostForGeometry(geometry, fprs),
           MemoryUsed(geometry, fprs) / budget * 100);
  }
  // Simplified Eqs. 5/6.
  {
    FprVector fprs = SimplifiedFprs(policy, t, levels, n, budget);
    printf("%-12s %16.6f %17.1f%%\n", "simplified",
           LookupCostForGeometry(geometry, fprs),
           MemoryUsed(geometry, fprs) / budget * 100);
  }
  // Exact closed form (Eqs. 17/18).
  {
    FprVector fprs = OptimalFprsForMemory(policy, t, levels, n, budget);
    printf("%-12s %16.6f %17.1f%%\n", "exact",
           LookupCostForGeometry(geometry, fprs),
           MemoryUsed(geometry, fprs) / budget * 100);
  }
  // Numeric geometry solver.
  {
    FprVector fprs = OptimalFprsForGeometry(geometry, budget);
    printf("%-12s %16.6f %17.1f%%\n", "numeric",
           LookupCostForGeometry(geometry, fprs),
           MemoryUsed(geometry, fprs) / budget * 100);
  }
  // Appendix C autotuner over the capacity runs.
  {
    std::vector<RunFilterInfo> runs(levels);
    for (int i = 0; i < levels; i++) {
      runs[i].entries =
          static_cast<uint64_t>(geometry[i].entries / geometry[i].runs);
    }
    AutotuneFilters(budget, &runs);
    FprVector fprs(levels, 1.0);
    for (int i = 0; i < levels; i++) {
      fprs[i] = runs[i].entries == 0
                    ? 1.0
                    : std::exp(-(runs[i].bits / runs[i].entries) *
                               bloom::kLn2Squared);
    }
    printf("%-12s %16.6f %17.1f%%\n", "autotuned",
           LookupCostForGeometry(geometry, fprs),
           MemoryUsed(geometry, fprs) / budget * 100);
  }

  printf("\nExpected: uniform is several-fold worse; simplified, exact,\n"
         "numeric, and autotuned agree to within a few percent — the\n"
         "closed forms are accurate and Algorithm 1 converges to them.\n");
  return 0;
}
