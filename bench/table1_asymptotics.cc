// Table 1: asymptotic complexity of lookup cost, checked numerically.
//
// For each regime of the table we scale N geometrically and fit the growth
// of the model's R (and the engine-measured R for moderate sizes):
//   - Monkey, M_f > M_threshold:      R = O(e^{-M/N})        -> flat in L
//   - Baseline, M_f > M_threshold:    R = O(L * e^{-M/N})    -> linear in L
//   - Monkey, M_f < M_threshold:      R = O(L_unfiltered)    -> grows
//   - T = T_lim degeneracies:         log / sorted array

#include <cmath>
#include <cstdio>

#include "harness.h"
#include "monkey/cost_model.h"

using namespace monkeydb;
using namespace monkeydb::bench;
using monkey::DesignPoint;

int main() {
  printf("Table 1: asymptotic scaling of zero-result lookup cost\n\n");

  // --- Model: scaling in N at fixed bits/entry (rows 2-3, columns c/e). ---
  printf("Model check (T=4 leveling, 10 bits/entry, buffer 2MB):\n");
  printf("%14s %6s %14s %14s\n", "N", "L", "R baseline", "R Monkey");
  DesignPoint d;
  d.size_ratio = 4.0;
  d.entry_size_bits = 128 * 8;
  d.buffer_bits = 2.0 * (1 << 20) * 8;
  d.entries_per_page = 4096.0 * 8 / d.entry_size_bits;
  double first_rart = 0, last_rart = 0, first_r = 0, last_r = 0;
  int first_l = 0, last_l = 0;
  for (double n = 1e7; n <= 1e13; n *= 100) {
    d.num_entries = n;
    d.filter_bits = 10.0 * n;
    const double rart = monkey::BaselineZeroResultLookupCost(d);
    const double r = monkey::ZeroResultLookupCost(d);
    if (first_rart == 0) {
      first_rart = rart;
      first_r = r;
      first_l = monkey::NumLevels(d);
    }
    last_rart = rart;
    last_r = r;
    last_l = monkey::NumLevels(d);
    printf("%14.0f %6d %14.6f %14.6f\n", n, monkey::NumLevels(d), rart, r);
  }
  printf("  baseline grew %.2fx over %dx more levels (O(L));"
         " Monkey grew %.2fx (O(1)).\n\n",
         last_rart / first_rart, last_l - first_l + 1,
         last_r / first_r);

  // --- Model: below-threshold regime (columns b/d). ---
  printf("Below M_threshold (0.5 bits/entry):\n");
  printf("%14s %6s %8s %14s %14s\n", "N", "L", "L_unf", "R baseline",
         "R Monkey");
  for (double n = 1e7; n <= 1e13; n *= 100) {
    d.num_entries = n;
    d.filter_bits = 0.5 * n;
    printf("%14.0f %6d %8d %14.6f %14.6f\n", n, monkey::NumLevels(d),
           monkey::UnfilteredLevels(d),
           monkey::BaselineZeroResultLookupCost(d),
           monkey::ZeroResultLookupCost(d));
  }
  printf("  both grow with L here, but Monkey stays below the baseline.\n\n");

  // --- Degeneracies (rows 1 and 4): T = T_lim. ---
  printf("T = T_lim degeneracies:\n");
  d.num_entries = 1e9;
  d.filter_bits = 10.0 * d.num_entries;
  d.size_ratio = monkey::SizeRatioLimit(d);
  d.policy = MergePolicy::kTiering;
  printf("  tiering  (log):          L=%d  R=%10.4f  W=%.6f\n",
         monkey::NumLevels(d), monkey::ZeroResultLookupCost(d),
         monkey::UpdateCost(d));
  d.policy = MergePolicy::kLeveling;
  printf("  leveling (sorted array): L=%d  R=%10.4f  W=%.6f\n",
         monkey::NumLevels(d), monkey::ZeroResultLookupCost(d),
         monkey::UpdateCost(d));

  // --- Engine: measured scaling (moderate sizes). ---
  printf("\nEngine check (T=2 leveling, 5 bits/entry):\n");
  printf("%10s %8s | %13s | %13s\n", "entries", "levels", "uniform I/O",
         "monkey I/O");
  for (int n : {25000, 100000, 400000}) {
    FillSpec spec;
    spec.num_keys = n;
    spec.bits_per_entry = 5.0;
    spec.buffer_bytes = 32 << 10;
    spec.monkey_filters = false;
    TestDb uniform = Fill(spec);
    spec.monkey_filters = true;
    TestDb monkey_db = Fill(spec);
    printf("%10d %8d | %13.4f | %13.4f\n", n,
           uniform.db->GetStats().deepest_level,
           MeasureZeroResultLookups(&uniform, 6000).ios_per_lookup,
           MeasureZeroResultLookups(&monkey_db, 6000).ios_per_lookup);
  }
  return 0;
}
