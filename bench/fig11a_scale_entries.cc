// Figure 11(A): lookup cost vs number of entries.
//
// The paper: LevelDB's (uniform) lookup latency grows logarithmically with
// N; Monkey's stays flat, winning by 50-80% at the largest sizes. Default
// setup: T=2 leveling, 5 bits/entry, zero-result lookups.

#include <cstdio>

#include "harness.h"

using namespace monkeydb;
using namespace monkeydb::bench;

int main() {
  printf("Figure 11(A): zero-result lookup cost vs number of entries\n");
  printf("(leveling, T=2, 5 bits/entry, buffer 64KB, 8K lookups)\n\n");
  printf("%10s %8s | %13s %16s | %13s %16s | %8s\n", "entries", "levels",
         "uniform I/O", "uniform ms(HDD)", "monkey I/O", "monkey ms(HDD)",
         "gain");

  for (int n : {20000, 40000, 80000, 160000, 320000}) {
    FillSpec spec;
    spec.num_keys = n;
    spec.bits_per_entry = 5.0;
    spec.buffer_bytes = 64 << 10;

    spec.monkey_filters = false;
    TestDb uniform = Fill(spec);
    spec.monkey_filters = true;
    TestDb monkey = Fill(spec);

    const LookupResult u = MeasureZeroResultLookups(&uniform, 8000);
    const LookupResult m = MeasureZeroResultLookups(&monkey, 8000);
    const double gain =
        u.ios_per_lookup > 0
            ? (u.ios_per_lookup - m.ios_per_lookup) / u.ios_per_lookup
            : 0;
    printf("%10d %8d | %13.4f %16.3f | %13.4f %16.3f | %7.1f%%\n", n,
           uniform.db->GetStats().deepest_level, u.ios_per_lookup,
           u.simulated_ms_per_lookup, m.ios_per_lookup,
           m.simulated_ms_per_lookup, gain * 100.0);
  }
  printf("\nExpected shape: the uniform column grows with the level count;\n"
         "the Monkey column stays ~flat, so the gain widens with data "
         "volume.\n");
  return 0;
}
