// Component microbenchmarks (google-benchmark): hashing, Bloom filters,
// memtable, block, table probe, and the closed-form models/tuner.
//
// With --json, additionally runs a small instrumented end-to-end workload
// (fill + zero-result + existing-key lookups with enable_metrics on) and
// dumps the engine's histogram snapshot — plus the request-tracing
// overhead smoke (sampling off vs sampling enabled-but-unsampled; CI
// asserts the ratio stays within 3%) — to BENCH_obs.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "harness.h"

#include "bloom/blocked_bloom_filter.h"
#include "bloom/bloom_filter.h"
#include "io/env.h"
#include "lsm/internal_key.h"
#include "memtable/memtable.h"
#include "monkey/fpr_allocator.h"
#include "monkey/tuner.h"
#include "obs/trace.h"
#include "sstable/table_builder.h"
#include "sstable/table_reader.h"
#include "util/hash.h"
#include "util/random.h"

namespace monkeydb {
namespace {

void BM_XxHash64(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(XxHash64(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_XxHash64)->Arg(16)->Arg(256)->Arg(4096);

// Before-vs-after for the CRC32C dispatch: BM_Crc32cPortable is the
// slicing-by-8 software baseline ("before"); BM_Crc32c is whatever the
// runtime dispatch picked on this machine ("after" — see the crc_impl
// label; identical to portable when no CRC instructions exist). The
// bytes/cycle ratio between the two is the hardware speedup.
void BM_Crc32c(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
  state.SetLabel(std::string("crc_impl=") + Crc32cImplName());
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Crc32cPortable(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32cPortable(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * data.size());
  state.SetLabel("crc_impl=portable-slicing8");
}
BENCHMARK(BM_Crc32cPortable)->Arg(64)->Arg(4096)->Arg(65536);

void BM_BloomBuild(benchmark::State& state) {
  const int n = state.range(0);
  for (auto _ : state) {
    BloomFilterBuilder builder;
    for (int i = 0; i < n; i++) {
      const std::string key = "key" + std::to_string(i);
      builder.AddKey(key);
    }
    benchmark::DoNotOptimize(builder.Finish(10.0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BloomBuild)->Arg(10000);

void BM_BloomQuery(benchmark::State& state) {
  BloomFilterBuilder builder;
  for (int i = 0; i < 100000; i++) {
    const std::string key = "key" + std::to_string(i);
    builder.AddKey(key);
  }
  const std::string filter = builder.Finish(10.0);
  Random rng(1);
  for (auto _ : state) {
    const std::string key = "key" + std::to_string(rng.Uniform(200000));
    benchmark::DoNotOptimize(BloomFilterReader::MayContain(filter, key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomQuery);

void BM_BlockedBloomQuery(benchmark::State& state) {
  BlockedBloomFilterBuilder builder;
  for (int i = 0; i < 100000; i++) {
    const std::string key = "key" + std::to_string(i);
    builder.AddKey(key);
  }
  const std::string filter = builder.Finish(10.0);
  Random rng(1);
  for (auto _ : state) {
    const std::string key = "key" + std::to_string(rng.Uniform(200000));
    benchmark::DoNotOptimize(
        BlockedBloomFilterReader::MayContain(filter, key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockedBloomQuery);

void BM_MemTableInsert(benchmark::State& state) {
  InternalKeyComparator cmp(BytewiseComparator());
  auto mem = std::make_unique<MemTable>(cmp);
  SequenceNumber seq = 0;
  Random rng(2);
  const std::string value(64, 'v');
  for (auto _ : state) {
    const std::string key = "key" + std::to_string(rng.Next());
    mem->Add(++seq, ValueType::kValue, key,
             value);
    if (mem->ApproximateMemoryUsage() > (64 << 20)) {
      state.PauseTiming();
      mem = std::make_unique<MemTable>(cmp);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTableInsert);

void BM_MemTableGet(benchmark::State& state) {
  InternalKeyComparator cmp(BytewiseComparator());
  MemTable mem(cmp);
  for (int i = 0; i < 100000; i++) {
    const std::string key = "key" + std::to_string(i);
    mem.Add(i + 1, ValueType::kValue, key, "value");
  }
  Random rng(3);
  std::string value;
  for (auto _ : state) {
    const std::string key = "key" + std::to_string(rng.Uniform(100000));
    LookupKey lookup(key,
                     kMaxSequenceNumber);
    bool found;
    benchmark::DoNotOptimize(mem.Get(lookup, &value, &found));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTableGet);

void BM_TableProbe(benchmark::State& state) {
  auto env = NewMemEnv();
  InternalKeyComparator cmp(BytewiseComparator());
  std::unique_ptr<WritableFile> file;
  env->NewWritableFile("/t.sst", &file).ok();
  TableBuilderOptions opts;
  TableBuilder builder(opts, file.get());
  const int n = 200000;
  for (int i = 0; i < n; i++) {
    char buf[24];
    snprintf(buf, sizeof(buf), "key%09d", i);
    std::string ikey;
    AppendInternalKey(&ikey, buf, 1, ValueType::kValue);
    const std::string payload = std::string(32, 'v');
    builder.Add(ikey, payload);
  }
  builder.Finish().ok();
  file->Close().ok();

  std::unique_ptr<RandomAccessFile> rfile;
  env->NewRandomAccessFile("/t.sst", &rfile).ok();
  TableReaderOptions ropts;
  ropts.comparator = &cmp;
  std::unique_ptr<TableReader> table;
  TableReader::Open(ropts, std::move(rfile), builder.file_size(), &table)
      .ok();

  Random rng(4);
  std::string value;
  for (auto _ : state) {
    char buf[24];
    snprintf(buf, sizeof(buf), "key%09llu",
             static_cast<unsigned long long>(rng.Uniform(n)));
    LookupKey lookup(buf, kMaxSequenceNumber);
    TableLookupResult result;
    benchmark::DoNotOptimize(table->Get(lookup, &value, &result));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableProbe);

void BM_OptimalFprAllocation(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(monkey::OptimalFprsForMemory(
        MergePolicy::kLeveling, 4.0, 8, 1e9, 5e9));
  }
}
BENCHMARK(BM_OptimalFprAllocation);

void BM_AutotuneFilters(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<monkey::RunFilterInfo> runs;
    uint64_t entries = 1000;
    for (int i = 0; i < 8; i++) {
      runs.push_back({entries, 0});
      entries *= 4;
    }
    benchmark::DoNotOptimize(monkey::AutotuneFilters(1e8, &runs));
  }
}
BENCHMARK(BM_AutotuneFilters);

void BM_TunerSearch(benchmark::State& state) {
  monkey::Environment env;
  env.num_entries = 1e9;
  env.entry_size_bits = 1024;
  env.total_memory_bits = 1.2e10;
  monkey::Workload w;
  w.zero_result_lookups = 0.5;
  w.updates = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(monkey::AutotuneSizeRatioAndPolicy(env, w));
  }
}
BENCHMARK(BM_TunerSearch);

// Tracing overhead smoke: ns per zero-result Get with head sampling off
// (threshold 0 — disarmed spans cost one relaxed load, no RNG) vs with
// sampling enabled at a vanishing rate (the per-request RNG draw runs but
// ~never arms). CI's release leg asserts the ratio stays <= 1.03.
// Interleaved min-of-rounds so frequency drift hits both arms equally.
struct TraceOverhead {
  double baseline_ns_per_get = 0;
  double traced_unsampled_ns_per_get = 0;
};

TraceOverhead MeasureTraceOverhead(bench::TestDb* t) {
  ReadOptions ro;
  std::string value;
  Random rng(31337);
  auto measure = [&](int lookups) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < lookups; i++) {
      const std::string key =
          bench::MakeMissingKey(rng.Uniform(t->num_keys));
      t->db->Get(ro, key, &value).ok();
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                   .count()) /
           lookups;
  };
  constexpr int kLookups = 3000;
  measure(kLookups);  // Warm caches before either arm is timed.
  TraceOverhead r;
  double base = 1e300;
  double traced = 1e300;
  for (int round = 0; round < 5; ++round) {
    SetTraceSampleRate(0.0);
    base = std::min(base, measure(kLookups));
    SetTraceSampleRate(1e-9);
    traced = std::min(traced, measure(kLookups));
  }
  SetTraceSampleRate(0.0);
  r.baseline_ns_per_get = base;
  r.traced_unsampled_ns_per_get = traced;
  return r;
}

// The --json end-to-end pass: every histogram DumpMetrics exports needs
// traffic, so drive writes, point/batch lookups, and a short scan through an
// instrumented DB, then snapshot.
void EmitObsJson() {
  bench::FillSpec spec;
  spec.num_keys = 20000;
  spec.monkey_filters = true;
  spec.enable_metrics = true;
  bench::TestDb t = bench::Fill(spec);
  bench::MeasureZeroResultLookups(&t, 4000);
  bench::MeasureNonZeroResultLookups(&t, 4000, /*locality_c=*/0.0);
  {
    ReadOptions ro;
    std::vector<std::string> key_storage;
    for (int i = 0; i < 64; i++) key_storage.push_back(bench::MakeKey(i));
    std::vector<Slice> keys(key_storage.begin(), key_storage.end());
    std::vector<std::string> values;
    (void)t.db->MultiGet(ro, keys, &values);
    auto it = t.db->NewIterator(ro);
    int scanned = 0;
    for (it->SeekToFirst(); it->Valid() && scanned < 1000; it->Next()) {
      scanned++;
    }
  }
  const TraceOverhead overhead = MeasureTraceOverhead(&t);

  bench::BenchJsonWriter w("micro_components");
  w.Config("num_keys", spec.num_keys);
  w.Config("lookups", 4000);
  w.RawField("metrics", t.db->DumpMetrics(DB::MetricsFormat::kJson));
  w.BeginObject("trace_overhead");
  w.Field("baseline_ns_per_get", overhead.baseline_ns_per_get);
  w.Field("traced_unsampled_ns_per_get",
          overhead.traced_unsampled_ns_per_get);
  w.Field("ratio", overhead.baseline_ns_per_get > 0
                       ? overhead.traced_unsampled_ns_per_get /
                             overhead.baseline_ns_per_get
                       : 0.0);
  w.EndObject();
  w.WriteFile("BENCH_obs.json");
}

}  // namespace
}  // namespace monkeydb

int main(int argc, char** argv) {
  const bool emit_json = monkeydb::bench::ConsumeJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (emit_json) monkeydb::EmitObsJson();
  return 0;
}
