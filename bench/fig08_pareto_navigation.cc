// Figure 8: Monkey dominates the state of the art for any merge policy and
// size ratio — the whole baseline trade-off curve shifts down to the
// Pareto frontier.

#include <algorithm>
#include <cstdio>

#include "monkey/cost_model.h"
#include "monkey/design_space.h"

using namespace monkeydb;
using namespace monkeydb::monkey;

int main() {
  DesignPoint base;
  base.num_entries = 1e8;
  base.entry_size_bits = 128 * 8;
  base.buffer_bits = 2.0 * (1 << 20) * 8;
  base.filter_bits = 10.0 * base.num_entries;
  base.entries_per_page = 4096.0 * 8 / base.entry_size_bits;

  printf("Figure 8: baseline curve vs Monkey (Pareto) curve\n");
  printf("(N=1e8, E=128B, 10 bits/entry, buffer 2MB)\n\n");
  printf("%-9s %6s %10s %14s %12s %9s\n", "policy", "T", "W (I/O)",
         "R baseline", "R Monkey", "gain");

  double worst_gain = 1e100;
  for (const CurvePoint& p : SweepDesignSpace(base, 32.0, 2.0)) {
    const double gain =
        (p.baseline_lookup_cost - p.lookup_cost) / p.baseline_lookup_cost;
    worst_gain = std::min(worst_gain, gain);
    printf("%-9s %6.0f %10.4f %14.6f %12.6f %8.1f%%\n",
           p.policy == MergePolicy::kLeveling ? "leveling" : "tiering",
           p.size_ratio, p.update_cost, p.baseline_lookup_cost,
           p.lookup_cost, gain * 100.0);
  }
  printf("\nMinimum lookup-cost reduction across the space: %.1f%%\n",
         worst_gain * 100.0);
  printf("(The curves converge only at T = T_lim, where both designs "
         "degenerate\n to a log / sorted array — Sec. 4.3.)\n");
  return 0;
}
