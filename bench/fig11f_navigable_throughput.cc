// Figure 11(F): throughput vs lookup/update ratio for LevelDB (uniform,
// T=2), Fixed Monkey (optimal filters, T=2), and Navigable Monkey (optimal
// filters + tuned merge policy and size ratio per workload).
//
// Throughput is computed from measured I/Os on the paper's HDD device
// model (10 ms per page I/O), matching the paper's disk-bound setup.

#include <cstdio>

#include <algorithm>

#include "harness.h"
#include "monkey/tuner.h"

using namespace monkeydb;
using namespace monkeydb::bench;

namespace {

constexpr int kNumKeys = 100000;
constexpr int kOps = 20000;

// Runs a mixed workload of zero-result lookups and inserts against a fresh
// DB; returns throughput in ops/sec under the HDD device model.
double MeasureThroughput(const FillSpec& spec, double lookup_share) {
  TestDb t = Fill(spec);
  Random rng(1234);
  ReadOptions ro;
  WriteOptions wo;
  std::string value(spec.value_size, 'w');
  std::string out;

  const auto before = t.stats->Snapshot();
  uint64_t next_key = spec.num_keys;
  for (int i = 0; i < kOps; i++) {
    if (rng.Bernoulli(lookup_share)) {
      const std::string missing_key = MakeMissingKey(rng.Uniform(spec.num_keys));
      t.db->Get(ro, missing_key, &out).ok();
    } else {
      const std::string key = MakeKey(next_key++);
      if (!t.db->Put(wo, key, value).ok()) abort();
    }
  }
  const auto delta = t.stats->Snapshot() - before;
  const double seconds = DeviceModel::Hdd().SimulatedSeconds(delta);
  return kOps / (seconds > 0 ? seconds : 1e-9);
}

}  // namespace

int main() {
  printf("Figure 11(F): throughput vs lookup/update ratio "
         "(N=%d, 5 bits/entry, HDD model)\n\n", kNumKeys);
  printf("%9s | %12s | %12s | %12s %s\n", "lookup%", "LevelDB-like",
         "Fixed Monkey", "Navigable", "(chosen design)");

  for (double share : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    FillSpec base;
    base.num_keys = kNumKeys;
    base.bits_per_entry = 5.0;
    base.buffer_bytes = 64 << 10;
    base.policy = MergePolicy::kLeveling;
    base.size_ratio = 2.0;

    // LevelDB-like: uniform filters, fixed T=2 leveling.
    FillSpec leveldb = base;
    leveldb.monkey_filters = false;
    const double tput_leveldb = MeasureThroughput(leveldb, share);

    // Fixed Monkey: optimal filters, same fixed design.
    FillSpec fixed = base;
    fixed.monkey_filters = true;
    const double tput_fixed = MeasureThroughput(fixed, share);

    // Navigable Monkey: tune (policy, T) for this workload with the
    // closed-form models, then run that design.
    monkey::Environment env;
    env.num_entries = kNumKeys;
    env.entry_size_bits = (16.0 + base.value_size) * 8;
    env.total_memory_bits =
        base.bits_per_entry * kNumKeys + base.buffer_bytes * 8.0;
    monkey::Workload w;
    w.zero_result_lookups = share;
    w.updates = 1.0 - share;
    const monkey::Tuning tuning =
        monkey::AutotuneSizeRatioAndPolicy(env, w);

    FillSpec navigable = base;
    navigable.monkey_filters = true;
    navigable.policy = tuning.policy;
    navigable.size_ratio = tuning.size_ratio;
    // Navigable applies the whole tuning, including the memory split.
    navigable.buffer_bytes = static_cast<size_t>(
        std::max(tuning.buffer_bits / 8.0, 4096.0));
    navigable.bits_per_entry = tuning.filter_bits / kNumKeys;
    const double tput_navigable = MeasureThroughput(navigable, share);

    printf("%8.0f%% | %12.1f | %12.1f | %12.1f (%s T=%.0f)\n",
           share * 100, tput_leveldb, tput_fixed, tput_navigable,
           tuning.policy == MergePolicy::kLeveling ? "L" : "T",
           tuning.size_ratio);
  }
  printf("\nExpected shape: Fixed Monkey >= LevelDB at every mix; Navigable"
         "\nMonkey >= Fixed Monkey, with the largest margins at the extreme"
         "\nmixes (bell shape, >2x over LevelDB in the paper).\n");
  return 0;
}
