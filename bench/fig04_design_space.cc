// Figure 4: the LSM-tree design space spans a continuum from a
// write-optimized log (tiering, T -> T_lim) to a read-optimized sorted
// array (leveling, T -> T_lim).
//
// Prints lookup cost vs update cost for both merge policies across size
// ratios, using the uniform-filter baseline models (Fig. 4 predates the
// Monkey allocation).

#include <algorithm>
#include <cstdio>

#include "monkey/cost_model.h"

using namespace monkeydb;
using namespace monkeydb::monkey;

int main() {
  DesignPoint d;
  d.num_entries = 1e8;
  d.entry_size_bits = 128 * 8;
  d.buffer_bits = 2.0 * (1 << 20) * 8;
  d.filter_bits = 10.0 * d.num_entries;
  d.entries_per_page = 4096.0 * 8 / d.entry_size_bits;

  const double t_lim = SizeRatioLimit(d);
  printf("Figure 4: LSM-tree design space, log <-> sorted array\n");
  printf("(uniform filters; T_lim = %.0f)\n\n", t_lim);
  printf("%-9s %10s %5s %12s %12s %8s\n", "policy", "T", "L", "R (I/O)",
         "W (I/O)", "note");

  for (MergePolicy policy :
       {MergePolicy::kTiering, MergePolicy::kLeveling}) {
    const char* policy_name =
        policy == MergePolicy::kLeveling ? "leveling" : "tiering";
    for (double t : {2.0, 4.0, 8.0, 16.0, 64.0, 1024.0, t_lim}) {
      const double ratio = std::min(t, t_lim);
      DesignPoint p = d;
      p.policy = policy;
      p.size_ratio = ratio;
      const char* note = "";
      if (ratio >= t_lim && policy == MergePolicy::kTiering) {
        note = "≈ log";
      } else if (ratio >= t_lim) {
        note = "≈ sorted array";
      }
      printf("%-9s %10.0f %5d %12.4f %12.6f %8s\n", policy_name, ratio,
             NumLevels(p), BaselineZeroResultLookupCost(p), UpdateCost(p),
             note);
      if (ratio >= t_lim) break;
    }
  }

  printf("\nShape checks (paper Sec. 3):\n");
  DesignPoint lev2 = d, tier2 = d;
  lev2.policy = MergePolicy::kLeveling;
  tier2.policy = MergePolicy::kTiering;
  lev2.size_ratio = tier2.size_ratio = 2.0;
  printf("  T=2: leveling R==tiering R?  %.6f vs %.6f\n",
         BaselineZeroResultLookupCost(lev2),
         BaselineZeroResultLookupCost(tier2));
  printf("  T=2: leveling W==tiering W?  %.6f vs %.6f\n", UpdateCost(lev2),
         UpdateCost(tier2));
  return 0;
}
