// Shared helpers for the per-figure benchmark binaries.
//
// Engine-based figures load an instrumented DB (CountingEnv over MemEnv),
// run the paper's workloads, and report disk I/Os per operation and the
// simulated latency those I/Os imply on the paper's hardware (HDD: 10 ms
// per page read).

#ifndef MONKEYDB_BENCH_HARNESS_H_
#define MONKEYDB_BENCH_HARNESS_H_

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>
#include <memory>
#include <string>

#include "io/counting_env.h"
#include "io/env.h"
#include "io/uring_env.h"
#include "lsm/db.h"
#include "monkey/monkey_db.h"
#include "obs/histogram.h"
#include "util/random.h"

namespace monkeydb {
namespace bench {

constexpr size_t kPageSize = 4096;

// An instrumented database with everything it needs kept alive.
struct TestDb {
  std::unique_ptr<Env> base_env;
  std::unique_ptr<IoStats> stats;
  std::unique_ptr<CountingEnv> env;
  std::unique_ptr<BlockCache> cache;
  std::unique_ptr<DB> db;
  int num_keys = 0;
  int value_size = 0;
  std::vector<uint64_t> insertion_order;  // insertion_order[i] = i-th key.
};

struct FillSpec {
  int num_keys = 100000;
  int value_size = 48;  // Key adds 16 bytes.
  MergePolicy policy = MergePolicy::kLeveling;
  double size_ratio = 2.0;
  size_t buffer_bytes = 64 << 10;
  double bits_per_entry = 5.0;
  bool monkey_filters = false;
  size_t block_cache_bytes = 0;
  bool enable_metrics = false;  // Histograms on; costs a clock read per op.
};

// Strips --json from argv (so benchmark libraries that parse the remaining
// flags never see it) and reports whether it was present. Binaries that
// support it dump a metrics snapshot to BENCH_obs.json on exit.
inline bool ConsumeJsonFlag(int* argc, char** argv) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < *argc; i++) {
    if (std::string(argv[i]) == "--json") {
      found = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return found;
}

// --- Uniform --json emission ------------------------------------------
//
// Every bench file is written through this writer so the BENCH_*.json
// artifacts share one top-level envelope:
//
//   {"bench": "<binary>", "hardware_threads": N,
//    "config": {<flat knobs>}, "results": {<bench-specific shape>}}
//
// CI archives every BENCH_*.json uniformly; the fixed envelope keeps
// downstream loaders free of per-bench special cases (the schema used to
// drift — some files had "bench"/"hardware_threads" at top level, most
// did not). Config takes flat scalars; results nest freely.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(const char* bench) : bench_(bench) {}

  void Config(const char* key, long long v) { AddConfig(key, Int(v)); }
  void Config(const char* key, int v) { AddConfig(key, Int(v)); }
  void Config(const char* key, unsigned v) { AddConfig(key, Int(v)); }
  void Config(const char* key, uint64_t v) {
    AddConfig(key, Int(static_cast<long long>(v)));
  }
  void Config(const char* key, double v) { AddConfig(key, Num(v)); }
  void Config(const char* key, bool v) {
    AddConfig(key, v ? "true" : "false");
  }
  void Config(const char* key, const std::string& v) {
    AddConfig(key, Quote(v));
  }
  void Config(const char* key, const char* v) { AddConfig(key, Quote(v)); }

  // The results tree. Pass a key inside objects; nullptr inside arrays.
  void BeginObject(const char* key = nullptr) { Open(key, '{'); }
  void EndObject() { Close('}'); }
  void BeginArray(const char* key = nullptr) { Open(key, '['); }
  void EndArray() { Close(']'); }
  void Field(const char* key, double v) { Add(key, Num(v)); }
  void Field(const char* key, long long v) { Add(key, Int(v)); }
  void Field(const char* key, int v) { Add(key, Int(v)); }
  void Field(const char* key, unsigned v) { Add(key, Int(v)); }
  void Field(const char* key, uint64_t v) {
    Add(key, Int(static_cast<long long>(v)));
  }
  void Field(const char* key, bool v) { Add(key, v ? "true" : "false"); }
  void Field(const char* key, const std::string& v) { Add(key, Quote(v)); }
  void Field(const char* key, const char* v) { Add(key, Quote(v)); }
  // Embeds pre-serialized JSON (a DB::DumpMetrics(kJson) blob).
  void RawField(const char* key, const std::string& json) {
    Add(key, json);
  }
  // The one latency-summary shape every bench exports.
  void Histogram(const char* key, const HistogramData& h) {
    BeginObject(key);
    Field("count", h.count);
    Field("avg", h.avg);
    Field("p50", h.p50);
    Field("p99", h.p99);
    Field("p999", h.p999);
    Field("max", h.max);
    EndObject();
  }

  // Assembles the envelope and writes it; logs "wrote <path>" on success.
  bool WriteFile(const char* path) {
    if (!stack_.empty()) {
      fprintf(stderr, "%s: unbalanced BenchJsonWriter nesting\n", path);
      return false;
    }
    FILE* f = fopen(path, "w");
    if (f == nullptr) {
      fprintf(stderr, "failed to write %s\n", path);
      return false;
    }
    fprintf(f, "{\n\"bench\": %s,\n\"hardware_threads\": %u,\n",
            Quote(bench_).c_str(), std::thread::hardware_concurrency());
    fprintf(f, "\"config\": {%s},\n", config_.c_str());
    fprintf(f, "\"results\": {%s}\n}\n", results_.c_str());
    fclose(f);
    printf("wrote %s\n", path);
    return true;
  }

 private:
  static std::string Int(long long v) { return std::to_string(v); }
  static std::string Num(double v) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }
  static std::string Quote(const std::string& v) {
    std::string out = "\"";
    for (char c : v) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }
  void AddConfig(const char* key, const std::string& value) {
    if (!config_.empty()) config_ += ", ";
    config_ += Quote(key) + ": " + value;
  }
  void Sep() {
    char* need = stack_.empty() ? &root_comma_ : &stack_.back();
    if (*need != 0) results_ += ", ";
    *need = 1;
  }
  void Add(const char* key, const std::string& value) {
    Sep();
    if (key != nullptr) results_ += Quote(key) + ": ";
    results_ += value;
  }
  void Open(const char* key, char bracket) {
    Sep();
    if (key != nullptr) results_ += Quote(key) + ": ";
    results_ += bracket;
    stack_.push_back(0);
  }
  void Close(char bracket) {
    if (!stack_.empty()) stack_.pop_back();
    results_ += bracket;
  }

  std::string bench_;
  std::string config_;
  std::string results_;
  std::vector<char> stack_;  // Need-comma flag per open scope.
  char root_comma_ = 0;
};

inline std::string MakeKey(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%012llu",
           static_cast<unsigned long long>(i));
  return buf;
}

// A key guaranteed absent but inside the key range (so fence pointers do
// not short-circuit the lookup; only Bloom filters can).
inline std::string MakeMissingKey(uint64_t i) { return MakeKey(i) + "x"; }

// Loads num_keys unique keys (the paper's worst-case update pattern:
// uniformly random insert order, no early duplicate elimination).
inline TestDb Fill(const FillSpec& spec) {
  TestDb t;
  t.base_env = NewMemEnv();
  t.stats = std::make_unique<IoStats>();
  t.env = std::make_unique<CountingEnv>(t.base_env.get(), t.stats.get(),
                                        kPageSize);
  if (spec.block_cache_bytes > 0) {
    t.cache = std::make_unique<BlockCache>(spec.block_cache_bytes);
  }
  t.num_keys = spec.num_keys;
  t.value_size = spec.value_size;

  DbOptions options;
  options.env = t.env.get();
  options.merge_policy = spec.policy;
  options.size_ratio = spec.size_ratio;
  options.buffer_size_bytes = spec.buffer_bytes;
  options.bits_per_entry = spec.bits_per_entry;
  options.page_size = kPageSize;
  options.block_cache = t.cache.get();
  options.expected_entries = spec.num_keys;
  options.enable_metrics = spec.enable_metrics;
  if (spec.monkey_filters) options.fpr_policy = monkey::NewMonkeyFprPolicy();

  Status s = DB::Open(options, "/db", &t.db);
  if (!s.ok()) {
    fprintf(stderr, "Open failed: %s\n", s.ToString().c_str());
    abort();
  }

  // Insert keys in a pseudo-random order (uniformly distributed across the
  // key space, Sec. 5 default setup).
  WriteOptions wo;
  Random rng(20170514);  // SIGMOD'17 :)
  const std::string value(spec.value_size, 'v');
  // Random permutation via a multiplicative step co-prime with num_keys.
  uint64_t step = 0;
  do {
    step = 1 + rng.Uniform(spec.num_keys - 1);
  } while (std::gcd<uint64_t, uint64_t>(step, spec.num_keys) != 1);
  uint64_t pos = rng.Uniform(spec.num_keys);
  t.insertion_order.reserve(spec.num_keys);
  for (int i = 0; i < spec.num_keys; i++) {
    pos = (pos + step) % spec.num_keys;
    t.insertion_order.push_back(pos);
    const std::string key = MakeKey(pos);
    s = t.db->Put(wo, key, value);
    if (!s.ok()) {
      fprintf(stderr, "Put failed: %s\n", s.ToString().c_str());
      abort();
    }
  }
  s = t.db->Flush();
  if (!s.ok()) abort();
  return t;
}

// --- Real-filesystem I/O-backend harness (--io-backend flag) -------------
//
// The figure benches run on MemEnv / LatencyEnv so their I/O counts are
// device-independent; the io-backend sections instead open a DB on a real
// filesystem through the selected backend (PosixEnv or UringEnv), still
// wrapped in CountingEnv so syscalls per operation stay observable:
// CountingEnv charges a batched submission as ONE read_call, so
// read_calls/op is the syscall-collapse the ring delivers.

// Strips --io-backend=posix|uring from argv and returns the requested
// backend name ("posix" when absent).
inline std::string ConsumeIoBackendFlag(int* argc, char** argv) {
  std::string backend = "posix";
  int out = 1;
  for (int i = 1; i < *argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind("--io-backend=", 0) == 0) {
      backend = arg.substr(strlen("--io-backend="));
      if (backend != "posix" && backend != "uring") {
        fprintf(stderr, "unknown --io-backend=%s (want posix|uring)\n",
                backend.c_str());
        abort();
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return backend;
}

struct IoBackendDb {
  std::string requested;  // What the flag asked for.
  std::string actual;     // What we got after any fallback.
  std::string dir;
  std::unique_ptr<Env> backend;
  UringEnv* uring = nullptr;  // Non-null iff actual == "uring".
  std::unique_ptr<IoStats> stats;
  std::unique_ptr<CountingEnv> env;
  std::unique_ptr<BlockCache> cache;
  std::unique_ptr<DB> db;
  int num_keys = 0;
};

// Opens and fills a DB under `dir` on the real filesystem through the
// requested backend, falling back to posix (with a note on stderr) when
// io_uring is unavailable.
inline IoBackendDb OpenIoBackendDb(const std::string& requested,
                                   const std::string& dir,
                                   const FillSpec& spec) {
  IoBackendDb t;
  t.requested = requested;
  t.dir = dir;
  t.num_keys = spec.num_keys;
  if (requested == "uring") {
    Status probe;
    std::unique_ptr<UringEnv> uring = NewUringEnv(UringEnvOptions{}, &probe);
    if (uring != nullptr) {
      t.uring = uring.get();
      t.backend = std::move(uring);
      t.actual = "uring";
    } else {
      fprintf(stderr, "io-backend=uring unavailable (%s); using posix\n",
              probe.ToString().c_str());
    }
  }
  if (t.backend == nullptr) {
    t.backend = NewPosixEnv(EnvOptions{});
    t.actual = "posix";
  }
  t.stats = std::make_unique<IoStats>();
  t.env = std::make_unique<CountingEnv>(t.backend.get(), t.stats.get(),
                                        kPageSize);
  if (spec.block_cache_bytes > 0) {
    t.cache = std::make_unique<BlockCache>(spec.block_cache_bytes);
  }

  DbOptions options;
  options.env = t.env.get();
  options.merge_policy = spec.policy;
  options.size_ratio = spec.size_ratio;
  options.buffer_size_bytes = spec.buffer_bytes;
  options.bits_per_entry = spec.bits_per_entry;
  options.page_size = kPageSize;
  options.block_cache = t.cache.get();
  options.expected_entries = spec.num_keys;
  if (spec.monkey_filters) options.fpr_policy = monkey::NewMonkeyFprPolicy();

  Status s = DB::Open(options, dir, &t.db);
  if (!s.ok()) {
    fprintf(stderr, "Open(%s) failed: %s\n", dir.c_str(),
            s.ToString().c_str());
    abort();
  }
  WriteOptions wo;
  Random rng(20170514);
  const std::string value(spec.value_size, 'v');
  uint64_t step = 0;
  do {
    step = 1 + rng.Uniform(spec.num_keys - 1);
  } while (std::gcd<uint64_t, uint64_t>(step, spec.num_keys) != 1);
  uint64_t pos = rng.Uniform(spec.num_keys);
  for (int i = 0; i < spec.num_keys; i++) {
    pos = (pos + step) % spec.num_keys;
    const std::string key = MakeKey(pos);
    if (!t.db->Put(wo, key, value).ok()) abort();
  }
  if (!t.db->Flush().ok()) abort();
  return t;
}

// Closes the DB and removes its on-disk files (the bench owns `dir`).
inline void DestroyIoBackendDb(IoBackendDb* t) {
  t->db.reset();
  std::vector<std::string> children;
  if (t->backend->GetChildren(t->dir, &children).ok()) {
    for (const std::string& child : children) {
      t->backend->RemoveFile(t->dir + "/" + child).ok();
    }
  }
  ::rmdir(t->dir.c_str());
  t->env.reset();
  t->uring = nullptr;
  t->backend.reset();
}

struct LookupResult {
  double ios_per_lookup = 0;
  double simulated_ms_per_lookup = 0;  // On the paper's HDD (10 ms/seek).
};

// Zero-result point lookups uniformly distributed across the key space
// (the paper's default query workload).
inline LookupResult MeasureZeroResultLookups(TestDb* t, int lookups,
                                             uint64_t seed = 4242) {
  ReadOptions ro;
  Random rng(seed);
  std::string value;
  const auto before = t->stats->Snapshot();
  for (int i = 0; i < lookups; i++) {
    const std::string missing_key = MakeMissingKey(rng.Uniform(t->num_keys));
    t->db->Get(ro, missing_key, &value).ok();
  }
  const auto delta = t->stats->Snapshot() - before;
  LookupResult r;
  r.ios_per_lookup = static_cast<double>(delta.read_ios) / lookups;
  r.simulated_ms_per_lookup =
      DeviceModel::Hdd().SimulatedSeconds({delta.read_ios, 0, 0, 0, 0}) /
      lookups * 1e3;
  return r;
}

// Existing-key lookups with the paper's temporal-locality coefficient c
// (Fig. 11D): rank 0 = most recently inserted key.
inline LookupResult MeasureNonZeroResultLookups(TestDb* t, int lookups,
                                                double locality_c,
                                                uint64_t seed = 77) {
  ReadOptions ro;
  Random rng(seed);
  TemporalLocalityGenerator gen(locality_c, t->num_keys);
  std::string value;
  const auto before = t->stats->Snapshot();
  for (int i = 0; i < lookups; i++) {
    // Rank 0 = most recently inserted: walk the recorded insertion order
    // from the back.
    const uint64_t rank = gen.NextRank(&rng);
    const uint64_t key_index =
        t->insertion_order[t->num_keys - 1 - rank];
    const std::string key = MakeKey(key_index);
    Status s = t->db->Get(ro, key, &value);
    if (!s.ok()) {
      fprintf(stderr, "lookup of existing key failed\n");
      abort();
    }
  }
  const auto delta = t->stats->Snapshot() - before;
  LookupResult r;
  r.ios_per_lookup = static_cast<double>(delta.read_ios) / lookups;
  r.simulated_ms_per_lookup =
      DeviceModel::Hdd().SimulatedSeconds({delta.read_ios, 0, 0, 0, 0}) /
      lookups * 1e3;
  return r;
}

}  // namespace bench
}  // namespace monkeydb

#endif  // MONKEYDB_BENCH_HARNESS_H_
