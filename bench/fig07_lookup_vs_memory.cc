// Figure 7: Monkey dominates the state of the art in lookup cost R for all
// values of M_filters.
//
// Reproduces the paper's configuration: N = 2^35 entries, E = 16 bytes,
// T = 4, buffer 2 MB, M_filters swept from 0 to 35 GB; prints R for the
// uniform baseline (Eq. 26) and Monkey (Eqs. 7/8), for both policies.

#include <cstdio>

#include "monkey/cost_model.h"

using namespace monkeydb;
using namespace monkeydb::monkey;

int main() {
  DesignPoint d;
  d.size_ratio = 4.0;
  d.num_entries = 34359738368.0;  // 2^35.
  d.entry_size_bits = 16 * 8;
  d.buffer_bits = 2.0 * (1 << 20) * 8;
  d.entries_per_page = 4096.0 * 8 / d.entry_size_bits;

  printf("Figure 7: zero-result lookup cost R vs filter memory "
         "(N=2^35, E=16B, T=4, buffer=2MB)\n");
  printf("M_threshold = %.2f GB\n\n",
         MemoryThreshold(d) / 8.0 / (1 << 30));

  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kTiering}) {
    d.policy = policy;
    printf("--- %s ---\n",
           policy == MergePolicy::kLeveling ? "leveling" : "tiering");
    printf("%12s %12s %14s %14s %6s\n", "Mf (GB)", "bits/entry",
           "R state-of-art", "R Monkey", "L_unf");
    for (double gb : {0.0, 0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0,
                      25.0, 30.0, 35.0}) {
      d.filter_bits = gb * (1 << 30) * 8.0;
      printf("%12.1f %12.3f %14.5f %14.5f %6d\n", gb,
             d.filter_bits / d.num_entries,
             BaselineZeroResultLookupCost(d), ZeroResultLookupCost(d),
             UnfilteredLevels(d));
    }
    printf("\n");
  }
  return 0;
}
