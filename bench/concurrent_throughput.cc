// Concurrent throughput: does the read path actually scale once it no
// longer takes the big lock?
//
// Compares two regimes over the same data and the same simulated device
// (LatencyEnv: every data-page read costs fixed wall-clock time, making
// lookups I/O-bound like on real storage):
//   serialized  — every operation wrapped in one external mutex, emulating
//                 the pre-decoupling engine that held mu_ across filter
//                 probes and block reads;
//   concurrent  — the lock-free read path (and, for the mixed workload,
//                 background_compaction=true so flushes/merges run off the
//                 writer thread).
// Reports aggregate lookup throughput at 1/2/4/8 reader threads for a
// read-only and a mixed (1 writer + N readers) workload, and writes
// BENCH_concurrent.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "io/latency_env.h"

namespace monkeydb {
namespace bench {
namespace {

constexpr int kNumKeys = 20000;
constexpr int kReadsPerThread = 1200;
constexpr auto kReadLatency = std::chrono::microseconds(50);
const int kThreadCounts[] = {1, 2, 4, 8};

struct LatencyDb {
  std::unique_ptr<Env> base_env;
  std::unique_ptr<LatencyEnv> env;
  std::unique_ptr<DB> db;
};

LatencyDb BuildDb(bool background) {
  LatencyDb t;
  t.base_env = NewMemEnv();
  t.env = std::make_unique<LatencyEnv>(t.base_env.get(), kReadLatency);

  DbOptions options;
  options.env = t.env.get();
  options.merge_policy = MergePolicy::kLeveling;
  options.size_ratio = 4.0;
  options.buffer_size_bytes = 64 << 10;
  options.bits_per_entry = 5.0;
  options.page_size = kPageSize;
  options.expected_entries = kNumKeys;
  options.background_compaction = background;

  Status s = DB::Open(options, "/db", &t.db);
  if (!s.ok()) {
    fprintf(stderr, "Open failed: %s\n", s.ToString().c_str());
    abort();
  }
  WriteOptions wo;
  const std::string value(48, 'v');
  for (int i = 0; i < kNumKeys; i++) {
    s = t.db->Put(wo, MakeKey(i), value);
    if (!s.ok()) abort();
  }
  if (!t.db->Flush().ok()) abort();
  return t;
}

// Aggregate existing-key lookups/sec with `threads` reader threads. When
// serialize is set, every Get runs under one shared mutex (the old engine's
// behavior); otherwise Gets run truly concurrently.
double MeasureReadThroughput(DB* db, int threads, bool serialize,
                             std::mutex* big_lock,
                             std::atomic<int>* errors) {
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      Random rng(1000 + t);
      ReadOptions ro;
      std::string value;
      for (int i = 0; i < kReadsPerThread; i++) {
        const std::string key = MakeKey(rng.Uniform(kNumKeys));
        Status s;
        if (serialize) {
          std::lock_guard<std::mutex> guard(*big_lock);
          s = db->Get(ro, key, &value);
        } else {
          s = db->Get(ro, key, &value);
        }
        if (!s.ok()) errors->fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(threads) * kReadsPerThread / secs;
}

// Same measurement with one churn writer running alongside the readers.
// The serialized arm routes the writer through the same mutex, so inline
// flushes/merges stall every reader — exactly what the seed engine did.
double MeasureMixedThroughput(DB* db, int threads, bool serialize,
                              std::mutex* big_lock,
                              std::atomic<int>* errors) {
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    WriteOptions wo;
    const std::string value(32, 'c');
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string key = "churn" + std::to_string(i++);
      Status s;
      if (serialize) {
        std::lock_guard<std::mutex> guard(*big_lock);
        s = db->Put(wo, key, value);
      } else {
        s = db->Put(wo, key, value);
      }
      if (!s.ok()) {
        errors->fetch_add(1);
        break;
      }
    }
  });
  const double ops_per_sec =
      MeasureReadThroughput(db, threads, serialize, big_lock, errors);
  stop.store(true);
  writer.join();
  return ops_per_sec;
}

}  // namespace
}  // namespace bench
}  // namespace monkeydb

int main() {
  using namespace monkeydb;
  using namespace monkeydb::bench;

  printf("Concurrent throughput: serialized (one big lock) vs decoupled\n");
  printf("read path, %d keys, %lld us simulated read latency\n\n", kNumKeys,
         static_cast<long long>(kReadLatency.count()));

  std::atomic<int> errors{0};
  std::mutex big_lock;

  // Read-only: the same synchronous DB, with and without the external
  // serialization — isolates the read-path change.
  LatencyDb read_db = BuildDb(/*background=*/false);
  struct Row {
    int threads;
    double serialized, concurrent;
  };
  std::vector<Row> read_rows, mixed_rows;

  printf("%-22s %8s %14s %14s %9s\n", "workload", "threads", "serialized",
         "concurrent", "speedup");
  for (int threads : kThreadCounts) {
    Row row{threads, 0, 0};
    row.serialized = MeasureReadThroughput(read_db.db.get(), threads,
                                           /*serialize=*/true, &big_lock,
                                           &errors);
    row.concurrent = MeasureReadThroughput(read_db.db.get(), threads,
                                           /*serialize=*/false, &big_lock,
                                           &errors);
    read_rows.push_back(row);
    printf("%-22s %8d %12.0f/s %12.0f/s %8.2fx\n", "read-only", threads,
           row.serialized, row.concurrent, row.concurrent / row.serialized);
  }

  // Mixed: serialized arm = synchronous DB behind the big lock (writers
  // compact inline while readers wait); concurrent arm = background
  // compaction, no external lock.
  LatencyDb mixed_serialized = BuildDb(/*background=*/false);
  LatencyDb mixed_concurrent = BuildDb(/*background=*/true);
  for (int threads : kThreadCounts) {
    Row row{threads, 0, 0};
    row.serialized =
        MeasureMixedThroughput(mixed_serialized.db.get(), threads,
                               /*serialize=*/true, &big_lock, &errors);
    row.concurrent =
        MeasureMixedThroughput(mixed_concurrent.db.get(), threads,
                               /*serialize=*/false, &big_lock, &errors);
    mixed_rows.push_back(row);
    printf("%-22s %8d %12.0f/s %12.0f/s %8.2fx\n", "mixed (1 writer)",
           threads, row.serialized, row.concurrent,
           row.concurrent / row.serialized);
  }

  if (errors.load() != 0) {
    fprintf(stderr, "\n%d operation(s) failed\n", errors.load());
    return 1;
  }

  FILE* json = fopen("BENCH_concurrent.json", "w");
  if (json != nullptr) {
    fprintf(json, "{\n");
    fprintf(json, "  \"num_keys\": %d,\n", kNumKeys);
    fprintf(json, "  \"read_latency_us\": %lld,\n",
            static_cast<long long>(kReadLatency.count()));
    fprintf(json, "  \"reads_per_thread\": %d,\n", kReadsPerThread);
    auto dump = [&](const char* name, const std::vector<Row>& rows,
                    bool last) {
      fprintf(json, "  \"%s\": [\n", name);
      for (size_t i = 0; i < rows.size(); i++) {
        fprintf(json,
                "    {\"threads\": %d, \"serialized_ops_per_sec\": %.1f, "
                "\"concurrent_ops_per_sec\": %.1f, \"speedup\": %.3f}%s\n",
                rows[i].threads, rows[i].serialized, rows[i].concurrent,
                rows[i].concurrent / rows[i].serialized,
                i + 1 < rows.size() ? "," : "");
      }
      fprintf(json, "  ]%s\n", last ? "" : ",");
    };
    dump("read_only", read_rows, false);
    dump("mixed", mixed_rows, true);
    fprintf(json, "}\n");
    fclose(json);
    printf("\nwrote BENCH_concurrent.json\n");
  }
  return 0;
}
