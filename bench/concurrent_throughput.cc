// Concurrent throughput: does the read path actually scale once it no
// longer takes the big lock?
//
// Compares two regimes over the same data and the same simulated device
// (LatencyEnv: every data-page read costs fixed wall-clock time, making
// lookups I/O-bound like on real storage):
//   serialized  — every operation wrapped in one external mutex, emulating
//                 the pre-decoupling engine that held mu_ across filter
//                 probes and block reads;
//   concurrent  — the lock-free read path (and, for the mixed workload,
//                 background_compaction=true so flushes/merges run off the
//                 writer thread).
// Reports aggregate lookup throughput at 1/2/4/8 reader threads for a
// read-only and a mixed (1 writer + N readers) workload, and writes
// BENCH_concurrent.json.
//
// A third section measures the write path: 1/2/4/8 writer threads doing
// Puts over disjoint key ranges, with and without sync, against a device
// where every WAL append (and fsync) costs wall-clock time. The serialized
// arm wraps each Put in one external mutex — every write commits alone,
// like the pre-group-commit engine — while the concurrent arm lets the
// writer queue coalesce pending batches into one append (and one fsync)
// per group. Results go to BENCH_write.json.
//
// A fourth section opens the same workload on a real filesystem through
// the backend chosen by --io-backend={posix,uring} and measures concurrent
// MultiGet(16) throughput at 1/2/4/8 threads, with per-batch latency
// percentiles and syscalls per lookup from the counting env. Results go to
// BENCH_io_concurrent.json.
//
// A fifth section isolates the memtable: plain MemEnv (no simulated device
// latency), no sync, a buffer large enough that nothing flushes, and
// 16-op batches of ~100 B values — so the WAL append is trivial and the
// serialized portion of each commit is dominated by memtable insertion.
// Arms: allow_concurrent_memtable_write off (leader applies every batch
// serially) vs on (followers insert their own batches in parallel through
// the lock-free skiplist + ConcurrentArena). Reports throughput and
// per-batch latency percentiles at 1/2/4/8 writer threads plus the arena
// backing/contention counters, and writes BENCH_memtable.json.
//
// Pass --smoke for a tiny CI-sized run of all sections.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "io/latency_env.h"
#include "obs/histogram.h"

namespace monkeydb {
namespace bench {
namespace {

constexpr auto kReadLatency = std::chrono::microseconds(50);
// Device model for the write section: each WAL append costs 20us of
// wall-clock time and each fsync 200us, so commit cost — not CPU — is what
// the write path amortizes.
constexpr auto kWriteLatency = std::chrono::microseconds(20);
constexpr auto kSyncLatency = std::chrono::microseconds(200);
const int kThreadCounts[] = {1, 2, 4, 8};

// Workload sizes; --smoke shrinks them for CI.
int g_num_keys = 20000;
int g_reads_per_thread = 1200;
int g_writes_per_thread = 600;
int g_io_num_keys = 20000;
int g_io_batches_per_thread = 150;
int g_memtable_batches_per_thread = 2000;
constexpr int kIoMultiGetBatch = 16;
// --json: build every DB with enable_metrics and dump the read-path and
// mixed-path histogram snapshots to BENCH_obs.json at exit.
bool g_emit_obs = false;

struct LatencyDb {
  std::unique_ptr<Env> base_env;
  std::unique_ptr<LatencyEnv> env;
  std::unique_ptr<DB> db;
};

LatencyDb BuildDb(bool background) {
  LatencyDb t;
  t.base_env = NewMemEnv();
  t.env = std::make_unique<LatencyEnv>(t.base_env.get(), kReadLatency);

  DbOptions options;
  options.env = t.env.get();
  options.merge_policy = MergePolicy::kLeveling;
  options.size_ratio = 4.0;
  options.buffer_size_bytes = 64 << 10;
  options.bits_per_entry = 5.0;
  options.page_size = kPageSize;
  options.expected_entries = g_num_keys;
  options.background_compaction = background;
  options.enable_metrics = g_emit_obs;

  Status s = DB::Open(options, "/db", &t.db);
  if (!s.ok()) {
    fprintf(stderr, "Open failed: %s\n", s.ToString().c_str());
    abort();
  }
  WriteOptions wo;
  const std::string value(48, 'v');
  for (int i = 0; i < g_num_keys; i++) {
    const std::string key = MakeKey(i);
    s = t.db->Put(wo, key, value);
    if (!s.ok()) abort();
  }
  if (!t.db->Flush().ok()) abort();
  return t;
}

// Aggregate existing-key lookups/sec with `threads` reader threads. When
// serialize is set, every Get runs under one shared mutex (the old engine's
// behavior); otherwise Gets run truly concurrently.
double MeasureReadThroughput(DB* db, int threads, bool serialize,
                             std::mutex* big_lock,
                             std::atomic<int>* errors) {
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      Random rng(1000 + t);
      ReadOptions ro;
      std::string value;
      for (int i = 0; i < g_reads_per_thread; i++) {
        const std::string key = MakeKey(rng.Uniform(g_num_keys));
        Status s;
        if (serialize) {
          std::lock_guard<std::mutex> guard(*big_lock);
          s = db->Get(ro, key, &value);
        } else {
          s = db->Get(ro, key, &value);
        }
        if (!s.ok()) errors->fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(threads) * g_reads_per_thread / secs;
}

// Same measurement with one churn writer running alongside the readers.
// The serialized arm routes the writer through the same mutex, so inline
// flushes/merges stall every reader — exactly what the seed engine did.
double MeasureMixedThroughput(DB* db, int threads, bool serialize,
                              std::mutex* big_lock,
                              std::atomic<int>* errors) {
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    WriteOptions wo;
    const std::string value(32, 'c');
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string key = "churn" + std::to_string(i++);
      Status s;
      if (serialize) {
        std::lock_guard<std::mutex> guard(*big_lock);
        s = db->Put(wo, key, value);
      } else {
        s = db->Put(wo, key, value);
      }
      if (!s.ok()) {
        errors->fetch_add(1);
        break;
      }
    }
  });
  const double ops_per_sec =
      MeasureReadThroughput(db, threads, serialize, big_lock, errors);
  stop.store(true);
  writer.join();
  return ops_per_sec;
}

// Empty DB on a device where WAL appends and fsyncs cost wall-clock time.
// Background compaction keeps flushes/merges off the writer threads, so the
// measurement isolates the commit path.
LatencyDb BuildWriteDb() {
  LatencyDb t;
  t.base_env = NewMemEnv();
  t.env = std::make_unique<LatencyEnv>(t.base_env.get(),
                                       std::chrono::microseconds(0),
                                       kWriteLatency, kSyncLatency);

  DbOptions options;
  options.env = t.env.get();
  options.merge_policy = MergePolicy::kLeveling;
  options.size_ratio = 4.0;
  options.buffer_size_bytes = 64 << 10;
  options.bits_per_entry = 5.0;
  options.page_size = kPageSize;
  options.expected_entries = g_num_keys;
  options.background_compaction = true;
  options.enable_metrics = g_emit_obs;

  Status s = DB::Open(options, "/db", &t.db);
  if (!s.ok()) {
    fprintf(stderr, "Open failed: %s\n", s.ToString().c_str());
    abort();
  }
  return t;
}

// Aggregate Puts/sec with `threads` writer threads over disjoint key
// ranges. The serialized arm holds one external mutex across each Put, so
// every write pays the full append(+fsync) alone; the concurrent arm lets
// the group-commit leader batch whatever queued behind it. `round` keeps
// key ranges distinct across measurements on the same DB.
double MeasureWriteThroughput(DB* db, int threads, bool serialize, bool sync,
                              std::mutex* big_lock, std::atomic<int>* errors,
                              int round) {
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      WriteOptions wo;
      wo.sync = sync;
      const std::string value(48, 'w');
      const std::string prefix =
          "w" + std::to_string(round) + "_" + std::to_string(t) + "_";
      for (int i = 0; i < g_writes_per_thread; i++) {
        const std::string key = prefix + std::to_string(i);
        Status s;
        if (serialize) {
          std::lock_guard<std::mutex> guard(*big_lock);
          s = db->Put(wo, key, value);
        } else {
          s = db->Put(wo, key, value);
        }
        if (!s.ok()) {
          errors->fetch_add(1);
          break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(threads) * g_writes_per_thread / secs;
}

// --- Section 5: concurrent memtable write scaling -------------------------

struct MemtableDb {
  std::unique_ptr<Env> env;
  std::unique_ptr<DB> db;
};

// Plain MemEnv, huge buffer (nothing flushes mid-measurement), no device
// latency: the only contended resource is the memtable write path itself.
MemtableDb BuildMemtableDb(bool concurrent) {
  MemtableDb t;
  t.env = NewMemEnv();

  DbOptions options;
  options.env = t.env.get();
  options.merge_policy = MergePolicy::kLeveling;
  options.size_ratio = 4.0;
  options.buffer_size_bytes = 256u << 20;
  options.bits_per_entry = 5.0;
  options.page_size = kPageSize;
  options.background_compaction = true;
  options.allow_concurrent_memtable_write = concurrent;

  Status s = DB::Open(options, "/db", &t.db);
  if (!s.ok()) {
    fprintf(stderr, "Open failed: %s\n", s.ToString().c_str());
    abort();
  }
  return t;
}

struct MemtableArm {
  double ops_per_sec = 0;
  HistogramData batch_latency_ns;
};

// Aggregate single-op throughput (16-op batches) with `threads` writer
// threads over disjoint key ranges; per-batch commit latency lands in one
// shared lock-free histogram. Batches are pre-built before the clock
// starts: with zero think time every writer is back inside Write() the
// moment its previous commit finishes, so the queue stays populated and
// write groups actually form — the regime the parallel apply path exists
// for. `round` keeps key ranges distinct across measurements on the same
// DB.
MemtableArm MeasureMemtableWrites(DB* db, int threads,
                                  std::atomic<int>* errors, int round) {
  constexpr int kOpsPerBatch = 16;
  const std::string value(100, 'm');
  std::vector<std::vector<WriteBatch>> prebuilt(threads);
  for (int t = 0; t < threads; t++) {
    const std::string prefix =
        "m" + std::to_string(round) + "_" + std::to_string(t) + "_";
    prebuilt[t].resize(g_memtable_batches_per_thread);
    for (int b = 0; b < g_memtable_batches_per_thread; b++) {
      for (int i = 0; i < kOpsPerBatch; i++) {
        const std::string key = prefix + std::to_string(b * kOpsPerBatch + i);
        prebuilt[t][b].Put(key, value);
      }
    }
  }

  Histogram hist;
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      WriteOptions wo;
      for (const WriteBatch& batch : prebuilt[t]) {
        const auto batch_start = std::chrono::steady_clock::now();
        const Status s = db->Write(wo, batch);
        hist.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - batch_start)
                .count()));
        if (!s.ok()) {
          errors->fetch_add(1);
          break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  MemtableArm arm;
  arm.ops_per_sec = static_cast<double>(threads) *
                    g_memtable_batches_per_thread * kOpsPerBatch / secs;
  HistogramMerger merger;
  merger.Add(hist);
  arm.batch_latency_ns = merger.Snapshot();
  return arm;
}

// --- Section 4: concurrent MultiGet on a real filesystem backend ---------

struct IoConcurrentRow {
  int threads = 0;
  double lookups_per_sec = 0;
  double syscalls_per_lookup = 0;
  double batched_per_syscall = 0;
  HistogramData batch_latency_us;
};

// `threads` threads each issue g_io_batches_per_thread MultiGet(16)
// batches of existing keys; per-batch latency lands in one shared
// (lock-free) histogram and syscalls come from the stats delta.
IoConcurrentRow MeasureIoConcurrent(IoBackendDb* db, int threads) {
  Histogram hist;
  std::atomic<int> errors{0};
  const auto before = db->stats->Snapshot();
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      Random rng(7000 + 131 * threads + t);
      ReadOptions ro;
      for (int b = 0; b < g_io_batches_per_thread; b++) {
        std::vector<std::string> key_storage;
        key_storage.reserve(kIoMultiGetBatch);
        for (int i = 0; i < kIoMultiGetBatch; i++) {
          key_storage.push_back(MakeKey(rng.Uniform(g_io_num_keys)));
        }
        std::vector<Slice> keys(key_storage.begin(), key_storage.end());
        std::vector<std::string> values;
        const auto batch_start = std::chrono::steady_clock::now();
        for (const Status& s : db->db->MultiGet(ro, keys, &values)) {
          if (!s.ok()) errors.fetch_add(1);
        }
        hist.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - batch_start)
                .count()));
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (errors.load() != 0) {
    fprintf(stderr, "%d MultiGet lookup(s) failed\n", errors.load());
    abort();
  }
  const auto delta = db->stats->Snapshot() - before;
  const double lookups = static_cast<double>(threads) *
                         g_io_batches_per_thread * kIoMultiGetBatch;

  IoConcurrentRow row;
  row.threads = threads;
  row.lookups_per_sec = lookups / secs;
  row.syscalls_per_lookup = static_cast<double>(delta.read_calls) / lookups;
  row.batched_per_syscall =
      delta.batch_reads == 0
          ? 0.0
          : static_cast<double>(delta.batch_read_requests) /
                static_cast<double>(delta.batch_reads);
  HistogramMerger merger;
  merger.Add(hist);
  row.batch_latency_us = merger.Snapshot();
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace monkeydb

int main(int argc, char** argv) {
  using namespace monkeydb;
  using namespace monkeydb::bench;

  g_emit_obs = ConsumeJsonFlag(&argc, argv);
  const std::string io_backend = ConsumeIoBackendFlag(&argc, argv);
  for (int i = 1; i < argc; i++) {
    if (std::string(argv[i]) == "--smoke") {
      g_num_keys = 2000;
      g_reads_per_thread = 120;
      g_writes_per_thread = 60;
      g_io_num_keys = 5000;
      g_io_batches_per_thread = 25;
      g_memtable_batches_per_thread = 100;
    }
  }

  printf("Concurrent throughput: serialized (one big lock) vs decoupled\n");
  printf("read path, %d keys, %lld us simulated read latency\n\n",
         g_num_keys, static_cast<long long>(kReadLatency.count()));

  std::atomic<int> errors{0};
  std::mutex big_lock;

  // Read-only: the same synchronous DB, with and without the external
  // serialization — isolates the read-path change.
  LatencyDb read_db = BuildDb(/*background=*/false);
  struct Row {
    int threads;
    double serialized, concurrent;
  };
  std::vector<Row> read_rows, mixed_rows;

  printf("%-22s %8s %14s %14s %9s\n", "workload", "threads", "serialized",
         "concurrent", "speedup");
  for (int threads : kThreadCounts) {
    Row row{threads, 0, 0};
    row.serialized = MeasureReadThroughput(read_db.db.get(), threads,
                                           /*serialize=*/true, &big_lock,
                                           &errors);
    row.concurrent = MeasureReadThroughput(read_db.db.get(), threads,
                                           /*serialize=*/false, &big_lock,
                                           &errors);
    read_rows.push_back(row);
    printf("%-22s %8d %12.0f/s %12.0f/s %8.2fx\n", "read-only", threads,
           row.serialized, row.concurrent, row.concurrent / row.serialized);
  }

  // Mixed: serialized arm = synchronous DB behind the big lock (writers
  // compact inline while readers wait); concurrent arm = background
  // compaction, no external lock.
  LatencyDb mixed_serialized = BuildDb(/*background=*/false);
  LatencyDb mixed_concurrent = BuildDb(/*background=*/true);
  for (int threads : kThreadCounts) {
    Row row{threads, 0, 0};
    row.serialized =
        MeasureMixedThroughput(mixed_serialized.db.get(), threads,
                               /*serialize=*/true, &big_lock, &errors);
    row.concurrent =
        MeasureMixedThroughput(mixed_concurrent.db.get(), threads,
                               /*serialize=*/false, &big_lock, &errors);
    mixed_rows.push_back(row);
    printf("%-22s %8d %12.0f/s %12.0f/s %8.2fx\n", "mixed (1 writer)",
           threads, row.serialized, row.concurrent,
           row.concurrent / row.serialized);
  }

  // Write scaling: group commit vs one-writer-at-a-time, with and without
  // per-commit fsync. Each (arm, sync-mode) pair gets its own DB so the
  // arms never share LSM state.
  printf("\nWrite path: %lld us/WAL append, %lld us/fsync\n",
         static_cast<long long>(kWriteLatency.count()),
         static_cast<long long>(kSyncLatency.count()));
  std::vector<Row> write_nosync_rows, write_sync_rows;
  int round = 0;
  for (bool sync : {false, true}) {
    LatencyDb serialized_db = BuildWriteDb();
    LatencyDb concurrent_db = BuildWriteDb();
    std::vector<Row>& rows = sync ? write_sync_rows : write_nosync_rows;
    for (int threads : kThreadCounts) {
      Row row{threads, 0, 0};
      row.serialized = MeasureWriteThroughput(serialized_db.db.get(),
                                              threads, /*serialize=*/true,
                                              sync, &big_lock, &errors,
                                              round++);
      row.concurrent = MeasureWriteThroughput(concurrent_db.db.get(),
                                              threads, /*serialize=*/false,
                                              sync, &big_lock, &errors,
                                              round++);
      rows.push_back(row);
      printf("%-22s %8d %12.0f/s %12.0f/s %8.2fx\n",
             sync ? "write (sync)" : "write (no-sync)", threads,
             row.serialized, row.concurrent,
             row.concurrent / row.serialized);
    }
  }

  if (errors.load() != 0) {
    fprintf(stderr, "\n%d operation(s) failed\n", errors.load());
    return 1;
  }

  auto dump_rows = [](BenchJsonWriter* w, const char* name,
                      const std::vector<Row>& rows) {
    w->BeginArray(name);
    for (const Row& row : rows) {
      w->BeginObject();
      w->Field("threads", row.threads);
      w->Field("serialized_ops_per_sec", row.serialized);
      w->Field("concurrent_ops_per_sec", row.concurrent);
      w->Field("speedup", row.concurrent / row.serialized);
      w->EndObject();
    }
    w->EndArray();
  };

  {
    BenchJsonWriter w("concurrent_throughput");
    w.Config("num_keys", g_num_keys);
    w.Config("read_latency_us",
             static_cast<long long>(kReadLatency.count()));
    w.Config("reads_per_thread", g_reads_per_thread);
    dump_rows(&w, "read_only", read_rows);
    dump_rows(&w, "mixed", mixed_rows);
    printf("\n");
    w.WriteFile("BENCH_concurrent.json");
  }

  // Concurrent MultiGet on a real filesystem through the chosen backend.
  {
    printf("\nReal-filesystem concurrent MultiGet(%d), --io-backend=%s "
           "(%d keys, %d batches/thread):\n\n",
           kIoMultiGetBatch, io_backend.c_str(), g_io_num_keys,
           g_io_batches_per_thread);
    printf("%8s %14s %14s %12s %10s %10s\n", "threads", "lookups/sec",
           "syscalls/op", "reqs/batch", "p99 (us)", "p99.9 (us)");

    FillSpec io_spec;
    io_spec.num_keys = g_io_num_keys;
    io_spec.block_cache_bytes = 64 << 10;
    const std::string dir =
        "/tmp/monkeydb_bench_io_concurrent." +
        std::to_string(static_cast<long long>(getpid()));
    IoBackendDb io_db = OpenIoBackendDb(io_backend, dir, io_spec);

    std::vector<IoConcurrentRow> io_rows;
    for (int threads : kThreadCounts) {
      io_rows.push_back(MeasureIoConcurrent(&io_db, threads));
      const IoConcurrentRow& row = io_rows.back();
      printf("%8d %12.0f/s %14.2f %12.2f %10.0f %10.0f\n", row.threads,
             row.lookups_per_sec, row.syscalls_per_lookup,
             row.batched_per_syscall, row.batch_latency_us.p99,
             row.batch_latency_us.p999);
    }
    const std::string actual_backend = io_db.actual;
    DestroyIoBackendDb(&io_db);

    BenchJsonWriter w("concurrent_throughput");
    w.Config("requested_backend", io_backend);
    w.Config("backend", actual_backend);
    w.Config("num_keys", g_io_num_keys);
    w.Config("multiget_batch", kIoMultiGetBatch);
    w.Config("batches_per_thread", g_io_batches_per_thread);
    w.BeginArray("rows");
    for (const IoConcurrentRow& row : io_rows) {
      w.BeginObject();
      w.Field("threads", row.threads);
      w.Field("lookups_per_sec", row.lookups_per_sec);
      w.Field("syscalls_per_lookup", row.syscalls_per_lookup);
      w.Field("batched_per_syscall", row.batched_per_syscall);
      w.Histogram("batch_latency_us", row.batch_latency_us);
      w.EndObject();
    }
    w.EndArray();
    printf("\n");
    w.WriteFile("BENCH_io_concurrent.json");
  }

  // Memtable write scaling: serial vs parallel write-group application.
  {
    const unsigned hw_threads = std::thread::hardware_concurrency();
    printf("\nMemtable write scaling: 16-op batches, 100 B values, no sync,"
           "\nno flushes (serial apply vs concurrent skiplist inserts),"
           "\n%u hardware thread(s):\n\n", hw_threads);
    if (hw_threads < 8) {
      printf("NOTE: fewer hardware threads than the widest arm — parallel\n"
             "apply cannot overlap inserts here; expect speedup < 1 from\n"
             "the lock-free insert overhead alone. The >= 1.5x scaling\n"
             "target applies on >= 8-core hosts.\n\n");
    }
    printf("%8s %14s %14s %9s %12s %12s\n", "threads", "serial", "concurrent",
           "speedup", "ser p99(us)", "con p99(us)");

    struct MemtableRow {
      int threads;
      MemtableArm serial, concurrent;
    };
    MemtableDb serial_db = BuildMemtableDb(/*concurrent=*/false);
    MemtableDb concurrent_db = BuildMemtableDb(/*concurrent=*/true);
    std::vector<MemtableRow> memtable_rows;
    int memtable_round = 0;
    for (int threads : kThreadCounts) {
      MemtableRow row{threads, {}, {}};
      row.serial = MeasureMemtableWrites(serial_db.db.get(), threads,
                                         &errors, memtable_round++);
      row.concurrent = MeasureMemtableWrites(concurrent_db.db.get(), threads,
                                             &errors, memtable_round++);
      memtable_rows.push_back(row);
      printf("%8d %12.0f/s %12.0f/s %8.2fx %12.1f %12.1f\n", threads,
             row.serial.ops_per_sec, row.concurrent.ops_per_sec,
             row.concurrent.ops_per_sec / row.serial.ops_per_sec,
             row.serial.batch_latency_ns.p99 / 1000.0,
             row.concurrent.batch_latency_ns.p99 / 1000.0);
    }

    const DbStats cstats = concurrent_db.db->GetStats();
    printf("\narena backing: %s (%llu hugetlb / %llu thp / %llu plain "
           "blocks), %llu parallel groups (%llu batches), "
           "%llu arena cas retries, %llu skiplist cas retries\n",
           cstats.arena_backing.c_str(),
           static_cast<unsigned long long>(cstats.arena_hugetlb_blocks),
           static_cast<unsigned long long>(cstats.arena_thp_blocks),
           static_cast<unsigned long long>(cstats.arena_plain_blocks),
           static_cast<unsigned long long>(cstats.memtable_parallel_groups),
           static_cast<unsigned long long>(cstats.memtable_parallel_batches),
           static_cast<unsigned long long>(cstats.arena_cas_retries),
           static_cast<unsigned long long>(cstats.skiplist_cas_retries));

    BenchJsonWriter w("concurrent_throughput");
    w.Config("ops_per_batch", 16);
    w.Config("value_bytes", 100);
    w.Config("batches_per_thread", g_memtable_batches_per_thread);
    w.BeginObject("arena");
    w.Field("backing", cstats.arena_backing);
    w.Field("hugetlb_blocks", cstats.arena_hugetlb_blocks);
    w.Field("thp_blocks", cstats.arena_thp_blocks);
    w.Field("plain_blocks", cstats.arena_plain_blocks);
    w.Field("cas_retries", cstats.arena_cas_retries);
    w.Field("skiplist_cas_retries", cstats.skiplist_cas_retries);
    w.Field("parallel_groups", cstats.memtable_parallel_groups);
    w.Field("parallel_batches", cstats.memtable_parallel_batches);
    w.EndObject();
    w.BeginArray("rows");
    for (const MemtableRow& row : memtable_rows) {
      w.BeginObject();
      w.Field("threads", row.threads);
      w.Field("serial_ops_per_sec", row.serial.ops_per_sec);
      w.Field("concurrent_ops_per_sec", row.concurrent.ops_per_sec);
      w.Field("speedup",
              row.concurrent.ops_per_sec / row.serial.ops_per_sec);
      w.BeginObject("serial_batch_us");
      w.Field("p50", row.serial.batch_latency_ns.p50 / 1000.0);
      w.Field("p99", row.serial.batch_latency_ns.p99 / 1000.0);
      w.EndObject();
      w.BeginObject("concurrent_batch_us");
      w.Field("p50", row.concurrent.batch_latency_ns.p50 / 1000.0);
      w.Field("p99", row.concurrent.batch_latency_ns.p99 / 1000.0);
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
    w.WriteFile("BENCH_memtable.json");
  }

  {
    BenchJsonWriter w("concurrent_throughput");
    w.Config("write_latency_us",
             static_cast<long long>(kWriteLatency.count()));
    w.Config("sync_latency_us",
             static_cast<long long>(kSyncLatency.count()));
    w.Config("writes_per_thread", g_writes_per_thread);
    dump_rows(&w, "write_nosync", write_nosync_rows);
    dump_rows(&w, "write_sync", write_sync_rows);
    w.WriteFile("BENCH_write.json");
  }

  // Histogram snapshots from the instrumented DBs: the read-only DB saw
  // pure Get traffic, the concurrent mixed DB also saw flushes/merges and
  // (possibly) stalls, so both breakdowns are worth keeping.
  if (g_emit_obs) {
    BenchJsonWriter w("concurrent_throughput");
    w.RawField("read_only_db",
               read_db.db->DumpMetrics(DB::MetricsFormat::kJson));
    w.RawField("mixed_db",
               mixed_concurrent.db->DumpMetrics(DB::MetricsFormat::kJson));
    w.WriteFile("BENCH_obs.json");
  }
  return 0;
}
