// Ablation: WiscKey-style key-value separation (paper Sec. 6: compatible
// with Monkey, "but it would require adapting the cost models to account
// for (1) only merging keys, and (2) having to access the log during
// lookups").
//
// Adapted models used here:
//   W' = W * (key+handle bytes) / (entry bytes)   — merges move handles
//   V' = V + 1                                    — one log read per hit
//   R' = R                                        — zero-result unchanged
// The engine measurement checks all three effects.

#include <cstdio>

#include "harness.h"
#include "monkey/cost_model.h"

using namespace monkeydb;
using namespace monkeydb::bench;

namespace {

struct Measured {
  double write_per_put;
  double zero_lookup;
  double hit_lookup;
};

Measured Run(size_t threshold, int value_size) {
  auto base = NewMemEnv();
  IoStats stats;
  CountingEnv env(base.get(), &stats, kPageSize);
  DbOptions options;
  options.env = &env;
  options.merge_policy = MergePolicy::kLeveling;
  options.size_ratio = 2.0;
  options.buffer_size_bytes = 64 << 10;
  options.bits_per_entry = 8.0;
  options.value_separation_threshold = threshold;
  options.expected_entries = 30000;
  options.fpr_policy = monkey::NewMonkeyFprPolicy();
  std::unique_ptr<DB> db;
  if (!DB::Open(options, "/db", &db).ok()) abort();
  WriteOptions wo;
  const std::string value(value_size, 'v');
  for (int i = 0; i < 30000; i++) {
    char key[24];
    snprintf(key, sizeof(key), "user%012d", i);
    if (!db->Put(wo, key, value).ok()) abort();
  }
  db->Flush().ok();

  Measured m;
  m.write_per_put =
      static_cast<double>(stats.Snapshot().write_ios) / 30000;

  Random rng(6);
  std::string out;
  auto before = stats.Snapshot();
  for (int i = 0; i < 3000; i++) {
    char key[28];
    snprintf(key, sizeof(key), "user%012llux",
             static_cast<unsigned long long>(rng.Uniform(30000)));
    db->Get(ReadOptions(), key, &out).ok();
  }
  m.zero_lookup =
      static_cast<double>((stats.Snapshot() - before).read_ios) / 3000;

  before = stats.Snapshot();
  for (int i = 0; i < 3000; i++) {
    char key[24];
    snprintf(key, sizeof(key), "user%012llu",
             static_cast<unsigned long long>(rng.Uniform(30000)));
    if (!db->Get(ReadOptions(), key, &out).ok()) abort();
  }
  m.hit_lookup =
      static_cast<double>((stats.Snapshot() - before).read_ios) / 3000;
  return m;
}

}  // namespace

int main() {
  printf("Ablation: key-value separation (leveling T=2, 8 bits/entry, "
         "N=30000)\n\n");
  printf("%12s %-11s | %16s %12s %12s\n", "value bytes", "mode",
         "write I/O / put", "zero-R I/O", "hit V I/O");

  for (int value_size : {256, 1024}) {
    const Measured inline_mode = Run(0, value_size);
    const Measured separated = Run(128, value_size);
    printf("%12d %-11s | %16.4f %12.4f %12.4f\n", value_size, "inline",
           inline_mode.write_per_put, inline_mode.zero_lookup,
           inline_mode.hit_lookup);
    printf("%12d %-11s | %16.4f %12.4f %12.4f\n", value_size, "separated",
           separated.write_per_put, separated.zero_lookup,
           separated.hit_lookup);

    // Adapted model: merge traffic scales by the (key+handle)/entry share;
    // each value additionally pays its own one-time sequential log append
    // of value_bytes/page I/Os.
    const double key_handle_share = (16.0 + 8.0) / (16.0 + value_size);
    const double log_append_ios =
        static_cast<double>(value_size + 8) / kPageSize;
    const double predicted =
        inline_mode.write_per_put * key_handle_share + log_append_ios;
    printf("%12s %-11s |  (adapted model predicts ~%.4f write I/O / put; "
           "measured %.4f)\n",
           "", "", predicted, separated.write_per_put);
  }
  printf("\nExpected: separation slashes per-put write I/O toward the\n"
         "value/entry ratio floor (the log append itself is sequential and\n"
         "written once), leaves zero-result lookups unchanged, and adds\n"
         "~1 I/O to each non-zero-result lookup (V' = V + 1).\n");
  return 0;
}
