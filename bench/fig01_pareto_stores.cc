// Figure 1: state-of-the-art stores sit off the Pareto curve.
//
// Positions each named store's default tuning (uniform filters) in the
// (update cost, lookup cost) plane, prints the Monkey lookup cost at the
// same (policy, T, memory) — the Pareto curve point directly below it —
// and the Pareto curve itself.

#include <cstdio>

#include "monkey/design_space.h"

using namespace monkeydb;
using namespace monkeydb::monkey;

int main() {
  // A common environment for all stores: 100 M entries of 128 B, the
  // paper's "typical in practice" entry size, 10 bits/entry of filters.
  Environment env;
  env.num_entries = 1e8;
  env.entry_size_bits = 128 * 8;
  env.page_bits = 4096.0 * 8;

  printf("Figure 1: state-of-the-art key-value stores vs the Pareto curve\n");
  printf("(lookup cost R in I/Os, update cost W in I/Os; lower-left is "
         "better)\n\n");
  printf("%-12s %-9s %5s %9s %14s %16s\n", "store", "policy", "T",
         "W (I/O)", "R_store (I/O)", "R_pareto (I/O)");
  for (const StoreConfig& store : StateOfTheArtStores()) {
    const CurvePoint p = EvaluateStore(store, env);
    printf("%-12s %-9s %5.0f %9.4f %14.4f %16.4f\n", store.name.c_str(),
           store.policy == MergePolicy::kLeveling ? "leveling" : "tiering",
           store.size_ratio, p.update_cost, p.baseline_lookup_cost,
           p.lookup_cost);
  }

  printf("\nPareto curve (Monkey allocation, 10 bits/entry, buffer 64 MB):\n");
  printf("%-9s %5s %9s %14s\n", "policy", "T", "W (I/O)", "R (I/O)");
  DesignPoint base;
  base.num_entries = env.num_entries;
  base.entry_size_bits = env.entry_size_bits;
  base.buffer_bits = 64.0 * (1 << 20) * 8;
  base.filter_bits = 10.0 * env.num_entries;
  base.entries_per_page = env.page_bits / env.entry_size_bits;
  for (const CurvePoint& p : SweepDesignSpace(base, 16.0, 2.0)) {
    printf("%-9s %5.0f %9.4f %14.6f\n",
           p.policy == MergePolicy::kLeveling ? "leveling" : "tiering",
           p.size_ratio, p.update_cost, p.lookup_cost);
  }
  return 0;
}
