// De-amortization view (paper Sec. 6): the *distribution* of per-put write
// work across merge policies. Leveling concentrates merge work into fewer,
// larger spikes; tiering and lazy leveling spread it. The paper's models
// are amortized; this bench shows the shape behind the amortization.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness.h"

using namespace monkeydb;
using namespace monkeydb::bench;

namespace {

const char* PolicyName(MergePolicy policy) {
  switch (policy) {
    case MergePolicy::kLeveling:
      return "leveling";
    case MergePolicy::kTiering:
      return "tiering";
    case MergePolicy::kLazyLeveling:
      return "lazy-leveling";
  }
  return "?";
}

}  // namespace

int main() {
  const int n = 60000;
  printf("Per-put write-I/O distribution (N=%d, T=4, Monkey filters)\n\n",
         n);
  printf("%-14s %10s %10s %10s %12s %12s\n", "policy", "mean", "p99",
         "p99.9", "max spike", "puts w/ I/O");

  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kLazyLeveling,
        MergePolicy::kTiering}) {
    auto base = NewMemEnv();
    IoStats stats;
    CountingEnv env(base.get(), &stats, kPageSize);
    DbOptions options;
    options.env = &env;
    options.merge_policy = policy;
    options.size_ratio = 4.0;
    options.buffer_size_bytes = 32 << 10;
    options.bits_per_entry = 5.0;
    options.expected_entries = n;
    options.fpr_policy = monkey::NewMonkeyFprPolicy();
    std::unique_ptr<DB> db;
    if (!DB::Open(options, "/db", &db).ok()) abort();

    WriteOptions wo;
    std::vector<uint64_t> per_put;
    per_put.reserve(n);
    uint64_t prev = 0;
    for (int i = 0; i < n; i++) {
      char key[24];
      snprintf(key, sizeof(key), "user%012d", i);
      const std::string payload = std::string(48, 'v');
      if (!db->Put(wo, key, payload).ok()) abort();
      const uint64_t now = stats.Snapshot().write_ios;
      per_put.push_back(now - prev);
      prev = now;
    }

    std::vector<uint64_t> sorted = per_put;
    std::sort(sorted.begin(), sorted.end());
    const double mean =
        static_cast<double>(prev) / static_cast<double>(n);
    const uint64_t p99 = sorted[static_cast<size_t>(0.99 * n)];
    const uint64_t p999 = sorted[static_cast<size_t>(0.999 * n)];
    const uint64_t max_spike = sorted.back();
    const size_t busy =
        sorted.end() -
        std::upper_bound(sorted.begin(), sorted.end(), uint64_t{0});

    printf("%-14s %10.4f %10llu %10llu %12llu %11.2f%%\n",
           PolicyName(policy), mean,
           static_cast<unsigned long long>(p99),
           static_cast<unsigned long long>(p999),
           static_cast<unsigned long long>(max_spike),
           100.0 * busy / n);
  }
  printf("\nExpected shape: similar means (the amortized W of Eq. 10) but\n"
         "leveling's worst spike is the largest — it rewrites the biggest\n"
         "level most often. De-amortization techniques (Sec. 6) spread\n"
         "these spikes; our engine runs merges synchronously on purpose so\n"
         "the spikes are visible.\n");
  return 0;
}
