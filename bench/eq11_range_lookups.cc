// Range-lookup cost (Eq. 11): Q = s·N/B + one seek per run.
//
// Section 1 measures engine range scans of varying selectivity under all
// three merge policies and compares the I/O count against the model. The
// paper uses Eq. 11 inside its throughput model (Eq. 12); this section
// validates it empirically.
//
// Section 2 measures wall-clock scan throughput on a simulated device
// (LatencyEnv: every data-page read costs fixed wall-clock time) with the
// pipelined read path at readahead depths 0/2/4/8. Eq. 11's I/O count is
// identical at every depth — readahead changes how much of that I/O
// overlaps, not how much there is — so this is the wall-clock side of the
// same equation. Section 3 does the same for batched point lookups:
// DB::MultiGet versus an equivalent loop of Gets.
//
// Results go to BENCH_range.json. Pass --smoke for a tiny CI-sized run.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "io/latency_env.h"
#include "monkey/cost_model.h"

using namespace monkeydb;
using namespace monkeydb::bench;

namespace {

const char* PolicyName(MergePolicy policy) {
  switch (policy) {
    case MergePolicy::kLeveling:
      return "leveling";
    case MergePolicy::kTiering:
      return "tiering";
    case MergePolicy::kLazyLeveling:
      return "lazy-leveling";
  }
  return "?";
}

// Simulated device for the wall-clock sections.
constexpr auto kReadLatency = std::chrono::microseconds(50);
const int kReadaheadDepths[] = {0, 2, 4, 8};

// Workload sizes; --smoke shrinks them for CI.
int g_wall_num_keys = 20000;
int g_wall_scans = 40;
int g_wall_scan_len = 1000;
int g_multiget_batches = 25;
constexpr int kMultiGetBatch = 16;

struct LatencyDb {
  std::unique_ptr<Env> base_env;
  std::unique_ptr<LatencyEnv> env;
  std::unique_ptr<BlockCache> cache;
  std::unique_ptr<DB> db;
};

LatencyDb BuildLatencyDb(MergePolicy policy) {
  LatencyDb t;
  t.base_env = NewMemEnv();
  t.env = std::make_unique<LatencyEnv>(t.base_env.get(), kReadLatency);
  t.cache = std::make_unique<BlockCache>(256 << 10);

  DbOptions options;
  options.env = t.env.get();
  options.merge_policy = policy;
  options.size_ratio = 4.0;
  options.buffer_size_bytes = 64 << 10;
  options.bits_per_entry = 5.0;
  options.page_size = kPageSize;
  options.block_cache = t.cache.get();
  options.expected_entries = g_wall_num_keys;
  // Readahead depth is swept per iterator via ReadOptions; the DB-wide
  // default stays 0.

  Status s = DB::Open(options, "/db", &t.db);
  if (!s.ok()) {
    fprintf(stderr, "Open failed: %s\n", s.ToString().c_str());
    abort();
  }
  WriteOptions wo;
  const std::string value(48, 'v');
  for (int i = 0; i < g_wall_num_keys; i++) {
    if (!t.db->Put(wo, MakeKey(i), value).ok()) abort();
  }
  if (!t.db->Flush().ok()) abort();
  return t;
}

// Wall-clock entries/sec scanning g_wall_scans ranges of g_wall_scan_len
// keys at the given readahead depth. Scans start at rotating offsets so
// consecutive depths never scan an identical (and thus fully cached)
// region; the cache is small relative to the data either way.
double MeasureScanThroughput(DB* db, int readahead, int round) {
  ReadOptions ro;
  ro.readahead_blocks = readahead;
  Random rng(9000 + round);
  uint64_t entries = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < g_wall_scans; i++) {
    auto iter = db->NewIterator(ro);
    int remaining = g_wall_scan_len;
    for (iter->Seek(MakeKey(rng.Uniform(
             g_wall_num_keys - static_cast<uint64_t>(g_wall_scan_len))));
         iter->Valid() && remaining > 0; iter->Next(), remaining--) {
      entries++;
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(entries) / secs;
}

// Wall-clock lookups/sec for batches of kMultiGetBatch existing keys:
// either one MultiGet per batch or an equivalent loop of Gets.
double MeasureBatchedLookups(DB* db, bool use_multiget, int round) {
  Random rng(31000 + round);
  ReadOptions ro;
  uint64_t lookups = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int b = 0; b < g_multiget_batches; b++) {
    std::vector<std::string> key_storage;
    key_storage.reserve(kMultiGetBatch);
    for (int i = 0; i < kMultiGetBatch; i++) {
      key_storage.push_back(MakeKey(rng.Uniform(g_wall_num_keys)));
    }
    if (use_multiget) {
      std::vector<Slice> keys(key_storage.begin(), key_storage.end());
      std::vector<std::string> values;
      for (const Status& s : db->MultiGet(ro, keys, &values)) {
        if (!s.ok()) abort();
      }
    } else {
      std::string value;
      for (const std::string& key : key_storage) {
        if (!db->Get(ro, key, &value).ok()) abort();
      }
    }
    lookups += kMultiGetBatch;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(lookups) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  if (smoke) {
    // Scans must still cover enough blocks for the prefetch pipeline to
    // amortise its per-run synchronous first block, so the scan length
    // shrinks less aggressively than the key count.
    g_wall_num_keys = 8000;
    g_wall_scans = 6;
    g_wall_scan_len = 800;
    g_multiget_batches = 5;
  }

  const int n = smoke ? 8000 : 80000;
  printf("Eq. 11 validation: range-lookup cost vs selectivity "
         "(N=%d, T=4)\n\n", n);
  printf("%-14s %12s %14s %14s %10s\n", "policy", "selectivity",
         "measured I/O", "model Q (I/O)", "runs");

  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kLazyLeveling,
        MergePolicy::kTiering}) {
    FillSpec spec;
    spec.num_keys = n;
    spec.policy = policy;
    spec.size_ratio = 4.0;
    spec.bits_per_entry = 5.0;
    spec.buffer_bytes = 32 << 10;
    spec.monkey_filters = true;
    TestDb db = Fill(spec);
    const DbStats stats = db.db->GetStats();

    monkey::DesignPoint d;
    d.policy = policy;
    d.size_ratio = 4.0;
    d.num_entries = n;
    d.entry_size_bits = 64 * 8.0;  // ~64 B encoded entries.
    d.buffer_bits = (32 << 10) * 8.0;
    d.filter_bits = 5.0 * n;
    d.entries_per_page = kPageSize / 70.0;

    for (double selectivity : {0.0001, 0.001, 0.01}) {
      const int range_len = static_cast<int>(selectivity * n);
      Random rng(11);
      const int scans = 300;
      const auto before = db.stats->Snapshot();
      for (int i = 0; i < scans; i++) {
        auto iter = db.db->NewIterator(ReadOptions());
        int remaining = range_len;
        for (iter->Seek(MakeKey(
                 rng.Uniform(n - static_cast<uint64_t>(range_len))));
             iter->Valid() && remaining > 0; iter->Next(), remaining--) {
        }
      }
      const auto delta = db.stats->Snapshot() - before;
      const double measured =
          static_cast<double>(delta.read_ios) / scans;
      // Model Q uses the live run count rather than the worst case: the
      // seek term is one I/O per existing run.
      const double model =
          selectivity * d.num_entries / d.entries_per_page +
          static_cast<double>(stats.total_runs);
      printf("%-14s %12.4f %14.2f %14.2f %10llu\n", PolicyName(policy),
             selectivity, measured, model,
             static_cast<unsigned long long>(stats.total_runs));
    }
  }
  printf("\nExpected shape: the seek term (= run count) dominates at small\n"
         "selectivities — tiering pays the most seeks — while the scan term\n"
         "s·N/B dominates at large ones, converging across policies.\n");

  // --- Section 2: wall-clock scans on a simulated device, by readahead ---

  printf("\nPipelined scans on LatencyEnv (%lld us/page read, %d keys,\n"
         "%d scans of %d keys):\n\n",
         static_cast<long long>(kReadLatency.count()), g_wall_num_keys,
         g_wall_scans, g_wall_scan_len);
  printf("%-14s %10s %16s %9s\n", "policy", "readahead", "entries/sec",
         "speedup");

  struct ScanRow {
    const char* policy;
    int readahead;
    double entries_per_sec;
    double speedup;
  };
  std::vector<ScanRow> scan_rows;
  int round = 0;
  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kLazyLeveling,
        MergePolicy::kTiering}) {
    LatencyDb db = BuildLatencyDb(policy);
    double baseline = 0;
    for (int readahead : kReadaheadDepths) {
      const double eps =
          MeasureScanThroughput(db.db.get(), readahead, round++);
      if (readahead == 0) baseline = eps;
      scan_rows.push_back(
          ScanRow{PolicyName(policy), readahead, eps, eps / baseline});
      printf("%-14s %10d %14.0f/s %8.2fx\n", PolicyName(policy), readahead,
             eps, eps / baseline);
    }
  }

  // --- Section 3: batched point lookups (MultiGet) on the same device ---

  printf("\nBatched point lookups (batches of %d existing keys):\n\n",
         kMultiGetBatch);
  printf("%-14s %16s %16s %9s\n", "policy", "get loop", "multiget",
         "speedup");
  struct MgRow {
    const char* policy;
    double sequential_per_sec;
    double multiget_per_sec;
  };
  std::vector<MgRow> mg_rows;
  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kLazyLeveling,
        MergePolicy::kTiering}) {
    LatencyDb db = BuildLatencyDb(policy);
    MgRow row{PolicyName(policy), 0, 0};
    row.sequential_per_sec =
        MeasureBatchedLookups(db.db.get(), /*use_multiget=*/false, round++);
    row.multiget_per_sec =
        MeasureBatchedLookups(db.db.get(), /*use_multiget=*/true, round++);
    mg_rows.push_back(row);
    printf("%-14s %14.0f/s %14.0f/s %8.2fx\n", row.policy,
           row.sequential_per_sec, row.multiget_per_sec,
           row.multiget_per_sec / row.sequential_per_sec);
  }

  FILE* json = fopen("BENCH_range.json", "w");
  if (json != nullptr) {
    fprintf(json, "{\n");
    fprintf(json, "  \"num_keys\": %d,\n", g_wall_num_keys);
    fprintf(json, "  \"read_latency_us\": %lld,\n",
            static_cast<long long>(kReadLatency.count()));
    fprintf(json, "  \"scan_len\": %d,\n", g_wall_scan_len);
    fprintf(json, "  \"range_scan\": [\n");
    for (size_t i = 0; i < scan_rows.size(); i++) {
      fprintf(json,
              "    {\"policy\": \"%s\", \"readahead\": %d, "
              "\"entries_per_sec\": %.1f, \"speedup_vs_no_readahead\": "
              "%.3f}%s\n",
              scan_rows[i].policy, scan_rows[i].readahead,
              scan_rows[i].entries_per_sec, scan_rows[i].speedup,
              i + 1 < scan_rows.size() ? "," : "");
    }
    fprintf(json, "  ],\n");
    fprintf(json, "  \"multiget_batch\": %d,\n", kMultiGetBatch);
    fprintf(json, "  \"multiget\": [\n");
    for (size_t i = 0; i < mg_rows.size(); i++) {
      fprintf(json,
              "    {\"policy\": \"%s\", \"get_loop_per_sec\": %.1f, "
              "\"multiget_per_sec\": %.1f, \"speedup\": %.3f}%s\n",
              mg_rows[i].policy, mg_rows[i].sequential_per_sec,
              mg_rows[i].multiget_per_sec,
              mg_rows[i].multiget_per_sec / mg_rows[i].sequential_per_sec,
              i + 1 < mg_rows.size() ? "," : "");
    }
    fprintf(json, "  ]\n");
    fprintf(json, "}\n");
    fclose(json);
    printf("\nwrote BENCH_range.json\n");
  }
  return 0;
}
