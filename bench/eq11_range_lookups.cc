// Range-lookup cost (Eq. 11): Q = s·N/B + one seek per run.
//
// Measures engine range scans of varying selectivity under all three merge
// policies and compares against the model. The paper uses Eq. 11 inside
// its throughput model (Eq. 12); this bench validates it empirically.

#include <cstdio>

#include "harness.h"
#include "monkey/cost_model.h"

using namespace monkeydb;
using namespace monkeydb::bench;

namespace {

const char* PolicyName(MergePolicy policy) {
  switch (policy) {
    case MergePolicy::kLeveling:
      return "leveling";
    case MergePolicy::kTiering:
      return "tiering";
    case MergePolicy::kLazyLeveling:
      return "lazy-leveling";
  }
  return "?";
}

}  // namespace

int main() {
  const int n = 80000;
  printf("Eq. 11 validation: range-lookup cost vs selectivity "
         "(N=%d, T=4)\n\n", n);
  printf("%-14s %12s %14s %14s %10s\n", "policy", "selectivity",
         "measured I/O", "model Q (I/O)", "runs");

  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kLazyLeveling,
        MergePolicy::kTiering}) {
    FillSpec spec;
    spec.num_keys = n;
    spec.policy = policy;
    spec.size_ratio = 4.0;
    spec.bits_per_entry = 5.0;
    spec.buffer_bytes = 32 << 10;
    spec.monkey_filters = true;
    TestDb db = Fill(spec);
    const DbStats stats = db.db->GetStats();

    monkey::DesignPoint d;
    d.policy = policy;
    d.size_ratio = 4.0;
    d.num_entries = n;
    d.entry_size_bits = 64 * 8.0;  // ~64 B encoded entries.
    d.buffer_bits = (32 << 10) * 8.0;
    d.filter_bits = 5.0 * n;
    d.entries_per_page = kPageSize / 70.0;

    for (double selectivity : {0.0001, 0.001, 0.01}) {
      const int range_len = static_cast<int>(selectivity * n);
      Random rng(11);
      const int scans = 300;
      const auto before = db.stats->Snapshot();
      for (int i = 0; i < scans; i++) {
        auto iter = db.db->NewIterator(ReadOptions());
        int remaining = range_len;
        for (iter->Seek(MakeKey(
                 rng.Uniform(n - static_cast<uint64_t>(range_len))));
             iter->Valid() && remaining > 0; iter->Next(), remaining--) {
        }
      }
      const auto delta = db.stats->Snapshot() - before;
      const double measured =
          static_cast<double>(delta.read_ios) / scans;
      // Model Q uses the live run count rather than the worst case: the
      // seek term is one I/O per existing run.
      const double model =
          selectivity * d.num_entries / d.entries_per_page +
          static_cast<double>(stats.total_runs);
      printf("%-14s %12.4f %14.2f %14.2f %10llu\n", PolicyName(policy),
             selectivity, measured, model,
             static_cast<unsigned long long>(stats.total_runs));
    }
  }
  printf("\nExpected shape: the seek term (= run count) dominates at small\n"
         "selectivities — tiering pays the most seeks — while the scan term\n"
         "s·N/B dominates at large ones, converging across policies.\n");
  return 0;
}
