// Range-lookup cost (Eq. 11): Q = s·N/B + one seek per run.
//
// Section 1 measures engine range scans of varying selectivity under all
// three merge policies and compares the I/O count against the model. The
// paper uses Eq. 11 inside its throughput model (Eq. 12); this section
// validates it empirically.
//
// Section 2 measures wall-clock scan throughput on a simulated device
// (LatencyEnv: every data-page read costs fixed wall-clock time) with the
// pipelined read path at readahead depths 0/2/4/8. Eq. 11's I/O count is
// identical at every depth — readahead changes how much of that I/O
// overlaps, not how much there is — so this is the wall-clock side of the
// same equation. Section 3 does the same for batched point lookups:
// DB::MultiGet versus an equivalent loop of Gets.
//
// Section 4 leaves the simulated devices: it opens the same workload on a
// real filesystem through the backend chosen by --io-backend={posix,uring}
// and measures the syscall cost of batched point lookups — MultiGet(16)
// versus a loop of Gets — plus per-batch latency percentiles. With the
// uring backend the whole fetch plan of a MultiGet goes to the kernel as
// one io_uring_enter, so syscalls per batch collapse; the posix baseline
// is always measured alongside for the ratio. Results go to BENCH_io.json.
//
// Results go to BENCH_range.json. Pass --smoke for a tiny CI-sized run.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "io/latency_env.h"
#include "monkey/cost_model.h"
#include "obs/histogram.h"

using namespace monkeydb;
using namespace monkeydb::bench;

namespace {

const char* PolicyName(MergePolicy policy) {
  switch (policy) {
    case MergePolicy::kLeveling:
      return "leveling";
    case MergePolicy::kTiering:
      return "tiering";
    case MergePolicy::kLazyLeveling:
      return "lazy-leveling";
  }
  return "?";
}

// Simulated device for the wall-clock sections.
constexpr auto kReadLatency = std::chrono::microseconds(50);
const int kReadaheadDepths[] = {0, 2, 4, 8};

// Workload sizes; --smoke shrinks them for CI.
int g_wall_num_keys = 20000;
int g_wall_scans = 40;
int g_wall_scan_len = 1000;
int g_multiget_batches = 25;
constexpr int kMultiGetBatch = 16;

// Section 4 (real filesystem) sizes.
int g_io_num_keys = 20000;
int g_io_batches = 300;

struct LatencyDb {
  std::unique_ptr<Env> base_env;
  std::unique_ptr<LatencyEnv> env;
  std::unique_ptr<BlockCache> cache;
  std::unique_ptr<DB> db;
};

LatencyDb BuildLatencyDb(MergePolicy policy) {
  LatencyDb t;
  t.base_env = NewMemEnv();
  t.env = std::make_unique<LatencyEnv>(t.base_env.get(), kReadLatency);
  t.cache = std::make_unique<BlockCache>(256 << 10);

  DbOptions options;
  options.env = t.env.get();
  options.merge_policy = policy;
  options.size_ratio = 4.0;
  options.buffer_size_bytes = 64 << 10;
  options.bits_per_entry = 5.0;
  options.page_size = kPageSize;
  options.block_cache = t.cache.get();
  options.expected_entries = g_wall_num_keys;
  // Readahead depth is swept per iterator via ReadOptions; the DB-wide
  // default stays 0.

  Status s = DB::Open(options, "/db", &t.db);
  if (!s.ok()) {
    fprintf(stderr, "Open failed: %s\n", s.ToString().c_str());
    abort();
  }
  WriteOptions wo;
  const std::string value(48, 'v');
  for (int i = 0; i < g_wall_num_keys; i++) {
    const std::string key = MakeKey(i);
    if (!t.db->Put(wo, key, value).ok()) abort();
  }
  if (!t.db->Flush().ok()) abort();
  return t;
}

// Wall-clock entries/sec scanning g_wall_scans ranges of g_wall_scan_len
// keys at the given readahead depth. Scans start at rotating offsets so
// consecutive depths never scan an identical (and thus fully cached)
// region; the cache is small relative to the data either way.
double MeasureScanThroughput(DB* db, int readahead, int round) {
  ReadOptions ro;
  ro.readahead_blocks = readahead;
  Random rng(9000 + round);
  uint64_t entries = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < g_wall_scans; i++) {
    auto iter = db->NewIterator(ro);
    int remaining = g_wall_scan_len;
    const std::string key = MakeKey(rng.Uniform( g_wall_num_keys - static_cast<uint64_t>(g_wall_scan_len)));
    for (iter->Seek(key);
         iter->Valid() && remaining > 0; iter->Next(), remaining--) {
      entries++;
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(entries) / secs;
}

// Wall-clock lookups/sec for batches of kMultiGetBatch existing keys:
// either one MultiGet per batch or an equivalent loop of Gets.
double MeasureBatchedLookups(DB* db, bool use_multiget, int round) {
  Random rng(31000 + round);
  ReadOptions ro;
  uint64_t lookups = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int b = 0; b < g_multiget_batches; b++) {
    std::vector<std::string> key_storage;
    key_storage.reserve(kMultiGetBatch);
    for (int i = 0; i < kMultiGetBatch; i++) {
      key_storage.push_back(MakeKey(rng.Uniform(g_wall_num_keys)));
    }
    if (use_multiget) {
      std::vector<Slice> keys(key_storage.begin(), key_storage.end());
      std::vector<std::string> values;
      for (const Status& s : db->MultiGet(ro, keys, &values)) {
        if (!s.ok()) abort();
      }
    } else {
      std::string value;
      for (const std::string& key : key_storage) {
        if (!db->Get(ro, key, &value).ok()) abort();
      }
    }
    lookups += kMultiGetBatch;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(lookups) / secs;
}

// --- Section 4: syscalls per batched lookup on a real filesystem ---------

struct IoBackendResult {
  std::string requested;
  std::string actual;
  double multiget_syscalls_per_batch = 0;   // read_calls per MultiGet(16).
  double getloop_syscalls_per_batch = 0;    // read_calls per 16-Get loop.
  double batched_per_syscall = 0;           // Requests per ReadBatch submit.
  HistogramData multiget_latency_us;
  HistogramData get_latency_us;
  bool have_uring = false;
  UringStatsSnapshot uring;
};

IoBackendResult MeasureIoBackend(const std::string& backend) {
  FillSpec spec;
  spec.num_keys = g_io_num_keys;
  spec.block_cache_bytes = 64 << 10;  // Tiny: lookups must reach the device.
  const std::string dir = "/tmp/monkeydb_bench_io_" + backend + "." +
                          std::to_string(static_cast<long long>(getpid()));
  IoBackendDb db = OpenIoBackendDb(backend, dir, spec);

  IoBackendResult r;
  r.requested = db.requested;
  r.actual = db.actual;

  // Same key sequence for both arms so they fetch the same blocks.
  auto batch_keys = [&](int b) {
    Random rng(606 + b);
    std::vector<std::string> keys;
    keys.reserve(kMultiGetBatch);
    for (int i = 0; i < kMultiGetBatch; i++) {
      keys.push_back(MakeKey(rng.Uniform(g_io_num_keys)));
    }
    return keys;
  };

  Histogram mg_hist;
  ReadOptions ro;
  auto before = db.stats->Snapshot();
  for (int b = 0; b < g_io_batches; b++) {
    const std::vector<std::string> key_storage = batch_keys(b);
    std::vector<Slice> keys(key_storage.begin(), key_storage.end());
    std::vector<std::string> values;
    const auto start = std::chrono::steady_clock::now();
    for (const Status& s : db.db->MultiGet(ro, keys, &values)) {
      if (!s.ok()) {
        fprintf(stderr, "MultiGet failed: %s\n", s.ToString().c_str());
        abort();
      }
    }
    mg_hist.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  auto delta = db.stats->Snapshot() - before;
  r.multiget_syscalls_per_batch =
      static_cast<double>(delta.read_calls) / g_io_batches;
  r.batched_per_syscall =
      delta.batch_reads == 0
          ? 0.0
          : static_cast<double>(delta.batch_read_requests) /
                static_cast<double>(delta.batch_reads);

  Histogram get_hist;
  before = db.stats->Snapshot();
  for (int b = 0; b < g_io_batches; b++) {
    std::string value;
    for (const std::string& key : batch_keys(b)) {
      const auto start = std::chrono::steady_clock::now();
      if (!db.db->Get(ro, key, &value).ok()) abort();
      get_hist.Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
    }
  }
  delta = db.stats->Snapshot() - before;
  r.getloop_syscalls_per_batch =
      static_cast<double>(delta.read_calls) / g_io_batches;

  HistogramMerger mg_merge, get_merge;
  mg_merge.Add(mg_hist);
  get_merge.Add(get_hist);
  r.multiget_latency_us = mg_merge.Snapshot();
  r.get_latency_us = get_merge.Snapshot();

  if (db.uring != nullptr) {
    r.have_uring = true;
    r.uring = db.uring->Stats();
  }
  DestroyIoBackendDb(&db);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string io_backend = ConsumeIoBackendFlag(&argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  if (smoke) {
    // Scans must still cover enough blocks for the prefetch pipeline to
    // amortise its per-run synchronous first block, so the scan length
    // shrinks less aggressively than the key count.
    g_wall_num_keys = 8000;
    g_wall_scans = 6;
    g_wall_scan_len = 800;
    g_multiget_batches = 5;
    g_io_num_keys = 6000;
    g_io_batches = 50;
  }

  const int n = smoke ? 8000 : 80000;
  printf("Eq. 11 validation: range-lookup cost vs selectivity "
         "(N=%d, T=4)\n\n", n);
  printf("%-14s %12s %14s %14s %10s\n", "policy", "selectivity",
         "measured I/O", "model Q (I/O)", "runs");

  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kLazyLeveling,
        MergePolicy::kTiering}) {
    FillSpec spec;
    spec.num_keys = n;
    spec.policy = policy;
    spec.size_ratio = 4.0;
    spec.bits_per_entry = 5.0;
    spec.buffer_bytes = 32 << 10;
    spec.monkey_filters = true;
    TestDb db = Fill(spec);
    const DbStats stats = db.db->GetStats();

    monkey::DesignPoint d;
    d.policy = policy;
    d.size_ratio = 4.0;
    d.num_entries = n;
    d.entry_size_bits = 64 * 8.0;  // ~64 B encoded entries.
    d.buffer_bits = (32 << 10) * 8.0;
    d.filter_bits = 5.0 * n;
    d.entries_per_page = kPageSize / 70.0;

    for (double selectivity : {0.0001, 0.001, 0.01}) {
      const int range_len = static_cast<int>(selectivity * n);
      Random rng(11);
      const int scans = 300;
      const auto before = db.stats->Snapshot();
      for (int i = 0; i < scans; i++) {
        auto iter = db.db->NewIterator(ReadOptions());
        int remaining = range_len;
        const std::string key = MakeKey( rng.Uniform(n - static_cast<uint64_t>(range_len)));
        for (iter->Seek(key);
             iter->Valid() && remaining > 0; iter->Next(), remaining--) {
        }
      }
      const auto delta = db.stats->Snapshot() - before;
      const double measured =
          static_cast<double>(delta.read_ios) / scans;
      // Model Q uses the live run count rather than the worst case: the
      // seek term is one I/O per existing run.
      const double model =
          selectivity * d.num_entries / d.entries_per_page +
          static_cast<double>(stats.total_runs);
      printf("%-14s %12.4f %14.2f %14.2f %10llu\n", PolicyName(policy),
             selectivity, measured, model,
             static_cast<unsigned long long>(stats.total_runs));
    }
  }
  printf("\nExpected shape: the seek term (= run count) dominates at small\n"
         "selectivities — tiering pays the most seeks — while the scan term\n"
         "s·N/B dominates at large ones, converging across policies.\n");

  // --- Section 2: wall-clock scans on a simulated device, by readahead ---

  printf("\nPipelined scans on LatencyEnv (%lld us/page read, %d keys,\n"
         "%d scans of %d keys):\n\n",
         static_cast<long long>(kReadLatency.count()), g_wall_num_keys,
         g_wall_scans, g_wall_scan_len);
  printf("%-14s %10s %16s %9s\n", "policy", "readahead", "entries/sec",
         "speedup");

  struct ScanRow {
    const char* policy;
    int readahead;
    double entries_per_sec;
    double speedup;
  };
  std::vector<ScanRow> scan_rows;
  int round = 0;
  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kLazyLeveling,
        MergePolicy::kTiering}) {
    LatencyDb db = BuildLatencyDb(policy);
    double baseline = 0;
    for (int readahead : kReadaheadDepths) {
      const double eps =
          MeasureScanThroughput(db.db.get(), readahead, round++);
      if (readahead == 0) baseline = eps;
      scan_rows.push_back(
          ScanRow{PolicyName(policy), readahead, eps, eps / baseline});
      printf("%-14s %10d %14.0f/s %8.2fx\n", PolicyName(policy), readahead,
             eps, eps / baseline);
    }
  }

  // --- Section 3: batched point lookups (MultiGet) on the same device ---

  printf("\nBatched point lookups (batches of %d existing keys):\n\n",
         kMultiGetBatch);
  printf("%-14s %16s %16s %9s\n", "policy", "get loop", "multiget",
         "speedup");
  struct MgRow {
    const char* policy;
    double sequential_per_sec;
    double multiget_per_sec;
  };
  std::vector<MgRow> mg_rows;
  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kLazyLeveling,
        MergePolicy::kTiering}) {
    LatencyDb db = BuildLatencyDb(policy);
    MgRow row{PolicyName(policy), 0, 0};
    row.sequential_per_sec =
        MeasureBatchedLookups(db.db.get(), /*use_multiget=*/false, round++);
    row.multiget_per_sec =
        MeasureBatchedLookups(db.db.get(), /*use_multiget=*/true, round++);
    mg_rows.push_back(row);
    printf("%-14s %14.0f/s %14.0f/s %8.2fx\n", row.policy,
           row.sequential_per_sec, row.multiget_per_sec,
           row.multiget_per_sec / row.sequential_per_sec);
  }

  {
    BenchJsonWriter w("eq11_range_lookups");
    w.Config("num_keys", g_wall_num_keys);
    w.Config("read_latency_us",
             static_cast<long long>(kReadLatency.count()));
    w.Config("scan_len", g_wall_scan_len);
    w.Config("multiget_batch", kMultiGetBatch);
    w.BeginArray("range_scan");
    for (const ScanRow& row : scan_rows) {
      w.BeginObject();
      w.Field("policy", row.policy);
      w.Field("readahead", row.readahead);
      w.Field("entries_per_sec", row.entries_per_sec);
      w.Field("speedup_vs_no_readahead", row.speedup);
      w.EndObject();
    }
    w.EndArray();
    w.BeginArray("multiget");
    for (const MgRow& row : mg_rows) {
      w.BeginObject();
      w.Field("policy", row.policy);
      w.Field("get_loop_per_sec", row.sequential_per_sec);
      w.Field("multiget_per_sec", row.multiget_per_sec);
      w.Field("speedup", row.multiget_per_sec / row.sequential_per_sec);
      w.EndObject();
    }
    w.EndArray();
    printf("\n");
    w.WriteFile("BENCH_range.json");
  }

  // --- Section 4: syscalls per batched lookup on a real filesystem -------
  // The posix baseline always runs; --io-backend=uring adds the ring arm
  // so one run carries the collapse ratio.

  printf("\nReal-filesystem batched lookups, --io-backend=%s "
         "(%d keys, %d MultiGet(%d) batches):\n\n",
         io_backend.c_str(), g_io_num_keys, g_io_batches, kMultiGetBatch);
  printf("%-8s %18s %18s %18s\n", "backend", "syscalls/multiget",
         "syscalls/get-loop", "reqs/batched-sys");

  std::vector<IoBackendResult> io_results;
  io_results.push_back(MeasureIoBackend("posix"));
  if (io_backend == "uring") {
    io_results.push_back(MeasureIoBackend("uring"));
  }
  for (const IoBackendResult& r : io_results) {
    printf("%-8s %18.2f %18.2f %18.2f\n", r.actual.c_str(),
           r.multiget_syscalls_per_batch, r.getloop_syscalls_per_batch,
           r.batched_per_syscall);
  }
  if (io_results.size() == 2 && io_results[1].actual == "uring") {
    printf("\nMultiGet(%d) syscall collapse (posix/uring): %.2fx\n",
           kMultiGetBatch,
           io_results[0].multiget_syscalls_per_batch /
               io_results[1].multiget_syscalls_per_batch);
  }

  {
    BenchJsonWriter w("eq11_range_lookups");
    w.Config("requested_backend", io_backend);
    w.Config("num_keys", g_io_num_keys);
    w.Config("multiget_batch", kMultiGetBatch);
    w.Config("batches", g_io_batches);
    w.BeginArray("backends");
    for (const IoBackendResult& r : io_results) {
      w.BeginObject();
      w.Field("backend", r.actual);
      w.Field("requested", r.requested);
      w.Field("syscalls_per_multiget", r.multiget_syscalls_per_batch);
      w.Field("syscalls_per_get_loop", r.getloop_syscalls_per_batch);
      w.Field("batched_per_syscall", r.batched_per_syscall);
      w.Histogram("multiget_latency_us", r.multiget_latency_us);
      w.Histogram("get_latency_us", r.get_latency_us);
      if (r.have_uring) {
        w.BeginObject("uring");
        w.Field("sqes_submitted", r.uring.sqes_submitted);
        w.Field("batch_submits", r.uring.batch_submits);
        w.Field("batched_requests", r.uring.batched_requests);
        w.Field("short_read_retries", r.uring.short_read_retries);
        w.Field("fixed_file_reads", r.uring.fixed_file_reads);
        w.Field("direct_io_fallbacks", r.uring.direct_io_fallbacks);
        w.EndObject();
      }
      w.EndObject();
    }
    w.EndArray();
    if (io_results.size() == 2 && io_results[1].actual == "uring" &&
        io_results[1].multiget_syscalls_per_batch > 0) {
      w.Field("syscall_collapse_multiget",
              io_results[0].multiget_syscalls_per_batch /
                  io_results[1].multiget_syscalls_per_batch);
    }
    w.WriteFile("BENCH_io.json");
  }
  return 0;
}
