// What-if scenarios (paper intro bullet 4 / Sec. 4.4): how should the
// design adapt, and what happens to performance, when (i) the memory
// budget, (ii) the workload mix, (iii) the data volume, or (iv) the
// storage medium changes? One row per question, answered by re-running the
// tuner on the changed environment.

#include <cstdio>

#include "monkey/design_space.h"

using namespace monkeydb;
using namespace monkeydb::monkey;

namespace {

const char* PolicyName(MergePolicy policy) {
  return policy == MergePolicy::kLeveling ? "leveling" : "tiering";
}

void PrintRow(const char* scenario, const WhatIfResult& r) {
  printf("%-26s | %-8s T=%-4.0f tau=%9.1f | %-8s T=%-4.0f tau=%9.1f | %+6.0f%%\n",
         scenario, PolicyName(r.before.policy), r.before.size_ratio,
         r.before.throughput, PolicyName(r.after.policy),
         r.after.size_ratio, r.after.throughput,
         (r.after.throughput / r.before.throughput - 1.0) * 100.0);
}

}  // namespace

int main() {
  Environment env;
  env.num_entries = 1e9;
  env.entry_size_bits = 128 * 8;
  env.total_memory_bits = 10.0 * env.num_entries;
  env.read_seconds = 10e-3;
  env.write_read_cost_ratio = 1.0;

  Workload w;
  w.zero_result_lookups = 0.4;
  w.nonzero_result_lookups = 0.1;
  w.updates = 0.5;

  printf("What-if design questions (baseline: N=1e9 x 128B, 10 bits/entry"
         " memory,\n50%% lookups / 50%% updates, disk)\n\n");
  printf("%-26s | %-32s | %-32s | %s\n", "scenario", "before (tuned)",
         "after (re-tuned)", "tau");

  PrintRow("(i) 4x main memory",
           WhatIfMemoryChanges(env, w, env.total_memory_bits * 4));
  PrintRow("(i) 1/4 main memory",
           WhatIfMemoryChanges(env, w, env.total_memory_bits / 4));

  Workload read_heavy = w;
  read_heavy.zero_result_lookups = 0.85;
  read_heavy.nonzero_result_lookups = 0.05;
  read_heavy.updates = 0.10;
  PrintRow("(ii) now read-heavy", WhatIfWorkloadChanges(env, w, read_heavy));
  Workload write_heavy = w;
  write_heavy.zero_result_lookups = 0.05;
  write_heavy.nonzero_result_lookups = 0.05;
  write_heavy.updates = 0.90;
  PrintRow("(ii) now write-heavy",
           WhatIfWorkloadChanges(env, w, write_heavy));

  PrintRow("(iii) 10x more entries",
           WhatIfDataGrows(env, w, env.num_entries * 10,
                           env.entry_size_bits));
  PrintRow("(iii) 8x larger entries",
           WhatIfDataGrows(env, w, env.num_entries,
                           env.entry_size_bits * 8));

  PrintRow("(iv) disk -> flash",
           WhatIfStorageChanges(env, w, 100e-6, 2.0));

  printf("\nReadout: more memory / flash raise throughput and shift the\n"
         "optimum; data growth lowers throughput; workload shifts flip the\n"
         "merge policy and size ratio exactly as Fig. 11(F) shows on the\n"
         "engine.\n");
  return 0;
}
