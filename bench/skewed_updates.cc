// Skewed updates (paper Sec. 6 cites Lim et al. [23]: skew makes updates
// cheaper than the worst-case model, because duplicate keys die young in
// shallow levels and never pay the full merge path).
//
// Measures per-put write I/O under uniform vs zipfian update keys and
// compares with the worst-case W of Eq. 10 — the model is an upper bound
// that tightens as skew disappears.

#include <cstdio>

#include "harness.h"
#include "monkey/cost_model.h"

using namespace monkeydb;
using namespace monkeydb::bench;

namespace {

double MeasureWritePerPut(double zipf_theta, int ops, int key_space) {
  auto base = NewMemEnv();
  IoStats stats;
  CountingEnv env(base.get(), &stats, kPageSize);
  DbOptions options;
  options.env = &env;
  options.merge_policy = MergePolicy::kLeveling;
  options.size_ratio = 4.0;
  options.buffer_size_bytes = 32 << 10;
  options.bits_per_entry = 5.0;
  options.fpr_policy = monkey::NewMonkeyFprPolicy();
  std::unique_ptr<DB> db;
  if (!DB::Open(options, "/db", &db).ok()) abort();

  Random rng(13);
  ZipfianGenerator zipf(key_space,
                        zipf_theta > 0 ? zipf_theta : 0.5);
  WriteOptions wo;
  const std::string value(48, 'v');
  for (int i = 0; i < ops; i++) {
    const uint64_t id = zipf_theta > 0
                            ? zipf.Next(&rng)
                            : rng.Uniform(key_space);
    const std::string key = MakeKey(id);
    if (!db->Put(wo, key, value).ok()) abort();
  }
  db->Flush().ok();
  return static_cast<double>(stats.Snapshot().write_ios) / ops;
}

}  // namespace

int main() {
  const int ops = 120000;
  const int key_space = 40000;  // 3x overwrite rate on average.
  printf("Skewed updates: write I/O per put, %d puts over %d keys "
         "(leveling T=4)\n\n", ops, key_space);
  printf("%-22s %18s\n", "update distribution", "write I/O / put");

  const double uniform = MeasureWritePerPut(0.0, ops, key_space);
  printf("%-22s %18.4f\n", "uniform", uniform);
  for (double theta : {0.7, 0.9, 0.99}) {
    const double skewed = MeasureWritePerPut(theta, ops, key_space);
    printf("zipfian theta=%-8.2f %18.4f  (%.0f%% of uniform)\n", theta,
           skewed, skewed / uniform * 100);
  }

  // Worst-case model reference: unique keys, no early elimination.
  monkey::DesignPoint d;
  d.policy = MergePolicy::kLeveling;
  d.size_ratio = 4.0;
  d.num_entries = key_space;
  d.entry_size_bits = 64 * 8.0;
  d.buffer_bits = (32 << 10) * 8.0;
  d.filter_bits = 5.0 * key_space;
  d.entries_per_page = kPageSize / 70.0;
  printf("\nWorst-case model W (Eq. 10, unique keys): %.4f I/O "
         "(write half ~%.4f)\n",
         monkey::UpdateCost(d), monkey::UpdateCost(d) / 2);
  printf("Expected shape: skew reduces write cost below the worst case —\n"
         "hot keys are superseded in shallow levels before reaching the\n"
         "expensive deep merges (Sec. 6, [23]).\n");
  return 0;
}
