// Figure 11(D): non-zero-result lookup cost vs temporal locality.
//
// Coefficient c: the c-fraction of most recently updated entries receives
// (1-c) of the lookups. Both designs pay >= 1 I/O for the target page; the
// delta above 1.0 is false positives, which Monkey nearly eliminates
// (~30% latency win in the paper).

#include <cstdio>

#include "harness.h"

using namespace monkeydb;
using namespace monkeydb::bench;

int main() {
  printf("Figure 11(D): non-zero-result lookup cost vs temporal locality\n");
  printf("(N=120000, T=2 leveling, 5 bits/entry; 1.0 I/O = the mandatory "
         "target read)\n\n");
  printf("%6s | %13s | %13s\n", "c", "uniform I/O", "monkey I/O");

  FillSpec spec;
  spec.num_keys = 120000;
  spec.bits_per_entry = 5.0;
  spec.buffer_bytes = 64 << 10;

  spec.monkey_filters = false;
  TestDb uniform = Fill(spec);
  spec.monkey_filters = true;
  TestDb monkey = Fill(spec);

  for (double c : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    const LookupResult u =
        MeasureNonZeroResultLookups(&uniform, 6000, c, 100 + c * 10);
    const LookupResult m =
        MeasureNonZeroResultLookups(&monkey, 6000, c, 100 + c * 10);
    printf("%6.1f | %13.4f | %13.4f\n", c, u.ios_per_lookup,
           m.ios_per_lookup);
  }
  printf("\nExpected shape: both curves are largely insensitive to c (even\n"
         "recent entries sit below several levels); Monkey's sits closer\n"
         "to the 1.0 floor because its shallow-level FPRs are tiny.\n");
  return 0;
}
