// Figure 9: lookup cost (top) and update cost (bottom) as the buffer/filter
// memory split varies. Monkey removes the dependence of lookup cost on the
// buffer size; the baseline's filters can actively HURT lookups when the
// memory would be better spent on the buffer.

#include <cstdio>

#include "monkey/cost_model.h"

using namespace monkeydb;
using namespace monkeydb::monkey;

int main() {
  // Total memory M to split between buffer and filters.
  const double n = 1e8;
  const double entry_bits = 128 * 8;
  const double m_total = 16.0 * n;  // 16 bits/entry overall.
  const double page_bits = 4096.0 * 8;

  printf("Figure 9: cost vs main-memory allocation "
         "(M = %.0f bits = %.1f bits/entry)\n\n",
         m_total, m_total / n);
  printf("%16s %12s %14s %12s %12s\n", "M_buffer", "(share)",
         "R baseline", "R Monkey", "W (I/O)");

  // Sweep M_buffer from one disk page to all of M (log-scale, Fig. 9).
  for (double share = page_bits / m_total; share <= 1.0; share *= 4) {
    DesignPoint d;
    d.policy = MergePolicy::kLeveling;
    d.size_ratio = 4.0;
    d.num_entries = n;
    d.entry_size_bits = entry_bits;
    d.buffer_bits = std::max(page_bits, m_total * share);
    d.filter_bits = m_total - d.buffer_bits;
    if (d.filter_bits < 0) d.filter_bits = 0;
    d.entries_per_page = page_bits / entry_bits;

    char label[32];
    snprintf(label, sizeof(label), "%.0f KB",
             d.buffer_bits / 8.0 / 1024.0);
    printf("%16s %11.4f%% %14.6f %12.6f %12.6f\n", label, share * 100.0,
           BaselineZeroResultLookupCost(d), ZeroResultLookupCost(d),
           UpdateCost(d));
  }

  printf("\nReadout: Monkey's R stays flat while the buffer share is small\n"
         "(lookup cost independent of M_buffer, Sec. 4.3); the baseline's R\n"
         "first falls as the buffer grows (fewer levels), showing its filters\n"
         "were mis-allocated. W falls with the buffer throughout, with\n"
         "diminishing returns — the 'sweet spot' of Sec. 4.4.\n");
  return 0;
}
