// Figure 10: the divide-and-conquer tuning walk over the linearized
// (merge policy, size ratio) continuum (Appendix D).
//
// Prints the sequence of candidates the tuner probes for a mixed workload
// and the final choice, plus the exhaustive-search reference.

#include <cstdio>
#include <vector>

#include "monkey/tuner.h"

using namespace monkeydb;
using namespace monkeydb::monkey;

int main() {
  Environment env;
  env.num_entries = 1e8;
  env.entry_size_bits = 128 * 8;
  env.total_memory_bits = 12.0 * env.num_entries;
  env.read_seconds = 10e-3;

  Workload w;
  w.zero_result_lookups = 0.25;
  w.updates = 0.75;

  printf("Figure 10: divide-and-conquer walk (25%% lookups / 75%% "
         "updates)\n\n");
  printf("%5s %-9s %6s %12s %12s %14s\n", "probe", "policy", "T",
         "R (I/O)", "W (I/O)", "theta (I/O)");

  std::vector<Tuning> trace;
  const Tuning best = AutotuneSizeRatioAndPolicy(env, w, SlaBounds(), &trace);
  int i = 0;
  for (const Tuning& t : trace) {
    printf("%5d %-9s %6.0f %12.6f %12.6f %14.6f\n", i++,
           t.policy == MergePolicy::kLeveling ? "leveling" : "tiering",
           t.size_ratio, t.lookup_cost, t.update_cost, t.avg_op_cost);
  }

  printf("\nChosen:      %-9s T=%.0f  theta=%.6f  throughput=%.1f ops/s\n",
         best.policy == MergePolicy::kLeveling ? "leveling" : "tiering",
         best.size_ratio, best.avg_op_cost, best.throughput);

  const Tuning reference = ExhaustiveSearch(env, w);
  printf("Exhaustive:  %-9s T=%.0f  theta=%.6f  throughput=%.1f ops/s\n",
         reference.policy == MergePolicy::kLeveling ? "leveling" : "tiering",
         reference.size_ratio, reference.avg_op_cost, reference.throughput);
  printf("\nProbes used: %zu (vs %.0f candidates in the full space)\n",
         trace.size(),
         2 * (env.num_entries * env.entry_size_bits /
                  (env.total_memory_bits / 2) -
              2));
  return 0;
}
