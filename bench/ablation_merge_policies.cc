// Ablation: leveling vs tiering vs lazy leveling (extension), model and
// engine side by side. Lazy leveling should pay tiering-like update costs
// while keeping lookups near leveling — the design point the paper's
// framework makes discoverable.

#include <cstdio>

#include "harness.h"
#include "monkey/cost_model.h"

using namespace monkeydb;
using namespace monkeydb::bench;

namespace {

const char* PolicyName(MergePolicy policy) {
  switch (policy) {
    case MergePolicy::kLeveling:
      return "leveling";
    case MergePolicy::kTiering:
      return "tiering";
    case MergePolicy::kLazyLeveling:
      return "lazy-leveling";
  }
  return "?";
}

}  // namespace

int main() {
  printf("Ablation: merge policies (T=4, 5 bits/entry, Monkey filters)\n\n");

  // --- Model ---
  printf("Model (N=1e8, E=128B, buffer 2MB):\n");
  printf("%-14s %12s %12s %12s %14s\n", "policy", "R (I/O)", "V (I/O)",
         "W (I/O)", "Q s=1e-5 (I/O)");
  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kLazyLeveling,
        MergePolicy::kTiering}) {
    monkey::DesignPoint d;
    d.policy = policy;
    d.size_ratio = 4.0;
    d.num_entries = 1e8;
    d.entry_size_bits = 128 * 8;
    d.buffer_bits = 2.0 * (1 << 20) * 8;
    d.filter_bits = 5.0 * d.num_entries;
    d.entries_per_page = 32;
    printf("%-14s %12.5f %12.5f %12.5f %14.3f\n", PolicyName(policy),
           monkey::ZeroResultLookupCost(d),
           monkey::NonZeroResultLookupCost(d), monkey::UpdateCost(d),
           monkey::RangeLookupCost(d, 1e-5));
  }

  // --- Engine ---
  printf("\nEngine (N=60000, measured I/Os):\n");
  printf("%-14s %14s %16s %14s\n", "policy", "zero-R I/O",
         "write I/O / put", "runs in tree");
  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kLazyLeveling,
        MergePolicy::kTiering}) {
    FillSpec spec;
    spec.num_keys = 60000;
    spec.policy = policy;
    spec.size_ratio = 4.0;
    spec.bits_per_entry = 5.0;
    spec.buffer_bytes = 32 << 10;
    spec.monkey_filters = true;
    TestDb db = Fill(spec);
    const double write_per_put =
        static_cast<double>(db.stats->Snapshot().write_ios) / spec.num_keys;
    const LookupResult r = MeasureZeroResultLookups(&db, 6000);
    printf("%-14s %14.4f %16.4f %14llu\n", PolicyName(policy),
           r.ios_per_lookup, write_per_put,
           static_cast<unsigned long long>(db.db->GetStats().total_runs));
  }
  printf("\nExpected shape: lazy-leveling's write cost sits near tiering's\n"
         "while its lookup cost sits near leveling's — the hybrid unlocks\n"
         "a point outside the two pure curves.\n");
  return 0;
}
