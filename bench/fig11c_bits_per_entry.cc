// Figure 11(C): lookup cost vs filter memory (bits per entry).
//
// At 0 bits both designs are the unfiltered LSM-tree; as memory grows
// Monkey pulls ahead, and it matches the baseline's lookup cost with a
// substantially smaller filter budget (~60% less in the paper).

#include <cstdio>
#include <vector>

#include "harness.h"

using namespace monkeydb;
using namespace monkeydb::bench;

int main() {
  printf("Figure 11(C): zero-result lookup cost vs bits per entry "
         "(N=120000, T=2 leveling)\n\n");
  printf("%12s | %13s | %13s\n", "bits/entry", "uniform I/O", "monkey I/O");

  std::vector<double> bpes = {0.0, 1.0, 2.0, 3.0,  4.0, 5.0,
                              6.0, 7.0, 8.0, 9.0, 10.0};
  std::vector<double> uniform_io(bpes.size()), monkey_io(bpes.size());
  for (size_t i = 0; i < bpes.size(); i++) {
    FillSpec spec;
    spec.num_keys = 120000;
    spec.bits_per_entry = bpes[i];
    spec.buffer_bytes = 64 << 10;

    spec.monkey_filters = false;
    TestDb uniform = Fill(spec);
    spec.monkey_filters = true;
    TestDb monkey = Fill(spec);

    uniform_io[i] = MeasureZeroResultLookups(&uniform, 8000).ios_per_lookup;
    monkey_io[i] = MeasureZeroResultLookups(&monkey, 8000).ios_per_lookup;
    printf("%12.1f | %13.4f | %13.4f\n", bpes[i], uniform_io[i],
           monkey_io[i]);
  }

  // Memory-equivalence readout: the Monkey budget whose lookup cost
  // matches the uniform baseline at 10 bits/entry (linear interpolation
  // between sweep points). The margin grows with the number of levels —
  // the paper's ~60% figure is at a much larger data scale (Sec. 5).
  const double target = uniform_io.back();
  for (size_t i = 1; i < bpes.size(); i++) {
    if (monkey_io[i] <= target) {
      double bpe = bpes[i];
      if (monkey_io[i - 1] > monkey_io[i]) {
        const double f =
            (monkey_io[i - 1] - target) / (monkey_io[i - 1] - monkey_io[i]);
        bpe = bpes[i - 1] + f * (bpes[i] - bpes[i - 1]);
      }
      printf("\nMonkey matches the baseline's 10-bits/entry lookup cost "
             "with ~%.1f bits/entry\n(%.0f%% less memory at this scale; "
             "the margin grows with the level count).\n",
             bpe, (1.0 - bpe / 10.0) * 100.0);
      break;
    }
  }
  return 0;
}
