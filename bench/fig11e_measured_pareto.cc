// Figure 11(E): the measured trade-off curve — average lookup cost vs
// average update cost across (merge policy, size ratio), for the uniform
// baseline and Monkey. Monkey shifts the whole curve down to the Pareto
// frontier (up to 60% cheaper lookups, tradeable for up to 70% cheaper
// updates).

#include <cstdio>

#include "harness.h"

using namespace monkeydb;
using namespace monkeydb::bench;

namespace {

struct Point {
  double lookup_io;
  double update_io;
};

Point Measure(MergePolicy policy, double t, bool monkey_filters) {
  FillSpec spec;
  spec.num_keys = 100000;
  spec.policy = policy;
  spec.size_ratio = t;
  spec.bits_per_entry = 5.0;
  spec.buffer_bytes = 64 << 10;
  spec.monkey_filters = monkey_filters;
  TestDb db = Fill(spec);

  // Amortized update cost: write+read I/Os of the whole load divided by
  // the number of inserts (the paper's worst-case unique-key pattern).
  const auto io = db.stats->Snapshot();
  Point p;
  p.update_io =
      static_cast<double>(io.write_ios + io.read_ios) / spec.num_keys;
  p.lookup_io = MeasureZeroResultLookups(&db, 8000).ios_per_lookup;
  return p;
}

}  // namespace

int main() {
  printf("Figure 11(E): measured lookup vs update cost across the design "
         "space\n(N=100000, 5 bits/entry; update cost includes merge read "
         "I/Os)\n\n");
  printf("%-9s %4s | %12s %12s | %12s %12s | %8s\n", "policy", "T",
         "R uniform", "W uniform", "R monkey", "W monkey", "R gain");

  struct Config {
    MergePolicy policy;
    double t;
  };
  const Config configs[] = {
      {MergePolicy::kTiering, 16.0}, {MergePolicy::kTiering, 8.0},
      {MergePolicy::kTiering, 6.0},  {MergePolicy::kTiering, 4.0},
      {MergePolicy::kTiering, 2.0},  {MergePolicy::kLeveling, 2.0},
      {MergePolicy::kLeveling, 4.0}, {MergePolicy::kLeveling, 6.0},
      {MergePolicy::kLeveling, 8.0}, {MergePolicy::kLeveling, 16.0},
  };
  for (const Config& c : configs) {
    const Point uniform = Measure(c.policy, c.t, false);
    const Point monkey = Measure(c.policy, c.t, true);
    const double gain =
        uniform.lookup_io > 0
            ? (uniform.lookup_io - monkey.lookup_io) / uniform.lookup_io
            : 0;
    printf("%-9s %4.0f | %12.4f %12.4f | %12.4f %12.4f | %7.1f%%\n",
           c.policy == MergePolicy::kLeveling ? "leveling" : "tiering", c.t,
           uniform.lookup_io, uniform.update_io, monkey.lookup_io,
           monkey.update_io, gain * 100.0);
  }
  printf("\nExpected shape: moving down the table (tiering T=16 -> leveling"
         "\nT=16) lookups get cheaper and updates dearer; at every row the\n"
         "Monkey lookup column beats the uniform one at equal update "
         "cost.\n");
  return 0;
}
