#include "server/resp.h"

#include <cstdio>

namespace monkeydb {

namespace {

// Finds "\r\n" starting at data[pos], returning the index of '\r' or
// SIZE_MAX if the terminator has not arrived yet.
size_t FindCrlf(const char* data, size_t len, size_t pos) {
  if (len < 1) return SIZE_MAX;
  for (size_t i = pos; i + 1 < len; ++i) {
    if (data[i] == '\r' && data[i + 1] == '\n') return i;
  }
  return SIZE_MAX;
}

// Strict decimal parse of [begin, end); no sign, no blanks. Returns false
// on empty input, a non-digit, or overflow past max.
bool ParseUint(const char* begin, const char* end, uint64_t max,
               uint64_t* out) {
  if (begin == end) return false;
  uint64_t v = 0;
  for (const char* p = begin; p != end; ++p) {
    if (*p < '0' || *p > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(*p - '0');
    if (v > (max - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

std::string PrintableByte(char c) {
  if (c >= 0x20 && c < 0x7f) return std::string(1, c);
  char buf[8];
  snprintf(buf, sizeof(buf), "\\x%02x", static_cast<unsigned char>(c));
  return buf;
}

}  // namespace

RespParser::Result RespParser::ParseOne(const char* data, size_t len,
                                        size_t* pos,
                                        std::vector<Slice>* args) {
  // Loop so empty frames (blank inline lines, *0 arrays) are skipped
  // without bouncing back to the caller with zero-argument commands.
  while (true) {
    if (*pos >= len) return Result::kNeedMore;
    const Result r = data[*pos] == '*'
                         ? ParseMultibulk(data, len, pos, args)
                         : ParseInline(data, len, pos, args);
    if (r != Result::kCommand) return r;
    if (!args->empty()) return Result::kCommand;
  }
}

RespParser::Result RespParser::ParseMultibulk(const char* data, size_t len,
                                              size_t* pos,
                                              std::vector<Slice>* args) {
  args->clear();
  size_t cur = *pos;  // cur sits on '*'.
  size_t eol = FindCrlf(data, len, cur);
  if (eol == SIZE_MAX) {
    if (len - cur > 32) return Fail("invalid multibulk length");
    return Result::kNeedMore;
  }
  uint64_t count = 0;
  // "*-1\r\n" (null array) is tolerated as an empty frame, like Redis.
  if (eol > cur + 1 && data[cur + 1] == '-') {
    uint64_t ignored;
    if (!ParseUint(data + cur + 2, data + eol, UINT64_MAX, &ignored)) {
      return Fail("invalid multibulk length");
    }
    *pos = eol + 2;
    return Result::kCommand;  // args empty; ParseOne keeps scanning.
  }
  if (!ParseUint(data + cur + 1, data + eol, limits_.max_multibulk,
                 &count)) {
    return Fail("invalid multibulk length");
  }
  cur = eol + 2;
  args->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (cur >= len) return Result::kNeedMore;
    if (data[cur] != '$') {
      return Fail("expected '$', got '" + PrintableByte(data[cur]) + "'");
    }
    eol = FindCrlf(data, len, cur);
    if (eol == SIZE_MAX) {
      if (len - cur > 32) return Fail("invalid bulk length");
      return Result::kNeedMore;
    }
    uint64_t blen = 0;
    if (!ParseUint(data + cur + 1, data + eol, limits_.max_bulk_bytes,
                   &blen)) {
      return Fail("invalid bulk length");
    }
    const size_t payload = eol + 2;
    if (payload + blen + 2 > len) return Result::kNeedMore;
    if (data[payload + blen] != '\r' || data[payload + blen + 1] != '\n') {
      return Fail("bulk payload not terminated by CRLF");
    }
    args->emplace_back(data + payload, blen);
    cur = payload + blen + 2;
  }
  *pos = cur;
  return Result::kCommand;
}

RespParser::Result RespParser::ParseInline(const char* data, size_t len,
                                           size_t* pos,
                                           std::vector<Slice>* args) {
  args->clear();
  const size_t eol = FindCrlf(data, len, *pos);
  if (eol == SIZE_MAX) {
    if (len - *pos > limits_.max_inline_bytes) {
      return Fail("too big inline request");
    }
    return Result::kNeedMore;
  }
  if (eol - *pos > limits_.max_inline_bytes) {
    return Fail("too big inline request");
  }
  size_t i = *pos;
  while (i < eol) {
    while (i < eol && (data[i] == ' ' || data[i] == '\t')) ++i;
    const size_t start = i;
    while (i < eol && data[i] != ' ' && data[i] != '\t') ++i;
    if (i > start) args->emplace_back(data + start, i - start);
  }
  *pos = eol + 2;
  return Result::kCommand;  // May be empty (blank line): caller skips.
}

namespace resp {

void AppendSimpleString(std::string* out, const Slice& s) {
  out->push_back('+');
  out->append(s.data(), s.size());
  out->append("\r\n");
}

void AppendError(std::string* out, const Slice& msg) {
  out->push_back('-');
  out->append(msg.data(), msg.size());
  out->append("\r\n");
}

void AppendInteger(std::string* out, long long v) {
  char buf[32];
  const int n = snprintf(buf, sizeof(buf), ":%lld\r\n", v);
  out->append(buf, static_cast<size_t>(n));
}

void AppendBulk(std::string* out, const Slice& s) {
  char buf[32];
  const int n = snprintf(buf, sizeof(buf), "$%zu\r\n", s.size());
  out->append(buf, static_cast<size_t>(n));
  out->append(s.data(), s.size());
  out->append("\r\n");
}

void AppendNull(std::string* out) { out->append("$-1\r\n"); }

void AppendArrayHeader(std::string* out, size_t n) {
  char buf[32];
  const int len = snprintf(buf, sizeof(buf), "*%zu\r\n", n);
  out->append(buf, static_cast<size_t>(len));
}

}  // namespace resp

bool GlobMatch(const Slice& pattern, const Slice& str) {
  size_t p = 0, s = 0;
  size_t star_p = SIZE_MAX, star_s = 0;
  while (s < str.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == str[s])) {
      ++p;
      ++s;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star_p = p++;
      star_s = s;
    } else if (star_p != SIZE_MAX) {
      p = star_p + 1;
      s = ++star_s;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace monkeydb
