#include "server/command.h"

#include <cstring>

namespace monkeydb {

namespace {

constexpr CommandSpec kCommands[] = {
    {CommandId::kGet, "get", CommandClass::kRead, 2, 2, 1},
    {CommandId::kMGet, "mget", CommandClass::kRead, 2, -1, 1},
    {CommandId::kExists, "exists", CommandClass::kRead, 2, -1, 1},
    {CommandId::kSet, "set", CommandClass::kWrite, 3, 3, 1},
    {CommandId::kMSet, "mset", CommandClass::kWrite, 3, -1, 2},
    {CommandId::kDel, "del", CommandClass::kWrite, 2, -1, 1},
    {CommandId::kScan, "scan", CommandClass::kAdmin, 2, 6, 1},
    {CommandId::kPing, "ping", CommandClass::kAdmin, 1, 2, 1},
    {CommandId::kEcho, "echo", CommandClass::kAdmin, 2, 2, 1},
    {CommandId::kInfo, "info", CommandClass::kAdmin, 1, 2, 1},
    {CommandId::kConfig, "config", CommandClass::kAdmin, 2, 3, 1},
    {CommandId::kCommand, "command", CommandClass::kAdmin, 1, -1, 1},
    {CommandId::kSelect, "select", CommandClass::kAdmin, 2, 2, 1},
    {CommandId::kDbSize, "dbsize", CommandClass::kAdmin, 1, 1, 1},
    {CommandId::kQuit, "quit", CommandClass::kAdmin, 1, 1, 1},
    {CommandId::kShutdown, "shutdown", CommandClass::kAdmin, 1, 2, 1},
    // SLOWLOG GET [n] | RESET | LEN (Redis-compatible subcommands; the
    // entries additionally carry the request's span tree).
    {CommandId::kSlowlog, "slowlog", CommandClass::kAdmin, 2, 3, 1},
    // TRACE JSON|TREE [ms]: flight-recorder dump, Chrome JSON or an
    // indented span-tree text, optionally limited to the last N ms.
    {CommandId::kTrace, "trace", CommandClass::kAdmin, 1, 3, 1},
};

// Per-spec arity complaints, built once (the reply borrows the storage).
struct ArityMessages {
  std::string messages[sizeof(kCommands) / sizeof(kCommands[0])];
  ArityMessages() {
    for (size_t i = 0; i < sizeof(kCommands) / sizeof(kCommands[0]); ++i) {
      messages[i] = std::string("ERR wrong number of arguments for '") +
                    kCommands[i].name + "' command";
    }
  }
};

}  // namespace

const CommandSpec* LookupCommand(const Slice& name) {
  for (const CommandSpec& spec : kCommands) {
    const size_t n = strlen(spec.name);
    if (name.size() != n) continue;
    size_t i = 0;
    for (; i < n; ++i) {
      char c = name[i];
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
      if (c != spec.name[i]) break;
    }
    if (i == n) return &spec;
  }
  return nullptr;
}

const char* CheckArity(const CommandSpec& spec, size_t nargs) {
  static const ArityMessages kMessages;
  const int n = static_cast<int>(nargs);
  const bool ok =
      n >= spec.min_args &&
      (spec.max_args < 0 || n <= spec.max_args) &&
      (spec.step <= 1 || (n - spec.min_args) % spec.step == 0);
  if (ok) return nullptr;
  return kMessages.messages[&spec - kCommands].c_str();
}

}  // namespace monkeydb
