#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <set>
#include <utility>

#include "io/uring_env.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "server/resp.h"

namespace monkeydb {

namespace {

// Monotonic microsecond clock for the per-command latency summaries.
uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status CreateListener(const std::string& bind_addr, int port, int backlog,
                      int* out_fd) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // The whole listener set binds the same port; the kernel load-balances
  // incoming connections across the per-shard sockets.
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " + bind_addr);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = strerror(errno);
    ::close(fd);
    return Status::IoError("bind(" + bind_addr + "): " + err);
  }
  if (::listen(fd, backlog) < 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    return Status::IoError("listen: " + err);
  }
  *out_fd = fd;
  return Status::OK();
}

int BoundPort(int fd) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

std::string U64(uint64_t v) { return std::to_string(v); }

// Rewrites one Prometheus sample line to carry a shard label. The label
// is appended after any existing ones — tools/metrics_lint.py greps for
// the literal `monkey_predicted_fpr{level="1"}` prefix, which appending
// preserves:
//   name{a="b"} v  ->  name{a="b",shard="2"} v
//   name v         ->  name{shard="2"} v
std::string AddShardLabel(const std::string& line, int shard) {
  const std::string label = "shard=\"" + std::to_string(shard) + "\"";
  const size_t brace = line.find('{');
  const size_t space = line.find(' ');
  if (brace != std::string::npos &&
      (space == std::string::npos || brace < space)) {
    const size_t close = line.find('}', brace);
    if (close == std::string::npos) return line;  // Malformed; keep.
    const bool empty_set = close == brace + 1;
    return line.substr(0, close) + (empty_set ? "" : ",") + label +
           line.substr(close);
  }
  if (space == std::string::npos) return line;  // Not a sample; keep.
  return line.substr(0, space) + "{" + label + "}" + line.substr(space);
}

}  // namespace

MonkeyServer::MonkeyServer(const ServerOptions& options,
                           std::string data_dir)
    : opts_(options),
      data_dir_(std::move(data_dir)),
      router_(options.server_shards) {}

Status MonkeyServer::Start(const ServerOptions& options,
                           const std::string& data_dir,
                           std::unique_ptr<MonkeyServer>* out) {
  if (options.server_shards < 1) {
    return Status::InvalidArgument("server_shards must be >= 1");
  }
  if (options.server_max_pipeline < 1) {
    return Status::InvalidArgument("server_max_pipeline must be >= 1");
  }
  if (options.server_output_hard_limit_bytes <
      options.server_output_soft_limit_bytes) {
    return Status::InvalidArgument(
        "server_output_hard_limit_bytes < soft limit");
  }
  std::unique_ptr<MonkeyServer> server(
      new MonkeyServer(options, data_dir));
  if (options.server_enable_metrics) {
    server->metrics_ = std::make_unique<MetricsRegistry>();
  }
  // Head-sampling rate for request tracing; a MONKEYDB_TRACE_SAMPLE
  // environment override wins (DESIGN.md §16).
  ApplyTraceSampleRateOption(options.trace_sample_rate);

  // Shard DBs first: an accepted connection must always find a live
  // engine behind every shard index.
  Env* dir_env = options.db_options.env != nullptr ? options.db_options.env
                                                   : GetPosixEnv();
  // Parent directory for the shard trees; fails harmlessly when present.
  // monkey-lint: status-sink — an already-existing directory is the
  // common case; a real create failure surfaces on the shard Open below.
  dir_env->CreateDir(data_dir).IgnoreError();
  for (int i = 0; i < options.server_shards; ++i) {
    std::unique_ptr<DB> db;
    const std::string shard_dir =
        data_dir + "/shard-" + std::to_string(i);
    Status s = DB::Open(options.db_options, shard_dir, &db);
    if (!s.ok()) {
      return Status::IoError("open shard " + std::to_string(i) + ": " +
                             s.ToString());
    }
    server->dbs_.push_back(std::move(db));
  }

  // Listener set: bind the first socket (resolving port 0 to a real
  // ephemeral port), then bind the rest to the resolved port so the
  // whole SO_REUSEPORT group shares it.
  std::vector<int> listen_fds;
  int port = options.server_port;
  for (int i = 0; i < options.server_shards; ++i) {
    int fd = -1;
    Status s = CreateListener(options.server_bind, port,
                              options.server_backlog, &fd);
    if (!s.ok()) {
      for (int old : listen_fds) ::close(old);
      return s;
    }
    if (i == 0) port = BoundPort(fd);
    listen_fds.push_back(fd);
  }
  server->port_ = port;

  for (int i = 0; i < options.server_shards; ++i) {
    auto loop = std::make_unique<EventLoop>(i, server.get());
    Status s = loop->Init(listen_fds[static_cast<size_t>(i)]);
    if (!s.ok()) {
      // Init took ownership of its fd; close the not-yet-adopted rest.
      for (int j = i + 1; j < options.server_shards; ++j) {
        ::close(listen_fds[static_cast<size_t>(j)]);
      }
      return s;
    }
    server->loops_.push_back(std::move(loop));
  }
  for (auto& loop : server->loops_) {
    server->threads_.emplace_back([l = loop.get()] { l->Run(); });
  }
  server->started_ = true;
  *out = std::move(server);
  return Status::OK();
}

MonkeyServer::~MonkeyServer() { Stop(); }

void MonkeyServer::Stop() {
  if (!started_ || stopped_.exchange(true)) return;
  for (auto& loop : loops_) loop->RequestStop();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  loops_.clear();  // Destroys the remaining connections + sockets.
  // Shard DBs stay open until destruction: stats, INFO text, and metrics
  // remain readable after Stop (the bench reads its counters post-run).
}

MonkeyServer::EngineCalls MonkeyServer::engine_calls() const {
  EngineCalls calls;
  calls.point_gets = point_gets_.load(std::memory_order_relaxed);
  calls.multigets = multigets_.load(std::memory_order_relaxed);
  calls.writes = engine_writes_.load(std::memory_order_relaxed);
  calls.scans = scans_.load(std::memory_order_relaxed);
  return calls;
}

size_t MonkeyServer::live_connections() const {
  size_t total = 0;
  for (const auto& loop : loops_) total += loop->live_connections();
  return total;
}

// --- Command execution ------------------------------------------------

void MonkeyServer::RecordCommandLatency(Hist hist, uint64_t micros,
                                        uint64_t n) {
  if (metrics_ == nullptr) return;
  for (uint64_t i = 0; i < n; ++i) metrics_->Record(hist, micros);
}

void MonkeyServer::Execute(Connection* c,
                           std::vector<ParsedCommand>* cmds) {
  commands_.fetch_add(cmds->size(), std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->Record(Hist::kServerPipelineDepth, cmds->size());
    for (size_t i = 0; i < cmds->size(); ++i) {
      metrics_->Tick1(Tick::kServerCommands);
    }
  }
  const size_t n = cmds->size();
  size_t i = 0;
  while (i < n && !c->closing()) {
    const CommandSpec* spec = (*cmds)[i].spec;
    const CommandClass cls =
        spec != nullptr ? spec->cls : CommandClass::kAdmin;
    if (cls == CommandClass::kAdmin) {
      ExecuteAdmin(c, (*cmds)[i]);
      ++i;
      continue;
    }
    // Extend the run of same-class commands: they may be reordered
    // against each other freely (reads share one snapshot per shard,
    // writes commit as one batch per shard), but never across a
    // class boundary — that is what preserves per-connection
    // read-your-own-writes ordering.
    size_t j = i + 1;
    while (j < n && (*cmds)[j].spec != nullptr &&
           (*cmds)[j].spec->cls == cls) {
      ++j;
    }
    if (cls == CommandClass::kRead) {
      ExecuteReadRun(c, *cmds, i, j);
    } else {
      ExecuteWriteRun(c, *cmds, i, j);
    }
    i = j;
  }
}

void MonkeyServer::ExecuteReadRun(Connection* c,
                                  const std::vector<ParsedCommand>& cmds,
                                  size_t begin, size_t end) {
  std::string* out = c->out();
  // Arm tracing for this run: head-sampled, plus always-on while SLOWLOG
  // is active so a run that turns out slow has its span tree on capture.
  const bool slowlog_on = opts_.slowlog_threshold_us > 0;
  TraceArmer trace_armer(slowlog_on || TraceSampleHead());

  // Flatten every key of the run, remembering each command's span.
  struct ReadCmd {
    size_t first = 0;
    size_t nkeys = 0;
    const char* arity_error = nullptr;
  };
  std::vector<ReadCmd> run;
  std::vector<Slice> keys;
  run.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    const ParsedCommand& cmd = cmds[i];
    ReadCmd rc;
    rc.arity_error = CheckArity(*cmd.spec, cmd.args.size());
    rc.first = keys.size();
    if (rc.arity_error == nullptr) {
      for (size_t a = 1; a < cmd.args.size(); ++a) {
        keys.push_back(cmd.args[a]);
      }
      rc.nkeys = cmd.args.size() - 1;
    }
    run.push_back(rc);
  }

  // One engine interaction per shard: a batch becomes MultiGet, a
  // singleton stays a plain Get.
  std::vector<std::string> values(keys.size());
  std::vector<Status> statuses(keys.size());
  const bool timed = metrics_ != nullptr || slowlog_on;
  const uint64_t start = timed ? NowMicros() : 0;
  TraceSpan cmd_span(TraceName::kServerCommand,
                     static_cast<int64_t>(cmds[begin].spec->id),
                     static_cast<int64_t>(end - begin),
                     static_cast<int64_t>(keys.size()));
  const ReadOptions ropts;
  if (router_.shards() == 1) {
    if (keys.size() == 1) {
      statuses[0] = dbs_[0]->Get(ropts, keys[0], &values[0]);
      point_gets_.fetch_add(1, std::memory_order_relaxed);
    } else if (keys.size() > 1) {
      statuses = dbs_[0]->MultiGet(ropts, keys, &values);
      multigets_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    std::vector<std::vector<size_t>> by_shard(
        static_cast<size_t>(router_.shards()));
    for (size_t k = 0; k < keys.size(); ++k) {
      by_shard[static_cast<size_t>(router_.ShardOf(keys[k]))].push_back(k);
    }
    for (size_t s = 0; s < by_shard.size(); ++s) {
      const std::vector<size_t>& idx = by_shard[s];
      if (idx.empty()) continue;
      if (idx.size() == 1) {
        statuses[idx[0]] =
            dbs_[s]->Get(ropts, keys[idx[0]], &values[idx[0]]);
        point_gets_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      std::vector<Slice> shard_keys;
      shard_keys.reserve(idx.size());
      for (size_t k : idx) shard_keys.push_back(keys[k]);
      std::vector<std::string> shard_values;
      std::vector<Status> shard_statuses =
          dbs_[s]->MultiGet(ropts, shard_keys, &shard_values);
      multigets_.fetch_add(1, std::memory_order_relaxed);
      // Reassemble in request order.
      for (size_t k = 0; k < idx.size(); ++k) {
        values[idx[k]] = std::move(shard_values[k]);
        statuses[idx[k]] = shard_statuses[k];
      }
    }
  }
  cmd_span.Finish();
  const uint64_t elapsed = timed ? NowMicros() - start : 0;
  if (slowlog_on && elapsed >= opts_.slowlog_threshold_us) {
    RecordSlowRun(cmds[begin], end - begin, elapsed);
  }

  // Replies, in command order.
  uint64_t n_get = 0, n_mget = 0, n_other = 0;
  for (size_t i = begin; i < end; ++i) {
    const ParsedCommand& cmd = cmds[i];
    const ReadCmd& rc = run[i - begin];
    if (rc.arity_error != nullptr) {
      resp::AppendError(out, rc.arity_error);
      continue;
    }
    switch (cmd.spec->id) {
      case CommandId::kGet: {
        const Status& s = statuses[rc.first];
        if (s.ok()) {
          resp::AppendBulk(out, values[rc.first]);
        } else if (s.IsNotFound()) {
          resp::AppendNull(out);
        } else {
          const std::string msg = "ERR " + s.ToString();
          resp::AppendError(out, msg);
        }
        ++n_get;
        break;
      }
      case CommandId::kMGet: {
        resp::AppendArrayHeader(out, rc.nkeys);
        for (size_t k = 0; k < rc.nkeys; ++k) {
          const Status& s = statuses[rc.first + k];
          if (s.ok()) {
            resp::AppendBulk(out, values[rc.first + k]);
          } else {
            resp::AppendNull(out);  // MGET degrades errors to nil.
          }
        }
        ++n_mget;
        break;
      }
      case CommandId::kExists: {
        long long found = 0;
        for (size_t k = 0; k < rc.nkeys; ++k) {
          if (statuses[rc.first + k].ok()) ++found;
        }
        resp::AppendInteger(out, found);
        ++n_other;
        break;
      }
      default:
        resp::AppendError(out, "ERR internal: non-read command in run");
        break;
    }
  }
  RecordCommandLatency(Hist::kServerGetLatency, elapsed, n_get);
  RecordCommandLatency(Hist::kServerMGetLatency, elapsed, n_mget);
  RecordCommandLatency(Hist::kServerOtherLatency, elapsed, n_other);
}

void MonkeyServer::ExecuteWriteRun(Connection* c,
                                   const std::vector<ParsedCommand>& cmds,
                                   size_t begin, size_t end) {
  std::string* out = c->out();
  const size_t nshards = static_cast<size_t>(router_.shards());
  const bool slowlog_on = opts_.slowlog_threshold_us > 0;
  TraceArmer trace_armer(slowlog_on || TraceSampleHead());

  // DEL needs to report how many of its keys existed; probe them all in
  // one batched existence pass per shard before the deletes commit.
  std::vector<std::vector<Slice>> del_keys(nshards);
  for (size_t i = begin; i < end; ++i) {
    const ParsedCommand& cmd = cmds[i];
    if (cmd.spec->id != CommandId::kDel ||
        CheckArity(*cmd.spec, cmd.args.size()) != nullptr) {
      continue;
    }
    for (size_t a = 1; a < cmd.args.size(); ++a) {
      del_keys[static_cast<size_t>(router_.ShardOf(cmd.args[a]))]
          .push_back(cmd.args[a]);
    }
  }
  const bool timed = metrics_ != nullptr || slowlog_on;
  const uint64_t start = timed ? NowMicros() : 0;
  TraceSpan cmd_span(TraceName::kServerCommand,
                     static_cast<int64_t>(cmds[begin].spec->id),
                     static_cast<int64_t>(end - begin), 0);
  // exists[shard] maps key -> found (a key DEL'd twice in one run counts
  // once per mention, matching sequential semantics closely enough for a
  // batch that commits atomically).
  std::vector<std::map<std::string, bool>> exists(nshards);
  const ReadOptions ropts;
  for (size_t s = 0; s < nshards; ++s) {
    if (del_keys[s].empty()) continue;
    if (del_keys[s].size() == 1) {
      std::string scratch;
      const Status st = dbs_[s]->Get(ropts, del_keys[s][0], &scratch);
      point_gets_.fetch_add(1, std::memory_order_relaxed);
      exists[s][del_keys[s][0].ToString()] = st.ok();
      continue;
    }
    std::vector<std::string> scratch;
    const std::vector<Status> sts =
        dbs_[s]->MultiGet(ropts, del_keys[s], &scratch);
    multigets_.fetch_add(1, std::memory_order_relaxed);
    for (size_t k = 0; k < del_keys[s].size(); ++k) {
      exists[s][del_keys[s][k].ToString()] = sts[k].ok();
    }
  }

  // Build one WriteBatch per shard, in command order, and commit each
  // through the group-commit path.
  std::vector<WriteBatch> batches(nshards);
  for (size_t i = begin; i < end; ++i) {
    const ParsedCommand& cmd = cmds[i];
    if (CheckArity(*cmd.spec, cmd.args.size()) != nullptr) continue;
    switch (cmd.spec->id) {
      case CommandId::kSet:
        batches[static_cast<size_t>(router_.ShardOf(cmd.args[1]))].Put(
            cmd.args[1], cmd.args[2]);
        break;
      case CommandId::kMSet:
        for (size_t a = 1; a + 1 < cmd.args.size(); a += 2) {
          batches[static_cast<size_t>(router_.ShardOf(cmd.args[a]))].Put(
              cmd.args[a], cmd.args[a + 1]);
        }
        break;
      case CommandId::kDel:
        for (size_t a = 1; a < cmd.args.size(); ++a) {
          batches[static_cast<size_t>(router_.ShardOf(cmd.args[a]))]
              .Delete(cmd.args[a]);
        }
        break;
      default:
        break;
    }
  }
  std::vector<Status> shard_status(nshards);
  const WriteOptions wopts;  // Durability comes from db_options.sync_writes.
  int64_t total_ops = 0;
  for (size_t s = 0; s < nshards; ++s) {
    if (batches[s].count() == 0) continue;
    total_ops += static_cast<int64_t>(batches[s].count());
    shard_status[s] = dbs_[s]->Write(wopts, batches[s]);
    engine_writes_.fetch_add(1, std::memory_order_relaxed);
  }
  if (cmd_span.armed()) {
    cmd_span.set_args(static_cast<int64_t>(cmds[begin].spec->id),
                      static_cast<int64_t>(end - begin), total_ops);
  }
  cmd_span.Finish();
  const uint64_t elapsed = timed ? NowMicros() - start : 0;
  if (slowlog_on && elapsed >= opts_.slowlog_threshold_us) {
    RecordSlowRun(cmds[begin], end - begin, elapsed);
  }

  // Replies, in command order. A failed shard write fails every command
  // of the run that touched that shard.
  uint64_t n_set = 0, n_mset = 0, n_del = 0;
  for (size_t i = begin; i < end; ++i) {
    const ParsedCommand& cmd = cmds[i];
    const char* arity_error = CheckArity(*cmd.spec, cmd.args.size());
    if (arity_error != nullptr) {
      resp::AppendError(out, arity_error);
      continue;
    }
    const Status* failed = nullptr;
    for (size_t a = 1; a < cmd.args.size();
         a += cmd.spec->id == CommandId::kMSet ? 2 : 1) {
      const size_t s = static_cast<size_t>(router_.ShardOf(cmd.args[a]));
      if (!shard_status[s].ok()) {
        failed = &shard_status[s];
        break;
      }
    }
    if (failed != nullptr) {
      const std::string msg = "ERR " + failed->ToString();
      resp::AppendError(out, msg);
      continue;
    }
    switch (cmd.spec->id) {
      case CommandId::kSet:
        resp::AppendSimpleString(out, "OK");
        ++n_set;
        break;
      case CommandId::kMSet:
        resp::AppendSimpleString(out, "OK");
        ++n_mset;
        break;
      case CommandId::kDel: {
        long long removed = 0;
        for (size_t a = 1; a < cmd.args.size(); ++a) {
          const size_t s =
              static_cast<size_t>(router_.ShardOf(cmd.args[a]));
          auto it = exists[s].find(cmd.args[a].ToString());
          if (it != exists[s].end() && it->second) ++removed;
        }
        resp::AppendInteger(out, removed);
        ++n_del;
        break;
      }
      default:
        resp::AppendError(out, "ERR internal: non-write command in run");
        break;
    }
  }
  RecordCommandLatency(Hist::kServerSetLatency, elapsed, n_set);
  RecordCommandLatency(Hist::kServerMSetLatency, elapsed, n_mset);
  RecordCommandLatency(Hist::kServerDelLatency, elapsed, n_del);
}

void MonkeyServer::ExecuteAdmin(Connection* c, const ParsedCommand& cmd) {
  std::string* out = c->out();
  if (cmd.spec == nullptr) {
    std::string name = cmd.args[0].ToString();
    if (name.size() > 64) name.resize(64);
    const std::string msg = "ERR unknown command '" + name + "'";
    resp::AppendError(out, msg);
    return;
  }
  const char* arity_error = CheckArity(*cmd.spec, cmd.args.size());
  if (arity_error != nullptr) {
    resp::AppendError(out, arity_error);
    return;
  }
  const bool slowlog_on = opts_.slowlog_threshold_us > 0;
  TraceArmer trace_armer(slowlog_on || TraceSampleHead());
  const bool timed = metrics_ != nullptr || slowlog_on;
  const uint64_t start = timed ? NowMicros() : 0;
  TraceSpan cmd_span(TraceName::kServerAdmin,
                     static_cast<int64_t>(cmd.spec->id));
  switch (cmd.spec->id) {
    case CommandId::kPing:
      if (cmd.args.size() == 2) {
        resp::AppendBulk(out, cmd.args[1]);
      } else {
        resp::AppendSimpleString(out, "PONG");
      }
      break;
    case CommandId::kEcho:
      resp::AppendBulk(out, cmd.args[1]);
      break;
    case CommandId::kSelect:
      // One logical database; index 0 keeps redis-cli happy.
      if (cmd.args[1].compare(Slice("0")) == 0) {
        resp::AppendSimpleString(out, "OK");
      } else {
        resp::AppendError(out, "ERR DB index is out of range");
      }
      break;
    case CommandId::kCommand:
      resp::AppendArrayHeader(out, 0);  // Enough for redis-cli handshakes.
      break;
    case CommandId::kDbSize: {
      // Approximate: on-disk entries include tombstones and superseded
      // versions until compaction drops them (documented in DESIGN §14).
      uint64_t total = 0;
      for (const auto& db : dbs_) {
        const DbStats stats = db->GetStats();
        total += stats.memtable_entries + stats.total_disk_entries;
      }
      resp::AppendInteger(out, static_cast<long long>(total));
      break;
    }
    case CommandId::kInfo:
      DoInfo(c);
      break;
    case CommandId::kConfig:
      DoConfig(c, cmd);
      break;
    case CommandId::kScan:
      DoScan(c, cmd);
      break;
    case CommandId::kSlowlog:
      DoSlowlog(c, cmd);
      break;
    case CommandId::kTrace:
      DoTrace(c, cmd);
      break;
    case CommandId::kQuit:
      resp::AppendSimpleString(out, "OK");
      c->CloseAfterFlush();
      break;
    case CommandId::kShutdown:
      resp::AppendSimpleString(out, "OK");
      shutdown_requested_.store(true, std::memory_order_relaxed);
      c->CloseAfterFlush();
      break;
    default:
      resp::AppendError(out, "ERR internal: admin dispatch");
      break;
  }
  cmd_span.Finish();
  if (timed) {
    const uint64_t elapsed = NowMicros() - start;
    if (slowlog_on && elapsed >= opts_.slowlog_threshold_us) {
      RecordSlowRun(cmd, 1, elapsed);
    }
    RecordCommandLatency(cmd.spec->id == CommandId::kScan
                             ? Hist::kServerScanLatency
                             : Hist::kServerOtherLatency,
                         elapsed, 1);
  }
}

void MonkeyServer::DoScan(Connection* c, const ParsedCommand& cmd) {
  std::string* out = c->out();
  uint64_t cursor = 0;
  {
    const Slice& raw = cmd.args[1];
    uint64_t v = 0;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] < '0' || raw[i] > '9' || v > UINT64_MAX / 10 - 1) {
        resp::AppendError(out, "ERR invalid cursor");
        return;
      }
      v = v * 10 + static_cast<uint64_t>(raw[i] - '0');
    }
    if (raw.empty()) {
      resp::AppendError(out, "ERR invalid cursor");
      return;
    }
    cursor = v;
  }
  std::string pattern;
  bool have_pattern = false;
  long long count = 10;
  for (size_t i = 2; i + 1 < cmd.args.size(); i += 2) {
    const Slice& opt = cmd.args[i];
    if (opt.size() == 5 && strncasecmp(opt.data(), "match", 5) == 0) {
      pattern = cmd.args[i + 1].ToString();
      have_pattern = true;
    } else if (opt.size() == 5 &&
               strncasecmp(opt.data(), "count", 5) == 0) {
      count = atoll(cmd.args[i + 1].ToString().c_str());
      if (count < 1) {
        resp::AppendError(out, "ERR syntax error");
        return;
      }
    } else {
      resp::AppendError(out, "ERR syntax error");
      return;
    }
  }
  if ((cmd.args.size() - 2) % 2 != 0) {
    resp::AppendError(out, "ERR syntax error");
    return;
  }
  if (count > 10000) count = 10000;

  ScanState state;
  if (cursor != 0) {
    MutexLock lock(scan_mu_);
    auto it = scan_cursors_.find(cursor);
    if (it == scan_cursors_.end()) {
      resp::AppendError(out, "ERR invalid cursor");
      return;
    }
    state = it->second;
    scan_cursors_.erase(it);
  }

  // Examination budget bounds one call's work under a selective MATCH.
  const long long budget = std::max<long long>(count * 8, 512);
  long long examined = 0;
  std::vector<std::string> collected;
  bool exhausted = false;
  const ReadOptions ropts;
  while (state.shard < router_.shards()) {
    auto iter = dbs_[static_cast<size_t>(state.shard)]->NewIterator(ropts);
    scans_.fetch_add(1, std::memory_order_relaxed);
    if (state.last_key.empty()) {
      iter->SeekToFirst();
    } else {
      iter->Seek(state.last_key);
      if (iter->Valid() && iter->key().compare(state.last_key) == 0) {
        iter->Next();
      }
    }
    while (iter->Valid() &&
           static_cast<long long>(collected.size()) < count &&
           examined < budget) {
      const Slice key = iter->key();
      if (!have_pattern || GlobMatch(pattern, key)) {
        collected.push_back(key.ToString());
      }
      state.last_key = key.ToString();
      ++examined;
      iter->Next();
    }
    if (!iter->status().ok()) {
      const std::string msg = "ERR " + iter->status().ToString();
      resp::AppendError(out, msg);
      return;
    }
    if (iter->Valid()) break;  // Count or budget reached mid-shard.
    ++state.shard;
    state.last_key.clear();
  }
  exhausted = state.shard >= router_.shards();

  std::string next_cursor = "0";
  if (!exhausted) {
    MutexLock lock(scan_mu_);
    state.lru = ++scan_lru_tick_;
    uint64_t id = next_cursor_++;
    if (next_cursor_ == 0) next_cursor_ = 1;
    scan_cursors_[id] = state;
    if (scan_cursors_.size() > kMaxScanCursors) {
      auto victim = scan_cursors_.begin();
      for (auto it = scan_cursors_.begin(); it != scan_cursors_.end();
           ++it) {
        if (it->second.lru < victim->second.lru) victim = it;
      }
      scan_cursors_.erase(victim);
    }
    next_cursor = std::to_string(id);
  }

  resp::AppendArrayHeader(out, 2);
  resp::AppendBulk(out, next_cursor);
  resp::AppendArrayHeader(out, collected.size());
  for (const std::string& key : collected) resp::AppendBulk(out, key);
}

void MonkeyServer::DoConfig(Connection* c, const ParsedCommand& cmd) {
  std::string* out = c->out();
  const Slice& sub = cmd.args[1];
  if (!(sub.size() == 3 && strncasecmp(sub.data(), "get", 3) == 0) ||
      cmd.args.size() != 3) {
    resp::AppendError(out,
                      "ERR CONFIG subcommand must be GET <pattern>");
    return;
  }
  const std::pair<const char*, std::string> entries[] = {
      {"save", ""},
      {"appendonly", "no"},
      {"maxmemory", "0"},
      {"tcp-nodelay", opts_.server_tcp_nodelay ? "yes" : "no"},
      {"server_shards", U64(static_cast<uint64_t>(router_.shards()))},
      {"server_port", U64(static_cast<uint64_t>(port_))},
      {"server_max_pipeline",
       U64(static_cast<uint64_t>(opts_.server_max_pipeline))},
      {"server_output_soft_limit_bytes",
       U64(opts_.server_output_soft_limit_bytes)},
      {"server_output_hard_limit_bytes",
       U64(opts_.server_output_hard_limit_bytes)},
      {"server_max_bulk_bytes", U64(opts_.server_max_bulk_bytes)},
      {"server_max_multibulk", U64(opts_.server_max_multibulk)},
      {"server_max_inline_bytes", U64(opts_.server_max_inline_bytes)},
  };
  std::vector<std::pair<std::string, std::string>> matched;
  for (const auto& entry : entries) {
    if (GlobMatch(cmd.args[2], entry.first)) {
      matched.emplace_back(entry.first, entry.second);
    }
  }
  resp::AppendArrayHeader(out, matched.size() * 2);
  for (const auto& kv : matched) {
    resp::AppendBulk(out, kv.first);
    resp::AppendBulk(out, kv.second);
  }
}

void MonkeyServer::DoInfo(Connection* c) {
  const std::string info = InfoText();
  resp::AppendBulk(c->out(), info);
}

// --- SLOWLOG / TRACE --------------------------------------------------

void MonkeyServer::RecordSlowRun(const ParsedCommand& first, size_t run_len,
                                 uint64_t duration_us) {
  // Pull this run's spans out of the recorder (and render them) before
  // taking the slowlog lock.
  const uint64_t request_id = TraceLastRequestId();
  std::vector<TraceEvent> mine;
  for (const TraceEvent& e : FlightRecorder::Global()->Snapshot()) {
    if (e.request_id == request_id) mine.push_back(e);
  }
  SlowlogEntry entry;
  entry.unix_secs = static_cast<uint64_t>(::time(nullptr));
  entry.duration_us = duration_us;
  for (size_t a = 0; a < first.args.size() && a < 8; ++a) {
    std::string arg = first.args[a].ToString();
    if (arg.size() > 64) {
      arg.resize(61);
      arg += "...";
    }
    entry.args.push_back(std::move(arg));
  }
  if (first.args.size() > 8) {
    entry.args.push_back("(+" + U64(first.args.size() - 8) + " more args)");
  }
  if (run_len > 1) {
    entry.args.push_back("(+" + U64(run_len - 1) + " batched commands)");
  }
  entry.span_tree = RenderSpanForest(mine);
  MutexLock lock(slowlog_mu_);
  entry.id = next_slowlog_id_++;
  slowlog_.push_back(std::move(entry));
  while (slowlog_.size() > opts_.slowlog_max_len) slowlog_.pop_front();
}

void MonkeyServer::DoSlowlog(Connection* c, const ParsedCommand& cmd) {
  std::string* out = c->out();
  const Slice& sub = cmd.args[1];
  if (sub.size() == 3 && strncasecmp(sub.data(), "get", 3) == 0) {
    // SLOWLOG GET [n]: newest first; n < 0 (Redis convention) = all.
    long long n = 10;
    if (cmd.args.size() == 3) {
      n = atoll(cmd.args[2].ToString().c_str());
    }
    MutexLock lock(slowlog_mu_);
    const size_t count =
        n < 0 ? slowlog_.size()
              : std::min<size_t>(slowlog_.size(), static_cast<size_t>(n));
    resp::AppendArrayHeader(out, count);
    for (size_t i = 0; i < count; ++i) {
      const SlowlogEntry& e = slowlog_[slowlog_.size() - 1 - i];
      resp::AppendArrayHeader(out, 5);
      resp::AppendInteger(out, static_cast<long long>(e.id));
      resp::AppendInteger(out, static_cast<long long>(e.unix_secs));
      resp::AppendInteger(out, static_cast<long long>(e.duration_us));
      resp::AppendArrayHeader(out, e.args.size());
      for (const std::string& a : e.args) resp::AppendBulk(out, a);
      resp::AppendBulk(out, e.span_tree);
    }
    return;
  }
  if (sub.size() == 5 && strncasecmp(sub.data(), "reset", 5) == 0 &&
      cmd.args.size() == 2) {
    {
      MutexLock lock(slowlog_mu_);
      slowlog_.clear();
    }
    resp::AppendSimpleString(out, "OK");
    return;
  }
  if (sub.size() == 3 && strncasecmp(sub.data(), "len", 3) == 0 &&
      cmd.args.size() == 2) {
    MutexLock lock(slowlog_mu_);
    resp::AppendInteger(out, static_cast<long long>(slowlog_.size()));
    return;
  }
  resp::AppendError(out,
                    "ERR SLOWLOG subcommand must be GET [n], RESET or LEN");
}

void MonkeyServer::DoTrace(Connection* c, const ParsedCommand& cmd) {
  std::string* out = c->out();
  // TRACE [JSON|TREE] [ms] — a bare "TRACE <ms>" gets the TREE view.
  bool json = false;
  size_t ms_arg = 1;
  if (cmd.args.size() >= 2) {
    const Slice& sub = cmd.args[1];
    if (sub.size() == 4 && strncasecmp(sub.data(), "json", 4) == 0) {
      json = true;
      ms_arg = 2;
    } else if (sub.size() == 4 && strncasecmp(sub.data(), "tree", 4) == 0) {
      ms_arg = 2;
    } else if (cmd.args.size() == 3) {
      resp::AppendError(out, "ERR TRACE subcommand must be JSON or TREE");
      return;
    }
  }
  uint64_t min_ts = 0;
  if (cmd.args.size() > ms_arg) {
    const long long ms = atoll(cmd.args[ms_arg].ToString().c_str());
    if (ms <= 0) {
      resp::AppendError(out, "ERR invalid trace window (want ms > 0)");
      return;
    }
    const uint64_t now = TraceNowNanos();
    const uint64_t window = static_cast<uint64_t>(ms) * 1000000ULL;
    min_ts = now > window ? now - window : 0;
  }
  const std::string dump =
      json ? DumpTraceJson(min_ts)
           : RenderSpanForest(FlightRecorder::Global()->Snapshot(min_ts));
  resp::AppendBulk(out, dump);
}

std::string MonkeyServer::InfoText() const {
  std::string info;
  const EngineCalls calls = engine_calls();
  const uint64_t commands = commands_processed();
  info += "# Server\r\n";
  info += "monkeydb_version:0.8\r\n";
  info += "tcp_port:" + U64(static_cast<uint64_t>(port_)) + "\r\n";
  info += "server_shards:" + U64(static_cast<uint64_t>(router_.shards())) +
          "\r\n";
  info += std::string("io_backend_configured:") +
          (opts_.db_options.io_backend == IoBackend::kUring ? "uring"
                                                            : "posix") +
          "\r\n";
  info += "# Clients\r\n";
  info += "connected_clients:" + U64(live_connections()) + "\r\n";
  info += "total_connections_received:" + U64(total_connections()) +
          "\r\n";
  info += "# Stats\r\n";
  info += "total_commands_processed:" + U64(commands) + "\r\n";
  info += "engine_point_gets:" + U64(calls.point_gets) + "\r\n";
  info += "engine_multigets:" + U64(calls.multigets) + "\r\n";
  info += "engine_writes:" + U64(calls.writes) + "\r\n";
  info += "engine_scans:" + U64(calls.scans) + "\r\n";
  info += "engine_calls:" + U64(calls.Total()) + "\r\n";
  {
    char buf[64];
    snprintf(buf, sizeof(buf), "engine_calls_per_command:%.4f\r\n",
             commands == 0 ? 0.0
                           : static_cast<double>(calls.Total()) /
                                 static_cast<double>(commands));
    info += buf;
  }
  if (metrics_ != nullptr) {
    info += "protocol_errors:" +
            U64(metrics_->TickTotal(Tick::kServerProtocolErrors)) + "\r\n";
    info += "backpressure_pauses:" +
            U64(metrics_->TickTotal(Tick::kServerBackpressurePauses)) +
            "\r\n";
    info += "overlimit_closes:" +
            U64(metrics_->TickTotal(Tick::kServerOverlimitCloses)) +
            "\r\n";
    info += "http_requests:" +
            U64(metrics_->TickTotal(Tick::kServerHttpRequests)) + "\r\n";
    const HistogramData depth =
        metrics_->SnapshotHistogram(Hist::kServerPipelineDepth);
    char buf[96];
    snprintf(buf, sizeof(buf),
             "pipeline_depth_avg:%.2f\r\npipeline_depth_p99:%.0f\r\n",
             depth.avg, depth.p99);
    info += buf;
  }
  for (int s = 0; s < router_.shards(); ++s) {
    const DbStats stats = dbs_[static_cast<size_t>(s)]->GetStats();
    info += "# Shard" + std::to_string(s) + "\r\n";
    info += "memtable_entries:" + U64(stats.memtable_entries) + "\r\n";
    info += "disk_entries:" + U64(stats.total_disk_entries) + "\r\n";
    info += "runs:" + U64(stats.total_runs) + "\r\n";
    info += "deepest_level:" +
            U64(static_cast<uint64_t>(stats.deepest_level)) + "\r\n";
    info += "flushes:" + U64(stats.flushes) + "\r\n";
    info += "merges:" + U64(stats.merges) + "\r\n";
    info += "write_groups:" + U64(stats.write_groups) + "\r\n";
    info += "write_group_batches:" + U64(stats.write_group_batches) +
            "\r\n";
    // The arena-backing tier (hugetlb/thp/plain/none) — operational state
    // previously visible only through in-process DumpStats().
    info += "arena_backing:" + stats.arena_backing + "\r\n";
    UringStatsSnapshot io;
    if (dbs_[static_cast<size_t>(s)]->GetUringStats(&io)) {
      info += "io_uring_active:1\r\n";
      info += "uring_sqes_submitted:" + U64(io.sqes_submitted) + "\r\n";
      info += "uring_batch_submits:" + U64(io.batch_submits) + "\r\n";
      info += "uring_batched_requests:" + U64(io.batched_requests) +
              "\r\n";
      char buf[64];
      snprintf(buf, sizeof(buf), "uring_batched_per_syscall:%.2f\r\n",
               io.BatchedPerSyscall());
      info += buf;
      info += "uring_short_read_retries:" + U64(io.short_read_retries) +
              "\r\n";
      info += "uring_fixed_file_reads:" + U64(io.fixed_file_reads) +
              "\r\n";
      info += "uring_fixed_buffer_reads:" + U64(io.fixed_buffer_reads) +
              "\r\n";
      info += "uring_direct_io_fallbacks:" + U64(io.direct_io_fallbacks) +
              "\r\n";
      info += "uring_bounce_copies:" + U64(io.bounce_copies) + "\r\n";
    } else {
      info += "io_uring_active:0\r\n";
    }
  }
  return info;
}

// --- HTTP /metrics ----------------------------------------------------

std::string MonkeyServer::MetricsText() const {
  std::string merged;
  std::set<std::string> declared;
  for (int s = 0; s < router_.shards(); ++s) {
    const std::string dump =
        dbs_[static_cast<size_t>(s)]->DumpMetrics(
            DB::MetricsFormat::kPrometheus);
    size_t pos = 0;
    while (pos < dump.size()) {
      size_t eol = dump.find('\n', pos);
      if (eol == std::string::npos) eol = dump.size();
      const std::string line = dump.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;
      if (line[0] == '#') {
        // "# HELP name ..." / "# TYPE name ..." — emit once per family
        // and kind across shards.
        if (declared.insert(line.substr(0, line.find(' ', 7))).second) {
          merged += line;
          merged += '\n';
        }
        continue;
      }
      merged += AddShardLabel(line, s);
      merged += '\n';
    }
  }

  // The server's own series (distinct monkey_server_* namespace).
  PrometheusWriter w;
  const EngineCalls calls = engine_calls();
  const uint64_t commands = commands_processed();
  w.Counter("monkey_server_commands_total", "RESP commands answered",
            static_cast<double>(commands));
  w.Counter("monkey_server_connections_total", "Connections accepted",
            static_cast<double>(total_connections()));
  w.Counter("monkey_server_engine_point_gets_total",
            "DB::Get calls issued for client commands",
            static_cast<double>(calls.point_gets));
  w.Counter("monkey_server_engine_multigets_total",
            "DB::MultiGet batches issued for client commands",
            static_cast<double>(calls.multigets));
  w.Counter("monkey_server_engine_writes_total",
            "WriteBatch commits issued for client commands",
            static_cast<double>(calls.writes));
  w.Counter("monkey_server_engine_scans_total",
            "Iterators opened for SCAN",
            static_cast<double>(calls.scans));
  w.Gauge("monkey_server_live_connections", "Currently open connections",
          static_cast<double>(live_connections()));
  w.Gauge("monkey_server_shards", "Keyspace shards (DB instances)",
          static_cast<double>(router_.shards()));
  w.Gauge("monkey_server_engine_calls_per_command",
          "Engine calls divided by commands served (pipelining win)",
          commands == 0 ? 0.0
                        : static_cast<double>(calls.Total()) /
                              static_cast<double>(commands));
  if (metrics_ != nullptr) {
    w.Counter("monkey_server_protocol_errors_total",
              "Malformed RESP frames",
              static_cast<double>(
                  metrics_->TickTotal(Tick::kServerProtocolErrors)));
    w.Counter("monkey_server_backpressure_pauses_total",
              "Reads paused on slow clients (output over soft limit)",
              static_cast<double>(
                  metrics_->TickTotal(Tick::kServerBackpressurePauses)));
    w.Counter("monkey_server_overlimit_closes_total",
              "Connections closed over the output hard limit",
              static_cast<double>(
                  metrics_->TickTotal(Tick::kServerOverlimitCloses)));
    w.Counter("monkey_server_http_requests_total", "HTTP requests served",
              static_cast<double>(
                  metrics_->TickTotal(Tick::kServerHttpRequests)));
    const Hist latencies[] = {
        Hist::kServerGetLatency,  Hist::kServerSetLatency,
        Hist::kServerDelLatency,  Hist::kServerMGetLatency,
        Hist::kServerMSetLatency, Hist::kServerScanLatency,
        Hist::kServerOtherLatency, Hist::kServerPipelineDepth,
    };
    for (Hist h : latencies) {
      w.Summary(std::string("monkey_") + HistName(h),
                "Serving-layer distribution (see obs/metrics.h)",
                metrics_->SnapshotHistogram(h));
    }
  }
  return merged + w.str();
}

std::string MonkeyServer::HandleHttpRequest(const Slice& method,
                                            const Slice& path) {
  std::string body;
  const char* status_line = "200 OK";
  const char* content_type = "text/plain; version=0.0.4; charset=utf-8";
  // Split any "?query" off the target so /trace can take a window.
  std::string target(path.data(), path.size());
  std::string query;
  const size_t qpos = target.find('?');
  if (qpos != std::string::npos) {
    query = target.substr(qpos + 1);
    target.resize(qpos);
  }
  if (target == "/metrics") {
    body = MetricsText();
  } else if (target == "/healthz") {
    body = "ok\n";
  } else if (target == "/info") {
    body = InfoText();
  } else if (target == "/trace") {
    // GET /trace[?ms=N]: Chrome/Perfetto JSON of the flight recorder,
    // optionally limited to the last N milliseconds.
    uint64_t min_ts = 0;
    if (query.compare(0, 3, "ms=") == 0) {
      const long long ms = atoll(query.c_str() + 3);
      if (ms > 0) {
        const uint64_t now = TraceNowNanos();
        const uint64_t window = static_cast<uint64_t>(ms) * 1000000ULL;
        min_ts = now > window ? now - window : 0;
      }
    }
    body = DumpTraceJson(min_ts);
    content_type = "application/json";
  } else {
    status_line = "404 Not Found";
    body = "not found\n";
  }
  std::string response = "HTTP/1.0 ";
  response += status_line;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: " + std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  if (method.compare(Slice("HEAD")) != 0) response += body;
  return response;
}

}  // namespace monkeydb
