// The RESP command table: name -> dispatch metadata. The executor
// (server.cc) groups consecutive commands of one class per connection per
// tick — reads coalesce into one DB::MultiGet per shard, writes into one
// WriteBatch per shard — so classification lives here, next to the names.

#ifndef MONKEYDB_SERVER_COMMAND_H_
#define MONKEYDB_SERVER_COMMAND_H_

#include "util/slice.h"

namespace monkeydb {

enum class CommandId {
  // Read class (batched into MultiGet).
  kGet,
  kMGet,
  kExists,
  // Write class (batched into one WriteBatch per shard).
  kSet,
  kMSet,
  kDel,
  // Admin / inline class (executed one at a time, flushing any open
  // batch first so per-connection ordering is preserved).
  kScan,
  kPing,
  kEcho,
  kInfo,
  kConfig,
  kCommand,
  kSelect,
  kDbSize,
  kQuit,
  kShutdown,
  kSlowlog,
  kTrace,
};

enum class CommandClass { kRead, kWrite, kAdmin };

struct CommandSpec {
  CommandId id;
  const char* name;  // Canonical lower-case name.
  CommandClass cls;
  // Argument-count contract including the command name itself: total args
  // in [min_args, max_args] (max_args < 0 = unbounded). `step` > 1 adds a
  // congruence requirement ((nargs - min_args) % step == 0) — MSET's
  // key/value pairing.
  int min_args;
  int max_args;
  int step;
};

// Case-insensitive lookup; null for unknown commands.
const CommandSpec* LookupCommand(const Slice& name);

// Null when the count satisfies the spec, else the Redis-style complaint
// ("wrong number of arguments for 'get' command") to reply with.
const char* CheckArity(const CommandSpec& spec, size_t nargs);

}  // namespace monkeydb

#endif  // MONKEYDB_SERVER_COMMAND_H_
