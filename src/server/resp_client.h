// RespClient: a small blocking RESP2 client — connect, send framed
// commands (optionally batched for pipelining), read replies. Shared by
// tools/monkey_cli, the server tests, and bench/server_throughput; it is
// deliberately synchronous (the server owns all the async machinery).

#ifndef MONKEYDB_SERVER_RESP_CLIENT_H_
#define MONKEYDB_SERVER_RESP_CLIENT_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace monkeydb {

// One decoded RESP reply. Arrays nest.
struct RespReply {
  enum class Type { kSimple, kError, kInteger, kBulk, kNull, kArray };
  Type type = Type::kNull;
  std::string str;    // kSimple / kError / kBulk payload.
  long long integer = 0;
  std::vector<RespReply> elements;  // kArray.

  // redis-cli-style rendering (tests and the CLI print this).
  std::string ToString() const;
};

class RespClient {
 public:
  RespClient() = default;
  ~RespClient();

  RespClient(const RespClient&) = delete;
  RespClient& operator=(const RespClient&) = delete;

  Status Connect(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Encodes args as one framed multibulk command onto *out. Batch several
  // and SendRaw the lot to pipeline.
  static void EncodeCommand(const std::vector<std::string>& args,
                            std::string* out);

  Status SendRaw(const std::string& bytes);
  Status SendCommand(const std::vector<std::string>& args);

  // Blocks until one complete reply arrives (recursively for arrays).
  Status ReadReply(RespReply* reply);

  // SendCommand + ReadReply.
  Status Command(const std::vector<std::string>& args, RespReply* reply);

 private:
  // Reads one "...\r\n" line starting at buf_[pos_], refilling as needed.
  Status ReadLine(std::string* line);
  Status FillBuffer();
  Status ParseReply(RespReply* reply);

  int fd_ = -1;
  std::string buf_;
  size_t pos_ = 0;
};

}  // namespace monkeydb

#endif  // MONKEYDB_SERVER_RESP_CLIENT_H_
