// MonkeyServer: the sharded RESP serving layer over MonkeyDB (DESIGN.md
// §14 "Serving layer").
//
// Topology: server_shards independent DB instances (hash-partitioned
// keyspace, ShardRouter), each paired with an event-loop thread and an
// SO_REUSEPORT listener on the same port. The engine batching built in
// PRs 1-7 is the hot path: a connection's pipelined reads become one
// DB::MultiGet per shard and its pipelined writes one WriteBatch per
// shard submitted through the group-commit leader, so N pipelined
// commands cost ~1 engine call instead of N.
//
// Commands: GET SET DEL MGET MSET EXISTS SCAN PING ECHO INFO CONFIG GET
// COMMAND SELECT DBSIZE QUIT SHUTDOWN — plus a GET-only HTTP /metrics
// endpoint (Prometheus text, aggregated across shards) on the same port.

#ifndef MONKEYDB_SERVER_SERVER_H_
#define MONKEYDB_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lsm/db.h"
#include "lsm/options.h"
#include "obs/metrics.h"
#include "server/command.h"
#include "server/connection.h"
#include "server/event_loop.h"
#include "server/shard_router.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace monkeydb {

class MonkeyServer {
 public:
  // Engine calls issued on behalf of clients — the denominator of the
  // pipelining win. calls/commands_processed() is the batching ratio the
  // server bench asserts on (<= 0.2 at pipeline depth 16).
  struct EngineCalls {
    uint64_t point_gets = 0;  // DB::Get calls.
    uint64_t multigets = 0;   // DB::MultiGet calls (batches, not keys).
    uint64_t writes = 0;      // DB::Write calls (batches, not ops).
    uint64_t scans = 0;       // Iterators opened for SCAN.
    uint64_t Total() const {
      return point_gets + multigets + writes + scans;
    }
  };

  // Opens shard DBs under <data_dir>/shard-<i>, binds the listener set,
  // and spawns the event-loop threads. On success the server is live.
  static Status Start(const ServerOptions& options,
                      const std::string& data_dir,
                      std::unique_ptr<MonkeyServer>* out);

  ~MonkeyServer();  // Implies Stop().

  MonkeyServer(const MonkeyServer&) = delete;
  MonkeyServer& operator=(const MonkeyServer&) = delete;

  // Drains the loops, joins their threads, and closes the shard DBs.
  // Idempotent; must not be called from an event-loop thread (SHUTDOWN
  // sets shutdown_requested() instead and the owner calls Stop).
  void Stop();

  // The actually-bound port (differs from options when it was 0).
  int port() const { return port_; }
  int shards() const { return router_.shards(); }

  const ServerOptions& options() const { return opts_; }
  MetricsRegistry* metrics() const { return metrics_.get(); }
  DB* shard_db(int i) const { return dbs_[static_cast<size_t>(i)].get(); }
  const ShardRouter& router() const { return router_; }

  EngineCalls engine_calls() const;
  uint64_t commands_processed() const {
    return commands_.load(std::memory_order_relaxed);
  }
  uint64_t total_connections() const {
    return total_connections_.load(std::memory_order_relaxed);
  }
  size_t live_connections() const;

  // A client issued SHUTDOWN; the embedding main loop should call Stop.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }

  // Redis-style INFO text: server/clients/stats sections plus one
  // section per shard with engine stats, the arena backing tier, and the
  // io_uring substrate counters (DB::GetUringStats) when that backend is
  // live.
  std::string InfoText() const;

  // Prometheus exposition aggregated across shards: every shard's
  // DB::DumpMetrics(kPrometheus) merged under a shard="<i>" label (one
  // HELP/TYPE per family), followed by the server's own series.
  std::string MetricsText() const;

  // --- Called by connections (event-loop threads) ---

  // Executes one tick's pipelined batch, appending replies to c->out()
  // in command order.
  void Execute(Connection* c, std::vector<ParsedCommand>* cmds);

  // Full HTTP response (headers + body) for the sniffed request.
  std::string HandleHttpRequest(const Slice& method, const Slice& path);

  void NoteConnectionAccepted() {
    total_connections_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  MonkeyServer(const ServerOptions& options, std::string data_dir);

  // Executes cmds[begin, end) — a run of consecutive read-class /
  // write-class commands — as one batched engine interaction per shard.
  void ExecuteReadRun(Connection* c,
                      const std::vector<ParsedCommand>& cmds, size_t begin,
                      size_t end);
  void ExecuteWriteRun(Connection* c,
                       const std::vector<ParsedCommand>& cmds,
                       size_t begin, size_t end);
  void ExecuteAdmin(Connection* c, const ParsedCommand& cmd);

  void DoScan(Connection* c, const ParsedCommand& cmd);
  void DoConfig(Connection* c, const ParsedCommand& cmd);
  void DoInfo(Connection* c);
  void DoSlowlog(Connection* c, const ParsedCommand& cmd);
  void DoTrace(Connection* c, const ParsedCommand& cmd);

  void RecordCommandLatency(Hist hist, uint64_t micros, uint64_t n);

  // Appends a run (first command + count) to the SLOWLOG ring with its
  // measured duration and the span tree of the run's trace request id
  // (the run was armed, so its engine spans are in the flight recorder).
  void RecordSlowRun(const ParsedCommand& first, size_t run_len,
                     uint64_t duration_us);

  // SCAN cursor registry. Cursors are opaque uint64 tokens handed to the
  // client; state is (shard, last key returned). Bounded: the oldest
  // cursor is evicted past kMaxScanCursors (an abandoned SCAN must not
  // leak server memory).
  struct ScanState {
    int shard = 0;
    std::string last_key;  // Empty = start of shard.
    uint64_t lru = 0;
  };
  static constexpr size_t kMaxScanCursors = 4096;

  ServerOptions opts_;
  const std::string data_dir_;
  ShardRouter router_;

  std::vector<std::unique_ptr<DB>> dbs_;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> threads_;
  std::unique_ptr<MetricsRegistry> metrics_;
  int port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopped_{false};
  std::atomic<bool> shutdown_requested_{false};

  std::atomic<uint64_t> commands_{0};
  std::atomic<uint64_t> total_connections_{0};
  std::atomic<uint64_t> point_gets_{0};
  std::atomic<uint64_t> multigets_{0};
  std::atomic<uint64_t> engine_writes_{0};
  std::atomic<uint64_t> scans_{0};

  mutable Mutex scan_mu_;
  std::map<uint64_t, ScanState> scan_cursors_ GUARDED_BY(scan_mu_);
  uint64_t next_cursor_ GUARDED_BY(scan_mu_) = 1;
  uint64_t scan_lru_tick_ GUARDED_BY(scan_mu_) = 0;

  // SLOWLOG ring (slowlog_threshold_us > 0; DESIGN.md §16). Bounded by
  // slowlog_max_len, oldest out; SLOWLOG GET serves entries newest-first.
  struct SlowlogEntry {
    uint64_t id = 0;
    uint64_t unix_secs = 0;
    uint64_t duration_us = 0;
    std::vector<std::string> args;  // First command of the run, truncated.
    std::string span_tree;          // RenderSpanForest of the run's spans.
  };
  mutable Mutex slowlog_mu_;
  std::deque<SlowlogEntry> slowlog_ GUARDED_BY(slowlog_mu_);
  uint64_t next_slowlog_id_ GUARDED_BY(slowlog_mu_) = 0;
};

}  // namespace monkeydb

#endif  // MONKEYDB_SERVER_SERVER_H_
