#include "server/event_loop.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "server/connection.h"
#include "server/server.h"

namespace monkeydb {

EventLoop::EventLoop(int index, MonkeyServer* server)
    : index_(index), server_(server) {}

EventLoop::~EventLoop() {
  conns_.clear();  // Connections close their fds.
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Init(int listen_fd) {
  listen_fd_ = listen_fd;
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IoError(std::string("epoll_create1: ") +
                           strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return Status::IoError(std::string("eventfd: ") + strerror(errno));
  }
  struct epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return Status::IoError(std::string("epoll_ctl(listener): ") +
                           strerror(errno));
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return Status::IoError(std::string("epoll_ctl(wakeup): ") +
                           strerror(errno));
  }
  return Status::OK();
}

void EventLoop::Run() {
  constexpr int kMaxEvents = 128;
  struct epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself is broken; bail out.
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        AcceptNew();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // Destroyed earlier this sweep.
      Connection* conn = it->second.get();
      bool alive = true;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        // Let the read path consume whatever is pending and observe the
        // EOF/error itself, so buffered pipelined commands still execute.
        alive = conn->OnReadable();
      } else {
        if (alive && (events[i].events & EPOLLIN)) {
          alive = conn->OnReadable();
        }
        if (alive && (events[i].events & EPOLLOUT)) {
          alive = conn->OnWritable();
        }
      }
      if (!alive) Destroy(fd);
    }
  }
}

void EventLoop::RequestStop() {
  stop_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    // A full eventfd counter still wakes the loop; ignore short writes.
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void EventLoop::UpdateEvents(int fd, uint32_t events) {
  struct epoll_event ev;
  memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void EventLoop::AcceptNew() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (drained) or transient accept failure.
    }
    if (server_->options().server_tcp_nodelay) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    auto conn = std::make_unique<Connection>(fd, this, server_);
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      continue;  // conn destructor closes the socket.
    }
    conns_.emplace(fd, std::move(conn));
    live_.fetch_add(1, std::memory_order_relaxed);
    if (server_->metrics() != nullptr) {
      server_->metrics()->Tick1(Tick::kServerConnectionsAccepted);
    }
    server_->NoteConnectionAccepted();
  }
}

void EventLoop::Destroy(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  // close() drops the fd from the epoll set automatically.
  conns_.erase(it);
  live_.fetch_sub(1, std::memory_order_relaxed);
  if (server_->metrics() != nullptr) {
    server_->metrics()->Tick1(Tick::kServerConnectionsClosed);
  }
}

}  // namespace monkeydb
