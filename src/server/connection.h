// Connection: one client socket on one event loop — input buffer, RESP
// parsing, pipelined-command collection, buffered output with slow-client
// backpressure, and HTTP sniffing for the /metrics endpoint.
//
// Pipelining contract (the serving layer's perf centerpiece): every
// complete command sitting in the input buffer is parsed in one pass and
// handed to MonkeyServer::Execute as a single batch, which coalesces
// consecutive reads into one DB::MultiGet per shard and consecutive
// writes into one WriteBatch per shard. Replies are appended to the
// output buffer in command order, so N pipelined commands cost ~1 engine
// call and one writev-sized flush instead of N round trips.
//
// Backpressure: the output buffer is bounded. Above the soft limit the
// connection stops reading (EPOLLIN dropped) — and therefore stops
// parsing and executing — until the client drains below half the limit;
// above the hard limit it is closed. A slow client can never pin more
// than hard-limit bytes of replies.

#ifndef MONKEYDB_SERVER_CONNECTION_H_
#define MONKEYDB_SERVER_CONNECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lsm/options.h"
#include "obs/metrics.h"
#include "server/command.h"
#include "server/resp.h"

namespace monkeydb {

class EventLoop;
class MonkeyServer;

// One parsed-but-unanswered command. args are Slices into the
// connection's input buffer — valid until the batch finishes executing.
struct ParsedCommand {
  const CommandSpec* spec = nullptr;  // Null = unknown command name.
  std::vector<Slice> args;
};

class Connection {
 public:
  Connection(int fd, EventLoop* loop, MonkeyServer* server);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }

  // Event-loop entry points. A false return means the connection is done
  // (client gone, protocol violation, over the hard limit) and must be
  // destroyed by the loop.
  bool OnReadable();
  bool OnWritable();

  // Reply sink for MonkeyServer::Execute.
  std::string* out() { return &out_; }

  // Stop executing the rest of the batch and close once the buffered
  // replies are flushed (QUIT, protocol errors, HTTP responses).
  void CloseAfterFlush() { close_after_flush_ = true; }
  bool closing() const { return close_after_flush_; }

  size_t OutputBacklog() const { return out_.size() - out_pos_; }
  bool reads_paused() const { return reads_paused_; }

 private:
  // Parses and executes everything currently buffered (in
  // server_max_pipeline chunks), honoring backpressure between chunks.
  // False = destroy the connection.
  bool ProcessInput();
  bool HandleHttp();
  // Writes out_ to the socket, applies the output limits, and re-arms
  // epoll interest. False = destroy the connection.
  bool FlushAndUpdate();
  void UpdateInterest();

  const ServerOptions& opts() const;
  MetricsRegistry* metrics() const;

  int fd_;
  EventLoop* loop_;
  MonkeyServer* server_;
  RespParser parser_;

  std::string in_;
  size_t in_pos_ = 0;  // Bytes of in_ already parsed.
  std::string out_;
  size_t out_pos_ = 0;  // Bytes of out_ already written to the socket.

  std::vector<ParsedCommand> pending_;  // Reused across ticks.

  bool saw_bytes_ = false;  // Protocol sniffed once, on the first bytes.
  bool http_mode_ = false;
  bool reads_paused_ = false;
  bool close_after_flush_ = false;
  bool peer_eof_ = false;
  uint32_t interest_ = 0;  // Last epoll event mask we armed.
};

}  // namespace monkeydb

#endif  // MONKEYDB_SERVER_CONNECTION_H_
