#include "server/resp_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace monkeydb {

std::string RespReply::ToString() const {
  switch (type) {
    case Type::kSimple:
      return str;
    case Type::kError:
      return "(error) " + str;
    case Type::kInteger:
      return "(integer) " + std::to_string(integer);
    case Type::kBulk:
      return "\"" + str + "\"";
    case Type::kNull:
      return "(nil)";
    case Type::kArray: {
      std::string out;
      for (size_t i = 0; i < elements.size(); ++i) {
        out += std::to_string(i + 1) + ") " + elements[i].ToString();
        if (i + 1 < elements.size()) out += "\n";
      }
      return elements.empty() ? "(empty array)" : out;
    }
  }
  return "";
}

RespClient::~RespClient() { Close(); }

void RespClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
  pos_ = 0;
}

Status RespClient::Connect(const std::string& host, int port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + strerror(errno));
  }
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    const std::string err = strerror(errno);
    ::close(fd);
    return Status::IoError("connect(" + host + ":" +
                           std::to_string(port) + "): " + err);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

void RespClient::EncodeCommand(const std::vector<std::string>& args,
                               std::string* out) {
  out->push_back('*');
  out->append(std::to_string(args.size()));
  out->append("\r\n");
  for (const std::string& arg : args) {
    out->push_back('$');
    out->append(std::to_string(arg.size()));
    out->append("\r\n");
    out->append(arg);
    out->append("\r\n");
  }
}

Status RespClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::IoError("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RespClient::SendCommand(const std::vector<std::string>& args) {
  std::string encoded;
  EncodeCommand(args, &encoded);
  return SendRaw(encoded);
}

Status RespClient::FillBuffer() {
  // Drop the consumed prefix before growing the buffer.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (1u << 16)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  char chunk[16384];
  while (true) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<size_t>(n));
      return Status::OK();
    }
    if (n == 0) return Status::IoError("connection closed by server");
    if (errno == EINTR) continue;
    return Status::IoError(std::string("recv: ") + strerror(errno));
  }
}

Status RespClient::ReadLine(std::string* line) {
  while (true) {
    const size_t eol = buf_.find("\r\n", pos_);
    if (eol != std::string::npos) {
      *line = buf_.substr(pos_, eol - pos_);
      pos_ = eol + 2;
      return Status::OK();
    }
    Status s = FillBuffer();
    if (!s.ok()) return s;
  }
}

Status RespClient::ParseReply(RespReply* reply) {
  std::string line;
  Status s = ReadLine(&line);
  if (!s.ok()) return s;
  if (line.empty()) {
    return Status::IoError("empty reply line");
  }
  const char type = line[0];
  const std::string rest = line.substr(1);
  switch (type) {
    case '+':
      reply->type = RespReply::Type::kSimple;
      reply->str = rest;
      return Status::OK();
    case '-':
      reply->type = RespReply::Type::kError;
      reply->str = rest;
      return Status::OK();
    case ':':
      reply->type = RespReply::Type::kInteger;
      reply->integer = atoll(rest.c_str());
      return Status::OK();
    case '$': {
      const long long len = atoll(rest.c_str());
      if (len < 0) {
        reply->type = RespReply::Type::kNull;
        return Status::OK();
      }
      // Payload + trailing CRLF.
      while (buf_.size() - pos_ < static_cast<size_t>(len) + 2) {
        s = FillBuffer();
        if (!s.ok()) return s;
      }
      reply->type = RespReply::Type::kBulk;
      reply->str = buf_.substr(pos_, static_cast<size_t>(len));
      pos_ += static_cast<size_t>(len) + 2;
      return Status::OK();
    }
    case '*': {
      const long long n = atoll(rest.c_str());
      if (n < 0) {
        reply->type = RespReply::Type::kNull;
        return Status::OK();
      }
      reply->type = RespReply::Type::kArray;
      reply->elements.resize(static_cast<size_t>(n));
      for (long long i = 0; i < n; ++i) {
        s = ParseReply(&reply->elements[static_cast<size_t>(i)]);
        if (!s.ok()) return s;
      }
      return Status::OK();
    }
    default:
      return Status::IoError(std::string("unexpected reply type '") +
                             type + "'");
  }
}

Status RespClient::ReadReply(RespReply* reply) {
  if (fd_ < 0) return Status::IoError("not connected");
  *reply = RespReply();
  return ParseReply(reply);
}

Status RespClient::Command(const std::vector<std::string>& args,
                           RespReply* reply) {
  Status s = SendCommand(args);
  if (!s.ok()) return s;
  return ReadReply(reply);
}

}  // namespace monkeydb
