// monkey_server: the standalone RESP server binary (README quick start:
//   monkey_server --port 6380 --shards 4 --data-dir /tmp/monkeydb
// then talk to it with redis-cli, tools/monkey_cli, or curl /metrics).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "server/server.h"

namespace {

volatile std::sig_atomic_t g_signalled = 0;

void HandleSignal(int) { g_signalled = 1; }

void Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s [--port N] [--shards N] [--bind ADDR]\n"
          "          [--data-dir PATH] [--max-pipeline N]\n"
          "          [--engine-metrics] [--no-metrics]\n"
          "          [--slowlog-us N] [--trace-sample R]\n"
          "\n"
          "  --port N          listen port (default 6380; 0 = ephemeral)\n"
          "  --shards N        keyspace shards = DB instances = event-loop\n"
          "                    threads (default 1)\n"
          "  --bind ADDR       bind address (default 127.0.0.1)\n"
          "  --data-dir PATH   database root; shard i lives in\n"
          "                    PATH/shard-<i> (default ./monkeydb-data)\n"
          "  --max-pipeline N  commands coalesced per tick (default 1024)\n"
          "  --engine-metrics  enable the per-shard engine histograms too\n"
          "  --no-metrics      disable the server metrics registry\n"
          "  --slowlog-us N    log runs slower than N microseconds, with\n"
          "                    their span trees (SLOWLOG GET; default off)\n"
          "  --trace-sample R  head-sample requests into the flight\n"
          "                    recorder at rate R in [0,1] (TRACE, /trace;\n"
          "                    MONKEYDB_TRACE_SAMPLE overrides; default 0)\n",
          argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using monkeydb::MonkeyServer;
  using monkeydb::ServerOptions;
  using monkeydb::Status;

  ServerOptions opts;
  std::string data_dir = "./monkeydb-data";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        fprintf(stderr, "%s requires a value\n", flag);
        exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      opts.server_port = atoi(next("--port"));
    } else if (arg == "--shards") {
      opts.server_shards = atoi(next("--shards"));
    } else if (arg == "--bind") {
      opts.server_bind = next("--bind");
    } else if (arg == "--data-dir") {
      data_dir = next("--data-dir");
    } else if (arg == "--max-pipeline") {
      opts.server_max_pipeline = atoi(next("--max-pipeline"));
    } else if (arg == "--engine-metrics") {
      opts.db_options.enable_metrics = true;
    } else if (arg == "--no-metrics") {
      opts.server_enable_metrics = false;
    } else if (arg == "--slowlog-us") {
      opts.slowlog_threshold_us =
          static_cast<uint64_t>(atoll(next("--slowlog-us")));
    } else if (arg == "--trace-sample") {
      opts.trace_sample_rate = atof(next("--trace-sample"));
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  std::unique_ptr<MonkeyServer> server;
  Status s = MonkeyServer::Start(opts, data_dir, &server);
  if (!s.ok()) {
    fprintf(stderr, "monkey_server: start failed: %s\n",
            s.ToString().c_str());
    return 1;
  }
  printf("monkey_server: listening on %s:%d (%d shard%s, data in %s)\n",
         opts.server_bind.c_str(), server->port(), server->shards(),
         server->shards() == 1 ? "" : "s", data_dir.c_str());
  fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_signalled == 0 && !server->shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  printf("monkey_server: shutting down\n");
  server->Stop();
  return 0;
}
