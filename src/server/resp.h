// RESP2 wire protocol: an incremental, zero-copy request parser and the
// reply writers (DESIGN.md §14 "Serving layer").
//
// The parser consumes a connection's contiguous input buffer and yields
// one command per call as a vector of Slices *into that buffer* — no
// argument is ever copied. The slices stay valid until the buffer is
// compacted, which the connection does only after the tick's parsed
// commands have been executed and their replies buffered. A command split
// across reads simply returns kNeedMore until the missing bytes arrive
// (the connection re-parses from the command's start; commands are small,
// so the re-scan is cheaper than carrying parser state). Both framed
// ("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n") and inline ("GET k\r\n") requests
// are accepted, like Redis.
//
// Malformed input (bad type prefix, non-numeric or oversized lengths)
// never crashes: the parser reports kProtocolError with a Redis-style
// message; the connection sends it as an -ERR reply and closes.

#ifndef MONKEYDB_SERVER_RESP_H_
#define MONKEYDB_SERVER_RESP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace monkeydb {

struct RespLimits {
  size_t max_bulk_bytes = 64u << 20;  // One argument's payload.
  size_t max_multibulk = 1u << 20;    // Elements of one command.
  size_t max_inline_bytes = 64u << 10;
};

class RespParser {
 public:
  enum class Result {
    kCommand,        // *args filled; *pos advanced past the command.
    kNeedMore,       // Incomplete frame; feed more bytes and retry.
    kProtocolError,  // Malformed; error() has the reply, close after.
  };

  explicit RespParser(const RespLimits& limits) : limits_(limits) {}
  RespParser() : RespParser(RespLimits{}) {}

  // Parses one command from [data + *pos, data + len). Empty frames
  // (bare "\r\n", "*0\r\n") are consumed and skipped internally. On
  // kCommand, *args holds at least one argument, each a Slice into
  // `data`.
  Result ParseOne(const char* data, size_t len, size_t* pos,
                  std::vector<Slice>* args);

  // Human-readable protocol violation, e.g.
  // "Protocol error: expected '$', got '+'". Valid after kProtocolError.
  const std::string& error() const { return error_; }

 private:
  Result Fail(const std::string& message) {
    error_ = "Protocol error: " + message;
    return Result::kProtocolError;
  }

  Result ParseMultibulk(const char* data, size_t len, size_t* pos,
                        std::vector<Slice>* args);
  Result ParseInline(const char* data, size_t len, size_t* pos,
                     std::vector<Slice>* args);

  RespLimits limits_;
  std::string error_;
};

// Reply writers: append one RESP value to `out` (a connection's output
// buffer). Callers compose arrays by writing the header and then each
// element.
namespace resp {

void AppendSimpleString(std::string* out, const Slice& s);  // +s\r\n
void AppendError(std::string* out, const Slice& msg);       // -msg\r\n
void AppendInteger(std::string* out, long long v);          // :v\r\n
void AppendBulk(std::string* out, const Slice& s);  // $len\r\ns\r\n
void AppendNull(std::string* out);                  // $-1\r\n
void AppendArrayHeader(std::string* out, size_t n);  // *n\r\n

}  // namespace resp

// Glob matcher for SCAN MATCH / CONFIG GET patterns: supports '*' (any
// run) and '?' (any byte); every other byte matches literally.
bool GlobMatch(const Slice& pattern, const Slice& str);

}  // namespace monkeydb

#endif  // MONKEYDB_SERVER_RESP_H_
