#include "server/connection.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/trace.h"
#include "server/event_loop.h"
#include "server/server.h"

namespace monkeydb {

namespace {
// Per-tick read cap: a firehose client cannot starve its loop siblings.
constexpr size_t kMaxReadPerTick = 1u << 20;
constexpr size_t kReadChunk = 64u << 10;
}  // namespace

Connection::Connection(int fd, EventLoop* loop, MonkeyServer* server)
    : fd_(fd),
      loop_(loop),
      server_(server),
      parser_(RespLimits{server->options().server_max_bulk_bytes,
                         server->options().server_max_multibulk,
                         server->options().server_max_inline_bytes}),
      interest_(EPOLLIN) {}

Connection::~Connection() { ::close(fd_); }

const ServerOptions& Connection::opts() const { return server_->options(); }
MetricsRegistry* Connection::metrics() const { return server_->metrics(); }

bool Connection::OnReadable() {
  size_t read_this_tick = 0;
  while (read_this_tick < kMaxReadPerTick) {
    const size_t old = in_.size();
    in_.resize(old + kReadChunk);
    const ssize_t n = ::recv(fd_, &in_[old], kReadChunk, 0);
    if (n > 0) {
      in_.resize(old + static_cast<size_t>(n));
      read_this_tick += static_cast<size_t>(n);
      continue;
    }
    in_.resize(old);
    if (n == 0) {
      peer_eof_ = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // Connection reset or worse.
  }
  if (!ProcessInput()) return false;
  // A close requested this tick (QUIT, protocol error, HTTP response)
  // whose replies already flushed leaves nothing to wait for — without
  // this the connection would linger with no epoll interest at all.
  if (close_after_flush_ && OutputBacklog() == 0) return false;
  if (peer_eof_ && OutputBacklog() == 0) return false;
  if (peer_eof_) close_after_flush_ = true;  // Flush replies, then go.
  return true;
}

bool Connection::OnWritable() {
  if (!FlushAndUpdate()) return false;
  // Draining below the low-water mark resumed reads; commands may be
  // sitting fully buffered in in_ with no further EPOLLIN coming.
  if (!reads_paused_ && in_pos_ < in_.size()) {
    if (!ProcessInput()) return false;
  }
  if (close_after_flush_ && OutputBacklog() == 0) return false;
  return true;
}

bool Connection::ProcessInput() {
  if (!saw_bytes_ && !in_.empty()) {
    saw_bytes_ = true;
    // HTTP sniff: "GET /" or "HEAD /" can only be an HTTP request line —
    // a RESP inline GET would carry a key, and keys beginning with '/'
    // arrive framed. Everything else is RESP.
    if (in_.compare(0, 5, "GET /") == 0 ||
        in_.compare(0, 6, "HEAD /") == 0) {
      http_mode_ = true;
    }
  }
  if (http_mode_) return HandleHttp();

  const size_t max_pipeline =
      static_cast<size_t>(opts().server_max_pipeline);
  while (!close_after_flush_) {
    if (reads_paused_) {
      // The client may have drained concurrently; retry the flush. If it
      // resumes us, keep parsing — returning here with commands buffered
      // in in_ and only EPOLLIN armed would strand them (the socket is
      // empty, so EPOLLIN never fires again).
      if (!FlushAndUpdate()) return false;
      if (reads_paused_) return true;  // EPOLLOUT armed; OnWritable retries.
      continue;
    }
    // Parse one chunk of complete commands. The parse span samples
    // independently of the command runs below it (its armer disarms
    // before Execute), so parsing cost shows up in traces without
    // coupling the head-sampling draws.
    pending_.clear();
    {
      TraceArmer parse_armer(TraceSampleHead());
      TraceSpan parse_span(TraceName::kServerParse,
                           static_cast<int64_t>(in_.size() - in_pos_));
      while (pending_.size() < max_pipeline) {
        std::vector<Slice> args;
        const RespParser::Result r =
            parser_.ParseOne(in_.data(), in_.size(), &in_pos_, &args);
        if (r == RespParser::Result::kNeedMore) break;
        if (r == RespParser::Result::kProtocolError) {
          if (metrics() != nullptr) {
            metrics()->Tick1(Tick::kServerProtocolErrors);
          }
          // Named local: Slice's deleted rvalue-string overload rejects
          // binding a temporary, even in argument position where it would
          // be safe.
          const std::string protocol_error = "ERR " + parser_.error();
          resp::AppendError(&out_, protocol_error);
          close_after_flush_ = true;
          break;
        }
        ParsedCommand cmd;
        cmd.spec = LookupCommand(args[0]);
        cmd.args = std::move(args);
        pending_.push_back(std::move(cmd));
      }
      if (parse_span.armed()) {
        parse_span.set_args(static_cast<int64_t>(in_.size() - in_pos_),
                            static_cast<int64_t>(pending_.size()));
      }
    }
    if (pending_.empty()) break;
    server_->Execute(this, &pending_);
    pending_.clear();
    // Slices into in_ are dead now; drop the consumed prefix.
    in_.erase(0, in_pos_);
    in_pos_ = 0;
    if (!FlushAndUpdate()) return false;
    if (in_pos_ >= in_.size()) break;
  }
  return FlushAndUpdate();
}

bool Connection::HandleHttp() {
  const size_t end = in_.find("\r\n\r\n");
  if (end == std::string::npos) {
    return in_.size() <= opts().server_max_inline_bytes;  // Keep waiting.
  }
  // Request line: METHOD SP PATH SP VERSION.
  const size_t line_end = in_.find("\r\n");
  const std::string line = in_.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  std::string method = line.substr(0, sp1);
  std::string path = sp2 == std::string::npos
                         ? line.substr(sp1 + 1)
                         : line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (metrics() != nullptr) metrics()->Tick1(Tick::kServerHttpRequests);
  out_ += server_->HandleHttpRequest(method, path);
  close_after_flush_ = true;
  return FlushAndUpdate();
}

bool Connection::FlushAndUpdate() {
  while (out_pos_ < out_.size()) {
    const ssize_t n =
        ::send(fd_, out_.data() + out_pos_, out_.size() - out_pos_,
               MSG_NOSIGNAL);
    if (n > 0) {
      out_pos_ += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;  // Peer gone mid-reply.
  }
  if (out_pos_ == out_.size()) {
    out_.clear();
    out_pos_ = 0;
  } else if (out_pos_ > (1u << 20)) {
    // Reclaim flushed bytes so a long-lived slow client does not hold a
    // buffer proportional to lifetime traffic.
    out_.erase(0, out_pos_);
    out_pos_ = 0;
  }

  const size_t backlog = OutputBacklog();
  if (backlog > opts().server_output_hard_limit_bytes) {
    if (metrics() != nullptr) {
      metrics()->Tick1(Tick::kServerOverlimitCloses);
    }
    return false;
  }
  if (!reads_paused_ && backlog > opts().server_output_soft_limit_bytes) {
    reads_paused_ = true;
    if (metrics() != nullptr) {
      metrics()->Tick1(Tick::kServerBackpressurePauses);
    }
  } else if (reads_paused_ &&
             backlog < opts().server_output_soft_limit_bytes / 2) {
    reads_paused_ = false;
  }
  UpdateInterest();
  return true;
}

void Connection::UpdateInterest() {
  uint32_t want = 0;
  if (!reads_paused_ && !close_after_flush_) want |= EPOLLIN;
  if (OutputBacklog() > 0) want |= EPOLLOUT;
  if (want != interest_) {
    interest_ = want;
    loop_->UpdateEvents(fd_, want);
  }
}

}  // namespace monkeydb
