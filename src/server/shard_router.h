// Keyspace sharding: a stable hash-partition of user keys across the
// server's independent DB instances. Every key lives on exactly one shard
// for the lifetime of the deployment (the hash has no dependence on shard
// count ordering beyond the modulus), so GET/SET/DEL route point-wise and
// MGET/MSET split per shard and reassemble in request order.

#ifndef MONKEYDB_SERVER_SHARD_ROUTER_H_
#define MONKEYDB_SERVER_SHARD_ROUTER_H_

#include "util/hash.h"
#include "util/slice.h"

namespace monkeydb {

class ShardRouter {
 public:
  explicit ShardRouter(int shards) : shards_(shards < 1 ? 1 : shards) {}

  int shards() const { return shards_; }

  int ShardOf(const Slice& key) const {
    if (shards_ == 1) return 0;
    return static_cast<int>(XxHash64(key, kSeed) %
                            static_cast<uint64_t>(shards_));
  }

 private:
  // Fixed seed: the partition must be identical across restarts or keys
  // written before a restart would become unreachable.
  static constexpr uint64_t kSeed = 0x6d6f6e6b65794b56ull;  // "monkeyKV"

  int shards_;
};

}  // namespace monkeydb

#endif  // MONKEYDB_SERVER_SHARD_ROUTER_H_
