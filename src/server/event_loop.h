// EventLoop: one epoll loop, pinned to one server shard's thread. Owns
// its SO_REUSEPORT listener (the kernel load-balances accepts across the
// shard loops) plus every connection accepted on it, and drives the
// read -> parse -> batched-execute -> write cycle. Shared-nothing by
// construction: loops never touch each other's connections. (DB calls do
// cross shards — the engine's read/write paths are fully thread-safe —
// but all network state is loop-local.)
//
// The loop is epoll-based today; the Env abstraction the engine's
// io_uring substrate lives behind keeps the socket path swappable for a
// ring-based one without touching connection or executor code.

#ifndef MONKEYDB_SERVER_EVENT_LOOP_H_
#define MONKEYDB_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "util/status.h"

namespace monkeydb {

class Connection;
class MonkeyServer;

class EventLoop {
 public:
  EventLoop(int index, MonkeyServer* server);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Takes ownership of the (already bound + listening, nonblocking)
  // listener socket and builds the epoll/eventfd plumbing.
  Status Init(int listen_fd);

  // Blocks serving events until RequestStop. Runs on the shard thread.
  void Run();

  // Thread-safe shutdown signal (eventfd wakeup).
  void RequestStop();

  // Re-arms epoll interest for a connection's fd (EPOLLIN/EPOLLOUT mask).
  void UpdateEvents(int fd, uint32_t events);

  size_t live_connections() const {
    return live_.load(std::memory_order_relaxed);
  }
  int index() const { return index_; }

 private:
  void AcceptNew();
  void Destroy(int fd);

  int index_;
  MonkeyServer* server_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<size_t> live_{0};
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
};

}  // namespace monkeydb

#endif  // MONKEYDB_SERVER_EVENT_LOOP_H_
