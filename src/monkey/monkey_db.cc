#include "monkey/monkey_db.h"

#include <algorithm>

namespace monkeydb {
namespace monkey {

std::shared_ptr<const FprAllocationPolicy> NewMonkeyFprPolicy() {
  return std::make_shared<const MonkeyFprPolicy>();
}

void ApplyTuning(const Tuning& tuning, double num_entries,
                 DbOptions* options) {
  options->merge_policy = tuning.policy;
  options->size_ratio = tuning.size_ratio;
  options->buffer_size_bytes =
      static_cast<size_t>(std::max(tuning.buffer_bits / 8.0, 4096.0));
  options->bits_per_entry =
      num_entries > 0 ? tuning.filter_bits / num_entries : 0.0;
  options->fpr_policy = NewMonkeyFprPolicy();
}

Status OpenNavigableMonkey(const Environment& env, const Workload& workload,
                           const DbOptions& base_options,
                           const std::string& name, Tuning* chosen,
                           std::unique_ptr<DB>* db) {
  const Tuning tuning = AutotuneSizeRatioAndPolicy(env, workload);
  if (chosen != nullptr) *chosen = tuning;
  DbOptions options = base_options;
  ApplyTuning(tuning, env.num_entries, &options);
  return DB::Open(options, name, db);
}

}  // namespace monkey
}  // namespace monkeydb
