#include "monkey/monkey_db.h"

#include <algorithm>

namespace monkeydb {
namespace monkey {

std::shared_ptr<const FprAllocationPolicy> NewMonkeyFprPolicy() {
  return std::make_shared<const MonkeyFprPolicy>();
}

void ApplyTuning(const Tuning& tuning, double num_entries,
                 DbOptions* options) {
  options->merge_policy = tuning.policy;
  options->size_ratio = tuning.size_ratio;
  options->buffer_size_bytes =
      static_cast<size_t>(std::max(tuning.buffer_bits / 8.0, 4096.0));
  options->bits_per_entry =
      num_entries > 0 ? tuning.filter_bits / num_entries : 0.0;
  options->fpr_policy = NewMonkeyFprPolicy();
}

Status OpenNavigableMonkey(const Environment& env, const Workload& workload,
                           const DbOptions& base_options,
                           const std::string& name, Tuning* chosen,
                           std::unique_ptr<DB>* db) {
  const Tuning tuning = AutotuneSizeRatioAndPolicy(env, workload);
  if (chosen != nullptr) *chosen = tuning;
  DbOptions options = base_options;
  ApplyTuning(tuning, env.num_entries, &options);
  // Scan-heavy workloads get pipelined range lookups out of the box: a
  // modest readahead depth overlaps the per-block device latency without
  // changing the I/O count (Eq. 11's s·N/B blocks are read either way).
  // An explicit depth in base_options is respected.
  if (options.scan_readahead_blocks == 0 && workload.range_lookups > 0) {
    options.scan_readahead_blocks = 4;
  }
  return DB::Open(options, name, db);
}

}  // namespace monkey
}  // namespace monkeydb
