// MonkeyDb: convenience wiring from a tuning to a running DB.
//
// "Fixed Monkey" = the paper's default setup with only the filter
// allocation swapped to the optimal one; "Navigable Monkey" = the full
// system that first runs the tuner over (policy, T, memory split) and then
// opens the engine with that tuning (Sec. 5, Fig. 11(F)).

#ifndef MONKEYDB_MONKEY_MONKEY_DB_H_
#define MONKEYDB_MONKEY_MONKEY_DB_H_

#include <memory>
#include <string>

#include "lsm/db.h"
#include "monkey/fpr_allocator.h"
#include "monkey/tuner.h"

namespace monkeydb {
namespace monkey {

// Returns a shared Monkey FPR policy instance for DbOptions::fpr_policy.
std::shared_ptr<const FprAllocationPolicy> NewMonkeyFprPolicy();

// Applies a Tuning produced by the tuner onto engine options (merge policy,
// size ratio, buffer size, filter bits-per-entry, Monkey allocation).
void ApplyTuning(const Tuning& tuning, double num_entries,
                 DbOptions* options);

// One-call "Navigable Monkey": tunes for (env, workload) and opens a DB at
// `name` with the resulting options. base_options supplies env/comparator/
// cache; its design knobs are overwritten by the tuning.
Status OpenNavigableMonkey(const Environment& env, const Workload& workload,
                           const DbOptions& base_options,
                           const std::string& name, Tuning* chosen,
                           std::unique_ptr<DB>* db);

}  // namespace monkey
}  // namespace monkeydb

#endif  // MONKEYDB_MONKEY_MONKEY_DB_H_
