#include "monkey/fpr_allocator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "bloom/bloom_math.h"
#include "monkey/cost_model.h"

namespace monkeydb {
namespace monkey {

namespace {

using bloom::kLn2Squared;

double Clamp01(double p) { return std::min(std::max(p, 1e-12), 1.0); }

}  // namespace

FprVector OptimalFprsForLookupCost(MergePolicy policy, double size_ratio,
                                   int levels, double target_r) {
  assert(levels >= 1);
  assert(size_ratio >= 2.0);
  const double t = size_ratio;
  const double runs_per_level =
      (policy == MergePolicy::kTiering) ? (t - 1.0) : 1.0;
  const double max_r = levels * runs_per_level;
  target_r = std::min(std::max(target_r, 1e-12), max_r);

  // Eq. 17/18: the deepest L_u levels get FPR 1; the rest share the
  // remaining R following the geometric profile. The paper's estimate
  // L_u = max(0, floor((R-1)/runs_per_level)) can still leave the deepest
  // filtered level's FPR above 1 for large T, so saturate levels one at a
  // time (deepest first, which preserves optimality: deep filters are the
  // most expensive per unit of FPR reduction) until the profile is valid.
  int unfiltered;
  if (policy == MergePolicy::kTiering) {
    unfiltered = std::max(0, static_cast<int>(
                                 std::floor((target_r - 1.0) / (t - 1.0))));
  } else {
    unfiltered = std::max(0, static_cast<int>(std::floor(target_r - 1.0)));
  }
  unfiltered = std::min(unfiltered, levels - 1);

  // For the filtered sub-problem with Lf levels (exact forms of Eqs. 15/16
  // re-derived in Appendix B):
  //   leveling: p_i = R'·(T-1)·T^{i-1} / (T^{Lf} - 1)
  //   tiering:  p_i = R'·T^{i-1} / (T^{Lf} - 1)
  // The deepest filtered level (i = Lf) must satisfy p_{Lf} <= 1.
  auto deepest_fpr = [&](int filtered, double remaining_r) {
    const double denom = std::pow(t, filtered) - 1.0;
    const double numer = remaining_r * std::pow(t, filtered - 1);
    if (policy == MergePolicy::kTiering) return numer / denom;
    return numer * (t - 1.0) / denom;
  };
  while (unfiltered < levels - 1 &&
         deepest_fpr(levels - unfiltered,
                     target_r - unfiltered * runs_per_level) > 1.0) {
    unfiltered++;
  }

  const int filtered = levels - unfiltered;
  const double remaining_r = target_r - unfiltered * runs_per_level;

  FprVector fprs(levels, 1.0);
  const double denom = std::pow(t, filtered) - 1.0;
  for (int i = 1; i <= filtered; i++) {
    double p;
    if (policy == MergePolicy::kTiering) {
      p = remaining_r * std::pow(t, i - 1) / denom;
    } else {
      p = remaining_r * (t - 1.0) * std::pow(t, i - 1) / denom;
    }
    fprs[i - 1] = Clamp01(p);
  }
  return fprs;
}

FprVector OptimalFprsForMemory(MergePolicy policy, double size_ratio,
                               int levels, double total_entries,
                               double filter_bits) {
  assert(levels >= 1);
  // Derive R from the closed-form model. The model's level count comes from
  // the caller (the live tree shape), so build a DesignPoint that
  // reproduces exactly `levels` levels.
  DesignPoint d;
  d.policy = policy;
  d.size_ratio = size_ratio;
  d.num_entries = std::max(total_entries, 1.0);
  d.entry_size_bits = 1.0;
  d.entries_per_page = 1.0;
  // Choose buffer_bits so that NumLevels(d) == levels: Eq. 1 gives
  // L = ceil(log_T(N·E/Mbuf · (T-1)/T)). With
  // Mbuf = N·(T-1)/T^(levels+0.5) the log argument is T^(levels-0.5),
  // whose ceil-log is exactly `levels`.
  d.buffer_bits = d.num_entries * (size_ratio - 1.0) /
                  std::pow(size_ratio, static_cast<double>(levels) + 0.5);
  d.filter_bits = std::max(filter_bits, 0.0);

  const double r = ZeroResultLookupCost(d);
  return OptimalFprsForLookupCost(policy, size_ratio, levels, r);
}

double FilterMemoryForFprs(MergePolicy policy, double size_ratio,
                           double total_entries, const FprVector& fprs) {
  // Eq. 4: M_filters = -N/ln(2)^2 · (T-1)/T · sum_i ln(p_i)/T^{L-i}.
  const double t = size_ratio;
  const int levels = static_cast<int>(fprs.size());
  double sum = 0.0;
  for (int i = 1; i <= levels; i++) {
    sum += std::log(fprs[i - 1]) / std::pow(t, levels - i);
  }
  return -total_entries / kLn2Squared * (t - 1.0) / t * sum;
}

double LookupCostForFprs(MergePolicy policy, double size_ratio,
                         const FprVector& fprs) {
  double sum = 0.0;
  for (double p : fprs) sum += p;
  if (policy == MergePolicy::kTiering) return (size_ratio - 1.0) * sum;
  return sum;  // Eq. 3.
}

// --- Generalized geometry allocation ---

std::vector<LevelGeometry> CapacityGeometry(MergePolicy policy,
                                            double size_ratio, int levels,
                                            double total_entries) {
  std::vector<LevelGeometry> geometry(levels);
  const double t = size_ratio;
  for (int i = 1; i <= levels; i++) {
    geometry[i - 1].entries =
        total_entries * (t - 1.0) / std::pow(t, levels - i + 1);
    switch (policy) {
      case MergePolicy::kLeveling:
        geometry[i - 1].runs = 1;
        break;
      case MergePolicy::kTiering:
        geometry[i - 1].runs = t - 1.0;
        break;
      case MergePolicy::kLazyLeveling:
        geometry[i - 1].runs = (i == levels) ? 1.0 : t - 1.0;
        break;
    }
  }
  return geometry;
}

double LookupCostForGeometry(const std::vector<LevelGeometry>& geometry,
                             const FprVector& fprs) {
  double sum = 0;
  for (size_t i = 0; i < geometry.size(); i++) {
    sum += geometry[i].runs * fprs[i];
  }
  return sum;
}

FprVector OptimalFprsForGeometry(const std::vector<LevelGeometry>& geometry,
                                 double filter_bits) {
  const int levels = static_cast<int>(geometry.size());
  FprVector fprs(levels, 1.0);
  if (filter_bits <= 0.0) return fprs;

  // Optimal per-run FPR is alpha * entries_per_run (Lagrange condition of
  // Eq. 3 vs Eq. 4, generalized); clamp at 1. Memory used is a decreasing
  // function of alpha, so bisect alpha to spend exactly the budget.
  auto memory_for_alpha = [&](double alpha) {
    double memory = 0;
    for (const LevelGeometry& level : geometry) {
      if (level.entries <= 0) continue;
      const double per_run = level.entries / level.runs;
      const double p = std::min(1.0, alpha * per_run);
      memory += -level.entries * std::log(p) / kLn2Squared;
    }
    return memory;
  };

  // Bracket alpha: lo small enough that memory > budget, hi large enough
  // that all FPRs are 1 (memory 0).
  double max_per_run = 0;
  for (const LevelGeometry& level : geometry) {
    if (level.entries > 0) {
      max_per_run = std::max(max_per_run, level.entries / level.runs);
    }
  }
  if (max_per_run <= 0) return fprs;
  double hi = 1.0 / max_per_run;   // All p_i == 1 boundary.
  double lo = hi * 1e-30;
  if (memory_for_alpha(lo) < filter_bits) {
    // Budget exceeds what even absurdly small FPRs need; use lo as-is.
  }
  for (int iter = 0; iter < 200; iter++) {
    const double mid = std::sqrt(lo * hi);  // Geometric bisection.
    if (memory_for_alpha(mid) > filter_bits) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double alpha = std::sqrt(lo * hi);
  for (int i = 0; i < levels; i++) {
    if (geometry[i].entries <= 0) continue;
    fprs[i] = Clamp01(std::min(
        1.0, alpha * geometry[i].entries / geometry[i].runs));
  }
  return fprs;
}

// --- Appendix C ---

namespace {

// Algorithm 3: FPR of a filter with `bits` bits over `entries` keys.
double EvalFpr(double bits, uint64_t entries) {
  if (entries == 0) return 0.0;
  if (bits <= 0.0) return 1.0;
  return std::exp(-(bits / static_cast<double>(entries)) * kLn2Squared);
}

// Algorithm 2: moves delta bits from run2 to run1 if that reduces R.
double TrySwitch(RunFilterInfo* run1, RunFilterInfo* run2, double delta,
                 double r) {
  const double r_new = r - EvalFpr(run1->bits, run1->entries) -
                       EvalFpr(run2->bits, run2->entries) +
                       EvalFpr(run1->bits + delta, run1->entries) +
                       EvalFpr(run2->bits - delta, run2->entries);
  if (r_new < r && run2->bits - delta >= 0.0) {
    run1->bits += delta;
    run2->bits -= delta;
    return r_new;
  }
  return r;
}

}  // namespace

double AutotuneFilters(double filter_bits, std::vector<RunFilterInfo>* runs) {
  if (runs->empty()) return 0.0;

  // Algorithm 1: start with all memory on run 0, then iteratively shift
  // halving amounts of memory between pairs of runs while it helps.
  double delta = filter_bits;
  for (auto& run : *runs) run.bits = 0.0;
  (*runs)[0].bits = filter_bits;

  double r = 0.0;
  for (const auto& run : *runs) r += EvalFpr(run.bits, run.entries);

  // Halve the step once a full pass stops producing a meaningful
  // improvement. (Algorithm 1 halves on exactly-zero improvement; the
  // epsilon keeps convergence fast when moves yield only rounding-level
  // gains, without changing the fixed point materially.)
  constexpr double kEpsilon = 1e-9;
  while (delta >= 1.0) {
    const double r_before = r;
    for (size_t i = 0; i + 1 < runs->size(); i++) {
      for (size_t j = i + 1; j < runs->size(); j++) {
        r = TrySwitch(&(*runs)[i], &(*runs)[j], delta, r);
        r = TrySwitch(&(*runs)[j], &(*runs)[i], delta, r);
      }
    }
    if (r >= r_before - kEpsilon) delta /= 2.0;
  }
  return r;
}

// --- MonkeyFprPolicy ---

double MonkeyFprPolicy::RunFpr(const LsmShape& shape, int level) const {
  // Plan against the tree's *capacity* geometry (paper Sec. 4.1): derive
  // the level count L from Eq. 1 for the planning N (the expected final N
  // when the caller provides one, else the live total), then assign level i
  // the closed-form optimal FPR p_i. Because a level never holds more
  // entries than its capacity, the realized filter memory is bounded by the
  // budget M_filters = bits_per_entry * N automatically.
  const double n = static_cast<double>(std::max<uint64_t>(
      shape.total_entries, 1));
  int levels = std::max(shape.num_levels, level);
  if (shape.buffer_entries > 0) {
    const double t = shape.size_ratio;
    const double ratio =
        n / static_cast<double>(shape.buffer_entries) * (t - 1.0) / t;
    if (ratio > 1.0) {
      levels = std::max(
          levels,
          static_cast<int>(std::ceil(std::log(ratio) / std::log(t))));
    }
  }
  const double filter_bits = shape.bits_per_entry_budget * n;
  FprVector fprs;
  if (shape.merge_policy == MergePolicy::kLazyLeveling) {
    fprs = OptimalFprsForGeometry(
        CapacityGeometry(shape.merge_policy, shape.size_ratio, levels, n),
        filter_bits);
  } else {
    fprs = OptimalFprsForMemory(shape.merge_policy, shape.size_ratio, levels,
                                n, filter_bits);
  }
  assert(level >= 1 && level <= static_cast<int>(fprs.size()));
  return fprs[level - 1];
}

}  // namespace monkey
}  // namespace monkeydb
