#include "monkey/design_space.h"

#include <algorithm>

namespace monkeydb {
namespace monkey {

std::vector<CurvePoint> SweepDesignSpace(const DesignPoint& base,
                                         double t_max, double t_step) {
  std::vector<CurvePoint> points;
  for (MergePolicy policy :
       {MergePolicy::kLeveling, MergePolicy::kTiering}) {
    for (double t = 2.0; t <= t_max; t += t_step) {
      DesignPoint d = base;
      d.policy = policy;
      d.size_ratio = t;
      CurvePoint point;
      point.policy = policy;
      point.size_ratio = t;
      point.lookup_cost = ZeroResultLookupCost(d);
      point.baseline_lookup_cost = BaselineZeroResultLookupCost(d);
      point.update_cost = UpdateCost(d);
      points.push_back(point);
    }
  }
  return points;
}

std::vector<StoreConfig> StateOfTheArtStores() {
  // Defaults from each system's source/documentation circa the paper
  // (Sec. 1 Fig. 1 and Sec. 6): all use uniform bits-per-entry filters.
  return {
      {"LevelDB", MergePolicy::kLeveling, 10.0, 10.0, 2.0 * (1 << 20)},
      {"RocksDB", MergePolicy::kLeveling, 10.0, 10.0, 64.0 * (1 << 20)},
      {"cLSM", MergePolicy::kLeveling, 10.0, 10.0, 64.0 * (1 << 20)},
      {"bLSM", MergePolicy::kLeveling, 10.0, 10.0, 128.0 * (1 << 20)},
      {"Cassandra", MergePolicy::kTiering, 4.0, 10.0, 64.0 * (1 << 20)},
      {"HBase", MergePolicy::kTiering, 4.0, 10.0, 128.0 * (1 << 20)},
      {"WiredTiger", MergePolicy::kLeveling, 15.0, 16.0, 64.0 * (1 << 20)},
  };
}

CurvePoint EvaluateStore(const StoreConfig& store, const Environment& env) {
  DesignPoint d;
  d.policy = store.policy;
  d.size_ratio = store.size_ratio;
  d.num_entries = env.num_entries;
  d.entry_size_bits = env.entry_size_bits;
  d.buffer_bits = store.buffer_bytes * 8.0;
  d.filter_bits = store.bits_per_entry * env.num_entries;
  d.entries_per_page = std::max(1.0, env.page_bits / env.entry_size_bits);
  d.write_read_cost_ratio = env.write_read_cost_ratio;

  CurvePoint point;
  point.policy = store.policy;
  point.size_ratio = store.size_ratio;
  point.lookup_cost = ZeroResultLookupCost(d);
  point.baseline_lookup_cost = BaselineZeroResultLookupCost(d);
  point.update_cost = UpdateCost(d);
  return point;
}

WhatIfResult WhatIfMemoryChanges(const Environment& env, const Workload& w,
                                 double new_total_memory_bits) {
  WhatIfResult result;
  result.before = AutotuneSizeRatioAndPolicy(env, w);
  Environment changed = env;
  changed.total_memory_bits = new_total_memory_bits;
  result.after = AutotuneSizeRatioAndPolicy(changed, w);
  return result;
}

WhatIfResult WhatIfWorkloadChanges(const Environment& env,
                                   const Workload& before,
                                   const Workload& after) {
  WhatIfResult result;
  result.before = AutotuneSizeRatioAndPolicy(env, before);
  result.after = AutotuneSizeRatioAndPolicy(env, after);
  return result;
}

WhatIfResult WhatIfDataGrows(const Environment& env, const Workload& w,
                             double new_num_entries,
                             double new_entry_size_bits) {
  WhatIfResult result;
  result.before = AutotuneSizeRatioAndPolicy(env, w);
  Environment changed = env;
  changed.num_entries = new_num_entries;
  changed.entry_size_bits = new_entry_size_bits;
  result.after = AutotuneSizeRatioAndPolicy(changed, w);
  return result;
}

WhatIfResult WhatIfStorageChanges(const Environment& env, const Workload& w,
                                  double new_read_seconds,
                                  double new_write_read_cost_ratio) {
  WhatIfResult result;
  result.before = AutotuneSizeRatioAndPolicy(env, w);
  Environment changed = env;
  changed.read_seconds = new_read_seconds;
  changed.write_read_cost_ratio = new_write_read_cost_ratio;
  result.after = AutotuneSizeRatioAndPolicy(changed, w);
  return result;
}

}  // namespace monkey
}  // namespace monkeydb
