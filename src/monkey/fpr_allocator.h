// Monkey's optimal Bloom-filter memory allocation.
//
// Three entry points:
//  1. OptimalFprsForLookupCost — Eqs. 17/18: given a target zero-result
//     lookup cost R, return the per-level FPRs that minimize filter memory.
//  2. OptimalFprsForMemory — the converse used by the engine: given a
//     filter-memory budget, derive R via the closed-form model and return
//     the per-level FPRs.
//  3. AutotuneFilters — Appendix C (Algorithms 1-3): an iterative optimizer
//     over arbitrary per-run entry counts (variable entry sizes); converges
//     to the closed form when runs follow the ideal geometry.
//
// Plus MonkeyFprPolicy, the engine plug-in implementing FprAllocationPolicy.

#ifndef MONKEYDB_MONKEY_FPR_ALLOCATOR_H_
#define MONKEYDB_MONKEY_FPR_ALLOCATOR_H_

#include <cstdint>
#include <vector>

#include "lsm/fpr_policy.h"

namespace monkeydb {
namespace monkey {

// Per-level FPRs p_1..p_L (index 0 = Level 1, the smallest). All values in
// (0, 1].
using FprVector = std::vector<double>;

// Eqs. 17 (leveling) / 18 (tiering): FPR assignment minimizing filter
// memory subject to sum-of-FPRs == target R. REQUIRES: levels >= 1,
// size_ratio >= 2, 0 < target_r <= max total runs.
FprVector OptimalFprsForLookupCost(MergePolicy policy, double size_ratio,
                                   int levels, double target_r);

// Engine-facing: given the filter budget in bits for `total_entries` spread
// across `levels` levels with ratio `size_ratio`, computes R from the
// closed-form model (Eqs. 7/8) and returns the per-level FPRs.
FprVector OptimalFprsForMemory(MergePolicy policy, double size_ratio,
                               int levels, double total_entries,
                               double filter_bits);

// Total filter memory (bits) consumed by an FPR assignment (Eq. 4), for
// N entries distributed geometrically across the levels.
double FilterMemoryForFprs(MergePolicy policy, double size_ratio,
                           double total_entries, const FprVector& fprs);

// Expected zero-result lookup cost of an assignment (Eq. 3).
double LookupCostForFprs(MergePolicy policy, double size_ratio,
                         const FprVector& fprs);

// --- Generalized allocation over an arbitrary level geometry ---
//
// Supports hybrid merge policies (e.g. lazy leveling) that the closed
// forms above do not cover. The optimality condition is the paper's:
// each run's FPR is proportional to the number of entries in the run;
// this solves it numerically (bisection on the proportionality constant,
// with FPRs clamped at 1) for any {entries, runs} profile per level.

struct LevelGeometry {
  double entries = 0;  // Total entries at the level.
  double runs = 1;     // Number of runs sharing them (same size each).
};

// Per-level per-run FPRs minimizing the expected lookup cost
// sum_i runs_i * p_i subject to the total filter memory budget (bits).
FprVector OptimalFprsForGeometry(const std::vector<LevelGeometry>& geometry,
                                 double filter_bits);

// Expected zero-result lookup cost of a per-level assignment over the
// geometry: sum_i runs_i * p_i.
double LookupCostForGeometry(const std::vector<LevelGeometry>& geometry,
                             const FprVector& fprs);

// The level geometry implied by the paper's capacity profile for a tree of
// n entries: level i holds n·(T-1)/T^{L-i+1} entries, split into T-1 runs
// under tiering, 1 under leveling, and (tiering below / one run at the
// largest level) under lazy leveling.
std::vector<LevelGeometry> CapacityGeometry(MergePolicy policy,
                                            double size_ratio, int levels,
                                            double total_entries);

// --- Appendix C: iterative autotuning for arbitrary run sizes ---

struct RunFilterInfo {
  uint64_t entries = 0;  // Number of keys in the run.
  double bits = 0;       // Filter bits currently assigned.
};

// Algorithm 1: redistributes `filter_bits` among the runs to minimize the
// sum of FPRs. On return runs[i].bits holds the assignment; returns the
// minimized sum of FPRs (the expected lookup I/O cost R).
double AutotuneFilters(double filter_bits, std::vector<RunFilterInfo>* runs);

// --- Engine plug-in ---

// Assigns each run the Monkey-optimal FPR for its level, re-deriving the
// assignment from the tree shape every time a run is built (so filters
// adapt as the tree grows, like the paper's LevelDB retrofit).
class MonkeyFprPolicy : public FprAllocationPolicy {
 public:
  double RunFpr(const LsmShape& shape, int level) const override;
  const char* Name() const override { return "monkey"; }
};

}  // namespace monkey
}  // namespace monkeydb

#endif  // MONKEYDB_MONKEY_FPR_ALLOCATOR_H_
