// WorkloadMonitor: the seed for adaptive key-value stores (paper
// Appendix A: "A future class of key-value stores may adaptively switch
// from one tuning setting to another one. The formulas provided in this
// paper can be the seed for taking these decisions").
//
// The application reports its operations (or the monitor ingests DbStats
// deltas); the monitor maintains the observed mix and, on demand, runs the
// tuner to recommend a design — including whether switching is worth it
// given a transformation-cost estimate.

#ifndef MONKEYDB_MONKEY_WORKLOAD_MONITOR_H_
#define MONKEYDB_MONKEY_WORKLOAD_MONITOR_H_

#include <cstdint>

#include "monkey/tuner.h"

namespace monkeydb {
namespace monkey {

class WorkloadMonitor {
 public:
  // decay in (0, 1]: weight kept per Observe window (1 = never forget).
  explicit WorkloadMonitor(double decay = 0.9) : decay_(decay) {}

  // Report operations observed since the last call.
  void ObserveLookupsZeroResult(uint64_t n) { zero_ += n; }
  void ObserveLookupsNonZeroResult(uint64_t n) { nonzero_ += n; }
  void ObserveUpdates(uint64_t n) { updates_ += n; }
  void ObserveRangeLookups(uint64_t n, double avg_selectivity) {
    // Track a count-weighted mean selectivity.
    const double total = ranges_ + n;
    if (total > 0) {
      selectivity_ =
          (selectivity_ * ranges_ + avg_selectivity * n) / total;
    }
    ranges_ += n;
  }

  // Ages the history so the mix tracks recent behaviour.
  void EndWindow() {
    zero_ *= decay_;
    nonzero_ *= decay_;
    updates_ *= decay_;
    ranges_ *= decay_;
  }

  uint64_t total_observed() const {
    return static_cast<uint64_t>(zero_ + nonzero_ + updates_ + ranges_);
  }

  // The observed mix as tuner input (uniform 50/50 if nothing observed).
  Workload ObservedWorkload() const;

  struct Recommendation {
    Tuning tuning;
    // Predicted steady-state gain in average op cost (I/Os/op) vs staying
    // with `current`.
    double gain_ios_per_op = 0;
    // Whether switching pays for itself within horizon_ops operations,
    // given the one-time transformation cost (rewriting the tree).
    bool worth_switching = false;
  };

  // Recommends a tuning for env given the observed mix, and compares it
  // with `current` (the running design). transformation_ios estimates the
  // one-time cost of migrating (e.g. N/B page writes for a full rewrite).
  Recommendation Recommend(const Environment& env, const Tuning& current,
                           double transformation_ios,
                           double horizon_ops) const;

 private:
  double decay_;
  double zero_ = 0;
  double nonzero_ = 0;
  double updates_ = 0;
  double ranges_ = 0;
  double selectivity_ = 0;
};

}  // namespace monkey
}  // namespace monkeydb

#endif  // MONKEYDB_MONKEY_WORKLOAD_MONITOR_H_
