#include "monkey/tuner.h"

#include <algorithm>
#include <cassert>
#include <vector>
#include <cmath>

#include "bloom/bloom_math.h"

namespace monkeydb {
namespace monkey {

namespace {

// Evaluates a candidate (policy, T): allocates memory per Sec. 4.4, then
// computes costs. Returns theta = +inf for SLA-violating candidates so the
// search discards them (Appendix D).
Tuning Evaluate(const Environment& env, const Workload& w,
                const SlaBounds& sla, MergePolicy policy, double size_ratio) {
  Tuning tuning;
  tuning.policy = policy;
  tuning.size_ratio = size_ratio;

  const MemorySplit split = AllocateMainMemory(env, policy, size_ratio);
  tuning.buffer_bits = split.buffer_bits;
  tuning.filter_bits = split.filter_bits;

  const DesignPoint d = MakeDesignPoint(env, policy, size_ratio,
                                        split.buffer_bits, split.filter_bits);
  tuning.lookup_cost = ZeroResultLookupCost(d);
  tuning.update_cost = UpdateCost(d);
  tuning.avg_op_cost = AverageOperationCost(d, w);
  tuning.throughput = Throughput(d, w, env.read_seconds);
  tuning.feasible = tuning.lookup_cost <= sla.max_lookup_cost &&
                    tuning.update_cost <= sla.max_update_cost;
  if (!tuning.feasible) {
    tuning.avg_op_cost = std::numeric_limits<double>::infinity();
    tuning.throughput = 0.0;
  }
  return tuning;
}

}  // namespace

DesignPoint MakeDesignPoint(const Environment& env, MergePolicy policy,
                            double size_ratio, double buffer_bits,
                            double filter_bits) {
  DesignPoint d;
  d.policy = policy;
  d.size_ratio = size_ratio;
  d.num_entries = env.num_entries;
  d.entry_size_bits = env.entry_size_bits;
  d.buffer_bits = std::max(buffer_bits, env.page_bits);  // >= one page.
  d.filter_bits = std::max(filter_bits, 0.0);
  d.entries_per_page = std::max(1.0, env.page_bits / env.entry_size_bits);
  d.write_read_cost_ratio = env.write_read_cost_ratio;
  return d;
}

MemorySplit AllocateMainMemory(const Environment& env, MergePolicy policy,
                               double size_ratio, double r_target) {
  MemorySplit split;
  const double total = env.total_memory_bits;
  const double page = env.page_bits;

  // The buffer must hold at least one page.
  split.buffer_bits = std::min(total, page);
  split.filter_bits = 0.0;
  if (total <= page) return split;

  // Step 1: filters below M_threshold/T^L yield no benefit (Eq. 8), so the
  // first min(M, M_threshold/T^L) bits go to the buffer. L depends on the
  // buffer size, so iterate the fixed point a few times.
  DesignPoint probe = MakeDesignPoint(env, policy, size_ratio,
                                      split.buffer_bits, 0.0);
  double step1 = split.buffer_bits;
  for (int iter = 0; iter < 8; iter++) {
    probe.buffer_bits = std::max(step1, page);
    const double threshold = MemoryThreshold(probe) /
                             std::pow(size_ratio, NumLevels(probe));
    const double next = std::min(total, std::max(page, threshold));
    if (std::abs(next - step1) < 1.0) {
      step1 = next;
      break;
    }
    step1 = next;
  }
  split.buffer_bits = step1;
  double remaining = total - step1;
  if (remaining <= 0.0) return split;

  // Step 2: 95% of the remainder to filters, 5% to the buffer — but filters
  // stop paying off once R falls below r_target (false-positive I/O becomes
  // negligible next to CPU/RAM costs). Cap the filter memory there.
  double filters = 0.95 * remaining;
  double buffer_extra = 0.05 * remaining;

  // Invert Eq. 19 to find the filter memory where R == r_target.
  const double t = size_ratio;
  const double base = std::pow(t, t / (t - 1.0));
  double cap;
  if (policy == MergePolicy::kTiering) {
    cap = env.num_entries / bloom::kLn2Squared *
          std::log(base / r_target);
  } else {
    cap = env.num_entries / bloom::kLn2Squared *
          std::log(base / (r_target * (t - 1.0)));
  }
  cap = std::max(cap, 0.0);
  if (filters > cap) {
    // Step 3: memory beyond the cap goes back to the buffer.
    buffer_extra += filters - cap;
    filters = cap;
  }

  split.buffer_bits += buffer_extra;
  split.filter_bits = filters;
  return split;
}

Tuning AutotuneSizeRatioAndPolicy(const Environment& env, const Workload& w,
                                  const SlaBounds& sla,
                                  std::vector<Tuning>* trace) {
  // Linearized space (Algorithm 5): candidate i maps to
  //   T = |i| + 2,  policy = tiering if i > 0 else leveling.
  const DesignPoint probe = MakeDesignPoint(env, MergePolicy::kLeveling, 2.0,
                                            env.total_memory_bits / 2,
                                            env.total_memory_bits / 2);
  const double t_lim = SizeRatioLimit(probe);

  auto compute = [&](double i) {
    const double t = std::min(std::fabs(i) + 2.0, std::max(2.0, t_lim));
    const MergePolicy policy =
        (i > 0) ? MergePolicy::kTiering : MergePolicy::kLeveling;
    Tuning result = Evaluate(env, w, sla, policy, t);
    if (trace != nullptr) trace->push_back(result);
    return result;
  };

  // Algorithm 4: binary search with probes at i +- delta.
  double i = 0.0;
  Tuning best = compute(i);
  double delta = 0.5 * t_lim;
  while (delta >= 1.0) {
    const Tuning plus = compute(i + delta);
    const Tuning minus = compute(i - delta);
    if (plus.avg_op_cost < best.avg_op_cost &&
        plus.avg_op_cost < minus.avg_op_cost) {
      best = plus;
      i += delta;
    } else if (minus.avg_op_cost < best.avg_op_cost) {
      best = minus;
      i -= delta;
    }
    delta /= 2.0;
  }
  return best;
}

Tuning ExhaustiveSearch(const Environment& env, const Workload& w,
                        const SlaBounds& sla) {
  const DesignPoint probe = MakeDesignPoint(env, MergePolicy::kLeveling, 2.0,
                                            env.total_memory_bits / 2,
                                            env.total_memory_bits / 2);
  const double t_lim = std::max(2.0, SizeRatioLimit(probe));

  Tuning best;
  best.avg_op_cost = std::numeric_limits<double>::infinity();
  best.feasible = false;
  for (double t = 2.0; t <= t_lim + 0.5; t += 1.0) {
    const double ratio = std::min(t, t_lim);
    for (MergePolicy policy :
         {MergePolicy::kLeveling, MergePolicy::kTiering}) {
      const Tuning candidate = Evaluate(env, w, sla, policy, ratio);
      if (candidate.avg_op_cost < best.avg_op_cost) best = candidate;
    }
    if (ratio >= t_lim) break;
  }
  return best;
}

}  // namespace monkey
}  // namespace monkeydb
