#include "monkey/workload_monitor.h"

namespace monkeydb {
namespace monkey {

Workload WorkloadMonitor::ObservedWorkload() const {
  Workload w;
  const double total = zero_ + nonzero_ + updates_ + ranges_;
  if (total <= 0) {
    w.zero_result_lookups = 0.5;
    w.updates = 0.5;
    return w;
  }
  w.zero_result_lookups = zero_ / total;
  w.nonzero_result_lookups = nonzero_ / total;
  w.updates = updates_ / total;
  w.range_lookups = ranges_ / total;
  w.range_selectivity = selectivity_;
  return w;
}

WorkloadMonitor::Recommendation WorkloadMonitor::Recommend(
    const Environment& env, const Tuning& current,
    double transformation_ios, double horizon_ops) const {
  const Workload w = ObservedWorkload();
  Recommendation rec;
  rec.tuning = AutotuneSizeRatioAndPolicy(env, w);

  // Average op cost of the *current* design under the observed mix.
  const DesignPoint current_design =
      MakeDesignPoint(env, current.policy, current.size_ratio,
                      current.buffer_bits, current.filter_bits);
  const double current_cost = AverageOperationCost(current_design, w);
  rec.gain_ios_per_op = current_cost - rec.tuning.avg_op_cost;

  // Switching pays off if the saved I/Os over the horizon exceed the
  // one-time migration cost (Appendix A: "along with the transformation
  // costs").
  rec.worth_switching =
      rec.gain_ios_per_op > 0 &&
      rec.gain_ios_per_op * horizon_ops > transformation_ios;
  return rec;
}

}  // namespace monkey
}  // namespace monkeydb
