// Closed-form worst-case cost models for the LSM-tree design space
// (paper Sections 2, 4.2 and Appendices B.1, E).
//
// All I/O costs are expressed in disk-page I/Os, matching the engine's
// CountingEnv unit. The models take a DesignPoint — the paper's tuning and
// environmental parameters — and produce:
//   R      zero-result point lookup cost        (Eqs. 7 & 8)
//   R_art  same, for the uniform-FPR baseline   (Eq. 26)
//   V      non-zero-result point lookup cost    (Eq. 9)
//   W      amortized update cost                (Eq. 10)
//   Q      range lookup cost                    (Eq. 11)
//   theta  average operation cost               (Eq. 12)
//   tau    worst-case throughput                (Eq. 13)

#ifndef MONKEYDB_MONKEY_COST_MODEL_H_
#define MONKEYDB_MONKEY_COST_MODEL_H_

#include <cstdint>

#include "lsm/fpr_policy.h"

namespace monkeydb {
namespace monkey {

// A full configuration of the LSM-tree design space plus environment
// (paper Fig. 2 and Table 2 terms).
struct DesignPoint {
  MergePolicy policy = MergePolicy::kLeveling;
  double size_ratio = 2.0;        // T, in [2, T_lim].

  double num_entries = 0;         // N.
  double entry_size_bits = 0;     // E.
  double buffer_bits = 0;         // M_buffer.
  double filter_bits = 0;         // M_filters.
  double entries_per_page = 1;    // B.

  double write_read_cost_ratio = 1.0;  // phi (flash > 1).

  bool valid() const {
    return size_ratio >= 2.0 && num_entries > 0 && entry_size_bits > 0 &&
           buffer_bits > 0 && entries_per_page >= 1;
  }
};

// Workload mix (paper Table 2): proportions must sum to 1.
struct Workload {
  double zero_result_lookups = 0;     // r.
  double nonzero_result_lookups = 0;  // v.
  double range_lookups = 0;           // q.
  double updates = 0;                 // w.
  double range_selectivity = 0;       // s: fraction of entries per range.
};

// T_lim: the size ratio at which the tree collapses to a single level
// (Sec. 2): T_lim = N·E / M_buffer.
double SizeRatioLimit(const DesignPoint& d);

// L: number of levels (Eq. 1). Always >= 1.
int NumLevels(const DesignPoint& d);

// M_threshold: filter memory below which the largest level's FPR converges
// to 1 (Eq. 8, bottom).
double MemoryThreshold(const DesignPoint& d);

// L_unfiltered: number of deep levels with no filters under Monkey's
// allocation (Eq. 8).
int UnfilteredLevels(const DesignPoint& d);

// R: Monkey's zero-result lookup cost (Eqs. 7 & 8), clamped to the total
// number of runs.
double ZeroResultLookupCost(const DesignPoint& d);

// R_art: the state-of-the-art baseline with uniform bits-per-entry
// (Eq. 26), clamped to the total number of runs.
double BaselineZeroResultLookupCost(const DesignPoint& d);

// p_L: FPR of the largest level under Monkey / baseline (used by Eq. 9).
double LastLevelFpr(const DesignPoint& d);
double BaselineLastLevelFpr(const DesignPoint& d);

// V = R - p_L + 1 (Eq. 9).
double NonZeroResultLookupCost(const DesignPoint& d);
double BaselineNonZeroResultLookupCost(const DesignPoint& d);

// W (Eq. 10).
double UpdateCost(const DesignPoint& d);

// Q (Eq. 11) for range lookups touching fraction s of all entries.
double RangeLookupCost(const DesignPoint& d, double selectivity);

// theta (Eq. 12): workload-weighted average operation cost, using Monkey's
// (or the baseline's) lookup models.
double AverageOperationCost(const DesignPoint& d, const Workload& w);
double BaselineAverageOperationCost(const DesignPoint& d, const Workload& w);

// tau = 1/(theta * Omega) (Eq. 13). read_seconds is Omega.
double Throughput(const DesignPoint& d, const Workload& w,
                  double read_seconds);

// Maximum possible number of runs (L with leveling, L·(T-1) with tiering):
// the natural upper bound on R.
double MaxRuns(const DesignPoint& d);

}  // namespace monkey
}  // namespace monkeydb

#endif  // MONKEYDB_MONKEY_COST_MODEL_H_
