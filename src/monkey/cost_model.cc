#include "monkey/cost_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "bloom/bloom_math.h"
#include "monkey/fpr_allocator.h"

namespace monkeydb {
namespace monkey {

namespace {

using bloom::kLn2Squared;

double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

}  // namespace

double SizeRatioLimit(const DesignPoint& d) {
  return std::max(2.0, d.num_entries * d.entry_size_bits / d.buffer_bits);
}

int NumLevels(const DesignPoint& d) {
  assert(d.valid());
  const double t = d.size_ratio;
  const double ratio =
      (d.num_entries * d.entry_size_bits / d.buffer_bits) * (t - 1.0) / t;
  if (ratio <= 1.0) return 1;
  const int levels = static_cast<int>(std::ceil(std::log(ratio) /
                                                std::log(t)));
  return std::max(1, levels);
}

double MemoryThreshold(const DesignPoint& d) {
  const double t = d.size_ratio;
  return d.num_entries / kLn2Squared * std::log(t) / (t - 1.0);
}

int UnfilteredLevels(const DesignPoint& d) {
  const int levels = NumLevels(d);
  const double threshold = MemoryThreshold(d);
  if (d.filter_bits >= threshold) return 0;
  if (d.filter_bits <= 0.0) return levels;
  const double raw =
      std::ceil(std::log(threshold / d.filter_bits) / std::log(d.size_ratio));
  return static_cast<int>(Clamp(raw, 0.0, static_cast<double>(levels)));
}

double MaxRuns(const DesignPoint& d) {
  const int levels = NumLevels(d);
  switch (d.policy) {
    case MergePolicy::kTiering:
      return levels * (d.size_ratio - 1.0);
    case MergePolicy::kLazyLeveling:
      return (levels - 1) * (d.size_ratio - 1.0) + 1.0;
    case MergePolicy::kLeveling:
      break;
  }
  return levels;
}

double ZeroResultLookupCost(const DesignPoint& d) {
  if (d.policy == MergePolicy::kLazyLeveling) {
    // No closed form for the hybrid: solve the allocation numerically over
    // the capacity geometry (extension; see fpr_allocator.h).
    const int levels = NumLevels(d);
    const auto geometry = CapacityGeometry(d.policy, d.size_ratio, levels,
                                           d.num_entries);
    const FprVector fprs = OptimalFprsForGeometry(geometry, d.filter_bits);
    return Clamp(LookupCostForGeometry(geometry, fprs), 0.0, MaxRuns(d));
  }
  const double t = d.size_ratio;
  const int levels = NumLevels(d);
  const int unfiltered = UnfilteredLevels(d);

  // Runs in the unfiltered deep levels are always probed (Eq. 7).
  double r_unfiltered;
  if (d.policy == MergePolicy::kTiering) {
    r_unfiltered = unfiltered * (t - 1.0);
  } else {
    r_unfiltered = unfiltered;
  }

  // Expected false positives across the filtered shallow levels (Eq. 7):
  // filters there cover only N/T^unfiltered entries.
  double r_filtered = 0.0;
  if (unfiltered < levels) {
    const double effective_exponent = (d.filter_bits / d.num_entries) *
                                      kLn2Squared *
                                      std::pow(t, unfiltered);
    const double base = std::pow(t, t / (t - 1.0));
    if (d.policy == MergePolicy::kTiering) {
      r_filtered = base * std::exp(-effective_exponent);
    } else {
      r_filtered = base / (t - 1.0) * std::exp(-effective_exponent);
    }
  }

  return Clamp(r_filtered + r_unfiltered, 0.0, MaxRuns(d));
}

double BaselineZeroResultLookupCost(const DesignPoint& d) {
  const double fpr =
      std::exp(-(d.filter_bits / d.num_entries) * kLn2Squared);
  // Eq. 26 generalizes to: (number of runs) x (uniform FPR).
  const double r = MaxRuns(d) * fpr;
  return Clamp(r, 0.0, MaxRuns(d));
}

double LastLevelFpr(const DesignPoint& d) {
  if (d.policy == MergePolicy::kLazyLeveling) {
    const int levels = NumLevels(d);
    const auto geometry = CapacityGeometry(d.policy, d.size_ratio, levels,
                                           d.num_entries);
    const FprVector fprs = OptimalFprsForGeometry(geometry, d.filter_bits);
    return fprs.back();
  }
  if (UnfilteredLevels(d) > 0) return 1.0;
  const double t = d.size_ratio;
  const double r = ZeroResultLookupCost(d);
  // From the optimal allocation (Eq. 15/16 at i = L, large-L form):
  // leveling p_L = R(T-1)/T, tiering p_L = R/T.
  double p_last;
  if (d.policy == MergePolicy::kTiering) {
    p_last = r / t;
  } else {
    p_last = r * (t - 1.0) / t;
  }
  return Clamp(p_last, 0.0, 1.0);
}

double BaselineLastLevelFpr(const DesignPoint& d) {
  return Clamp(
      std::exp(-(d.filter_bits / d.num_entries) * kLn2Squared), 0.0, 1.0);
}

double NonZeroResultLookupCost(const DesignPoint& d) {
  return ZeroResultLookupCost(d) - LastLevelFpr(d) + 1.0;  // Eq. 9.
}

double BaselineNonZeroResultLookupCost(const DesignPoint& d) {
  return BaselineZeroResultLookupCost(d) - BaselineLastLevelFpr(d) + 1.0;
}

double UpdateCost(const DesignPoint& d) {
  const double t = d.size_ratio;
  const double levels = NumLevels(d);
  const double b = d.entries_per_page;
  const double phi = d.write_read_cost_ratio;
  switch (d.policy) {
    case MergePolicy::kTiering:
      return levels / b * (t - 1.0) / t * (1.0 + phi);  // Eq. 10.
    case MergePolicy::kLazyLeveling:
      // Tiered merges through L-1 levels plus one leveled largest level.
      return ((levels - 1) / b * (t - 1.0) / t +
              1.0 / b * (t - 1.0) / 2.0) *
             (1.0 + phi);
    case MergePolicy::kLeveling:
      break;
  }
  return levels / b * (t - 1.0) / 2.0 * (1.0 + phi);
}

double RangeLookupCost(const DesignPoint& d, double selectivity) {
  const double scan_pages = selectivity * d.num_entries / d.entries_per_page;
  // Eq. 11 generalizes to: scan pages + one seek per run.
  return scan_pages + MaxRuns(d);
}

double AverageOperationCost(const DesignPoint& d, const Workload& w) {
  return w.zero_result_lookups * ZeroResultLookupCost(d) +
         w.nonzero_result_lookups * NonZeroResultLookupCost(d) +
         w.range_lookups * RangeLookupCost(d, w.range_selectivity) +
         w.updates * UpdateCost(d);  // Eq. 12.
}

double BaselineAverageOperationCost(const DesignPoint& d, const Workload& w) {
  return w.zero_result_lookups * BaselineZeroResultLookupCost(d) +
         w.nonzero_result_lookups * BaselineNonZeroResultLookupCost(d) +
         w.range_lookups * RangeLookupCost(d, w.range_selectivity) +
         w.updates * UpdateCost(d);
}

double Throughput(const DesignPoint& d, const Workload& w,
                  double read_seconds) {
  const double theta = AverageOperationCost(d, w);
  if (theta <= 0.0) return 0.0;
  return 1.0 / (theta * read_seconds);  // Eq. 13.
}

}  // namespace monkey
}  // namespace monkeydb
