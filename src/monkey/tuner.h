// Tuner: navigates the Pareto curve (paper Sec. 4.4 and Appendix D).
//
// - AutotuneSizeRatioAndPolicy: the divide-and-conquer search (Algorithms
//   4-5) over the linearized (merge policy, size ratio) continuum that
//   maximizes worst-case throughput, optionally under SLA bounds on lookup
//   or update cost.
// - AllocateMainMemory: the three-step rule for dividing main memory
//   between the buffer and the filters (Sec. 4.4).

#ifndef MONKEYDB_MONKEY_TUNER_H_
#define MONKEYDB_MONKEY_TUNER_H_

#include <limits>
#include <vector>

#include "monkey/cost_model.h"

namespace monkeydb {
namespace monkey {

// Environment parameters that the tuner cannot change.
struct Environment {
  double num_entries = 0;          // N.
  double entry_size_bits = 0;      // E.
  double page_bits = 4096 * 8;     // Disk page size -> B = page/E.
  double total_memory_bits = 0;    // M: to divide into buffer + filters.
  double read_seconds = 10e-3;     // Omega (HDD default).
  double write_read_cost_ratio = 1.0;  // phi.
};

// Optional SLA bounds (Appendix D: "impose upper-bounds on lookup cost or
// update cost"). Infinity = unconstrained.
struct SlaBounds {
  double max_lookup_cost = std::numeric_limits<double>::infinity();
  double max_update_cost = std::numeric_limits<double>::infinity();
};

struct Tuning {
  MergePolicy policy = MergePolicy::kLeveling;
  double size_ratio = 2.0;
  double buffer_bits = 0;
  double filter_bits = 0;

  // Predicted costs at this tuning (Monkey allocation).
  double lookup_cost = 0;     // R.
  double update_cost = 0;     // W.
  double avg_op_cost = 0;     // theta.
  double throughput = 0;      // tau.
  bool feasible = true;       // False if no tuning satisfied the SLA.
};

// Builds the DesignPoint for a candidate (policy, T) given env and a
// memory split.
DesignPoint MakeDesignPoint(const Environment& env, MergePolicy policy,
                            double size_ratio, double buffer_bits,
                            double filter_bits);

// Sec. 4.4 three-step memory allocation for a fixed (policy, T):
//   1. give the buffer min(M, M_threshold/T^L) bits;
//   2. split the remainder 5% buffer / 95% filters, but cap the filters
//      once R drops below r_target (1e-4 for disk, 1e-2 for flash);
//   3. the rest goes to the buffer.
// Returns {buffer_bits, filter_bits}.
struct MemorySplit {
  double buffer_bits = 0;
  double filter_bits = 0;
};
MemorySplit AllocateMainMemory(const Environment& env, MergePolicy policy,
                               double size_ratio,
                               double r_target = 1e-4);

// Appendix D (Algorithms 4-5): divide-and-conquer over the linearized
// design continuum i in [-(T_lim-2), +(T_lim-2)], where negative i means
// leveling with T = |i|+2 and positive i means tiering with T = i+2.
// Runs in O(log^2 T_lim) model evaluations. If trace is non-null, each
// probed candidate is appended in evaluation order (the walk of Fig. 10).
Tuning AutotuneSizeRatioAndPolicy(const Environment& env, const Workload& w,
                                  const SlaBounds& sla = SlaBounds(),
                                  std::vector<Tuning>* trace = nullptr);

// Exhaustive reference search over every integer size ratio and both
// policies (used to validate the divide-and-conquer algorithm in tests).
Tuning ExhaustiveSearch(const Environment& env, const Workload& w,
                        const SlaBounds& sla = SlaBounds());

}  // namespace monkey
}  // namespace monkeydb

#endif  // MONKEYDB_MONKEY_TUNER_H_
