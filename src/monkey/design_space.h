// DesignSpace: enumeration and what-if analysis over the LSM design
// continuum (paper Figs. 1, 4, 8 and the what-if questions of Sec. 4.4).

#ifndef MONKEYDB_MONKEY_DESIGN_SPACE_H_
#define MONKEYDB_MONKEY_DESIGN_SPACE_H_

#include <string>
#include <vector>

#include "monkey/cost_model.h"
#include "monkey/tuner.h"

namespace monkeydb {
namespace monkey {

// One point on a lookup-vs-update cost curve.
struct CurvePoint {
  MergePolicy policy;
  double size_ratio;
  double lookup_cost;           // R, Monkey allocation.
  double baseline_lookup_cost;  // R_art, uniform allocation.
  double update_cost;           // W (same for both).
};

// Sweeps the size ratio from 2 to t_max for both policies with a fixed
// environment/memory split (Figs. 4 and 8). The two half-curves meet at
// T = 2 where tiering and leveling coincide.
std::vector<CurvePoint> SweepDesignSpace(const DesignPoint& base,
                                         double t_max, double t_step = 1.0);

// Default configurations of named state-of-the-art stores, as positioned in
// Fig. 1 (values from each system's documentation/source defaults).
struct StoreConfig {
  std::string name;
  MergePolicy policy;
  double size_ratio;
  double bits_per_entry;  // Uniform filter budget.
  double buffer_bytes;
};
std::vector<StoreConfig> StateOfTheArtStores();

// Evaluates a named store's default tuning (uniform FPR allocation) against
// an environment; returns (R_art, W) — its position in Fig. 1.
CurvePoint EvaluateStore(const StoreConfig& store, const Environment& env);

// --- What-if analysis (Sec. 4.4 / intro bullet 4) ---
//
// Each what-if takes a baseline environment+workload, applies one change,
// re-tunes Monkey, and reports both tunings so callers can see how the
// optimal design and its performance shift.
struct WhatIfResult {
  Tuning before;
  Tuning after;
};

WhatIfResult WhatIfMemoryChanges(const Environment& env, const Workload& w,
                                 double new_total_memory_bits);
WhatIfResult WhatIfWorkloadChanges(const Environment& env,
                                   const Workload& before,
                                   const Workload& after);
WhatIfResult WhatIfDataGrows(const Environment& env, const Workload& w,
                             double new_num_entries,
                             double new_entry_size_bits);
// E.g. disk (omega=10ms, phi=1) -> flash (omega=100us, phi=2).
WhatIfResult WhatIfStorageChanges(const Environment& env, const Workload& w,
                                  double new_read_seconds,
                                  double new_write_read_cost_ratio);

}  // namespace monkey
}  // namespace monkeydb

#endif  // MONKEYDB_MONKEY_DESIGN_SPACE_H_
