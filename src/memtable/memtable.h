// MemTable: the in-memory write buffer (the paper's Level 0 / M_buffer).
//
// Updates, inserts, and deletes land here first; when ApproximateMemoryUsage
// exceeds the configured buffer budget the LSM engine sorts the contents
// (already sorted via the skiplist) and flushes them to Level 1 as a run.

#ifndef MONKEYDB_MEMTABLE_MEMTABLE_H_
#define MONKEYDB_MEMTABLE_MEMTABLE_H_

#include <atomic>
#include <memory>
#include <string>

#include "lsm/internal_key.h"
#include "memtable/skiplist.h"
#include "util/arena.h"
#include "util/concurrent_arena.h"
#include "util/iterator.h"

namespace monkeydb {

struct MemTableOptions {
  // Allow concurrent Add calls (the parallel write-group application
  // path). Switches the backing allocator from the single-threaded Arena
  // to the sharded, hugepage-backed ConcurrentArena and routes every Add
  // through the skiplist's lock-free CAS insert with an inline-key node
  // layout. Off = the classic single-writer memtable, byte-identical in
  // behavior and accounting to the original.
  bool concurrent_inserts = false;

  // Arena block size; 0 = Arena::kDefaultBlockSize (4096) for the classic
  // path, 2 MiB (one hugepage) for the concurrent path. Blocks of at
  // least 2 MiB are eligible for hugepage backing on the concurrent path.
  size_t arena_block_size = 0;
};

// Concurrency: Add requires external writer serialization (the engine's
// writer lock) unless MemTableOptions::concurrent_inserts is set, in which
// case any number of threads may Add simultaneously (distinct sequence
// numbers per entry). Get, NewIterator, num_entries, and
// ApproximateMemoryUsage are safe to call concurrently with the writer(s)
// and never block (the skiplist publishes nodes with release/acquire
// links in both regimes).
class MemTable {
 public:
  explicit MemTable(const InternalKeyComparator& comparator,
                    const MemTableOptions& options = MemTableOptions());
  ~MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  // Adds an entry keyed by (key, seq, type). For type kDeletion, value is
  // ignored (a tombstone is stored).
  void Add(SequenceNumber seq, ValueType type, const Slice& key,
           const Slice& value);

  // If the memtable contains a visible entry for key:
  //   value entry   -> sets *value, returns OK
  //   tombstone     -> returns NotFound with found_tombstone=true semantics
  // If no entry exists, returns NotFound and sets *found_entry = false.
  // If type != nullptr, receives the found entry's ValueType (so callers
  // can resolve value-log handles).
  Status Get(const LookupKey& lookup, std::string* value, bool* found_entry,
             ValueType* type = nullptr) const;

  // Bytes of memory used (allocator footprint) — the live M_buffer
  // occupancy.
  size_t ApproximateMemoryUsage() const { return alloc_->MemoryUsage(); }

  // Number of entries added.
  uint64_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }

  bool concurrent_inserts() const { return concurrent_arena_ != nullptr; }

  // Allocator-contention and hugepage-backing counters. All zero for the
  // classic single-writer memtable (its Arena has no contention to count).
  ConcurrentArena::StatsSnapshot arena_stats() const {
    return concurrent_arena_ != nullptr ? concurrent_arena_->Stats()
                                        : ConcurrentArena::StatsSnapshot();
  }

  // Failed skiplist splice CASes (concurrent inserts only).
  uint64_t skiplist_cas_retries() const { return table_.cas_retries(); }

  // Iterates over internal keys in sorted order. key() returns the internal
  // key; value() the user value (empty for tombstones).
  std::unique_ptr<Iterator> NewIterator() const;

  // Exposed for the iterator implementation; not part of the public API.
  struct KeyComparator {
    InternalKeyComparator comparator;
    // Entries are length-prefixed internal keys.
    int operator()(const char* a, const char* b) const;
  };

 private:
  using Table = SkipList<const char*, KeyComparator>;

  // Encodes (key, seq, type, value) into buf; buf must hold encoded_len
  // bytes as computed in Add.
  static void EncodeEntry(char* buf, size_t encoded_len, SequenceNumber seq,
                          ValueType type, const Slice& key,
                          const Slice& value);

  KeyComparator comparator_;
  // Non-null iff this memtable was built for concurrent inserts (same
  // object alloc_ owns; kept for stats access without a dynamic_cast).
  // Declared before alloc_: MakeAllocator fills it in while alloc_ is
  // being initialized, so it must not be default-initialized afterwards.
  ConcurrentArena* concurrent_arena_ = nullptr;
  std::unique_ptr<Allocator> alloc_;
  Table table_;
  std::atomic<uint64_t> num_entries_{0};
};

}  // namespace monkeydb

#endif  // MONKEYDB_MEMTABLE_MEMTABLE_H_
