// MemTable: the in-memory write buffer (the paper's Level 0 / M_buffer).
//
// Updates, inserts, and deletes land here first; when ApproximateMemoryUsage
// exceeds the configured buffer budget the LSM engine sorts the contents
// (already sorted via the skiplist) and flushes them to Level 1 as a run.

#ifndef MONKEYDB_MEMTABLE_MEMTABLE_H_
#define MONKEYDB_MEMTABLE_MEMTABLE_H_

#include <atomic>
#include <memory>
#include <string>

#include "lsm/internal_key.h"
#include "memtable/skiplist.h"
#include "util/arena.h"
#include "util/iterator.h"

namespace monkeydb {

// Concurrency: Add requires external writer serialization (the engine's
// writer lock); Get, NewIterator, num_entries, and ApproximateMemoryUsage
// are safe to call concurrently with one writer and never block (the
// skiplist publishes nodes with release/acquire links).
class MemTable {
 public:
  explicit MemTable(const InternalKeyComparator& comparator);
  ~MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  // Adds an entry keyed by (key, seq, type). For type kDeletion, value is
  // ignored (a tombstone is stored).
  void Add(SequenceNumber seq, ValueType type, const Slice& key,
           const Slice& value);

  // If the memtable contains a visible entry for key:
  //   value entry   -> sets *value, returns OK
  //   tombstone     -> returns NotFound with found_tombstone=true semantics
  // If no entry exists, returns NotFound and sets *found_entry = false.
  // If type != nullptr, receives the found entry's ValueType (so callers
  // can resolve value-log handles).
  Status Get(const LookupKey& lookup, std::string* value, bool* found_entry,
             ValueType* type = nullptr) const;

  // Bytes of memory used (arena footprint) — the live M_buffer occupancy.
  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }

  // Number of entries added.
  uint64_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }

  // Iterates over internal keys in sorted order. key() returns the internal
  // key; value() the user value (empty for tombstones).
  std::unique_ptr<Iterator> NewIterator() const;

  // Exposed for the iterator implementation; not part of the public API.
  struct KeyComparator {
    InternalKeyComparator comparator;
    // Entries are length-prefixed internal keys.
    int operator()(const char* a, const char* b) const;
  };

 private:
  using Table = SkipList<const char*, KeyComparator>;

  KeyComparator comparator_;
  Arena arena_;
  Table table_;
  std::atomic<uint64_t> num_entries_{0};
};

}  // namespace monkeydb

#endif  // MONKEYDB_MEMTABLE_MEMTABLE_H_
