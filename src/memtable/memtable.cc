#include "memtable/memtable.h"

#include "util/coding.h"

namespace monkeydb {

// Entry layout in the arena:
//   varint32 internal_key_len | internal_key bytes | varint32 val_len | value

namespace {

Slice GetLengthPrefixed(const char* data) {
  uint32_t len;
  const char* p = GetVarint32Ptr(data, data + 5, &len);
  return Slice(p, len);
}

std::unique_ptr<Allocator> MakeAllocator(const MemTableOptions& options,
                                         ConcurrentArena** concurrent_out) {
  *concurrent_out = nullptr;
  if (!options.concurrent_inserts) {
    return std::make_unique<Arena>(options.arena_block_size == 0
                                       ? Arena::kDefaultBlockSize
                                       : options.arena_block_size);
  }
  ConcurrentArena::Options copts;
  if (options.arena_block_size != 0) {
    copts.block_size = options.arena_block_size;
  }
  auto arena = std::make_unique<ConcurrentArena>(copts);
  *concurrent_out = arena.get();
  return arena;
}

}  // namespace

int MemTable::KeyComparator::operator()(const char* a, const char* b) const {
  Slice ka = GetLengthPrefixed(a);
  Slice kb = GetLengthPrefixed(b);
  return comparator.Compare(ka, kb);
}

MemTable::MemTable(const InternalKeyComparator& comparator,
                   const MemTableOptions& options)
    : comparator_{comparator},
      alloc_(MakeAllocator(options, &concurrent_arena_)),
      table_(comparator_, alloc_.get()) {}

MemTable::~MemTable() = default;

void MemTable::EncodeEntry(char* buf, size_t encoded_len, SequenceNumber seq,
                           ValueType type, const Slice& key,
                           const Slice& value) {
  const size_t internal_key_size = key.size() + 8;
  char* p = buf;

  // internal key
  p = EncodeVarint32(p, static_cast<uint32_t>(internal_key_size));
  memcpy(p, key.data(), key.size());
  p += key.size();
  EncodeFixed64(p, PackSequenceAndType(seq, type));
  p += 8;

  // value
  p = EncodeVarint32(p, static_cast<uint32_t>(value.size()));
  memcpy(p, value.data(), value.size());
  p += value.size();

  assert(p == buf + encoded_len);
  (void)encoded_len;
}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& key,
                   const Slice& value) {
  const size_t internal_key_size = key.size() + 8;
  const Slice stored_value = (type == ValueType::kDeletion) ? Slice() : value;
  const size_t encoded_len = VarintLength(internal_key_size) +
                             internal_key_size +
                             VarintLength(stored_value.size()) +
                             stored_value.size();
  if (concurrent_arena_ != nullptr) {
    // Lock-free path: node and entry share one cache-line-aligned
    // allocation (the skiplist's inline-key layout), inserted with CAS
    // splices. Safe for any number of concurrent Adds.
    Table::InlineHandle handle = table_.AllocateInline(encoded_len);
    EncodeEntry(handle.buf, encoded_len, seq, type, key, stored_value);
    table_.InsertConcurrently(handle);
  } else {
    char* buf = alloc_->Allocate(encoded_len);
    EncodeEntry(buf, encoded_len, seq, type, key, stored_value);
    table_.Insert(buf);
  }
  num_entries_.fetch_add(1, std::memory_order_relaxed);
}

Status MemTable::Get(const LookupKey& lookup, std::string* value,
                     bool* found_entry, ValueType* type) const {
  *found_entry = false;
  // Build a seek key in the memtable's encoded format.
  std::string seek_key;
  PutVarint32(&seek_key,
              static_cast<uint32_t>(lookup.internal_key().size()));
  seek_key.append(lookup.internal_key().data(), lookup.internal_key().size());

  Table::Iterator iter(&table_);
  iter.Seek(seek_key.data());
  if (!iter.Valid()) return Status::NotFound();

  // The iterator is at the first entry >= lookup key. Because internal keys
  // order equal user keys newest-first, this is the newest visible version
  // iff the user keys match.
  const char* entry = iter.key();
  Slice internal_key = GetLengthPrefixed(entry);
  ParsedInternalKey parsed;
  if (!ParseInternalKey(internal_key, &parsed)) {
    return Status::Corruption("malformed memtable entry");
  }
  if (comparator_.comparator.user_comparator()->Compare(
          parsed.user_key, lookup.user_key()) != 0) {
    return Status::NotFound();
  }

  *found_entry = true;
  if (type != nullptr) *type = parsed.type;
  if (parsed.type == ValueType::kDeletion) {
    return Status::NotFound("deleted");
  }
  const char* value_pos = internal_key.data() + internal_key.size();
  Slice v = GetLengthPrefixed(value_pos);
  value->assign(v.data(), v.size());
  return Status::OK();
}

namespace {

class MemTableIterator : public Iterator {
 public:
  explicit MemTableIterator(
      const SkipList<const char*, MemTable::KeyComparator>* table)
      : iter_(table) {}

  bool Valid() const override { return iter_.Valid(); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void SeekToLast() override { iter_.SeekToLast(); }

  void Seek(const Slice& target) override {
    seek_buf_.clear();
    PutVarint32(&seek_buf_, static_cast<uint32_t>(target.size()));
    seek_buf_.append(target.data(), target.size());
    iter_.Seek(seek_buf_.data());
  }

  void Next() override { iter_.Next(); }
  void Prev() override { iter_.Prev(); }

  Slice key() const override { return GetLengthPrefixed(iter_.key()); }

  Slice value() const override {
    Slice k = GetLengthPrefixed(iter_.key());
    return GetLengthPrefixed(k.data() + k.size());
  }

  Status status() const override { return Status::OK(); }

 private:
  SkipList<const char*, MemTable::KeyComparator>::Iterator iter_;
  std::string seek_buf_;
};

}  // namespace

std::unique_ptr<Iterator> MemTable::NewIterator() const {
  return std::make_unique<MemTableIterator>(&table_);
}

}  // namespace monkeydb
