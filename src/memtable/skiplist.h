// SkipList: ordered in-memory index backing the memtable (the paper's
// Level-0 buffer). Arena-allocated; nodes are never removed until the
// whole arena is dropped at flush time.
//
// Concurrency, two writer regimes sharing one reader contract:
//   - Insert: one writer (externally serialized, the engine's writer
//     lock), any number of readers. This is the classic LevelDB scheme.
//   - AllocateInline + InsertConcurrently: any number of writers insert
//     lock-free via per-level compare-exchange splices (RocksDB
//     InlineSkipList-style), with the node and its key bytes allocated in
//     one contiguous chunk so the key lives in the node's cache lines.
//     Requires a thread-safe Allocator (ConcurrentArena).
// In both regimes node links are published with store(release) / CAS
// (release) and traversed with load(acquire), so a reader that observes a
// link observes a fully initialized node. Get/iterators are identical
// under either regime and need no locking.

#ifndef MONKEYDB_MEMTABLE_SKIPLIST_H_
#define MONKEYDB_MEMTABLE_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdint>

#include "util/allocator.h"
#include "util/random.h"

namespace monkeydb {

// Key is trivially copyable (we use const char*). Cmp provides
// int operator()(Key a, Key b) with <0/==0/>0 semantics.
template <typename Key, class Cmp>
class SkipList {
 public:
  SkipList(Cmp cmp, Allocator* allocator)
      : compare_(cmp),
        allocator_(allocator),
        head_(NewNode(0 /*ignored head key*/, kMaxHeight)),
        max_height_(1),
        rnd_(0xdeadbeef) {
    for (int i = 0; i < kMaxHeight; i++) head_->SetNext(i, nullptr);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  // Inserts key. REQUIRES: no equal key is already present, and external
  // synchronization among writers (the engine's writer lock).
  void Insert(const Key& key) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, prev);
    assert(x == nullptr || compare_(key, x->key) != 0);

    const int height = RandomHeight();
    if (height > GetMaxHeight()) {
      for (int i = GetMaxHeight(); i < height; i++) prev[i] = head_;
      // Concurrent readers observing the new height before the new node is
      // linked just fall through head_'s null links at the upper levels.
      max_height_.store(height, std::memory_order_relaxed);
    }

    x = NewNode(key, height);
    for (int i = 0; i < height; i++) {
      // The node is published level by level; NoBarrier is fine for the new
      // node's own links because the release store in SetNext below
      // publishes them together with the node's contents.
      x->NoBarrierSetNext(i, prev[i]->NoBarrierNext(i));
      prev[i]->SetNext(i, x);
    }
  }

  // --- Lock-free insert path (concurrent memtable writes) ---

  // A node allocated ahead of its insertion: the caller encodes the entry
  // into `buf` (which becomes the node's key), then calls
  // InsertConcurrently. The node and its key share one cache-line-aligned
  // allocation.
  struct InlineHandle {
    void* node_mem = nullptr;
    int height = 0;
    char* buf = nullptr;
  };

  // Allocates a node with `entry_bytes` of inline key storage. Thread-safe
  // when the allocator is (ConcurrentArena). Only meaningful for
  // Key = const char*.
  InlineHandle AllocateInline(size_t entry_bytes) {
    InlineHandle h;
    h.height = RandomHeightConcurrent();
    const size_t node_bytes =
        sizeof(Node) + sizeof(std::atomic<Node*>) * (h.height - 1);
    char* mem = allocator_->AllocateAligned(node_bytes + entry_bytes,
                                            Allocator::kCacheLineSize);
    h.node_mem = mem;
    h.buf = mem + node_bytes;
    return h;
  }

  // Lock-free insertion of a node from AllocateInline whose buf is fully
  // encoded. Safe against any number of concurrent InsertConcurrently
  // calls and readers; must not race with the single-writer Insert above.
  // REQUIRES: no equal key present or being inserted concurrently.
  void InsertConcurrently(const InlineHandle& h) {
    const int height = h.height;
    Node* x = new (h.node_mem) Node(static_cast<Key>(h.buf));

    // Raise the list height first; racing raisers CAS until one wins.
    // Readers seeing the new height before any node reaches it just fall
    // through head_'s null links (same contract as the serial path).
    int max_h = GetMaxHeight();
    while (height > max_h &&
           !max_height_.compare_exchange_weak(max_h, height,
                                              std::memory_order_relaxed)) {
    }

    Node* prev[kMaxHeight];
    for (int i = 0; i < kMaxHeight; i++) prev[i] = head_;
    FindGreaterOrEqual(x->key, prev);

    // Splice bottom-up: once level 0 is linked the node is reachable by
    // every reader; upper levels only accelerate searches, so a node
    // observed mid-splice is simply found via a lower level.
    for (int i = 0; i < height; i++) {
      Node* p = prev[i];
      for (;;) {
        Node* next = p->Next(i);
        while (next != nullptr && compare_(next->key, x->key) < 0) {
          p = next;
          next = p->Next(i);
        }
        assert(next == nullptr || compare_(next->key, x->key) != 0);
        x->NoBarrierSetNext(i, next);
        // Release on success publishes the node's contents (key bytes and
        // lower links) together with this link.
        if (p->CASNext(i, next, x)) break;
        // Lost the race at this level: another insert spliced in between
        // p and next. Rescan forward from p (keys only move rightward).
        cas_retries_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // Failed splice CASes since construction — the contention measure the
  // memtable surfaces as DbStats::skiplist_cas_retries.
  uint64_t cas_retries() const {
    return cas_retries_.load(std::memory_order_relaxed);
  }

  bool Contains(const Key& key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && compare_(key, x->key) == 0;
  }

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }

    const Key& key() const {
      assert(Valid());
      return node_->key;
    }

    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }

    void Prev() {
      assert(Valid());
      node_ = list_->FindLessThan(node_->key);
      if (node_ == list_->head_) node_ = nullptr;
    }

    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }

    void SeekToFirst() { node_ = list_->head_->Next(0); }

    void SeekToLast() {
      node_ = list_->FindLast();
      if (node_ == list_->head_) node_ = nullptr;
    }

   private:
    const SkipList* list_;
    const typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    explicit Node(const Key& k) : key(k) {}

    const Key key;

    Node* Next(int n) const {
      assert(n >= 0);
      return next_[n].load(std::memory_order_acquire);
    }
    void SetNext(int n, Node* x) {
      assert(n >= 0);
      next_[n].store(x, std::memory_order_release);
    }
    // Writer-only variants (no fences needed under the writer lock, or —
    // on the concurrent path — before the publishing CAS).
    Node* NoBarrierNext(int n) const {
      return next_[n].load(std::memory_order_relaxed);
    }
    void NoBarrierSetNext(int n, Node* x) {
      next_[n].store(x, std::memory_order_relaxed);
    }
    // Splice CAS for concurrent inserts: release on success so the new
    // node is published, acquire on failure so the loser can safely chase
    // the link that beat it.
    bool CASNext(int n, Node* expected, Node* x) {
      return next_[n].compare_exchange_strong(expected, x,
                                              std::memory_order_release,
                                              std::memory_order_acquire);
    }

   private:
    // Length of this array equals the node height; allocated inline.
    std::atomic<Node*> next_[1];
  };

  int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  Node* NewNode(const Key& key, int height) {
    char* mem = allocator_->AllocateAligned(
        sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
    return new (mem) Node(key);
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rnd_.Uniform(kBranching) == 0) height++;
    return height;
  }

  // Height sampling off a per-thread generator: the serial path's rnd_ is
  // deliberately untouched (deterministic node sizes for the figure
  // benches); concurrent inserters must not share it unsynchronized.
  int RandomHeightConcurrent() {
    static std::atomic<uint64_t> seed_seq{0x8badf00d5eedULL};
    thread_local Random rnd(
        seed_seq.fetch_add(0x9E3779B97F4A7C15ULL,
                           std::memory_order_relaxed));
    int height = 1;
    while (height < kMaxHeight && rnd.Uniform(kBranching) == 0) height++;
    return height;
  }

  // Returns the first node >= key; fills prev[] with predecessors per level
  // when prev != nullptr.
  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        level--;
      }
    }
  }

  // Returns the last node < key (head_ if none).
  Node* FindLessThan(const Key& key) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (level == 0) return x;
        level--;
      }
    }
  }

  Node* FindLast() const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr) {
        x = next;
      } else {
        if (level == 0) return x;
        level--;
      }
    }
  }

  Cmp const compare_;
  Allocator* const allocator_;
  Node* const head_;
  std::atomic<int> max_height_;
  Random rnd_;
  std::atomic<uint64_t> cas_retries_{0};
};

}  // namespace monkeydb

#endif  // MONKEYDB_MEMTABLE_SKIPLIST_H_
