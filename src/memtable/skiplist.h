// SkipList: ordered in-memory index backing the memtable (the paper's
// Level-0 buffer). Single-writer, arena-allocated; nodes are never removed
// until the whole arena is dropped at flush time.
//
// Concurrency: one writer (externally serialized) and any number of
// readers, with no reader-side locking. Node links are released with
// store(release) and traversed with load(acquire), so a reader that
// observes a link observes a fully initialized node (LevelDB's scheme).

#ifndef MONKEYDB_MEMTABLE_SKIPLIST_H_
#define MONKEYDB_MEMTABLE_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdint>

#include "util/arena.h"
#include "util/random.h"

namespace monkeydb {

// Key is trivially copyable (we use const char*). Cmp provides
// int operator()(Key a, Key b) with <0/==0/>0 semantics.
template <typename Key, class Cmp>
class SkipList {
 public:
  SkipList(Cmp cmp, Arena* arena)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(0 /*ignored head key*/, kMaxHeight)),
        max_height_(1),
        rnd_(0xdeadbeef) {
    for (int i = 0; i < kMaxHeight; i++) head_->SetNext(i, nullptr);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  // Inserts key. REQUIRES: no equal key is already present, and external
  // synchronization among writers (the engine's writer lock).
  void Insert(const Key& key) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, prev);
    assert(x == nullptr || compare_(key, x->key) != 0);

    const int height = RandomHeight();
    if (height > GetMaxHeight()) {
      for (int i = GetMaxHeight(); i < height; i++) prev[i] = head_;
      // Concurrent readers observing the new height before the new node is
      // linked just fall through head_'s null links at the upper levels.
      max_height_.store(height, std::memory_order_relaxed);
    }

    x = NewNode(key, height);
    for (int i = 0; i < height; i++) {
      // The node is published level by level; NoBarrier is fine for the new
      // node's own links because the release store in SetNext below
      // publishes them together with the node's contents.
      x->NoBarrierSetNext(i, prev[i]->NoBarrierNext(i));
      prev[i]->SetNext(i, x);
    }
  }

  bool Contains(const Key& key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && compare_(key, x->key) == 0;
  }

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }

    const Key& key() const {
      assert(Valid());
      return node_->key;
    }

    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }

    void Prev() {
      assert(Valid());
      node_ = list_->FindLessThan(node_->key);
      if (node_ == list_->head_) node_ = nullptr;
    }

    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }

    void SeekToFirst() { node_ = list_->head_->Next(0); }

    void SeekToLast() {
      node_ = list_->FindLast();
      if (node_ == list_->head_) node_ = nullptr;
    }

   private:
    const SkipList* list_;
    const typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    explicit Node(const Key& k) : key(k) {}

    const Key key;

    Node* Next(int n) const {
      assert(n >= 0);
      return next_[n].load(std::memory_order_acquire);
    }
    void SetNext(int n, Node* x) {
      assert(n >= 0);
      next_[n].store(x, std::memory_order_release);
    }
    // Writer-only variants (no fences needed under the writer lock).
    Node* NoBarrierNext(int n) const {
      return next_[n].load(std::memory_order_relaxed);
    }
    void NoBarrierSetNext(int n, Node* x) {
      next_[n].store(x, std::memory_order_relaxed);
    }

   private:
    // Length of this array equals the node height; allocated inline.
    std::atomic<Node*> next_[1];
  };

  int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  Node* NewNode(const Key& key, int height) {
    char* mem = arena_->AllocateAligned(
        sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
    return new (mem) Node(key);
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rnd_.Uniform(kBranching) == 0) height++;
    return height;
  }

  // Returns the first node >= key; fills prev[] with predecessors per level
  // when prev != nullptr.
  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        level--;
      }
    }
  }

  // Returns the last node < key (head_ if none).
  Node* FindLessThan(const Key& key) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (level == 0) return x;
        level--;
      }
    }
  }

  Node* FindLast() const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr) {
        x = next;
      } else {
        if (level == 0) return x;
        level--;
      }
    }
  }

  Cmp const compare_;
  Arena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
  Random rnd_;
};

}  // namespace monkeydb

#endif  // MONKEYDB_MEMTABLE_SKIPLIST_H_
