#include "obs/histogram.h"

#include <algorithm>
#include <cstdio>

namespace monkeydb {

std::string HistogramData::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu avg=%.1f p50=%.0f p90=%.0f p99=%.0f "
                "p99.9=%.0f max=%llu",
                static_cast<unsigned long long>(count), avg, p50, p90, p99,
                p999, static_cast<unsigned long long>(max));
  return buf;
}

void HistogramMerger::Add(const Histogram& h) {
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    buckets_[i] += h.bucket(i);
  }
  count_ += h.count();
  sum_ += h.sum();
  max_ = std::max(max_, h.max());
}

double HistogramMerger::Percentile(double fraction) const {
  if (count_ == 0) return 0.0;
  // Rank of the requested percentile, 1-based; clamp into [1, count_].
  const uint64_t rank = std::min<uint64_t>(
      count_, std::max<uint64_t>(1, static_cast<uint64_t>(
                                        fraction * count_ + 0.5)));
  uint64_t seen = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (seen + buckets_[i] >= rank) {
      // Interpolate linearly inside the bucket. The upper edge of the last
      // octave would overflow, so cap the width at the lower bound / 4
      // (exact for every non-degenerate bucket).
      const uint64_t lo = Histogram::BucketLowerBound(i);
      const uint64_t width = i < 4 ? 1 : lo / 4;
      const double within =
          static_cast<double>(rank - seen) / buckets_[i];
      return std::min(static_cast<double>(lo) + width * within,
                      static_cast<double>(max_));
    }
    seen += buckets_[i];
  }
  return static_cast<double>(max_);
}

HistogramData HistogramMerger::Snapshot() const {
  HistogramData d;
  d.count = count_;
  d.sum = sum_;
  d.max = max_;
  d.avg = count_ == 0 ? 0.0
                      : static_cast<double>(sum_) / count_;
  d.p50 = Percentile(0.50);
  d.p90 = Percentile(0.90);
  d.p99 = Percentile(0.99);
  d.p999 = Percentile(0.999);
  return d;
}

}  // namespace monkeydb
