#include "obs/histogram.h"

#include <algorithm>
#include <cstdio>

namespace monkeydb {

std::string HistogramData::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu avg=%.1f p50=%.0f p90=%.0f p99=%.0f "
                "p99.9=%.0f max=%llu",
                static_cast<unsigned long long>(count), avg, p50, p90, p99,
                p999, static_cast<unsigned long long>(max));
  return buf;
}

void HistogramMerger::Add(const Histogram& h) {
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    buckets_[i] += h.bucket(i);
  }
  count_ += h.count();
  sum_ += h.sum();
  max_ = std::max(max_, h.max());
}

namespace {

double PercentileFromBuckets(const uint64_t* buckets, uint64_t count,
                             uint64_t max, double fraction) {
  if (count == 0) return 0.0;
  // Rank of the requested percentile, 1-based; clamp into [1, count].
  const uint64_t rank = std::min<uint64_t>(
      count, std::max<uint64_t>(1, static_cast<uint64_t>(
                                       fraction * count + 0.5)));
  uint64_t seen = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      // Interpolate linearly inside the bucket. The upper edge of the last
      // octave would overflow, so cap the width at the lower bound / 4
      // (exact for every non-degenerate bucket).
      const uint64_t lo = Histogram::BucketLowerBound(i);
      const uint64_t width = i < 4 ? 1 : lo / 4;
      const double within =
          static_cast<double>(rank - seen) / buckets[i];
      return std::min(static_cast<double>(lo) + width * within,
                      static_cast<double>(max));
    }
    seen += buckets[i];
  }
  return static_cast<double>(max);
}

}  // namespace

HistogramData SnapshotFromBuckets(const uint64_t* buckets, uint64_t count,
                                  uint64_t sum, uint64_t max) {
  HistogramData d;
  d.count = count;
  d.sum = sum;
  d.max = max;
  d.avg = count == 0 ? 0.0 : static_cast<double>(sum) / count;
  d.p50 = PercentileFromBuckets(buckets, count, max, 0.50);
  d.p90 = PercentileFromBuckets(buckets, count, max, 0.90);
  d.p99 = PercentileFromBuckets(buckets, count, max, 0.99);
  d.p999 = PercentileFromBuckets(buckets, count, max, 0.999);
  return d;
}

HistogramData HistogramMerger::Snapshot() const {
  return SnapshotFromBuckets(buckets_, count_, sum_, max_);
}

// --- EpochWindow ------------------------------------------------------------

EpochWindow::EpochWindow(size_t num_counters, size_t max_epochs)
    : num_counters_(num_counters), ring_(std::max<size_t>(2, max_epochs)) {
  for (auto& e : ring_) e.cum.resize(num_counters_, 0);
}

void EpochWindow::Advance(uint64_t now_secs,
                          const std::vector<uint64_t>& cumulative) {
  // Re-stamp the newest epoch on a same-second scrape burst instead of
  // eating the whole ring.
  if (size_ > 0) {
    Epoch& newest = ring_[(head_ + ring_.size() - 1) % ring_.size()];
    if (newest.ts_secs == now_secs) {
      newest.cum = cumulative;
      return;
    }
  }
  Epoch& e = ring_[head_];
  e.ts_secs = now_secs;
  e.cum = cumulative;
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
}

bool EpochWindow::Bracket(uint64_t last_n_secs, const Epoch** oldest,
                          const Epoch** newest) const {
  if (size_ < 2) return false;
  const Epoch& n = ring_[(head_ + ring_.size() - 1) % ring_.size()];
  // Walk from oldest retained toward newest; pick the first epoch inside
  // the window, falling back to the second-newest so the delta is never
  // empty.
  const Epoch* o = nullptr;
  for (size_t i = 0; i + 1 < size_; ++i) {
    const Epoch& cand =
        ring_[(head_ + ring_.size() - size_ + i) % ring_.size()];
    if (n.ts_secs - cand.ts_secs <= last_n_secs || i + 2 == size_) {
      o = &cand;
      break;
    }
  }
  *oldest = o;
  *newest = &n;
  return true;
}

bool EpochWindow::Delta(uint64_t last_n_secs, std::vector<uint64_t>* delta,
                        uint64_t* span_secs) const {
  const Epoch* oldest = nullptr;
  const Epoch* newest = nullptr;
  if (!Bracket(last_n_secs, &oldest, &newest)) return false;
  delta->assign(num_counters_, 0);
  for (size_t c = 0; c < num_counters_; ++c) {
    // Counters are monotone; guard anyway so a reset can't underflow.
    (*delta)[c] = newest->cum[c] >= oldest->cum[c]
                      ? newest->cum[c] - oldest->cum[c]
                      : newest->cum[c];
  }
  if (span_secs != nullptr) {
    *span_secs = newest->ts_secs - oldest->ts_secs;
  }
  return true;
}

// --- WindowedHistogram ------------------------------------------------------

WindowedHistogram::WindowedHistogram(size_t max_epochs)
    : ring_(std::max<size_t>(2, max_epochs)) {}

void WindowedHistogram::Advance(uint64_t now_secs,
                                const HistogramMerger& cumulative) {
  Epoch* e;
  if (size_ > 0 &&
      ring_[(head_ + ring_.size() - 1) % ring_.size()].ts_secs == now_secs) {
    e = &ring_[(head_ + ring_.size() - 1) % ring_.size()];
  } else {
    e = &ring_[head_];
    head_ = (head_ + 1) % ring_.size();
    if (size_ < ring_.size()) ++size_;
  }
  e->ts_secs = now_secs;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    e->buckets[i] = cumulative.bucket(i);
  }
  e->count = cumulative.count();
  e->sum = cumulative.sum();
  e->max = cumulative.max();
}

bool WindowedHistogram::Bracket(uint64_t last_n_secs, const Epoch** oldest,
                                const Epoch** newest) const {
  if (size_ < 2) return false;
  const Epoch& n = ring_[(head_ + ring_.size() - 1) % ring_.size()];
  const Epoch* o = nullptr;
  for (size_t i = 0; i + 1 < size_; ++i) {
    const Epoch& cand =
        ring_[(head_ + ring_.size() - size_ + i) % ring_.size()];
    if (n.ts_secs - cand.ts_secs <= last_n_secs || i + 2 == size_) {
      o = &cand;
      break;
    }
  }
  *oldest = o;
  *newest = &n;
  return true;
}

bool WindowedHistogram::SnapshotWindow(uint64_t last_n_secs,
                                       HistogramData* out,
                                       uint64_t* span_secs) const {
  const Epoch* oldest = nullptr;
  const Epoch* newest = nullptr;
  if (!Bracket(last_n_secs, &oldest, &newest)) return false;
  uint64_t buckets[Histogram::kNumBuckets];
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    buckets[i] = newest->buckets[i] >= oldest->buckets[i]
                     ? newest->buckets[i] - oldest->buckets[i]
                     : newest->buckets[i];
  }
  const uint64_t count = newest->count >= oldest->count
                             ? newest->count - oldest->count
                             : newest->count;
  const uint64_t sum =
      newest->sum >= oldest->sum ? newest->sum - oldest->sum : newest->sum;
  *out = SnapshotFromBuckets(buckets, count, sum, newest->max);
  if (span_secs != nullptr) {
    *span_secs = newest->ts_secs - oldest->ts_secs;
  }
  return true;
}

}  // namespace monkeydb
