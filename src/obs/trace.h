// Per-request tracing (DESIGN.md §16 "Tracing & flight recorder").
//
// A TraceContext is thread-local, like PerfContext: a request boundary
// (DB::Get / DB::Write / a server command run) *arms* it — head-sampled at
// the global sample rate, forced by ReadOptions/WriteOptions::trace, or
// armed by the server for SLOWLOG tail capture — and every instrumented
// site below it on the same thread records scoped TraceSpans into the
// thread's flight-recorder ring (obs/flight_recorder.h).
//
// Overhead contract: when the context is disarmed (the default), a span
// costs exactly one relaxed atomic load and never reads the clock —
// trace_test.cc asserts both, via TraceClockReads(). Armed spans read the
// clock twice (begin/end) and write fixed-size events into a preallocated
// per-thread ring: no allocation, no locks, no syscalls on the hot path.
//
// Sampling: SetTraceSampleRate() sets the global head-sampling rate; the
// MONKEYDB_TRACE_SAMPLE environment variable provides the *initial* rate
// (so CI can run the whole suite traced without code changes) and an
// explicit SetTraceSampleRate() call thereafter wins. Servers apply their
// ServerOptions knob through ApplyTraceSampleRateOption(), which defers to
// the environment override like MONKEYDB_IO_BACKEND does.

#ifndef MONKEYDB_OBS_TRACE_H_
#define MONKEYDB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace monkeydb {

// Every span/instant name the engine emits. Names are static: an event
// stores the enumerator, never a pointer or string, so recording cannot
// allocate and the ring slots stay fixed-size.
enum class TraceName : uint16_t {
  // RESP serving layer.
  kServerParse = 0,   // args: bytes_buffered, commands_parsed
  kServerCommand,     // args: command_id, commands_in_run, keys
  kServerAdmin,       // args: command_id
  // Engine read path.
  kDbGet,             // args: found
  kDbMultiGet,        // args: keys
  kMemtableProbe,     // args: memtables, hit
  kRunProbe,          // args: level, outcome, predicted_fpr_ppb
  kFilterProbe,       // args: may_contain
  kFenceSeek,         // args: block_needed
  kBlockFetch,        // args: cache_hit, bytes
  // Engine write path.
  kDbWrite,           // args: batch_bytes
  kWriteQueueWait,    // args: leader
  kWalAppend,         // args: bytes, sync
  kMemtableApply,     // args: batches
  // io_uring substrate.
  kUringSubmitBatch,  // args: requests, rounds
  kUringComplete,     // instant; args: index, result_bytes
  kUringRetry,        // instant; args: index
  kNumTraceNames,
};

// Probe outcomes recorded in kRunProbe's `outcome` arg; numerically equal
// to sstable/table_reader.h's TableLookupResult so the Eq. 3
// reconciliation in trace_test.cc is a straight cast.
enum TraceProbeOutcome : int64_t {
  kTraceProbeFound = 0,
  kTraceProbeDeleted = 1,
  kTraceProbeNotPresent = 2,   // Block fetched, key absent (false positive).
  kTraceProbeFilteredOut = 3,  // Bloom negative; no I/O.
};

const char* TraceNameString(TraceName name);
// Static label of args[i] for this name; nullptr = the arg is unused.
const char* TraceArgName(TraceName name, int i);

// One begin/end/instant record. 48 bytes of payload; the flight recorder
// stores it as six atomic words plus a seqlock word.
struct TraceEvent {
  uint64_t ts_nanos = 0;     // TraceNowNanos() domain (steady clock).
  uint64_t request_id = 0;   // Groups one armed request's events.
  int64_t args[3] = {0, 0, 0};
  uint32_t tid = 0;          // Flight-recorder thread index.
  TraceName name = TraceName::kNumTraceNames;
  uint8_t phase = 0;         // 'B', 'E', or 'I'.
  uint8_t depth = 0;         // Span nesting depth at begin.
};

// Thread-local arming state. Only its owning thread ever touches it; the
// armed flag is still an atomic so the disarmed fast path is, verbatim,
// "one relaxed atomic load".
class TraceContext {
 public:
  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  uint64_t request_id() const { return request_id_; }
  // Request id of the most recent armed request on this thread (survives
  // disarm); tests use it to pull one request's events from a snapshot.
  uint64_t last_request_id() const { return last_request_id_; }

  // Internal (TraceArmer / TraceSpan).
  void Arm(uint64_t id) {
    request_id_ = id;
    last_request_id_ = id;
    depth_ = 0;
    armed_.store(true, std::memory_order_relaxed);
  }
  void Disarm() { armed_.store(false, std::memory_order_relaxed); }
  uint8_t depth() const { return depth_; }
  void set_depth(uint8_t d) { depth_ = d; }

 private:
  std::atomic<bool> armed_{false};
  uint64_t request_id_ = 0;
  uint64_t last_request_id_ = 0;
  uint8_t depth_ = 0;
};

// The calling thread's context; the pointer stays valid for the thread's
// lifetime.
TraceContext* GetTraceContext();

inline bool TraceArmed() { return GetTraceContext()->armed(); }
inline uint64_t TraceLastRequestId() {
  return GetTraceContext()->last_request_id();
}

// --- Sampling --------------------------------------------------------------

// Hard-sets the global head-sampling rate in [0, 1] (tests, benches,
// embedded users). Thread-safe.
void SetTraceSampleRate(double rate);
// Applies a configuration knob: a MONKEYDB_TRACE_SAMPLE environment
// override, when present, wins over `rate` (same contract as
// MONKEYDB_IO_BACKEND).
void ApplyTraceSampleRateOption(double rate);
double TraceSampleRate();
// Head-sampling decision: true with probability ~rate. Rate 0 (the
// default) answers false after one relaxed atomic load — no clock, no RNG.
bool TraceSampleHead();

// --- Clock -----------------------------------------------------------------

// Steady-clock nanos; every call increments the TraceClockReads() counter
// so tests can assert the disarmed path performs exactly zero clock reads.
uint64_t TraceNowNanos();
uint64_t TraceClockReads();

// --- Arming / spans --------------------------------------------------------

// RAII request boundary. Arms the thread's context with a fresh request id
// when `want` is true and the context is not already armed (a nested
// boundary — DB::Get under a server command — joins the outer request);
// disarms on destruction iff it armed.
class TraceArmer {
 public:
  explicit TraceArmer(bool want) {
    TraceContext* ctx = GetTraceContext();
    if (!want || ctx->armed()) return;
    armed_here_ = true;
    ctx->Arm(NextRequestId());
  }
  ~TraceArmer() {
    if (armed_here_) GetTraceContext()->Disarm();
  }
  TraceArmer(const TraceArmer&) = delete;
  TraceArmer& operator=(const TraceArmer&) = delete;

  // True iff the context is armed for this request (whether by this armer
  // or an enclosing one).
  bool armed() const { return GetTraceContext()->armed(); }

 private:
  static uint64_t NextRequestId();
  bool armed_here_ = false;
};

// RAII span: records a begin event at construction and an end event (with
// the latest args) at destruction, when the thread's context is armed.
// Disarmed cost is the one relaxed atomic load inside GetTraceContext's
// armed() — nothing else runs.
class TraceSpan {
 public:
  explicit TraceSpan(TraceName name, int64_t a0 = 0, int64_t a1 = 0,
                     int64_t a2 = 0)
      : name_(name), a0_(a0), a1_(a1), a2_(a2) {
    TraceContext* ctx = GetTraceContext();
    if (!ctx->armed()) return;
    ctx_ = ctx;
    Begin();
  }
  ~TraceSpan() {
    if (ctx_ != nullptr) End();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool armed() const { return ctx_ != nullptr; }
  // Replaces the args recorded with the end event (outcomes discovered
  // mid-span). Callers gate any expensive arg computation on armed().
  void set_args(int64_t a0, int64_t a1 = 0, int64_t a2 = 0) {
    a0_ = a0;
    a1_ = a1;
    a2_ = a2;
  }

  // Ends the span now instead of at destruction (idempotent). Lets a
  // caller close its span before snapshotting the recorder — a SLOWLOG
  // capture must not see its own still-open command span.
  void Finish() {
    if (ctx_ == nullptr) return;
    End();
    ctx_ = nullptr;
  }

 private:
  void Begin();
  void End();

  TraceContext* ctx_ = nullptr;
  TraceName name_;
  int64_t a0_, a1_, a2_;
};

// Point-in-time event (completions, retries). Same disarmed contract.
void TraceInstantSlow(TraceName name, int64_t a0, int64_t a1, int64_t a2);
inline void TraceInstant(TraceName name, int64_t a0 = 0, int64_t a1 = 0,
                         int64_t a2 = 0) {
  if (!GetTraceContext()->armed()) return;
  TraceInstantSlow(name, a0, a1, a2);
}

// --- Export ----------------------------------------------------------------

// Chrome/Perfetto trace-event JSON of the flight recorder's contents with
// ts_nanos >= min_ts_nanos (0 = everything retained). Load the result in
// https://ui.perfetto.dev or chrome://tracing, or pretty-print it with
// tools/trace_view.py.
std::string DumpTraceJson(uint64_t min_ts_nanos = 0);

// Indented text rendering of the events' span forest (grouped by thread,
// nested by begin/end pairing) with per-span durations — the SLOWLOG /
// monkey_cli --trace view. Events must be ts-sorted (FlightRecorder
// snapshots are).
std::string RenderSpanForest(const std::vector<TraceEvent>& events);

}  // namespace monkeydb

#endif  // MONKEYDB_OBS_TRACE_H_
