// Log-bucketed latency histogram (HdrHistogram-lite).
//
// Values are bucketed into 64 octaves x 4 linear sub-buckets = 256 buckets,
// covering the full uint64 range with a worst-case relative error of 25%
// per recorded value (a value lands in a bucket whose width is 1/4 of its
// lower bound). Recording is a single relaxed fetch_add, so a histogram can
// be hammered from many threads without coordination; MetricsRegistry keeps
// one histogram per shard and merges them at snapshot time.
//
// Snapshots report count / sum / avg / max plus interpolated p50 / p90 /
// p99 / p99.9, which is what the bench harness and DumpMetrics() export.

#ifndef MONKEYDB_OBS_HISTOGRAM_H_
#define MONKEYDB_OBS_HISTOGRAM_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace monkeydb {

// Aggregated view of one histogram (merged across shards).
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  double avg = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;

  // "count=12 avg=3.1us p50=2 p90=6 p99=14 p99.9=14 max=15"
  std::string ToString() const;
};

class Histogram {
 public:
  static constexpr int kSubBucketBits = 2;                    // 4 per octave
  static constexpr int kNumBuckets = 64 << kSubBucketBits;    // 256

  // Bucket index for a value: octave from the bit width, sub-bucket from
  // the two bits below the leading bit. Values 0..3 map to buckets 0..3
  // exactly (their octave has no sub-bits to spare).
  static constexpr int BucketFor(uint64_t value) {
    if (value < 4) return static_cast<int>(value);
    const int octave = std::bit_width(value) - 1;              // >= 2
    const int sub =
        static_cast<int>((value >> (octave - kSubBucketBits)) & 3);
    return (octave << kSubBucketBits) | sub;
  }

  // Inclusive lower bound of a bucket (the smallest value mapping to it).
  static constexpr uint64_t BucketLowerBound(int bucket) {
    if (bucket < 4) return static_cast<uint64_t>(bucket);
    const int octave = bucket >> kSubBucketBits;
    const uint64_t sub = static_cast<uint64_t>(bucket & 3);
    return (uint64_t{4} + sub) << (octave - kSubBucketBits);
  }

  void Record(uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (prev < value &&
           !max_.compare_exchange_weak(prev, value,
                                       std::memory_order_relaxed)) {
    }
  }

  // Adds this histogram's buckets into *merged (used by the registry to
  // fold per-thread shards into one HistogramMerger).
  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// Accumulates one or more Histogram shards and computes percentiles.
class HistogramMerger {
 public:
  void Add(const Histogram& h);
  HistogramData Snapshot() const;

  // Folded-bucket accessors for windowed deltas (WindowedHistogram stores
  // cumulative merges and subtracts them epoch-to-epoch).
  uint64_t bucket(int i) const { return buckets_[i]; }
  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }

 private:
  uint64_t buckets_[Histogram::kNumBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

// --- Windowed (ring-of-epochs) snapshots ------------------------------------
//
// Cumulative counters answer "since process start"; the self-tuning signals
// (measured FPR drift, rolling latency) need "over the last minute". Both
// classes below keep a small ring of *cumulative* snapshots stamped at
// scrape time and report the delta between the newest epoch and the oldest
// epoch still inside the requested window. They are externally
// synchronized: callers advance and read them under their own lock (the DB
// advances on each DumpMetrics() scrape).

// Ring of timestamped cumulative counter vectors; Delta() reports how much
// each counter grew over roughly the last N seconds.
class EpochWindow {
 public:
  static constexpr size_t kDefaultEpochs = 64;

  explicit EpochWindow(size_t num_counters,
                       size_t max_epochs = kDefaultEpochs);

  // Records the current cumulative counter values at `now_secs`
  // (monotonic). A repeat call within the same second overwrites the
  // newest epoch instead of consuming a slot.
  void Advance(uint64_t now_secs, const std::vector<uint64_t>& cumulative);

  // Growth of each counter between the newest epoch and the oldest
  // retained epoch at most `last_n_secs` older. False until two epochs
  // exist; *span_secs reports the span actually covered (it can be shorter
  // than requested early in life, or longer by one scrape interval).
  bool Delta(uint64_t last_n_secs, std::vector<uint64_t>* delta,
             uint64_t* span_secs) const;

 private:
  struct Epoch {
    uint64_t ts_secs = 0;
    std::vector<uint64_t> cum;
  };

  // Newest epoch, and the oldest retained epoch no more than
  // `last_n_secs` older; false until two epochs exist.
  bool Bracket(uint64_t last_n_secs, const Epoch** oldest,
               const Epoch** newest) const;

  const size_t num_counters_;
  std::vector<Epoch> ring_;
  size_t head_ = 0;  // Next slot to write.
  size_t size_ = 0;  // Filled slots.
};

// Same epoch scheme over a full histogram: stores cumulative merged
// buckets per epoch and reports percentile snapshots of the windowed
// delta. The window's `max` is approximated by the cumulative max (a true
// windowed max is not recoverable from cumulative counters); percentiles
// come from the delta'd buckets and are exact to bucket resolution.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(size_t max_epochs = EpochWindow::kDefaultEpochs);

  void Advance(uint64_t now_secs, const HistogramMerger& cumulative);
  bool SnapshotWindow(uint64_t last_n_secs, HistogramData* out,
                      uint64_t* span_secs = nullptr) const;

 private:
  struct Epoch {
    uint64_t ts_secs = 0;
    uint64_t buckets[Histogram::kNumBuckets] = {};
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
  };

  bool Bracket(uint64_t last_n_secs, const Epoch** oldest,
               const Epoch** newest) const;

  std::vector<Epoch> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
};

// Percentile snapshot of a raw folded-bucket array (shared by
// HistogramMerger::Snapshot and WindowedHistogram's delta path).
HistogramData SnapshotFromBuckets(const uint64_t* buckets, uint64_t count,
                                  uint64_t sum, uint64_t max);

}  // namespace monkeydb

#endif  // MONKEYDB_OBS_HISTOGRAM_H_
