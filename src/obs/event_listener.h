// EventListener: callbacks for the engine's background lifecycle events
// (RocksDB's listener API, sized for this engine).
//
// Contract:
//  - Callbacks run synchronously on the thread that produced the event
//    (the writer for stall transitions and WAL rotation, the background
//    worker or the calling thread for flush/compaction). Keep them fast.
//  - Callbacks MUST NOT call back into the DB: several fire while internal
//    locks are held, so a reentrant Get/Write/Flush can deadlock.
//  - Exceptions thrown by a listener are caught, counted
//    (Tick::kListenerFailures) and logged; they never take down a
//    background worker (event_listener_test.cc exercises this).
//  - The info structs are snapshots; pointers/strings inside them are only
//    valid for the duration of the callback.

#ifndef MONKEYDB_OBS_EVENT_LISTENER_H_
#define MONKEYDB_OBS_EVENT_LISTENER_H_

#include <cstdint>
#include <string>

namespace monkeydb {

struct FlushJobInfo {
  uint64_t entries = 0;         // Entries in the flushed memtable.
  uint64_t micros = 0;          // Wall time (end event only).
  bool triggered_merge = false; // Leveling merged the flush into level 0.
  bool ok = true;               // End event only.
};

struct CompactionJobInfo {
  int input_level = 0;          // Level whose runs were consumed.
  int output_level = 0;         // Level that received the merged run.
  uint64_t input_runs = 0;
  uint64_t input_entries = 0;
  uint64_t output_entries = 0;  // End event only (post-dedup).
  uint64_t subcompactions = 1;  // Parallel range partitions used.
  uint64_t micros = 0;          // End event only.
  bool ok = true;               // End event only.
};

struct WriteStallInfo {
  enum class Condition { kNormal, kSlowdown, kStalled };
  Condition previous = Condition::kNormal;
  Condition current = Condition::kNormal;
  uint64_t immutable_memtables = 0;  // Queue depth that caused the change.
};

struct WalRotationInfo {
  uint64_t retired_file_number = 0;  // 0 on the first WAL of a DB.
  uint64_t new_file_number = 0;
};

// Fired when the Monkey allocator (or any FprPolicy) assigns a level's
// run FPR that differs from the previous allocation — the drift signal a
// self-tuning deployment watches (ISSUE 5 motivation).
struct FilterAllocationInfo {
  int level = 0;
  double previous_fpr = 0.0;  // 0 when the level is new.
  double fpr = 0.0;
  uint64_t run_entries = 0;
};

class EventListener {
 public:
  virtual ~EventListener() = default;

  virtual void OnFlushBegin(const FlushJobInfo& /*info*/) {}
  virtual void OnFlushCompleted(const FlushJobInfo& /*info*/) {}
  virtual void OnCompactionBegin(const CompactionJobInfo& /*info*/) {}
  virtual void OnCompactionCompleted(const CompactionJobInfo& /*info*/) {}
  virtual void OnWriteStallChange(const WriteStallInfo& /*info*/) {}
  virtual void OnWalRotation(const WalRotationInfo& /*info*/) {}
  virtual void OnFilterAllocation(const FilterAllocationInfo& /*info*/) {}
};

inline const char* ToString(WriteStallInfo::Condition c) {
  switch (c) {
    case WriteStallInfo::Condition::kNormal: return "normal";
    case WriteStallInfo::Condition::kSlowdown: return "slowdown";
    case WriteStallInfo::Condition::kStalled: return "stalled";
  }
  return "unknown";
}

}  // namespace monkeydb

#endif  // MONKEYDB_OBS_EVENT_LISTENER_H_
