// MetricsRegistry: the engine-wide home for latency histograms, counters,
// and gauges (RocksDB's Statistics, sized for this engine).
//
// Hot-path recording must not contend: the registry keeps kNumShards
// cache-line-padded shards, each holding one Histogram per Hist enumerator
// and one relaxed atomic per Counter enumerator. A thread picks its shard
// once (round-robin thread_local assignment) and then records with plain
// relaxed atomics — no locks, no false sharing between concurrent readers
// and writers. Snapshot() folds all shards into per-metric totals.
//
// The registry only exists when DbOptions::enable_metrics is true; every
// call site holds a MetricsRegistry* that is null by default, and the
// StopWatch helper does not even read the clock when the pointer is null,
// so the disabled configuration stays byte-identical with pre-metrics
// builds (ISSUE 5 acceptance criterion).

#ifndef MONKEYDB_OBS_METRICS_H_
#define MONKEYDB_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/histogram.h"

namespace monkeydb {

// Latency histograms (microseconds unless noted otherwise).
enum class Hist : int {
  kGetLatency = 0,
  kMultiGetLatency,
  kWriteLatency,            // Whole DB::Write call, queue wait included.
  kWriteQueueWait,          // Time parked in the group-commit writer queue.
  kWalWriteLatency,         // WalWriter::AddRecord (header+payload appends).
  kWalSyncLatency,          // The fsync portion of a synchronous commit.
  kMemtableApplyLatency,    // Applying one commit group to the memtable.
  kIterSeekLatency,
  kIterNextLatency,
  kFlushLatency,
  kMergeLatency,            // One whole merge (all subcompactions).
  kSubcompactionLatency,    // One range-partitioned merge task.
  kBlockCacheLookupLatency,
  kBlockReadLatency,        // Block fetches that miss the cache.
  kWriteGroupSize,          // Unit: writers per commit group, not time.
  kParallelApplyFanout,     // Unit: writers applying a group in parallel.

  // RESP serving layer (src/server; recorded on the server's own
  // registry, so an embedded DB's histograms stay untouched). The
  // latency histograms measure command dispatch -> reply bytes
  // buffered, i.e. the engine batch the command rode in on; pipelined
  // commands coalesced into one engine call therefore share one
  // measurement each.
  kServerGetLatency,
  kServerSetLatency,
  kServerDelLatency,
  kServerMGetLatency,
  kServerMSetLatency,
  kServerScanLatency,
  kServerOtherLatency,      // PING/INFO/CONFIG/... (admin commands).
  kServerPipelineDepth,     // Unit: parsed commands coalesced per tick.
  kNumHistograms,
};

// Counters that only exist with metrics enabled (engine-lifetime counters
// that benches already depend on live in DB::Counters instead).
enum class Tick : int {
  kListenerCallbacks = 0,
  kListenerFailures,        // Listener callbacks that threw.
  kLoggerRotations,

  // RESP serving layer (server registry only; see Hist above).
  kServerConnectionsAccepted,
  kServerConnectionsClosed,
  kServerCommands,           // Commands answered (pipelined ones included).
  kServerProtocolErrors,     // Malformed frames (connection closed after).
  kServerBackpressurePauses, // Reads paused: output backlog > soft limit.
  kServerOverlimitCloses,    // Connections dropped: backlog > hard limit.
  kServerHttpRequests,       // HTTP requests served (/metrics etc).
  kNumTicks,
};

const char* HistName(Hist h);
const char* TickName(Tick t);

class MetricsRegistry {
 public:
  static constexpr int kNumShards = 16;

  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void Record(Hist h, uint64_t value) {
    Shard().hists[static_cast<int>(h)].Record(value);
  }
  void Tick1(Tick t) {
    Shard().ticks[static_cast<int>(t)].fetch_add(
        1, std::memory_order_relaxed);
  }

  HistogramData SnapshotHistogram(Hist h) const;
  // Folds all shards of `h` into *merger without computing percentiles —
  // the cumulative input WindowedHistogram::Advance wants at scrape time.
  void MergeHistogram(Hist h, HistogramMerger* merger) const;
  uint64_t TickTotal(Tick t) const;

  // Zeroes every shard. Concurrent recorders may land increments on either
  // side of the sweep; reset is a bench/test convenience, not a fence.
  void Reset();

 private:
  struct alignas(64) ShardData {
    Histogram hists[static_cast<int>(Hist::kNumHistograms)];
    std::atomic<uint64_t> ticks[static_cast<int>(Tick::kNumTicks)] = {};
  };

  ShardData& Shard() {
    static std::atomic<uint32_t> next{0};
    thread_local const uint32_t idx =
        next.fetch_add(1, std::memory_order_relaxed) % kNumShards;
    return shards_[idx];
  }

  std::unique_ptr<ShardData[]> shards_;
};

// RAII latency recorder. Costs nothing (not even a clock read) when the
// registry pointer is null, which is the enable_metrics=false case.
class StopWatch {
 public:
  StopWatch(MetricsRegistry* metrics, Hist hist)
      : metrics_(metrics), hist_(hist) {
    if (metrics_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~StopWatch() {
    if (metrics_ != nullptr) {
      metrics_->Record(hist_, ElapsedMicros());
    }
  }

  uint64_t ElapsedMicros() const {
    // monkey-lint: io-under-mutex — metrics clock read: a vDSO call with
    // no syscall or blocking; safe wherever the watch stops.
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  }

  StopWatch(const StopWatch&) = delete;
  StopWatch& operator=(const StopWatch&) = delete;

 private:
  MetricsRegistry* metrics_;
  Hist hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace monkeydb

#endif  // MONKEYDB_OBS_METRICS_H_
