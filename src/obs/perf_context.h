// Thread-local per-operation breakdowns (RocksDB's perf_context /
// iostats_context, sized for this engine).
//
// Usage:
//   SetPerfLevel(PerfLevel::kCountsAndTime);
//   GetPerfContext()->Reset();
//   db->Get(ReadOptions(), key, &value);
//   std::string breakdown = GetPerfContext()->ToString();
//
// The perf level is a thread_local: it gates both the counter updates and
// (at kCountsAndTime) the clock reads, so a thread that never opts in pays
// only one thread-local branch per instrumented site. The contexts are
// plain structs — they are only ever touched by their owning thread.
//
// PerfContext itemizes the read path the way the paper's Eq. 3 accounts
// for it: every run probed either answers from its Bloom filter
// (filter_negatives), passes the filter and finds no block (fence
// pruning), or costs a block access that is a true hit or a false
// positive. perf_context_test.cc checks that these sum up exactly.

#ifndef MONKEYDB_OBS_PERF_CONTEXT_H_
#define MONKEYDB_OBS_PERF_CONTEXT_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace monkeydb {

enum class PerfLevel : int {
  kDisabled = 0,       // No per-op accounting at all (default).
  kCounts = 1,         // Count events, never read the clock.
  kCountsAndTime = 2,  // Counts plus per-stage wall time.
};

void SetPerfLevel(PerfLevel level);
PerfLevel GetPerfLevel();

struct PerfContext {
  // Enough for any shape the benches build (L = ceil(log_T(N/B)) stays
  // far below this for every configuration in the paper's figures).
  static constexpr int kMaxLevels = 24;

  // --- Read-path counts -------------------------------------------------
  uint64_t get_count = 0;
  uint64_t memtable_hits = 0;        // Found (or deleted) in mem/imm.
  uint64_t runs_probed = 0;          // Runs consulted across all levels.
  uint64_t filter_probes = 0;        // Bloom filter membership tests.
  uint64_t filter_negatives = 0;     // Probes answered "definitely absent".
  uint64_t bloom_false_positives = 0;  // Block fetched, key absent.
  uint64_t fence_seeks = 0;          // Fence-pointer binary searches.
  uint64_t blocks_read_from_cache = 0;
  uint64_t blocks_read_from_disk = 0;
  uint64_t blocks_read_from_prefetch = 0;  // Readahead satisfied it.
  uint64_t block_bytes_read = 0;
  uint64_t value_log_reads = 0;

  // Per-level attribution of the same probe events (level index clamps at
  // kMaxLevels - 1; level 0 is the first on-disk level).
  uint64_t runs_probed_per_level[kMaxLevels] = {};
  uint64_t filter_negatives_per_level[kMaxLevels] = {};
  uint64_t false_positives_per_level[kMaxLevels] = {};

  // --- Write-path counts ------------------------------------------------
  uint64_t write_count = 0;
  uint64_t write_groups_led = 0;     // Times this thread was group leader.
  uint64_t write_groups_joined = 0;  // Times a leader committed for us.

  // --- Stage timings, only at kCountsAndTime (nanoseconds) --------------
  uint64_t get_nanos = 0;
  uint64_t memtable_lookup_nanos = 0;
  uint64_t filter_probe_nanos = 0;
  uint64_t block_read_nanos = 0;     // Cache lookup + any disk fetch.
  uint64_t value_log_read_nanos = 0;
  uint64_t write_queue_wait_nanos = 0;
  uint64_t wal_write_nanos = 0;
  uint64_t wal_sync_nanos = 0;
  uint64_t memtable_apply_nanos = 0;

  void Reset() { *this = PerfContext(); }
  std::string ToString() const;   // Skips zero fields.
  std::string ToJson() const;     // Every field, one JSON object.
};

struct IOStatsContext {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_calls = 0;
  uint64_t write_calls = 0;
  uint64_t fsync_calls = 0;
  // Batched random reads (RandomAccessFile::ReadBatch on a batch-capable
  // backend): submissions and the requests they carried. read_calls above
  // still counts every request, so requests-per-submission is
  // batch_read_requests / batch_reads.
  uint64_t batch_reads = 0;
  uint64_t batch_read_requests = 0;
  uint64_t read_nanos = 0;
  uint64_t write_nanos = 0;
  uint64_t fsync_nanos = 0;

  void Reset() { *this = IOStatsContext(); }
  std::string ToString() const;
};

// Accessors return the calling thread's contexts; pointers stay valid for
// the thread's lifetime.
PerfContext* GetPerfContext();
IOStatsContext* GetIOStatsContext();

// Convenience gates for instrumentation sites.
inline bool PerfCountsEnabled() {
  return GetPerfLevel() >= PerfLevel::kCounts;
}
inline bool PerfTimingEnabled() {
  return GetPerfLevel() >= PerfLevel::kCountsAndTime;
}

// Accumulates wall time into a PerfContext/IOStatsContext nanos field, but
// only when the thread opted into timing — otherwise it never touches the
// clock. Bind the field at construction:
//   PerfTimer timer(&GetPerfContext()->wal_sync_nanos);
class PerfTimer {
 public:
  explicit PerfTimer(uint64_t* field)
      : field_(PerfTimingEnabled() ? field : nullptr) {
    if (field_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~PerfTimer() {
    if (field_ != nullptr) {
      *field_ += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start_)
              .count());
    }
  }

  PerfTimer(const PerfTimer&) = delete;
  PerfTimer& operator=(const PerfTimer&) = delete;

 private:
  uint64_t* field_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace monkeydb

#endif  // MONKEYDB_OBS_PERF_CONTEXT_H_
