#include "obs/logger.h"

#include <cerrno>
#include <cstring>
#include <ctime>

#include "obs/metrics.h"

namespace monkeydb {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "UNKNOWN";
}

namespace {

// "2026-08-06 12:34:56.123456" (UTC, so log lines diff cleanly across
// machines).
void FormatTimestamp(char* buf, size_t n) {
  std::timespec ts;
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm_utc;
  gmtime_r(&ts.tv_sec, &tm_utc);
  size_t len = std::strftime(buf, n, "%Y-%m-%d %H:%M:%S", &tm_utc);
  std::snprintf(buf + len, n - len, ".%06ld", ts.tv_nsec / 1000);
}

void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      case '\r': out->append("\\r"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

class FileLogger : public Logger {
 public:
  FileLogger(std::string path, const LoggerOptions& options, FILE* file,
             uint64_t initial_bytes, MetricsRegistry* metrics)
      : path_(std::move(path)),
        options_(options),
        metrics_(metrics),
        file_(file),
        bytes_(initial_bytes) {}

  ~FileLogger() override {
    MutexLock lock(mu_);
    if (file_ != nullptr) std::fclose(file_);
  }

  void Logv(LogLevel level, const char* format, va_list ap) override
      EXCLUDES(mu_) {
    if (level < options_.min_level) return;

    char msg[1024];
    std::vsnprintf(msg, sizeof(msg), format, ap);
    char ts[40];
    FormatTimestamp(ts, sizeof(ts));

    std::string line;
    if (options_.json) {
      line.append("{\"ts\":\"");
      line.append(ts);
      line.append("\",\"level\":\"");
      line.append(LogLevelName(level));
      line.append("\",\"msg\":\"");
      AppendJsonEscaped(&line, msg);
      line.append("\"}\n");
    } else {
      line.append(ts);
      line.append(" [");
      line.append(LogLevelName(level));
      line.append("] ");
      line.append(msg);
      line.push_back('\n');
    }

    MutexLock lock(mu_);
    if (file_ == nullptr) return;
    if (options_.max_file_bytes > 0 &&
        bytes_ + line.size() > options_.max_file_bytes && bytes_ > 0) {
      RotateLocked();
    }
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
    bytes_ += line.size();
  }

 private:
  void RotateLocked() REQUIRES(mu_) {
    std::fclose(file_);
    file_ = nullptr;
    const std::string old = path_ + ".old";
    std::remove(old.c_str());
    std::rename(path_.c_str(), old.c_str());
    file_ = std::fopen(path_.c_str(), "a");
    bytes_ = 0;
    if (metrics_ != nullptr) metrics_->Tick1(Tick::kLoggerRotations);
  }

  const std::string path_;
  const LoggerOptions options_;
  MetricsRegistry* const metrics_;

  mutable Mutex mu_;
  FILE* file_ GUARDED_BY(mu_);
  uint64_t bytes_ GUARDED_BY(mu_);
};

}  // namespace

Status NewFileLogger(const std::string& path, const LoggerOptions& options,
                     MetricsRegistry* metrics,
                     std::shared_ptr<Logger>* logger) {
  FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status::IoError("cannot open log file " + path + ": " +
                           std::strerror(errno));
  }
  long pos = std::ftell(file);
  *logger = std::make_shared<FileLogger>(
      path, options, file, pos > 0 ? static_cast<uint64_t>(pos) : 0,
      metrics);
  return Status::OK();
}

}  // namespace monkeydb
