#include "obs/flight_recorder.h"

#include <algorithm>

namespace monkeydb {

namespace {

// Payload packing: six 64-bit words per event. Word 5 folds the small
// fields so a slot stays seven atomics (one cache line + 8 bytes).
uint64_t PackMeta(const TraceEvent& e) {
  return (static_cast<uint64_t>(e.tid) << 32) |
         (static_cast<uint64_t>(static_cast<uint16_t>(e.name)) << 16) |
         (static_cast<uint64_t>(e.phase) << 8) |
         static_cast<uint64_t>(e.depth);
}

void UnpackMeta(uint64_t meta, TraceEvent* e) {
  e->tid = static_cast<uint32_t>(meta >> 32);
  e->name = static_cast<TraceName>(static_cast<uint16_t>(meta >> 16));
  e->phase = static_cast<uint8_t>(meta >> 8);
  e->depth = static_cast<uint8_t>(meta);
}

}  // namespace

// Single-writer seqlock ring. The owning thread publishes each slot by
// bracketing the payload stores with sequence stores (odd = in progress,
// even = position pos published as 2 * (pos + 1)); snapshot readers verify
// the sequence on both sides of their copy and skip slots caught
// mid-overwrite. All accesses are atomics, so there is no data race for
// TSan to find and no word-level tearing.
class FlightRecorder::Ring {
 public:
  Ring(size_t capacity, uint32_t tid)
      : mask_(capacity - 1),
        tid_(tid),
        slots_(std::make_unique<Slot[]>(capacity)) {}

  size_t capacity() const { return mask_ + 1; }
  uint32_t tid() const { return tid_; }

  void Push(const TraceEvent& e) {
    const uint64_t pos = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[pos & mask_];
    s.seq.store(2 * pos + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.w[0].store(e.ts_nanos, std::memory_order_relaxed);
    s.w[1].store(e.request_id, std::memory_order_relaxed);
    s.w[2].store(static_cast<uint64_t>(e.args[0]),
                 std::memory_order_relaxed);
    s.w[3].store(static_cast<uint64_t>(e.args[1]),
                 std::memory_order_relaxed);
    s.w[4].store(static_cast<uint64_t>(e.args[2]),
                 std::memory_order_relaxed);
    s.w[5].store(PackMeta(e), std::memory_order_relaxed);
    s.seq.store(2 * (pos + 1), std::memory_order_release);
    head_.store(pos + 1, std::memory_order_release);
  }

  void CollectInto(uint64_t min_ts_nanos,
                   std::vector<TraceEvent>* out) const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t start = head > capacity() ? head - capacity() : 0;
    for (uint64_t pos = start; pos < head; pos++) {
      const Slot& s = slots_[pos & mask_];
      const uint64_t seq1 = s.seq.load(std::memory_order_acquire);
      if (seq1 != 2 * (pos + 1)) continue;  // Overwritten or in progress.
      TraceEvent e;
      e.ts_nanos = s.w[0].load(std::memory_order_relaxed);
      e.request_id = s.w[1].load(std::memory_order_relaxed);
      e.args[0] = static_cast<int64_t>(
          s.w[2].load(std::memory_order_relaxed));
      e.args[1] = static_cast<int64_t>(
          s.w[3].load(std::memory_order_relaxed));
      e.args[2] = static_cast<int64_t>(
          s.w[4].load(std::memory_order_relaxed));
      UnpackMeta(s.w[5].load(std::memory_order_relaxed), &e);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != seq1) continue;
      if (e.ts_nanos >= min_ts_nanos) out->push_back(e);
    }
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> w[6] = {};
  };

  const uint64_t mask_;
  const uint32_t tid_;
  std::atomic<uint64_t> head_{0};
  std::unique_ptr<Slot[]> slots_;
};

// Per-thread cache of (recorder, ring) bindings; returns rings to their
// recorder's free pool at thread exit. Almost always a single entry — the
// list form only matters for tests that build private recorders. A private
// recorder must outlive every thread that recorded into it.
struct FlightRecorder::ThreadSlot {
  struct Entry {
    FlightRecorder* owner;
    Ring* ring;
    Entry* next;
  };
  Entry* head = nullptr;

  Ring* Find(FlightRecorder* owner) const {
    for (Entry* e = head; e != nullptr; e = e->next) {
      if (e->owner == owner) return e->ring;
    }
    return nullptr;
  }

  void Remember(FlightRecorder* owner, Ring* ring) {
    head = new Entry{owner, ring, head};
  }

  ~ThreadSlot() {
    while (head != nullptr) {
      Entry* e = head;
      head = e->next;
      e->owner->ReleaseRing(e->ring);
      delete e;
    }
  }
};

FlightRecorder::FlightRecorder() = default;

FlightRecorder* FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return recorder;
}

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  MutexLock lock(mu_);
  const size_t capacity = ring_capacity_.load(std::memory_order_relaxed);
  while (!free_rings_.empty()) {
    Ring* ring = free_rings_.back();
    free_rings_.pop_back();
    if (ring->capacity() == capacity) return ring;
    // Stale capacity (SetRingCapacityForTest since it was freed): retire.
    for (size_t i = 0; i < rings_.size(); i++) {
      if (rings_[i].get() == ring) {
        rings_.erase(rings_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
  auto ring = std::make_shared<Ring>(
      capacity, static_cast<uint32_t>(rings_.size() + 1));
  rings_.push_back(ring);
  return ring.get();
}

void FlightRecorder::ReleaseRing(Ring* ring) {
  MutexLock lock(mu_);
  free_rings_.push_back(ring);
}

void FlightRecorder::Record(const TraceEvent& event) {
  thread_local ThreadSlot slot;
  Ring* ring = slot.Find(this);
  if (ring == nullptr) {
    ring = RingForThisThread();
    slot.Remember(this, ring);
  }
  TraceEvent e = event;
  e.tid = ring->tid();
  ring->Push(e);
}

std::vector<TraceEvent> FlightRecorder::Snapshot(
    uint64_t min_ts_nanos) const {
  const uint64_t watermark = min_visible_ts_.load(std::memory_order_relaxed);
  if (watermark > min_ts_nanos) min_ts_nanos = watermark;
  std::vector<std::shared_ptr<Ring>> rings;
  {
    MutexLock lock(mu_);
    rings = rings_;
  }
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) ring->CollectInto(min_ts_nanos, &out);
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_nanos != b.ts_nanos) {
                       return a.ts_nanos < b.ts_nanos;
                     }
                     return a.tid < b.tid;
                   });
  return out;
}

void FlightRecorder::Clear() {
  min_visible_ts_.store(TraceNowNanos(), std::memory_order_relaxed);
}

void FlightRecorder::SetRingCapacityForTest(size_t capacity) {
  size_t pow2 = 1;
  while (pow2 < capacity) pow2 <<= 1;
  ring_capacity_.store(pow2, std::memory_order_relaxed);
}

}  // namespace monkeydb
