#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/flight_recorder.h"

namespace monkeydb {

namespace {

struct NameInfo {
  const char* name;
  const char* args[3];
};

// Indexed by TraceName. Keep in enum order.
constexpr NameInfo kNames[] = {
    {"server.parse", {"bytes_buffered", "commands_parsed", nullptr}},
    {"server.command", {"command_id", "commands_in_run", "keys"}},
    {"server.admin", {"command_id", nullptr, nullptr}},
    {"db.get", {"found", nullptr, nullptr}},
    {"db.multiget", {"keys", nullptr, nullptr}},
    {"db.memtable_probe", {"memtables", "hit", nullptr}},
    {"db.run_probe", {"level", "outcome", "predicted_fpr_ppb"}},
    {"table.filter_probe", {"may_contain", nullptr, nullptr}},
    {"table.fence_seek", {"block_needed", nullptr, nullptr}},
    {"table.block_fetch", {"cache_hit", "bytes", nullptr}},
    {"db.write", {"batch_bytes", nullptr, nullptr}},
    {"db.write_queue_wait", {"leader", nullptr, nullptr}},
    {"db.wal_append", {"bytes", "sync", nullptr}},
    {"db.memtable_apply", {"batches", nullptr, nullptr}},
    {"uring.submit_batch", {"requests", "rounds", nullptr}},
    {"uring.complete", {"index", "result_bytes", nullptr}},
    {"uring.short_read_retry", {"index", nullptr, nullptr}},
};
static_assert(sizeof(kNames) / sizeof(kNames[0]) ==
                  static_cast<size_t>(TraceName::kNumTraceNames),
              "kNames must cover every TraceName");

std::atomic<uint64_t> g_clock_reads{0};
std::atomic<uint64_t> g_next_request_id{1};

// Sampling threshold against a 32-bit uniform draw: 0 = never, 1 << 32 =
// always. Initialized from MONKEYDB_TRACE_SAMPLE so CI can arm the whole
// test suite; SetTraceSampleRate overwrites it afterwards.
uint64_t ThresholdForRate(double rate) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return uint64_t{1} << 32;
  return static_cast<uint64_t>(rate * 4294967296.0);
}

bool EnvSampleRate(double* rate) {
  const char* env = getenv("MONKEYDB_TRACE_SAMPLE");
  if (env == nullptr || env[0] == '\0') return false;
  *rate = strtod(env, nullptr);
  return true;
}

uint64_t InitialThreshold() {
  double rate = 0.0;
  return EnvSampleRate(&rate) ? ThresholdForRate(rate) : 0;
}

std::atomic<uint64_t> g_sample_threshold{InitialThreshold()};

uint32_t Xorshift32() {
  thread_local uint32_t state = [] {
    // Seed per thread from the address of the state itself plus a global
    // counter; quality only has to be "spread sampled requests around".
    static std::atomic<uint32_t> salt{0x9e3779b9};
    uint32_t s = static_cast<uint32_t>(
        reinterpret_cast<uintptr_t>(&state) >> 4);
    s ^= salt.fetch_add(0x85ebca6b, std::memory_order_relaxed);
    return s != 0 ? s : 1u;
  }();
  uint32_t x = state;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  state = x;
  return x;
}

void Record(uint8_t phase, TraceName name, uint64_t request_id,
            uint8_t depth, int64_t a0, int64_t a1, int64_t a2) {
  TraceEvent e;
  e.ts_nanos = TraceNowNanos();
  e.request_id = request_id;
  e.args[0] = a0;
  e.args[1] = a1;
  e.args[2] = a2;
  e.name = name;
  e.phase = phase;
  e.depth = depth;
  FlightRecorder::Global()->Record(e);
}

}  // namespace

const char* TraceNameString(TraceName name) {
  const auto i = static_cast<size_t>(name);
  if (i >= static_cast<size_t>(TraceName::kNumTraceNames)) return "?";
  return kNames[i].name;
}

const char* TraceArgName(TraceName name, int i) {
  const auto n = static_cast<size_t>(name);
  if (n >= static_cast<size_t>(TraceName::kNumTraceNames) || i < 0 || i > 2) {
    return nullptr;
  }
  return kNames[n].args[i];
}

TraceContext* GetTraceContext() {
  thread_local TraceContext ctx;
  return &ctx;
}

void SetTraceSampleRate(double rate) {
  g_sample_threshold.store(ThresholdForRate(rate),
                           std::memory_order_relaxed);
}

void ApplyTraceSampleRateOption(double rate) {
  double env_rate = 0.0;
  if (EnvSampleRate(&env_rate)) rate = env_rate;
  SetTraceSampleRate(rate);
}

double TraceSampleRate() {
  return static_cast<double>(
             g_sample_threshold.load(std::memory_order_relaxed)) /
         4294967296.0;
}

bool TraceSampleHead() {
  const uint64_t threshold =
      g_sample_threshold.load(std::memory_order_relaxed);
  if (threshold == 0) return false;  // The disarmed default: one load, done.
  return Xorshift32() < threshold;
}

uint64_t TraceNowNanos() {
  g_clock_reads.fetch_add(1, std::memory_order_relaxed);
  // monkey-lint: io-under-mutex — trace clock read: a vDSO call with no
  // syscall or blocking; spans never hold annotated mutexes across Env
  // I/O (the span only wraps the clock and a ring store).
  const auto now = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now.time_since_epoch())
          .count());
}

uint64_t TraceClockReads() {
  return g_clock_reads.load(std::memory_order_relaxed);
}

uint64_t TraceArmer::NextRequestId() {
  return g_next_request_id.fetch_add(1, std::memory_order_relaxed);
}

void TraceSpan::Begin() {
  const uint8_t depth = ctx_->depth();
  ctx_->set_depth(depth + 1);
  Record('B', name_, ctx_->request_id(), depth, a0_, a1_, a2_);
}

void TraceSpan::End() {
  const uint8_t depth = ctx_->depth();
  ctx_->set_depth(depth > 0 ? depth - 1 : 0);
  Record('E', name_, ctx_->request_id(), depth > 0 ? depth - 1 : 0, a0_,
         a1_, a2_);
}

void TraceInstantSlow(TraceName name, int64_t a0, int64_t a1, int64_t a2) {
  TraceContext* ctx = GetTraceContext();
  Record('I', name, ctx->request_id(), ctx->depth(), a0, a1, a2);
}

// --- Export ----------------------------------------------------------------

namespace {

void AppendArgsJson(std::string* out, const TraceEvent& e) {
  char buf[64];
  *out += "\"args\":{\"request_id\":";
  snprintf(buf, sizeof(buf), "%llu",
           static_cast<unsigned long long>(e.request_id));
  *out += buf;
  for (int i = 0; i < 3; i++) {
    const char* arg = TraceArgName(e.name, i);
    if (arg == nullptr) continue;
    *out += ",\"";
    *out += arg;
    *out += "\":";
    snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(e.args[i]));
    *out += buf;
  }
  *out += "}";
}

}  // namespace

std::string DumpTraceJson(uint64_t min_ts_nanos) {
  const std::vector<TraceEvent> events =
      FlightRecorder::Global()->Snapshot(min_ts_nanos);
  std::string out;
  out.reserve(events.size() * 128 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[96];
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += TraceNameString(e.name);
    out += "\",\"cat\":\"monkeydb\",\"ph\":\"";
    out += static_cast<char>(e.phase);
    out += "\",";
    if (e.phase == 'I') out += "\"s\":\"t\",";
    snprintf(buf, sizeof(buf), "\"pid\":1,\"tid\":%u,\"ts\":%.3f,",
             e.tid, static_cast<double>(e.ts_nanos) / 1e3);
    out += buf;
    AppendArgsJson(&out, e);
    out += "}";
  }
  out += "]}\n";
  return out;
}

namespace {

void AppendArgsText(std::string* out, TraceName name, const int64_t* args,
                    uint64_t request_id) {
  char buf[64];
  bool any = false;
  for (int a = 0; a < 3; a++) {
    const char* arg = TraceArgName(name, a);
    if (arg == nullptr) continue;
    *out += any ? ", " : " (";
    any = true;
    *out += arg;
    snprintf(buf, sizeof(buf), "=%lld", static_cast<long long>(args[a]));
    *out += buf;
  }
  if (any) *out += ")";
  snprintf(buf, sizeof(buf), " req=%llu",
           static_cast<unsigned long long>(request_id));
  *out += buf;
}

}  // namespace

std::string RenderSpanForest(const std::vector<TraceEvent>& events) {
  // Partition by thread, preserving the snapshot's timestamp order.
  std::vector<uint32_t> tids;
  for (const TraceEvent& e : events) {
    bool seen = false;
    for (uint32_t t : tids) seen = seen || t == e.tid;
    if (!seen) tids.push_back(e.tid);
  }
  // One line per span/instant/violation, emitted in begin order so
  // parents precede their children (a readable tree).
  struct Item {
    size_t depth = 0;
    TraceName name = TraceName::kNumTraceNames;
    uint64_t begin_ts = 0;
    int64_t dur_nanos = -1;  // -1: instant or unclosed.
    int64_t args[3] = {0, 0, 0};
    uint64_t request_id = 0;
    const char* note = nullptr;  // Violations ("!unmatched end" etc).
  };
  std::string out;
  char buf[128];
  for (uint32_t tid : tids) {
    std::vector<Item> items;
    std::vector<size_t> stack;  // Indices into `items` for open begins.
    for (const TraceEvent& e : events) {
      if (e.tid != tid) continue;
      if (e.phase == 'B') {
        Item it;
        it.depth = stack.size();
        it.name = e.name;
        it.begin_ts = e.ts_nanos;
        it.request_id = e.request_id;
        stack.push_back(items.size());
        items.push_back(it);
      } else if (e.phase == 'E') {
        if (stack.empty() || items[stack.back()].name != e.name) {
          Item it;
          it.depth = stack.size();
          it.name = e.name;
          it.request_id = e.request_id;
          it.note = "!unmatched end: ";
          items.push_back(it);
          continue;
        }
        Item& open = items[stack.back()];
        stack.pop_back();
        open.dur_nanos = static_cast<int64_t>(e.ts_nanos - open.begin_ts);
        for (int a = 0; a < 3; a++) open.args[a] = e.args[a];
      } else if (e.phase == 'I') {
        Item it;
        it.depth = stack.size();
        it.name = e.name;
        it.begin_ts = e.ts_nanos;
        it.request_id = e.request_id;
        it.note = "";  // Instant marker handled below via dur < 0.
        for (int a = 0; a < 3; a++) it.args[a] = e.args[a];
        items.push_back(it);
      }
    }
    for (size_t i : stack) items[i].note = "!unclosed begin: ";
    snprintf(buf, sizeof(buf), "[tid %u]\n", tid);
    out += buf;
    for (const Item& it : items) {
      out += std::string(2 * (it.depth + 1), ' ');
      if (it.note != nullptr && it.note[0] == '!') out += it.note;
      out += TraceNameString(it.name);
      if (it.dur_nanos >= 0) {
        snprintf(buf, sizeof(buf), " %.1fus",
                 static_cast<double>(it.dur_nanos) / 1e3);
        out += buf;
      } else if (it.note != nullptr && it.note[0] == '\0') {
        out += " [instant]";
      }
      AppendArgsText(&out, it.name, it.args, it.request_id);
      out += "\n";
    }
  }
  return out;
}

}  // namespace monkeydb
