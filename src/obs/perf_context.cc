#include "obs/perf_context.h"

#include <cinttypes>
#include <cstdio>

namespace monkeydb {

namespace {

thread_local PerfLevel tls_perf_level = PerfLevel::kDisabled;
thread_local PerfContext tls_perf_context;
thread_local IOStatsContext tls_iostats_context;

void AppendField(std::string* out, const char* name, uint64_t value,
                 bool skip_zero) {
  if (skip_zero && value == 0) return;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s%s=%" PRIu64,
                out->empty() ? "" : " ", name, value);
  out->append(buf);
}

void AppendJsonField(std::string* out, const char* name, uint64_t value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64,
                out->size() > 1 ? "," : "", name, value);
  out->append(buf);
}

}  // namespace

void SetPerfLevel(PerfLevel level) { tls_perf_level = level; }
PerfLevel GetPerfLevel() { return tls_perf_level; }

PerfContext* GetPerfContext() { return &tls_perf_context; }
IOStatsContext* GetIOStatsContext() { return &tls_iostats_context; }

#define MONKEYDB_PERF_FIELDS(V)        \
  V(get_count)                         \
  V(memtable_hits)                     \
  V(runs_probed)                       \
  V(filter_probes)                     \
  V(filter_negatives)                  \
  V(bloom_false_positives)             \
  V(fence_seeks)                       \
  V(blocks_read_from_cache)            \
  V(blocks_read_from_disk)             \
  V(blocks_read_from_prefetch)         \
  V(block_bytes_read)                  \
  V(value_log_reads)                   \
  V(write_count)                       \
  V(write_groups_led)                  \
  V(write_groups_joined)               \
  V(get_nanos)                         \
  V(memtable_lookup_nanos)             \
  V(filter_probe_nanos)                \
  V(block_read_nanos)                  \
  V(value_log_read_nanos)              \
  V(write_queue_wait_nanos)            \
  V(wal_write_nanos)                   \
  V(wal_sync_nanos)                    \
  V(memtable_apply_nanos)

std::string PerfContext::ToString() const {
  std::string out;
#define V(field) AppendField(&out, #field, field, /*skip_zero=*/true);
  MONKEYDB_PERF_FIELDS(V)
#undef V
  for (int l = 0; l < kMaxLevels; ++l) {
    if (runs_probed_per_level[l] == 0 &&
        filter_negatives_per_level[l] == 0 &&
        false_positives_per_level[l] == 0) {
      continue;
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%sL%d{runs=%" PRIu64 " neg=%" PRIu64 " fp=%" PRIu64 "}",
                  out.empty() ? "" : " ", l, runs_probed_per_level[l],
                  filter_negatives_per_level[l],
                  false_positives_per_level[l]);
    out.append(buf);
  }
  return out;
}

std::string PerfContext::ToJson() const {
  std::string out = "{";
#define V(field) AppendJsonField(&out, #field, field);
  MONKEYDB_PERF_FIELDS(V)
#undef V
  out.append(",\"levels\":[");
  // Trailing all-zero levels are elided so the array length tracks the
  // deepest level this operation actually touched.
  int last = -1;
  for (int l = 0; l < kMaxLevels; ++l) {
    if (runs_probed_per_level[l] != 0 ||
        filter_negatives_per_level[l] != 0 ||
        false_positives_per_level[l] != 0) {
      last = l;
    }
  }
  for (int l = 0; l <= last; ++l) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"level\":%d,\"runs_probed\":%" PRIu64
                  ",\"filter_negatives\":%" PRIu64
                  ",\"false_positives\":%" PRIu64 "}",
                  l == 0 ? "" : ",", l, runs_probed_per_level[l],
                  filter_negatives_per_level[l],
                  false_positives_per_level[l]);
    out.append(buf);
  }
  out.append("]}");
  return out;
}

#undef MONKEYDB_PERF_FIELDS

std::string IOStatsContext::ToString() const {
  std::string out;
  AppendField(&out, "bytes_read", bytes_read, false);
  AppendField(&out, "bytes_written", bytes_written, false);
  AppendField(&out, "read_calls", read_calls, false);
  AppendField(&out, "write_calls", write_calls, false);
  AppendField(&out, "fsync_calls", fsync_calls, false);
  AppendField(&out, "batch_reads", batch_reads, false);
  AppendField(&out, "batch_read_requests", batch_read_requests, false);
  AppendField(&out, "read_nanos", read_nanos, false);
  AppendField(&out, "write_nanos", write_nanos, false);
  AppendField(&out, "fsync_nanos", fsync_nanos, false);
  return out;
}

}  // namespace monkeydb
