// The flight recorder: per-thread lock-free ring buffers of TraceEvents
// (DESIGN.md §16 "Tracing & flight recorder").
//
// Each recording thread owns one fixed-size ring (overwrite-oldest). A
// slot is a seqlock: the writer marks it odd, stores the payload words,
// then publishes an even sequence encoding the slot's position, all with
// atomics — so a concurrent Snapshot() never observes a torn event (it
// skips slots caught mid-write) and TSan sees no data race. Recording is
// wait-free after a thread's first event (which registers its ring under
// the registry mutex); steady-state recording allocates nothing.
//
// Rings outlive their threads: a thread's ring returns to a free pool on
// exit and is recycled by the next new thread, so thread churn is bounded
// and a dead thread's final spans stay visible until overwritten.

#ifndef MONKEYDB_OBS_FLIGHT_RECORDER_H_
#define MONKEYDB_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/trace.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace monkeydb {

class FlightRecorder {
 public:
  // Events retained per thread. Must be a power of two.
  static constexpr size_t kDefaultRingCapacity = 8192;

  // The process-wide recorder (trace spans from every DB and server in
  // the process land here, like PerfContext's thread-locals).
  static FlightRecorder* Global();

  FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Records into the calling thread's ring (creating/recycling one on the
  // thread's first event). Lock-free after that first call.
  void Record(const TraceEvent& event);

  // Copies every retained event with ts_nanos >= min_ts_nanos out of all
  // rings (live and dead threads alike), sorted by timestamp. Safe to call
  // concurrently with recorders; slots being overwritten mid-copy are
  // skipped, never torn.
  std::vector<TraceEvent> Snapshot(uint64_t min_ts_nanos = 0) const;

  // Logically drops everything recorded so far by advancing a timestamp
  // watermark (rings are single-writer, so another thread cannot scrub
  // them in place). Reads the clock once.
  void Clear();

  // Capacity (power of two) for rings created after this call — a test
  // hook for exercising wraparound without generating 8k events. Existing
  // rings keep their size; recycled rings with a stale capacity are
  // replaced.
  void SetRingCapacityForTest(size_t capacity);

 private:
  class Ring;
  struct ThreadSlot;

  Ring* RingForThisThread();
  void ReleaseRing(Ring* ring);

  std::atomic<size_t> ring_capacity_{kDefaultRingCapacity};
  std::atomic<uint64_t> min_visible_ts_{0};  // Clear() watermark.

  mutable Mutex mu_;
  std::vector<std::shared_ptr<Ring>> rings_ GUARDED_BY(mu_);
  std::vector<Ring*> free_rings_ GUARDED_BY(mu_);
};

}  // namespace monkeydb

#endif  // MONKEYDB_OBS_FLIGHT_RECORDER_H_
