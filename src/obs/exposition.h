// Metric exposition: minimal writers for the Prometheus text format and
// JSON, used by DB::DumpMetrics() and the bench harness's --json dumps.
//
// Histograms are exported as Prometheus `summary` metrics (quantile labels
// 0.5/0.9/0.99/0.999 plus _sum and _count) — the percentiles are already
// computed from the log-bucketed histogram, and a summary avoids shipping
// all 256 raw buckets per metric. tools/metrics_lint.py validates the
// output in CI.

#ifndef MONKEYDB_OBS_EXPOSITION_H_
#define MONKEYDB_OBS_EXPOSITION_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>

#include "obs/histogram.h"

namespace monkeydb {

class PrometheusWriter {
 public:
  using Label = std::pair<const char*, std::string>;

  void Counter(const std::string& name, const char* help, double value);
  void Gauge(const std::string& name, const char* help, double value);
  // Emits one sample of an already-declared metric family with labels,
  // e.g. LabeledSample("monkey_predicted_fpr", {{"level", "3"}}, 0.01).
  // Declare the family once with DeclareGauge first.
  void DeclareGauge(const std::string& name, const char* help);
  void LabeledSample(const std::string& name,
                     std::initializer_list<Label> labels, double value);
  void Summary(const std::string& name, const char* help,
               const HistogramData& data);

  const std::string& str() const { return out_; }

 private:
  void Header(const std::string& name, const char* help, const char* type);
  void Sample(const std::string& name,
              std::initializer_list<Label> labels, double value);

  std::string out_;
};

// Nested-object JSON writer, just enough structure for BENCH_obs.json and
// DumpMetrics(kJson). Call order: Begin/End pairs around Key'd objects.
class JsonWriter {
 public:
  JsonWriter() { out_.push_back('{'); }

  void BeginObject(const std::string& key);
  void EndObject();
  void Field(const std::string& key, double value);
  void Field(const std::string& key, uint64_t value);
  void Field(const std::string& key, const std::string& value);
  void Histogram(const std::string& key, const HistogramData& data);

  // Closes the root object and returns the document.
  std::string Finish();

 private:
  void Comma();
  void Quoted(const std::string& s);

  std::string out_;
  bool needs_comma_ = false;
};

}  // namespace monkeydb

#endif  // MONKEYDB_OBS_EXPOSITION_H_
