#include "obs/metrics.h"

namespace monkeydb {

const char* HistName(Hist h) {
  switch (h) {
    case Hist::kGetLatency: return "get_latency_us";
    case Hist::kMultiGetLatency: return "multiget_latency_us";
    case Hist::kWriteLatency: return "write_latency_us";
    case Hist::kWriteQueueWait: return "write_queue_wait_us";
    case Hist::kWalWriteLatency: return "wal_write_latency_us";
    case Hist::kWalSyncLatency: return "wal_sync_latency_us";
    case Hist::kMemtableApplyLatency: return "memtable_apply_latency_us";
    case Hist::kIterSeekLatency: return "iter_seek_latency_us";
    case Hist::kIterNextLatency: return "iter_next_latency_us";
    case Hist::kFlushLatency: return "flush_latency_us";
    case Hist::kMergeLatency: return "merge_latency_us";
    case Hist::kSubcompactionLatency: return "subcompaction_latency_us";
    case Hist::kBlockCacheLookupLatency:
      return "block_cache_lookup_latency_us";
    case Hist::kBlockReadLatency: return "block_read_latency_us";
    case Hist::kWriteGroupSize: return "write_group_size";
    case Hist::kParallelApplyFanout: return "parallel_apply_fanout";
    case Hist::kServerGetLatency: return "server_get_latency_us";
    case Hist::kServerSetLatency: return "server_set_latency_us";
    case Hist::kServerDelLatency: return "server_del_latency_us";
    case Hist::kServerMGetLatency: return "server_mget_latency_us";
    case Hist::kServerMSetLatency: return "server_mset_latency_us";
    case Hist::kServerScanLatency: return "server_scan_latency_us";
    case Hist::kServerOtherLatency: return "server_other_latency_us";
    case Hist::kServerPipelineDepth: return "server_pipeline_depth";
    case Hist::kNumHistograms: break;
  }
  return "unknown";
}

const char* TickName(Tick t) {
  switch (t) {
    case Tick::kListenerCallbacks: return "listener_callbacks";
    case Tick::kListenerFailures: return "listener_failures";
    case Tick::kLoggerRotations: return "logger_rotations";
    case Tick::kServerConnectionsAccepted:
      return "server_connections_accepted";
    case Tick::kServerConnectionsClosed: return "server_connections_closed";
    case Tick::kServerCommands: return "server_commands";
    case Tick::kServerProtocolErrors: return "server_protocol_errors";
    case Tick::kServerBackpressurePauses:
      return "server_backpressure_pauses";
    case Tick::kServerOverlimitCloses: return "server_overlimit_closes";
    case Tick::kServerHttpRequests: return "server_http_requests";
    case Tick::kNumTicks: break;
  }
  return "unknown";
}

MetricsRegistry::MetricsRegistry()
    : shards_(new ShardData[kNumShards]) {}

HistogramData MetricsRegistry::SnapshotHistogram(Hist h) const {
  HistogramMerger merger;
  MergeHistogram(h, &merger);
  return merger.Snapshot();
}

void MetricsRegistry::MergeHistogram(Hist h, HistogramMerger* merger) const {
  for (int s = 0; s < kNumShards; ++s) {
    merger->Add(shards_[s].hists[static_cast<int>(h)]);
  }
}

uint64_t MetricsRegistry::TickTotal(Tick t) const {
  uint64_t total = 0;
  for (int s = 0; s < kNumShards; ++s) {
    total += shards_[s].ticks[static_cast<int>(t)].load(
        std::memory_order_relaxed);
  }
  return total;
}

void MetricsRegistry::Reset() {
  for (int s = 0; s < kNumShards; ++s) {
    for (auto& h : shards_[s].hists) h.Reset();
    for (auto& t : shards_[s].ticks) t.store(0, std::memory_order_relaxed);
  }
}

}  // namespace monkeydb
