// Leveled info logger (LevelDB's LOG file, with rotation and an optional
// JSON-lines mode for machine ingestion).
//
// The logger writes through cstdio rather than Env: obs/ sits below io/ in
// the library layering (io's envs feed IOStatsContext), so routing LOG
// writes through an Env would create a dependency cycle — and would also
// pollute the I/O accounting the cost model is validated against.

#ifndef MONKEYDB_OBS_LOGGER_H_
#define MONKEYDB_OBS_LOGGER_H_

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace monkeydb {

class MetricsRegistry;

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

const char* LogLevelName(LogLevel level);

class Logger {
 public:
  virtual ~Logger() = default;

  virtual void Logv(LogLevel level, const char* format, va_list ap) = 0;

  void Log(LogLevel level, const char* format, ...)
      __attribute__((format(printf, 3, 4))) {
    va_list ap;
    va_start(ap, format);
    Logv(level, format, ap);
    va_end(ap);
  }

  void Info(const char* format, ...)
      __attribute__((format(printf, 2, 3))) {
    va_list ap;
    va_start(ap, format);
    Logv(LogLevel::kInfo, format, ap);
    va_end(ap);
  }

  void Warn(const char* format, ...)
      __attribute__((format(printf, 2, 3))) {
    va_list ap;
    va_start(ap, format);
    Logv(LogLevel::kWarn, format, ap);
    va_end(ap);
  }
};

struct LoggerOptions {
  // Rotate LOG -> LOG.old when it exceeds this many bytes (0 disables
  // rotation).
  uint64_t max_file_bytes = 16 * 1024 * 1024;
  // Emit one JSON object per line ({"ts":..,"level":..,"msg":..}) instead
  // of the human-readable "ts [LEVEL] msg" format.
  bool json = false;
  LogLevel min_level = LogLevel::kInfo;
};

// Creates a logger writing to <path> (appending). Rotation renames the
// file to <path>.old and reopens. Optional registry counts rotations.
Status NewFileLogger(const std::string& path, const LoggerOptions& options,
                     MetricsRegistry* metrics,
                     std::shared_ptr<Logger>* logger);

}  // namespace monkeydb

#endif  // MONKEYDB_OBS_LOGGER_H_
