#include "obs/exposition.h"

#include <cmath>
#include <cstdio>

namespace monkeydb {

namespace {

// Prometheus floats: integral values print without an exponent so counter
// samples stay exact; everything else uses %g (which also handles the
// tiny per-level FPRs without padding zeros).
std::string FormatValue(double value) {
  char buf[64];
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", value);
  }
  return buf;
}

}  // namespace

void PrometheusWriter::Header(const std::string& name, const char* help,
                              const char* type) {
  out_.append("# HELP ").append(name).append(" ").append(help).append("\n");
  out_.append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

void PrometheusWriter::Sample(const std::string& name,
                              std::initializer_list<Label> labels,
                              double value) {
  out_.append(name);
  if (labels.size() > 0) {
    out_.push_back('{');
    bool first = true;
    for (const auto& [key, val] : labels) {
      if (!first) out_.push_back(',');
      first = false;
      out_.append(key).append("=\"").append(val).append("\"");
    }
    out_.push_back('}');
  }
  out_.push_back(' ');
  out_.append(FormatValue(value));
  out_.push_back('\n');
}

void PrometheusWriter::Counter(const std::string& name, const char* help,
                               double value) {
  Header(name, help, "counter");
  Sample(name, {}, value);
}

void PrometheusWriter::Gauge(const std::string& name, const char* help,
                             double value) {
  Header(name, help, "gauge");
  Sample(name, {}, value);
}

void PrometheusWriter::DeclareGauge(const std::string& name,
                                    const char* help) {
  Header(name, help, "gauge");
}

void PrometheusWriter::LabeledSample(const std::string& name,
                                     std::initializer_list<Label> labels,
                                     double value) {
  Sample(name, labels, value);
}

void PrometheusWriter::Summary(const std::string& name, const char* help,
                               const HistogramData& data) {
  Header(name, help, "summary");
  Sample(name, {{"quantile", "0.5"}}, data.p50);
  Sample(name, {{"quantile", "0.9"}}, data.p90);
  Sample(name, {{"quantile", "0.99"}}, data.p99);
  Sample(name, {{"quantile", "0.999"}}, data.p999);
  Sample(name + "_sum", {}, static_cast<double>(data.sum));
  Sample(name + "_count", {}, static_cast<double>(data.count));
}

void JsonWriter::Comma() {
  if (needs_comma_) out_.push_back(',');
  needs_comma_ = true;
}

void JsonWriter::Quoted(const std::string& s) {
  out_.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out_.append("\\\""); break;
      case '\\': out_.append("\\\\"); break;
      case '\n': out_.append("\\n"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_.append(buf);
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

void JsonWriter::BeginObject(const std::string& key) {
  Comma();
  Quoted(key);
  out_.append(":{");
  needs_comma_ = false;
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  needs_comma_ = true;
}

void JsonWriter::Field(const std::string& key, double value) {
  Comma();
  Quoted(key);
  out_.push_back(':');
  if (std::isfinite(value)) {
    out_.append(FormatValue(value));
  } else {
    out_.append("null");
  }
}

void JsonWriter::Field(const std::string& key, uint64_t value) {
  Comma();
  Quoted(key);
  out_.push_back(':');
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out_.append(buf);
}

void JsonWriter::Field(const std::string& key, const std::string& value) {
  Comma();
  Quoted(key);
  out_.push_back(':');
  Quoted(value);
}

void JsonWriter::Histogram(const std::string& key,
                           const HistogramData& data) {
  BeginObject(key);
  Field("count", data.count);
  Field("sum", data.sum);
  Field("avg", data.avg);
  Field("p50", data.p50);
  Field("p90", data.p90);
  Field("p99", data.p99);
  Field("p999", data.p999);
  Field("max", data.max);
  EndObject();
}

std::string JsonWriter::Finish() {
  out_.push_back('}');
  return std::move(out_);
}

}  // namespace monkeydb
