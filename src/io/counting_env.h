// CountingEnv: an Env decorator that charges every file read/write against
// an IoStats at disk-page granularity.
//
// A random read of n bytes at offset off touches
//   ceil((off + n) / page) - floor(off / page)   pages;
// sequential appends are charged by total bytes / page (rounded up at
// close). This makes the engine's measured I/Os directly comparable to the
// paper's closed-form models, whose unit is one disk-page I/O.

#ifndef MONKEYDB_IO_COUNTING_ENV_H_
#define MONKEYDB_IO_COUNTING_ENV_H_

#include <memory>

#include "io/env.h"
#include "io/io_stats.h"

namespace monkeydb {

class CountingEnv : public Env {
 public:
  // base must outlive this. page_size_bytes is the simulated disk page (the
  // paper's B·E bytes; LevelDB-era default 4096).
  CountingEnv(Env* base, IoStats* stats, size_t page_size_bytes = 4096)
      : base_(base), stats_(stats), page_size_(page_size_bytes) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;

  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }

  IoStats* stats() const { return stats_; }
  size_t page_size() const { return page_size_; }

 private:
  Env* base_;
  IoStats* stats_;
  size_t page_size_;
};

}  // namespace monkeydb

#endif  // MONKEYDB_IO_COUNTING_ENV_H_
