#include "io/fault_env.h"

namespace monkeydb {

namespace {

Status InjectedError() { return Status::IoError("injected fault"); }

class FaultyRandomAccessFile : public RandomAccessFile {
 public:
  FaultyRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                         FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    if (env_->ShouldFailRead()) return InjectedError();
    return base_->Read(offset, n, result, scratch);
  }

  // Hints cannot fail (fire-and-forget): faults are injected at the Read.
  void ReadAhead(uint64_t offset, size_t n) const override {
    base_->ReadAhead(offset, n);
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  FaultInjectionEnv* env_;
};

class FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(std::unique_ptr<WritableFile> base,
                     FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const Slice& data) override {
    if (env_->ShouldFailWrite()) return InjectedError();
    return base_->Append(data);
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    if (env_->ShouldFailWrite()) return InjectedError();
    return base_->Sync();
  }
  Status Close() override {
    if (env_->ShouldFailWrite()) return InjectedError();
    return base_->Close();
  }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
};

}  // namespace

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> base_file;
  MONKEYDB_RETURN_IF_ERROR(base_->NewRandomAccessFile(fname, &base_file));
  *result =
      std::make_unique<FaultyRandomAccessFile>(std::move(base_file), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  if (ShouldFailWrite()) return Status::IoError("injected fault");
  std::unique_ptr<WritableFile> base_file;
  MONKEYDB_RETURN_IF_ERROR(base_->NewWritableFile(fname, &base_file));
  *result = std::make_unique<FaultyWritableFile>(std::move(base_file), this);
  return Status::OK();
}

}  // namespace monkeydb
