#include "io/uring_env.h"

#include <fcntl.h>
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <vector>

#include "io/aligned_read.h"
#include "obs/perf_context.h"
#include "obs/trace.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

// Raw-syscall io_uring backend: the container toolchain has the kernel UAPI
// header but no liburing, so the ring (setup, mmaps, SQE/CQE traffic,
// registration) is managed here directly. That also keeps the probe honest:
// a seccomp filter that blocks the syscalls fails the probe and the engine
// falls back to PosixEnv instead of crashing mid-read.
//
// Like posix_env.cc, this is a leaf Env doing real syscalls: it feeds the
// calling thread's IOStatsContext. Don't stack CountingEnv's per-thread
// accounting expectations on top (the page-granular IoStats is fine).

namespace monkeydb {

namespace {

Status PosixError(const std::string& context, int err) {
  if (err == ENOENT) return Status::NotFound(context);
  return Status::IoError(context + ": " + strerror(err));
}

int SysIoUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, fd, to_submit,
                                  min_complete, flags, nullptr, 0));
}

int SysIoUringRegister(int fd, unsigned opcode, const void* arg,
                       unsigned nr_args) {
  return static_cast<int>(syscall(__NR_io_uring_register, fd, opcode, arg,
                                  nr_args));
}

// Ring indices live in kernel-shared memory; access them with explicit
// atomic builtins (the kernel is the other side of the synchronization).
inline unsigned LoadAcquire(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}
inline void StoreRelease(unsigned* p, unsigned v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

std::atomic<bool> g_force_unsupported{false};
std::atomic<uint64_t> g_fallback_events{0};

struct UringStats {
  std::atomic<uint64_t> sqes_submitted{0};
  std::atomic<uint64_t> batch_submits{0};
  std::atomic<uint64_t> batched_requests{0};
  std::atomic<uint64_t> short_read_retries{0};
  std::atomic<uint64_t> fixed_file_reads{0};
  std::atomic<uint64_t> fixed_buffer_reads{0};
  std::atomic<uint64_t> direct_io_fallbacks{0};
  std::atomic<uint64_t> bounce_copies{0};
};

// One read operation as the ring sees it. In direct mode buf/len/offset
// describe the aligned window, not the caller's range.
struct RingOp {
  int fd = -1;
  int fixed_file = -1;  // Registered-file slot, or -1 for a raw fd.
  int buf_index = -1;   // Registered-buffer index (READ_FIXED), or -1.
  uint64_t offset = 0;
  char* buf = nullptr;
  unsigned len = 0;
  ssize_t res = 0;  // Completion result (bytes or -errno).
};

// The shared ring: SQ/CQ mmaps, fixed-file table, registered buffer pool.
// Batch submission is serialized by mu_ — the syscall itself dominates, and
// one enter per batch is the entire point.
class Ring {
 public:
  ~Ring() {
    if (buffer_mem_ != nullptr) {
      // Buffers are unregistered implicitly when the ring fd closes.
      buffer_mem_.reset();
    }
    if (sqes_ != nullptr) munmap(sqes_, sqes_size_);
    if (cq_ptr_ != nullptr && cq_ptr_ != sq_ptr_) munmap(cq_ptr_, cq_size_);
    if (sq_ptr_ != nullptr) munmap(sq_ptr_, sq_size_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  Status Init(const UringEnvOptions& options, UringStats* stats) {
    stats_ = stats;
    io_uring_params p;
    memset(&p, 0, sizeof(p));
    ring_fd_ = SysIoUringSetup(options.ring_entries, &p);
    if (ring_fd_ < 0) {
      return Status::NotSupported(std::string("io_uring_setup: ") +
                                  strerror(errno));
    }
    sq_entries_ = p.sq_entries;

    sq_size_ = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    cq_size_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) {
      sq_size_ = cq_size_ = sq_size_ > cq_size_ ? sq_size_ : cq_size_;
    }
    sq_ptr_ = mmap(nullptr, sq_size_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ptr_ == MAP_FAILED) {
      sq_ptr_ = nullptr;
      return Status::NotSupported("io_uring sq mmap failed");
    }
    if (single_mmap) {
      cq_ptr_ = sq_ptr_;
    } else {
      cq_ptr_ = mmap(nullptr, cq_size_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd_,
                     IORING_OFF_CQ_RING);
      if (cq_ptr_ == MAP_FAILED) {
        cq_ptr_ = nullptr;
        return Status::NotSupported("io_uring cq mmap failed");
      }
    }
    sqes_size_ = p.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        mmap(nullptr, sqes_size_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      return Status::NotSupported("io_uring sqe mmap failed");
    }

    char* sq = static_cast<char*>(sq_ptr_);
    char* cq = static_cast<char*>(cq_ptr_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    cq_head_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);

    // Fixed-file table: sparse registration, slots filled per open file.
    if (options.fixed_file_slots > 0) {
      std::vector<int> fds(options.fixed_file_slots, -1);
      if (SysIoUringRegister(ring_fd_, IORING_REGISTER_FILES, fds.data(),
                             options.fixed_file_slots) == 0) {
        MutexLock lock(mu_);
        files_registered_ = true;
        free_file_slots_.reserve(options.fixed_file_slots);
        for (unsigned i = 0; i < options.fixed_file_slots; i++) {
          free_file_slots_.push_back(static_cast<int>(i));
        }
      }
    }

    // Registered bounce buffers for the O_DIRECT path: READ_FIXED lands in
    // pre-pinned, alignment-correct memory, skipping the per-read pin.
    if (options.use_direct_io) {
      buffer_size_ = kFixedBufferBytes;
      buffer_mem_ = AllocAligned(kNumFixedBuffers * buffer_size_);
      if (buffer_mem_ != nullptr) {
        std::vector<iovec> iovecs(kNumFixedBuffers);
        for (unsigned i = 0; i < kNumFixedBuffers; i++) {
          iovecs[i].iov_base = buffer_mem_.get() + i * buffer_size_;
          iovecs[i].iov_len = buffer_size_;
        }
        if (SysIoUringRegister(ring_fd_, IORING_REGISTER_BUFFERS,
                               iovecs.data(), kNumFixedBuffers) == 0) {
          MutexLock lock(mu_);
          buffers_registered_ = true;
          free_buffers_.reserve(kNumFixedBuffers);
          for (unsigned i = 0; i < kNumFixedBuffers; i++) {
            free_buffers_.push_back(static_cast<int>(i));
          }
        } else {
          buffer_mem_.reset();
        }
      }
    }
    return Status::OK();
  }

  // Submits all ops and waits for every completion; op.res holds each
  // outcome. Chunks batches larger than the SQ.
  Status SubmitAndWait(RingOp* ops, size_t count) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    size_t done = 0;
    uint64_t enters = 0;
    while (done < count) {
      const unsigned chunk = static_cast<unsigned>(
          count - done < sq_entries_ ? count - done : sq_entries_);
      unsigned tail = LoadAcquire(sq_tail_);
      for (unsigned i = 0; i < chunk; i++) {
        const unsigned idx = (tail + i) & sq_mask_;
        io_uring_sqe* sqe = &sqes_[idx];
        memset(sqe, 0, sizeof(*sqe));
        const RingOp& op = ops[done + i];
        sqe->opcode = op.buf_index >= 0
                          ? static_cast<uint8_t>(IORING_OP_READ_FIXED)
                          : static_cast<uint8_t>(IORING_OP_READ);
        if (op.fixed_file >= 0) {
          sqe->fd = op.fixed_file;
          sqe->flags |= IOSQE_FIXED_FILE;
          stats_->fixed_file_reads.fetch_add(1, std::memory_order_relaxed);
        } else {
          sqe->fd = op.fd;
        }
        sqe->addr = reinterpret_cast<uint64_t>(op.buf);
        sqe->len = op.len;
        sqe->off = op.offset;
        if (op.buf_index >= 0) {
          sqe->buf_index = static_cast<uint16_t>(op.buf_index);
          stats_->fixed_buffer_reads.fetch_add(1, std::memory_order_relaxed);
        }
        sqe->user_data = done + i;
        sq_array_[idx] = idx;
      }
      StoreRelease(sq_tail_, tail + chunk);

      unsigned submitted = 0;
      unsigned completed = 0;
      while (submitted < chunk || completed < chunk) {
        const unsigned to_submit = chunk - submitted;
        // monkey-lint: io-under-mutex — mu_ is the ring's SQ/CQ
        // serialization: one submitter owns the queues for the whole
        // batch, so the enter syscall under it is the submission design,
        // not an accident.
        const int ret = SysIoUringEnter(ring_fd_, to_submit,
                                        chunk - completed,
                                        IORING_ENTER_GETEVENTS);
        enters++;
        if (ret < 0) {
          if (errno != EINTR && errno != EAGAIN && errno != EBUSY) {
            return Status::IoError(std::string("io_uring_enter: ") +
                                   strerror(errno));
          }
        } else {
          submitted += static_cast<unsigned>(ret);
        }
        unsigned head = LoadAcquire(cq_head_);
        const unsigned cq_tail = LoadAcquire(cq_tail_);
        while (head != cq_tail && completed < chunk) {
          const io_uring_cqe* cqe = &cqes_[head & cq_mask_];
          ops[cqe->user_data].res = cqe->res;
          head++;
          completed++;
        }
        StoreRelease(cq_head_, head);
      }
      done += chunk;
    }
    stats_->sqes_submitted.fetch_add(count, std::memory_order_relaxed);
    stats_->batch_submits.fetch_add(enters, std::memory_order_relaxed);
    return Status::OK();
  }

  // Registered-file slots. -1 = table full/unavailable (use the raw fd).
  int RegisterFile(int fd) EXCLUDES(mu_) {
    int slot;
    {
      MutexLock lock(mu_);
      if (!files_registered_ || free_file_slots_.empty()) return -1;
      slot = free_file_slots_.back();
      free_file_slots_.pop_back();
    }
    if (!UpdateFileSlot(slot, fd)) {
      MutexLock lock(mu_);
      free_file_slots_.push_back(slot);
      return -1;
    }
    return slot;
  }

  void UnregisterFile(int slot) EXCLUDES(mu_) {
    if (slot < 0) return;
    UpdateFileSlot(slot, -1);
    MutexLock lock(mu_);
    free_file_slots_.push_back(slot);
  }

  // Registered bounce buffers. -1 = pool exhausted (fall back to an ad hoc
  // aligned allocation and a plain READ).
  int AcquireBuffer() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (!buffers_registered_ || free_buffers_.empty()) return -1;
    const int idx = free_buffers_.back();
    free_buffers_.pop_back();
    return idx;
  }

  void ReleaseBuffer(int idx) EXCLUDES(mu_) {
    if (idx < 0) return;
    MutexLock lock(mu_);
    free_buffers_.push_back(idx);
  }

  char* BufferData(int idx) { return buffer_mem_.get() + idx * buffer_size_; }
  size_t buffer_size() const { return buffer_size_; }

 private:
  static constexpr unsigned kNumFixedBuffers = 64;
  // Covers the aligned window of any page-sized data block with room to
  // spare; larger reads (index/filter blocks at Open) take the ad hoc path.
  static constexpr size_t kFixedBufferBytes = 64 * 1024;

  bool UpdateFileSlot(int slot, int fd) {
    int fds[1] = {fd};
    io_uring_files_update update;
    memset(&update, 0, sizeof(update));
    update.offset = static_cast<uint32_t>(slot);
    update.fds = reinterpret_cast<uint64_t>(fds);
    return SysIoUringRegister(ring_fd_, IORING_REGISTER_FILES_UPDATE,
                              &update, 1) == 1;
  }

  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  void* sq_ptr_ = nullptr;
  void* cq_ptr_ = nullptr;
  size_t sq_size_ = 0;
  size_t cq_size_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqes_size_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  UringStats* stats_ = nullptr;

  Mutex mu_;
  bool files_registered_ GUARDED_BY(mu_) = false;
  std::vector<int> free_file_slots_ GUARDED_BY(mu_);
  bool buffers_registered_ GUARDED_BY(mu_) = false;
  std::vector<int> free_buffers_ GUARDED_BY(mu_);
  AlignedBufferPtr buffer_mem_;
  size_t buffer_size_ = 0;
};

// Random-access file on the ring. Single reads use pread (queue depth 1
// gains nothing from a ring); ReadBatch is the batched path.
class UringRandomAccessFile : public RandomAccessFile {
 public:
  UringRandomAccessFile(std::string fname, int fd, uint64_t file_size,
                        bool direct, std::shared_ptr<Ring> ring,
                        UringStats* stats)
      : fname_(std::move(fname)),
        fd_(fd),
        file_size_(file_size),
        direct_(direct),
        ring_(std::move(ring)),
        stats_(stats),
        fixed_slot_(ring_->RegisterFile(fd)) {}

  ~UringRandomAccessFile() override {
    ring_->UnregisterFile(fixed_slot_);
    ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    PerfTimer timer(&GetIOStatsContext()->read_nanos);
    Status s = direct_ ? DirectPread(offset, n, result, scratch)
                       : BufferedPread(offset, n, result, scratch);
    if (s.ok() && PerfCountsEnabled()) {
      IOStatsContext* io = GetIOStatsContext();
      io->read_calls++;
      io->bytes_read += result->size();
    }
    return s;
  }

  Status ReadBatch(ReadRequest* reqs, size_t count) const override {
    PerfTimer timer(&GetIOStatsContext()->read_nanos);
    if (count == 0) return Status::OK();

    // Per-request completion state. In direct mode the ring op reads the
    // aligned enclosing window into a registered (or ad hoc aligned)
    // buffer; the caller's range is copied out at the end.
    struct OpState {
      RingOp op;
      uint64_t window_start = 0;  // == request offset in buffered mode.
      size_t want = 0;            // Window (direct) or request (buffered).
      size_t filled = 0;
      int pool_buffer = -1;
      AlignedBufferPtr owned;
      bool finished = false;
    };
    std::vector<OpState> states(count);
    std::vector<size_t> pending;
    pending.reserve(count);

    for (size_t i = 0; i < count; i++) {
      ReadRequest& req = reqs[i];
      OpState& st = states[i];
      req.status = Status::OK();
      // Random-access files are immutable SSTables: clamping at the open
      // file size turns tail reads into exact transfers instead of a
      // zero-byte retry round.
      if (req.offset >= file_size_ || req.n == 0) {
        req.result = Slice(req.scratch, 0);
        st.finished = true;
        continue;
      }
      if (direct_) {
        const uint64_t astart = AlignDown(req.offset);
        const uint64_t aend = AlignUp(req.offset + req.n) < file_size_
                                  ? AlignUp(req.offset + req.n)
                                  : AlignUp(file_size_);
        uint64_t window = aend - astart;
        // The window never needs to extend past EOF: the device stops
        // there anyway, and a short aligned read is valid under O_DIRECT.
        if (astart + window > AlignUp(file_size_)) {
          window = AlignUp(file_size_) - astart;
        }
        st.window_start = astart;
        st.want = static_cast<size_t>(window);
        st.pool_buffer =
            st.want <= ring_->buffer_size() ? ring_->AcquireBuffer() : -1;
        if (st.pool_buffer >= 0) {
          st.op.buf = ring_->BufferData(st.pool_buffer);
          st.op.buf_index = st.pool_buffer;
        } else {
          st.owned = AllocAligned(st.want);
          if (st.owned == nullptr) {
            req.status = Status::IoError("out of memory for aligned read");
            st.finished = true;
            continue;
          }
          st.op.buf = st.owned.get();
        }
        st.op.offset = astart;
        st.op.len = static_cast<unsigned>(st.want);
      } else {
        st.window_start = req.offset;
        const uint64_t avail = file_size_ - req.offset;
        st.want = req.n < avail ? req.n : static_cast<size_t>(avail);
        st.op.buf = req.scratch;
        st.op.offset = req.offset;
        st.op.len = static_cast<unsigned>(st.want);
      }
      st.op.fd = fd_;
      st.op.fixed_file = fixed_slot_;
      pending.push_back(i);
    }

    // Submit, then re-submit remainders until every op is settled: a
    // result short of the clamped length is a transient short read (or
    // EAGAIN/EINTR), never EOF, so it retries with advanced offset/buffer.
    TraceSpan submit_span(TraceName::kUringSubmitBatch,
                          static_cast<int64_t>(pending.size()));
    int64_t rounds = 0;
    Status ring_status = Status::OK();
    while (!pending.empty() && ring_status.ok()) {
      rounds++;
      std::vector<RingOp> round(pending.size());
      for (size_t r = 0; r < pending.size(); r++) {
        round[r] = states[pending[r]].op;
      }
      ring_status = ring_->SubmitAndWait(round.data(), round.size());
      if (!ring_status.ok()) break;
      std::vector<size_t> next;
      for (size_t r = 0; r < round.size(); r++) {
        const size_t i = pending[r];
        OpState& st = states[i];
        const ssize_t res = round[r].res;
        if (res == -EAGAIN || res == -EINTR) {
          stats_->short_read_retries.fetch_add(1, std::memory_order_relaxed);
          TraceInstant(TraceName::kUringRetry, static_cast<int64_t>(i));
          next.push_back(i);
          continue;
        }
        if (res < 0) {
          reqs[i].status = PosixError(fname_, static_cast<int>(-res));
          st.finished = true;
          continue;
        }
        st.filled += static_cast<size_t>(res);
        if (res > 0 && st.filled < st.want) {
          stats_->short_read_retries.fetch_add(1, std::memory_order_relaxed);
          TraceInstant(TraceName::kUringRetry, static_cast<int64_t>(i));
          st.op.buf += res;
          st.op.offset += static_cast<uint64_t>(res);
          st.op.len = static_cast<unsigned>(st.want - st.filled);
          next.push_back(i);
          continue;
        }
        st.finished = true;  // Fully filled, or EOF (res == 0).
        TraceInstant(TraceName::kUringComplete, static_cast<int64_t>(i),
                     static_cast<int64_t>(st.filled));
      }
      pending = std::move(next);
    }
    if (submit_span.armed()) {
      submit_span.set_args(static_cast<int64_t>(count), rounds);
    }
    if (!ring_status.ok()) {
      for (size_t i : pending) reqs[i].status = ring_status;
    }

    uint64_t bytes = 0;
    for (size_t i = 0; i < count; i++) {
      ReadRequest& req = reqs[i];
      OpState& st = states[i];
      if (direct_ && req.status.ok() && st.op.buf != nullptr &&
          !(req.offset >= file_size_ || req.n == 0)) {
        const uint64_t lead = req.offset - st.window_start;
        const size_t avail =
            st.filled > lead ? static_cast<size_t>(st.filled - lead) : 0;
        const size_t to_copy = req.n < avail ? req.n : avail;
        const char* src = (st.pool_buffer >= 0
                               ? ring_->BufferData(st.pool_buffer)
                               : st.owned.get()) +
                          lead;
        memcpy(req.scratch, src, to_copy);
        req.result = Slice(req.scratch, to_copy);
        stats_->bounce_copies.fetch_add(1, std::memory_order_relaxed);
      } else if (!direct_ && req.status.ok() &&
                 !(req.offset >= file_size_ || req.n == 0)) {
        req.result = Slice(req.scratch, st.filled < req.n ? st.filled
                                                          : req.n);
      }
      ring_->ReleaseBuffer(st.pool_buffer);
      if (req.status.ok()) bytes += req.result.size();
    }

    stats_->batched_requests.fetch_add(count, std::memory_order_relaxed);
    if (PerfCountsEnabled()) {
      IOStatsContext* io = GetIOStatsContext();
      io->read_calls += count;
      io->bytes_read += bytes;
      io->batch_reads++;
      io->batch_read_requests += count;
    }
    return Status::OK();
  }

  bool SupportsReadBatch() const override { return true; }

  void ReadAhead(uint64_t offset, size_t n) const override {
    // Direct mode bypasses the page cache, so there is nothing for the
    // kernel to stage; batched submission is the overlap mechanism.
    if (direct_) return;
#ifdef POSIX_FADV_WILLNEED
    if (offset >= file_size_) return;
    const uint64_t avail = file_size_ - offset;
    ::posix_fadvise(fd_, static_cast<off_t>(offset),
                    static_cast<off_t>(n < avail ? n : avail),
                    POSIX_FADV_WILLNEED);
#else
    (void)offset;
    (void)n;
#endif
  }

 private:
  Status BufferedPread(uint64_t offset, size_t n, Slice* result,
                       char* scratch) const {
    while (true) {
      const ssize_t r = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      *result = Slice(scratch, static_cast<size_t>(r));
      return Status::OK();
    }
  }

  Status DirectPread(uint64_t offset, size_t n, Slice* result,
                     char* scratch) const {
    if (offset >= file_size_ || n == 0) {
      *result = Slice(scratch, 0);
      return Status::OK();
    }
    const uint64_t astart = AlignDown(offset);
    uint64_t window = AlignUp(offset + n) - astart;
    if (astart + window > AlignUp(file_size_)) {
      window = AlignUp(file_size_) - astart;
    }
    AlignedBufferPtr buf = AllocAligned(static_cast<size_t>(window));
    if (buf == nullptr) {
      return Status::IoError("out of memory for aligned read");
    }
    size_t filled = 0;
    while (filled < window) {
      const ssize_t r = ::pread(fd_, buf.get() + filled, window - filled,
                                static_cast<off_t>(astart + filled));
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      if (r == 0) break;  // EOF.
      filled += static_cast<size_t>(r);
    }
    const uint64_t lead = offset - astart;
    const size_t avail = filled > lead ? filled - lead : 0;
    const size_t to_copy = n < avail ? n : avail;
    memcpy(scratch, buf.get() + lead, to_copy);
    *result = Slice(scratch, to_copy);
    stats_->bounce_copies.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  std::string fname_;
  int fd_;
  uint64_t file_size_;
  bool direct_;
  std::shared_ptr<Ring> ring_;
  UringStats* stats_;
  int fixed_slot_;
};

}  // namespace

class UringEnv::Impl {
 public:
  UringEnvOptions options;
  std::shared_ptr<Ring> ring;
  UringStats stats;
  Env* posix = GetPosixEnv();
};

UringEnv::UringEnv(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

UringEnv::~UringEnv() = default;

Status UringEnv::NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) {
  return impl_->posix->NewSequentialFile(fname, result);
}

Status UringEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  int flags = O_RDONLY;
  bool direct = impl_->options.use_direct_io;
#ifdef O_DIRECT
  if (direct) flags |= O_DIRECT;
#else
  direct = false;
#endif
  int fd = ::open(fname.c_str(), flags);
#ifdef O_DIRECT
  if (fd < 0 && direct && (errno == EINVAL || errno == EOPNOTSUPP)) {
    // Filesystem without O_DIRECT (tmpfs and friends): buffered reads are
    // the correct degradation, counted so benches can tell.
    direct = false;
    fd = ::open(fname.c_str(), O_RDONLY);
    impl_->stats.direct_io_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
#endif
  if (fd < 0) return PosixError(fname, errno);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return PosixError(fname, err);
  }
  *result = std::make_unique<UringRandomAccessFile>(
      fname, fd, static_cast<uint64_t>(st.st_size), direct, impl_->ring,
      &impl_->stats);
  return Status::OK();
}

Status UringEnv::NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) {
  return impl_->posix->NewWritableFile(fname, result);
}

bool UringEnv::FileExists(const std::string& fname) {
  return impl_->posix->FileExists(fname);
}
Status UringEnv::GetChildren(const std::string& dir,
                             std::vector<std::string>* result) {
  return impl_->posix->GetChildren(dir, result);
}
Status UringEnv::RemoveFile(const std::string& fname) {
  return impl_->posix->RemoveFile(fname);
}
Status UringEnv::CreateDir(const std::string& dirname) {
  return impl_->posix->CreateDir(dirname);
}
Status UringEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  return impl_->posix->GetFileSize(fname, size);
}
Status UringEnv::RenameFile(const std::string& src,
                            const std::string& target) {
  return impl_->posix->RenameFile(src, target);
}

UringStatsSnapshot UringEnv::Stats() const {
  const UringStats& s = impl_->stats;
  UringStatsSnapshot out;
  out.sqes_submitted = s.sqes_submitted.load(std::memory_order_relaxed);
  out.batch_submits = s.batch_submits.load(std::memory_order_relaxed);
  out.batched_requests = s.batched_requests.load(std::memory_order_relaxed);
  out.short_read_retries =
      s.short_read_retries.load(std::memory_order_relaxed);
  out.fixed_file_reads = s.fixed_file_reads.load(std::memory_order_relaxed);
  out.fixed_buffer_reads =
      s.fixed_buffer_reads.load(std::memory_order_relaxed);
  out.direct_io_fallbacks =
      s.direct_io_fallbacks.load(std::memory_order_relaxed);
  out.bounce_copies = s.bounce_copies.load(std::memory_order_relaxed);
  return out;
}

const UringEnvOptions& UringEnv::options() const { return impl_->options; }

std::unique_ptr<UringEnv> NewUringEnv(const UringEnvOptions& options,
                                      Status* status) {
  if (g_force_unsupported.load(std::memory_order_relaxed)) {
    if (status != nullptr) {
      *status = Status::NotSupported("io_uring disabled for testing");
    }
    return nullptr;
  }
  auto impl = std::make_unique<UringEnv::Impl>();
  impl->options = options;
  if (impl->options.ring_entries == 0) impl->options.ring_entries = 256;
  impl->ring = std::make_shared<Ring>();
  Status s = impl->ring->Init(impl->options, &impl->stats);
  if (!s.ok()) {
    if (status != nullptr) *status = s;
    return nullptr;
  }
  if (status != nullptr) *status = Status::OK();
  return std::unique_ptr<UringEnv>(new UringEnv(std::move(impl)));
}

bool IoUringSupported() {
  if (g_force_unsupported.load(std::memory_order_relaxed)) return false;
  static const bool supported = [] {
    io_uring_params p;
    memset(&p, 0, sizeof(p));
    const int fd = SysIoUringSetup(4, &p);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return supported;
}

void ForceUringUnsupportedForTesting(bool forced) {
  g_force_unsupported.store(forced, std::memory_order_relaxed);
}

uint64_t UringFallbackEvents() {
  return g_fallback_events.load(std::memory_order_relaxed);
}

void RecordUringFallbackEvent() {
  g_fallback_events.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace monkeydb
