#include <map>

#include "io/env.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace monkeydb {

namespace {

// Shared, refcounted file contents so readers stay valid if the file is
// removed (matches POSIX unlink semantics for open descriptors).
struct MemFile {
  Mutex mu;
  std::string data GUARDED_BY(mu);
};

using MemFilePtr = std::shared_ptr<MemFile>;

class MemSequentialFile : public SequentialFile {
 public:
  explicit MemSequentialFile(MemFilePtr file) : file_(std::move(file)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    MutexLock lock(file_->mu);
    if (pos_ >= file_->data.size()) {
      *result = Slice();
      return Status::OK();
    }
    const size_t avail = file_->data.size() - pos_;
    const size_t to_read = n < avail ? n : avail;
    memcpy(scratch, file_->data.data() + pos_, to_read);
    pos_ += to_read;
    *result = Slice(scratch, to_read);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ += n;
    return Status::OK();
  }

 private:
  MemFilePtr file_;
  size_t pos_ = 0;
};

class MemRandomAccessFile : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(MemFilePtr file) : file_(std::move(file)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    MutexLock lock(file_->mu);
    if (offset > file_->data.size()) {
      return Status::IoError("read past end of file");
    }
    const size_t avail = file_->data.size() - offset;
    const size_t to_read = n < avail ? n : avail;
    memcpy(scratch, file_->data.data() + offset, to_read);
    *result = Slice(scratch, to_read);
    return Status::OK();
  }

  // Memory is instantaneous: there is nothing to overlap, so the hint is
  // dropped (decorators that model latency intercept it before it gets
  // here).
  void ReadAhead(uint64_t offset, size_t n) const override {}

 private:
  MemFilePtr file_;
};

class MemWritableFile : public WritableFile {
 public:
  explicit MemWritableFile(MemFilePtr file) : file_(std::move(file)) {}

  Status Append(const Slice& data) override {
    MutexLock lock(file_->mu);
    file_->data.append(data.data(), data.size());
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }

 private:
  MemFilePtr file_;
};

class MemEnv : public Env {
 public:
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    MemFilePtr f;
    MONKEYDB_RETURN_IF_ERROR(Find(fname, &f));
    *result = std::make_unique<MemSequentialFile>(std::move(f));
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    MemFilePtr f;
    MONKEYDB_RETURN_IF_ERROR(Find(fname, &f));
    *result = std::make_unique<MemRandomAccessFile>(std::move(f));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    MutexLock lock(mu_);
    auto f = std::make_shared<MemFile>();
    files_[fname] = f;  // Truncates any existing file.
    *result = std::make_unique<MemWritableFile>(std::move(f));
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    MutexLock lock(mu_);
    return files_.count(fname) > 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    result->clear();
    std::string prefix = dir;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    MutexLock lock(mu_);
    for (const auto& [name, file] : files_) {
      if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
        std::string rest = name.substr(prefix.size());
        if (rest.find('/') == std::string::npos) result->push_back(rest);
      }
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    MutexLock lock(mu_);
    if (files_.erase(fname) == 0) {
      return Status::NotFound(fname);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    return Status::OK();  // Directories are implicit.
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    MemFilePtr f;
    MONKEYDB_RETURN_IF_ERROR(Find(fname, &f));
    MutexLock lock(f->mu);
    *size = f->data.size();
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    MutexLock lock(mu_);
    auto it = files_.find(src);
    if (it == files_.end()) return Status::NotFound(src);
    files_[target] = it->second;
    files_.erase(it);
    return Status::OK();
  }

 private:
  Status Find(const std::string& fname, MemFilePtr* out) {
    MutexLock lock(mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) return Status::NotFound(fname);
    *out = it->second;
    return Status::OK();
  }

  Mutex mu_;
  std::map<std::string, MemFilePtr> files_ GUARDED_BY(mu_);
};

}  // namespace

std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }

}  // namespace monkeydb
