#include "io/counting_env.h"

#include "obs/perf_context.h"

// Besides the engine-wide IoStats (page-granular, always on), the wrappers
// feed the calling thread's IOStatsContext call/byte counters when the
// thread opted into perf accounting. Timing is NOT measured here — in the
// bench stacks a LatencyEnv above or below this one owns the wall time
// (and MemEnv underneath is instantaneous), so the latency layer feeds the
// nanos fields instead.

namespace monkeydb {

namespace {

class CountingRandomAccessFile : public RandomAccessFile {
 public:
  CountingRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                           IoStats* stats, size_t page_size)
      : base_(std::move(base)), stats_(stats), page_size_(page_size) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = base_->Read(offset, n, result, scratch);
    if (s.ok() && result->size() > 0) {
      const uint64_t first_page = offset / page_size_;
      const uint64_t last_page = (offset + result->size() - 1) / page_size_;
      stats_->AddRead(last_page - first_page + 1, result->size());
      if (PerfCountsEnabled()) {
        IOStatsContext* io = GetIOStatsContext();
        io->read_calls++;
        io->bytes_read += result->size();
      }
    }
    return s;
  }

  // When the base can submit the span as one unit, the batch is charged as
  // ONE device access (read_calls += 1) carrying the per-request page
  // counts — that is the syscall collapse BENCH_io.json measures. A
  // loop-only base goes through our own counted Read instead, so counts
  // stay identical to issuing the reads one by one.
  Status ReadBatch(ReadRequest* reqs, size_t count) const override {
    if (!base_->SupportsReadBatch()) {
      return RandomAccessFile::ReadBatch(reqs, count);
    }
    Status s = base_->ReadBatch(reqs, count);
    if (!s.ok()) return s;
    uint64_t pages = 0;
    uint64_t bytes = 0;
    for (size_t i = 0; i < count; i++) {
      if (!reqs[i].status.ok() || reqs[i].result.empty()) continue;
      const uint64_t first_page = reqs[i].offset / page_size_;
      const uint64_t last_page =
          (reqs[i].offset + reqs[i].result.size() - 1) / page_size_;
      pages += last_page - first_page + 1;
      bytes += reqs[i].result.size();
    }
    stats_->AddBatchRead(count, pages, bytes);
    if (PerfCountsEnabled()) {
      IOStatsContext* io = GetIOStatsContext();
      io->read_calls += count;
      io->bytes_read += bytes;
      io->batch_reads++;
      io->batch_read_requests += count;
    }
    return Status::OK();
  }

  bool SupportsReadBatch() const override {
    return base_->SupportsReadBatch();
  }

  // Hints are free: the eventual Read is charged as usual, so I/O counts
  // are identical whether or not the caller prefetches.
  void ReadAhead(uint64_t offset, size_t n) const override {
    base_->ReadAhead(offset, n);
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  IoStats* stats_;
  size_t page_size_;
};

// Appends are buffered conceptually: we charge one write I/O per full page
// of appended bytes, plus one for any final partial page at Close/Sync.
class CountingWritableFile : public WritableFile {
 public:
  CountingWritableFile(std::unique_ptr<WritableFile> base, IoStats* stats,
                       size_t page_size)
      : base_(std::move(base)), stats_(stats), page_size_(page_size) {}

  ~CountingWritableFile() override { ChargeTail(); }

  Status Append(const Slice& data) override {
    pending_bytes_ += data.size();
    const uint64_t full_pages = pending_bytes_ / page_size_;
    if (full_pages > 0) {
      stats_->AddWrite(full_pages, full_pages * page_size_);
      pending_bytes_ -= full_pages * page_size_;
    }
    if (PerfCountsEnabled()) {
      IOStatsContext* io = GetIOStatsContext();
      io->write_calls++;
      io->bytes_written += data.size();
    }
    return base_->Append(data);
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    ChargeTail();
    if (PerfCountsEnabled()) GetIOStatsContext()->fsync_calls++;
    return base_->Sync();
  }

  Status Close() override {
    ChargeTail();
    return base_->Close();
  }

 private:
  void ChargeTail() {
    if (pending_bytes_ > 0) {
      stats_->AddWrite(1, pending_bytes_);
      pending_bytes_ = 0;
    }
  }

  std::unique_ptr<WritableFile> base_;
  IoStats* stats_;
  size_t page_size_;
  uint64_t pending_bytes_ = 0;
};

}  // namespace

Status CountingEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  // Sequential recovery reads are not part of the paper's steady-state
  // models; pass through uncounted.
  return base_->NewSequentialFile(fname, result);
}

Status CountingEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> base_file;
  MONKEYDB_RETURN_IF_ERROR(base_->NewRandomAccessFile(fname, &base_file));
  *result = std::make_unique<CountingRandomAccessFile>(std::move(base_file),
                                                       stats_, page_size_);
  return Status::OK();
}

Status CountingEnv::NewWritableFile(const std::string& fname,
                                    std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> base_file;
  MONKEYDB_RETURN_IF_ERROR(base_->NewWritableFile(fname, &base_file));
  *result = std::make_unique<CountingWritableFile>(std::move(base_file),
                                                   stats_, page_size_);
  return Status::OK();
}

}  // namespace monkeydb
