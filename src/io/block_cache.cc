#include "io/block_cache.h"

namespace monkeydb {

BlockCache::BlockCache(size_t capacity_bytes)
    : capacity_(capacity_bytes),
      // Round up: flooring would drop up to kNumShards-1 bytes of budget,
      // and for capacities below kNumShards it would zero every shard's
      // allowance, effectively disabling the cache.
      per_shard_capacity_((capacity_bytes + kNumShards - 1) / kNumShards),
      hot_capacity_((per_shard_capacity_ + 1) / 2) {}

std::shared_ptr<const std::string> BlockCache::Lookup(const Key& key,
                                                      bool* was_prefetched) {
  if (was_prefetched != nullptr) *was_prefetched = false;
  if (capacity_ == 0) return nullptr;
  Shard* shard = GetShard(key);
  MutexLock lock(shard->mu);
  auto it = shard->index.find(key);
  if (it == shard->index.end()) {
    shard->misses++;
    return nullptr;
  }
  shard->hits++;
  Entry& entry = *it->second;
  if (entry.prefetched) {
    shard->prefetch_hits++;
    entry.prefetched = false;
    if (was_prefetched != nullptr) *was_prefetched = true;
  }
  // Promote to the hot front (most recently used); a referenced scan block
  // graduates from the cold segment here.
  if (entry.hot) {
    shard->hot.splice(shard->hot.begin(), shard->hot, it->second);
  } else {
    entry.hot = true;
    shard->hot_usage += entry.block->size();
    shard->hot.splice(shard->hot.begin(), shard->cold, it->second);
  }
  auto block = entry.block;
  BalanceAndEvictLocked(shard);
  return block;
}

void BlockCache::Insert(const Key& key,
                        std::shared_ptr<const std::string> block,
                        InsertPriority priority) {
  if (capacity_ == 0 || block == nullptr) return;
  Shard* shard = GetShard(key);
  MutexLock lock(shard->mu);
  auto it = shard->index.find(key);
  if (it != shard->index.end()) {
    shard->usage -= it->second->block->size();
    if (it->second->hot) {
      shard->hot_usage -= it->second->block->size();
      shard->hot.erase(it->second);
    } else {
      shard->cold.erase(it->second);
    }
    shard->index.erase(it);
  }
  shard->usage += block->size();
  if (priority == InsertPriority::kHigh) {
    shard->hot_usage += block->size();
    shard->hot.push_front(Entry{key, std::move(block), true, false});
    shard->index[key] = shard->hot.begin();
  } else {
    // Midpoint insertion: the block sits behind the whole hot segment in
    // eviction order, so a scan can only displace other cold blocks.
    shard->scan_inserts++;
    shard->cold.push_front(Entry{key, std::move(block), false, true});
    shard->index[key] = shard->cold.begin();
  }
  BalanceAndEvictLocked(shard);
}

bool BlockCache::Contains(const Key& key) const {
  if (capacity_ == 0) return false;
  const Shard* shard = GetShard(key);
  MutexLock lock(shard->mu);
  return shard->index.count(key) > 0;
}

void BlockCache::EraseFile(uint64_t file_id) {
  for (auto& shard : shards_) {
    MutexLock lock(shard.mu);
    for (auto* seg : {&shard.hot, &shard.cold}) {
      for (auto it = seg->begin(); it != seg->end();) {
        if (it->key.file_id == file_id) {
          shard.usage -= it->block->size();
          if (it->hot) shard.hot_usage -= it->block->size();
          shard.index.erase(it->key);
          it = seg->erase(it);
        } else {
          ++it;
        }
      }
    }
  }
}

void BlockCache::BalanceAndEvictLocked(Shard* shard) {
  // Demote the hot tail to the cold head while the hot segment is over
  // budget. This is order-preserving (hot.back is adjacent to cold.front
  // in the concatenated list), so for kHigh-only workloads the cache
  // behaves exactly like one LRU list.
  while (shard->hot_usage > hot_capacity_ && shard->hot.size() > 1) {
    auto last = std::prev(shard->hot.end());
    last->hot = false;
    shard->hot_usage -= last->block->size();
    shard->cold.splice(shard->cold.begin(), shard->hot, last);
  }
  // Evict from the global back; a shard may briefly keep one oversized
  // entry rather than evicting itself empty.
  while (shard->usage > per_shard_capacity_ &&
         shard->hot.size() + shard->cold.size() > 1) {
    std::list<Entry>& seg = shard->cold.empty() ? shard->hot : shard->cold;
    const Entry& victim = seg.back();
    shard->usage -= victim.block->size();
    if (victim.hot) shard->hot_usage -= victim.block->size();
    shard->index.erase(victim.key);
    seg.pop_back();
  }
}

size_t BlockCache::usage_bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.usage;
  }
  return total;
}

uint64_t BlockCache::hits() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.hits;
  }
  return total;
}

uint64_t BlockCache::misses() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.misses;
  }
  return total;
}

uint64_t BlockCache::prefetch_hits() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.prefetch_hits;
  }
  return total;
}

uint64_t BlockCache::scan_inserts() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.scan_inserts;
  }
  return total;
}

void BlockCache::ResetCounters() {
  for (auto& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.hits = 0;
    shard.misses = 0;
    shard.prefetch_hits = 0;
    shard.scan_inserts = 0;
  }
}

}  // namespace monkeydb
