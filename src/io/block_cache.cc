#include "io/block_cache.h"

namespace monkeydb {

BlockCache::BlockCache(size_t capacity_bytes)
    : capacity_(capacity_bytes),
      // Round up: flooring would drop up to kNumShards-1 bytes of budget,
      // and for capacities below kNumShards it would zero every shard's
      // allowance, effectively disabling the cache.
      per_shard_capacity_((capacity_bytes + kNumShards - 1) / kNumShards) {}

std::shared_ptr<const std::string> BlockCache::Lookup(const Key& key) {
  if (capacity_ == 0) return nullptr;
  Shard* shard = GetShard(key);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->index.find(key);
  if (it == shard->index.end()) {
    shard->misses++;
    return nullptr;
  }
  shard->hits++;
  // Move to front (most recently used).
  shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
  return it->second->block;
}

void BlockCache::Insert(const Key& key,
                        std::shared_ptr<const std::string> block) {
  if (capacity_ == 0 || block == nullptr) return;
  Shard* shard = GetShard(key);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->index.find(key);
  if (it != shard->index.end()) {
    shard->usage -= it->second->block->size();
    shard->lru.erase(it->second);
    shard->index.erase(it);
  }
  shard->usage += block->size();
  shard->lru.push_front(Entry{key, std::move(block)});
  shard->index[key] = shard->lru.begin();
  EvictLocked(shard);
}

void BlockCache::EraseFile(uint64_t file_id) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.file_id == file_id) {
        shard.usage -= it->block->size();
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void BlockCache::EvictLocked(Shard* shard) {
  while (shard->usage > per_shard_capacity_ && shard->lru.size() > 1) {
    const Entry& victim = shard->lru.back();
    shard->usage -= victim.block->size();
    shard->index.erase(victim.key);
    shard->lru.pop_back();
  }
}

size_t BlockCache::usage_bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(shard.mu));
    total += shard.usage;
  }
  return total;
}

uint64_t BlockCache::hits() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(shard.mu));
    total += shard.hits;
  }
  return total;
}

uint64_t BlockCache::misses() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(shard.mu));
    total += shard.misses;
  }
  return total;
}

}  // namespace monkeydb
