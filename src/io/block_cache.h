// BlockCache: sharded LRU cache of data blocks keyed by (file id, offset).
//
// Mirrors LevelDB's block cache used in the paper's Appendix F experiment
// (Fig. 12): it caches whole data blocks, not key-value pairs, so even fully
// cached working sets pay block-granularity occupancy.
//
// The cache is scan-resistant. Each shard keeps its recency list in two
// segments, hot (front half) and cold (back half). Point-lookup blocks
// (InsertPriority::kHigh) enter at the hot front — the classic MRU
// position — while readahead and scan blocks (InsertPriority::kLow) enter
// at the cold front, i.e. the list midpoint. A long range scan therefore
// only churns the cold half and cannot flush the point-lookup working set;
// a scanned block earns its way into the hot segment only by being
// referenced again. When only kHigh inserts occur the two segments behave
// exactly like a single LRU list (demotion moves the hot tail to the cold
// head, preserving global recency order, and eviction takes the cold tail),
// so point-lookup-only workloads see byte-identical hit rates to the
// previous single-list design.

#ifndef MONKEYDB_IO_BLOCK_CACHE_H_
#define MONKEYDB_IO_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace monkeydb {

class BlockCache {
 public:
  struct Key {
    uint64_t file_id;
    uint64_t offset;
    bool operator==(const Key& o) const {
      return file_id == o.file_id && offset == o.offset;
    }
  };

  // Where an insert enters the recency list. kHigh is the default MRU
  // insertion for demand-fetched blocks; kLow enters at the list midpoint
  // so speculative (readahead) and scan blocks age out without displacing
  // the hot working set.
  enum class InsertPriority { kHigh, kLow };

  // capacity_bytes == 0 disables the cache (all lookups miss).
  explicit BlockCache(size_t capacity_bytes);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // Returns the cached block or nullptr. The returned shared_ptr keeps the
  // data alive even if the entry is evicted concurrently. A hit promotes
  // the entry to the hot front regardless of how it was inserted. When
  // was_prefetched is non-null it is set to true iff the hit consumed a
  // readahead block that had not been referenced yet (the same event the
  // prefetch_hits counter tracks).
  std::shared_ptr<const std::string> Lookup(const Key& key,
                                            bool* was_prefetched = nullptr);

  // Inserts (replacing any existing entry) and evicts LRU entries as needed.
  void Insert(const Key& key, std::shared_ptr<const std::string> block,
              InsertPriority priority = InsertPriority::kHigh);

  // True iff the key is currently cached. Unlike Lookup this neither
  // promotes the entry nor counts a hit/miss; the readahead scheduler uses
  // it to skip blocks that are already resident.
  bool Contains(const Key& key) const;

  // Drops every cached block for the given file (called when a run is
  // deleted after compaction).
  void EraseFile(uint64_t file_id);

  size_t capacity_bytes() const { return capacity_; }
  size_t usage_bytes() const;
  uint64_t hits() const;
  uint64_t misses() const;
  // Hits on blocks that were inserted at kLow priority and had not been
  // referenced yet — i.e. readahead that arrived before the reader did.
  uint64_t prefetch_hits() const;
  // Number of kLow-priority (readahead/scan) inserts.
  uint64_t scan_inserts() const;

  // Zeroes hits/misses/prefetch_hits/scan_inserts (cached blocks stay).
  // Used by DB::ResetStats for per-phase deltas; if the cache is shared
  // between DBs the counters reset for all of them.
  void ResetCounters();

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const std::string> block;
    bool hot;         // Which segment the entry currently sits in.
    bool prefetched;  // Inserted at kLow and not yet referenced.
  };

  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Mix file id and offset; both are small so a multiply-xor is fine.
      uint64_t h = k.file_id * 0x9E3779B97F4A7C15ULL;
      h ^= k.offset + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  struct Shard {
    mutable Mutex mu;
    // Recency order is the concatenation hot ++ cold: hot.front() is the
    // shard MRU, cold.back() the next eviction victim. std::list::splice
    // moves nodes between the segments without invalidating the iterators
    // stored in index.
    std::list<Entry> hot GUARDED_BY(mu);
    std::list<Entry> cold GUARDED_BY(mu);
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index
        GUARDED_BY(mu);
    size_t usage GUARDED_BY(mu) = 0;      // Bytes across both segments.
    size_t hot_usage GUARDED_BY(mu) = 0;  // Bytes in the hot segment only.
    uint64_t hits GUARDED_BY(mu) = 0;
    uint64_t misses GUARDED_BY(mu) = 0;
    uint64_t prefetch_hits GUARDED_BY(mu) = 0;
    uint64_t scan_inserts GUARDED_BY(mu) = 0;
  };

  static constexpr int kNumShards = 16;

  Shard* GetShard(const Key& key) {
    return &shards_[KeyHash()(key) % kNumShards];
  }
  const Shard* GetShard(const Key& key) const {
    return &shards_[KeyHash()(key) % kNumShards];
  }

  // Demotes hot-tail entries to the cold head until the hot segment fits
  // its budget (half the shard), then evicts from the cold tail until the
  // shard fits. Both moves preserve the concatenated recency order.
  void BalanceAndEvictLocked(Shard* shard) REQUIRES(shard->mu);

  size_t capacity_;
  size_t per_shard_capacity_;
  size_t hot_capacity_;  // Per-shard budget for the hot segment.
  Shard shards_[kNumShards];
};

}  // namespace monkeydb

#endif  // MONKEYDB_IO_BLOCK_CACHE_H_
