// BlockCache: sharded LRU cache of data blocks keyed by (file id, offset).
//
// Mirrors LevelDB's block cache used in the paper's Appendix F experiment
// (Fig. 12): it caches whole data blocks, not key-value pairs, so even fully
// cached working sets pay block-granularity occupancy.

#ifndef MONKEYDB_IO_BLOCK_CACHE_H_
#define MONKEYDB_IO_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace monkeydb {

class BlockCache {
 public:
  struct Key {
    uint64_t file_id;
    uint64_t offset;
    bool operator==(const Key& o) const {
      return file_id == o.file_id && offset == o.offset;
    }
  };

  // capacity_bytes == 0 disables the cache (all lookups miss).
  explicit BlockCache(size_t capacity_bytes);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // Returns the cached block or nullptr. The returned shared_ptr keeps the
  // data alive even if the entry is evicted concurrently.
  std::shared_ptr<const std::string> Lookup(const Key& key);

  // Inserts (replacing any existing entry) and evicts LRU entries as needed.
  void Insert(const Key& key, std::shared_ptr<const std::string> block);

  // Drops every cached block for the given file (called when a run is
  // deleted after compaction).
  void EraseFile(uint64_t file_id);

  size_t capacity_bytes() const { return capacity_; }
  size_t usage_bytes() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  struct Entry {
    Key key;
    std::shared_ptr<const std::string> block;
  };

  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Mix file id and offset; both are small so a multiply-xor is fine.
      uint64_t h = k.file_id * 0x9E3779B97F4A7C15ULL;
      h ^= k.offset + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // Front = most recently used.
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    size_t usage = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  static constexpr int kNumShards = 16;

  Shard* GetShard(const Key& key) {
    return &shards_[KeyHash()(key) % kNumShards];
  }

  void EvictLocked(Shard* shard);

  size_t capacity_;
  size_t per_shard_capacity_;
  Shard shards_[kNumShards];
};

}  // namespace monkeydb

#endif  // MONKEYDB_IO_BLOCK_CACHE_H_
