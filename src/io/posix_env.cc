#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "io/env.h"
#include "obs/perf_context.h"

// The leaf Env doing real syscalls feeds both halves of the calling
// thread's IOStatsContext: call/byte counts (perf level >= kCounts) and
// syscall wall time (>= kCountsAndTime). Don't stack CountingEnv on top of
// this one — the call counts would double.

namespace monkeydb {

namespace {

Status PosixError(const std::string& context, int err) {
  if (err == ENOENT) return Status::NotFound(context);
  return Status::IoError(context + ": " + strerror(err));
}

class PosixSequentialFile : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    while (true) {
      ssize_t r = ::read(fd_, scratch, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      *result = Slice(scratch, static_cast<size_t>(r));
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, static_cast<off_t>(n), SEEK_CUR) == -1) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    PerfTimer timer(&GetIOStatsContext()->read_nanos);
    ssize_t r = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) return PosixError(fname_, errno);
    *result = Slice(scratch, static_cast<size_t>(r));
    if (PerfCountsEnabled()) {
      IOStatsContext* io = GetIOStatsContext();
      io->read_calls++;
      io->bytes_read += static_cast<uint64_t>(r);
    }
    return Status::OK();
  }

  void ReadAhead(uint64_t offset, size_t n) const override {
#ifdef POSIX_FADV_WILLNEED
    ::posix_fadvise(fd_, static_cast<off_t>(offset),
                    static_cast<off_t>(n), POSIX_FADV_WILLNEED);
#else
    (void)offset;
    (void)n;
#endif
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const Slice& data) override {
    PerfTimer timer(&GetIOStatsContext()->write_nanos);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t w = ::write(fd_, p, left);
      if (w < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      p += w;
      left -= static_cast<size_t>(w);
    }
    if (PerfCountsEnabled()) {
      IOStatsContext* io = GetIOStatsContext();
      io->write_calls++;
      io->bytes_written += data.size();
    }
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }

  Status Sync() override {
    PerfTimer timer(&GetIOStatsContext()->fsync_nanos);
    if (PerfCountsEnabled()) GetIOStatsContext()->fsync_calls++;
    if (::fsync(fd_) != 0) return PosixError(fname_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      return PosixError(fname_, errno);
    }
    fd_ = -1;
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixSequentialFile>(fname, fd);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixRandomAccessFile>(fname, fd);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(fname.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixWritableFile>(fname, fd);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    return ::access(fname.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    result->clear();
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return PosixError(dir, errno);
    struct dirent* entry;
    while ((entry = ::readdir(d)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") result->push_back(name);
    }
    ::closedir(d);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (::unlink(fname.c_str()) != 0) return PosixError(fname, errno);
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    if (::mkdir(dirname.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct stat st;
    if (::stat(fname.c_str(), &st) != 0) return PosixError(fname, errno);
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    if (::rename(src.c_str(), target.c_str()) != 0) {
      return PosixError(src, errno);
    }
    return Status::OK();
  }
};

}  // namespace

Env* GetPosixEnv() {
  static PosixEnv* env = new PosixEnv;
  return env;
}

}  // namespace monkeydb
