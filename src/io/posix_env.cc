#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>

#include "io/aligned_read.h"
#include "io/env.h"
#include "obs/perf_context.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

// The leaf Env doing real syscalls feeds both halves of the calling
// thread's IOStatsContext: call/byte counts (perf level >= kCounts) and
// syscall wall time (>= kCountsAndTime). Don't stack CountingEnv on top of
// this one — the call counts would double.

namespace monkeydb {

namespace {

Status PosixError(const std::string& context, int err) {
  if (err == ENOENT) return Status::NotFound(context);
  return Status::IoError(context + ": " + strerror(err));
}

class PosixSequentialFile : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    while (true) {
      ssize_t r = ::read(fd_, scratch, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      *result = Slice(scratch, static_cast<size_t>(r));
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, static_cast<off_t>(n), SEEK_CUR) == -1) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd, uint64_t file_size,
                        bool direct)
      : fname_(std::move(fname)),
        fd_(fd),
        file_size_(file_size),
        direct_(direct) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    PerfTimer timer(&GetIOStatsContext()->read_nanos);
    Status s = direct_ ? DirectRead(offset, n, result, scratch)
                       : BufferedRead(offset, n, result, scratch);
    if (s.ok() && PerfCountsEnabled()) {
      IOStatsContext* io = GetIOStatsContext();
      io->read_calls++;
      io->bytes_read += result->size();
    }
    return s;
  }

  // WILLNEED hints are advisory, so issuing one twice only wastes a
  // syscall — but deep scan readahead re-hints the same window on every
  // slot refill, and past EOF the kernel just ignores the range. Clamp to
  // the file size and skip windows already fully covered by a prior hint.
  void ReadAhead(uint64_t offset, size_t n) const override {
    // Direct mode bypasses the page cache; there is nothing to stage.
    if (direct_) return;
#ifdef POSIX_FADV_WILLNEED
    if (offset >= file_size_ || n == 0) return;
    const uint64_t avail = file_size_ - offset;
    uint64_t start = offset;
    uint64_t end = offset + (n < avail ? n : avail);
    {
      MutexLock lock(hint_mu_);
      // Merge with every hinted window touching [start, end); if one of
      // them already contains it, the hint is a duplicate.
      auto it = hinted_.upper_bound(start);
      if (it != hinted_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= end) return;  // Fully covered.
        if (prev->second >= start) {
          start = prev->first;
          it = hinted_.erase(prev);
        }
      }
      while (it != hinted_.end() && it->first <= end) {
        if (it->second > end) end = it->second;
        it = hinted_.erase(it);
      }
      // Unbounded scans would otherwise grow the window map for the life
      // of the file; resetting just allows an occasional re-hint.
      if (hinted_.size() >= kMaxHintWindows) hinted_.clear();
      hinted_.emplace(start, end);
    }
    ::posix_fadvise(fd_, static_cast<off_t>(start),
                    static_cast<off_t>(end - start), POSIX_FADV_WILLNEED);
#else
    (void)offset;
    (void)n;
#endif
  }

 private:
  static constexpr size_t kMaxHintWindows = 1024;

  Status BufferedRead(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const {
    ssize_t r = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) return PosixError(fname_, errno);
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

  // O_DIRECT read: fetch the smallest aligned window enclosing the range
  // into a bounce buffer, then copy the range out. Result is byte-identical
  // to a buffered read, including short reads at the tail.
  Status DirectRead(uint64_t offset, size_t n, Slice* result,
                    char* scratch) const {
    if (offset >= file_size_ || n == 0) {
      *result = Slice(scratch, 0);
      return Status::OK();
    }
    const uint64_t astart = AlignDown(offset);
    uint64_t window = AlignUp(offset + n) - astart;
    if (astart + window > AlignUp(file_size_)) {
      window = AlignUp(file_size_) - astart;
    }
    AlignedBufferPtr buf = AllocAligned(static_cast<size_t>(window));
    if (buf == nullptr) {
      return Status::IoError("out of memory for aligned read");
    }
    size_t filled = 0;
    while (filled < window) {
      ssize_t r = ::pread(fd_, buf.get() + filled, window - filled,
                          static_cast<off_t>(astart + filled));
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      if (r == 0) break;  // EOF.
      filled += static_cast<size_t>(r);
    }
    const uint64_t lead = offset - astart;
    const size_t avail = filled > lead ? filled - lead : 0;
    const size_t to_copy = n < avail ? n : avail;
    memcpy(scratch, buf.get() + lead, to_copy);
    *result = Slice(scratch, to_copy);
    return Status::OK();
  }

  std::string fname_;
  int fd_;
  uint64_t file_size_;
  bool direct_;
  // Coalesced [start, end) windows already hinted via posix_fadvise.
  mutable Mutex hint_mu_;
  mutable std::map<uint64_t, uint64_t> hinted_ GUARDED_BY(hint_mu_);
};

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const Slice& data) override {
    PerfTimer timer(&GetIOStatsContext()->write_nanos);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t w = ::write(fd_, p, left);
      if (w < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      p += w;
      left -= static_cast<size_t>(w);
    }
    if (PerfCountsEnabled()) {
      IOStatsContext* io = GetIOStatsContext();
      io->write_calls++;
      io->bytes_written += data.size();
    }
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }

  Status Sync() override {
    PerfTimer timer(&GetIOStatsContext()->fsync_nanos);
    if (PerfCountsEnabled()) GetIOStatsContext()->fsync_calls++;
    if (::fsync(fd_) != 0) return PosixError(fname_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      return PosixError(fname_, errno);
    }
    fd_ = -1;
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  PosixEnv() = default;
  explicit PosixEnv(const EnvOptions& options) : options_(options) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixSequentialFile>(fname, fd);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    bool direct = options_.use_direct_io;
    int flags = O_RDONLY;
#ifdef O_DIRECT
    if (direct) flags |= O_DIRECT;
#else
    direct = false;
#endif
    int fd = ::open(fname.c_str(), flags);
#ifdef O_DIRECT
    if (fd < 0 && direct && (errno == EINVAL || errno == EOPNOTSUPP)) {
      // Filesystem without O_DIRECT support (tmpfs and friends): degrade
      // to buffered reads for this file.
      direct = false;
      fd = ::open(fname.c_str(), O_RDONLY);
    }
#endif
    if (fd < 0) return PosixError(fname, errno);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      return PosixError(fname, err);
    }
    *result = std::make_unique<PosixRandomAccessFile>(
        fname, fd, static_cast<uint64_t>(st.st_size), direct);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(fname.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixWritableFile>(fname, fd);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    return ::access(fname.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    result->clear();
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return PosixError(dir, errno);
    struct dirent* entry;
    while ((entry = ::readdir(d)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") result->push_back(name);
    }
    ::closedir(d);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (::unlink(fname.c_str()) != 0) return PosixError(fname, errno);
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    if (::mkdir(dirname.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct stat st;
    if (::stat(fname.c_str(), &st) != 0) return PosixError(fname, errno);
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    if (::rename(src.c_str(), target.c_str()) != 0) {
      return PosixError(src, errno);
    }
    return Status::OK();
  }

 private:
  EnvOptions options_;
};

}  // namespace

Env* GetPosixEnv() {
  static PosixEnv* env = new PosixEnv;
  return env;
}

std::unique_ptr<Env> NewPosixEnv(const EnvOptions& options) {
  return std::make_unique<PosixEnv>(options);
}

}  // namespace monkeydb
