// FaultInjectionEnv: an Env decorator that injects I/O failures on demand,
// for testing that the engine surfaces errors as Status (never corrupting
// silently) and that recovery handles torn tails.
//
// Modes:
//  - countdown: the k-th write operation from now (Append/Sync/Close/
//    NewWritableFile) fails with IoError; subsequent ones keep failing
//    until the countdown is reset.
//  - read faults: all RandomAccessFile reads fail while enabled.

#ifndef MONKEYDB_IO_FAULT_ENV_H_
#define MONKEYDB_IO_FAULT_ENV_H_

#include <atomic>
#include <memory>

#include "io/env.h"

namespace monkeydb {

class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // After `ops` more write operations, every write operation fails until
  // ResetFaults() is called. ScheduleWriteFault(0) fails immediately.
  void ScheduleWriteFault(uint64_t ops) {
    write_countdown_.store(static_cast<int64_t>(ops));
    write_faults_armed_.store(true);
  }

  void SetReadFaults(bool enabled) { read_faults_.store(enabled); }

  void ResetFaults() {
    write_faults_armed_.store(false);
    read_faults_.store(false);
  }

  uint64_t injected_failures() const { return injected_failures_.load(); }

  // Called by the wrapped files; returns true if this operation must fail.
  bool ShouldFailWrite() {
    if (!write_faults_armed_.load(std::memory_order_relaxed)) return false;
    if (write_countdown_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      injected_failures_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  bool ShouldFailRead() {
    if (!read_faults_.load(std::memory_order_relaxed)) return false;
    injected_failures_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;

  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }

 private:
  Env* base_;
  std::atomic<bool> write_faults_armed_{false};
  std::atomic<int64_t> write_countdown_{0};
  std::atomic<bool> read_faults_{false};
  std::atomic<uint64_t> injected_failures_{0};
};

}  // namespace monkeydb

#endif  // MONKEYDB_IO_FAULT_ENV_H_
