// LatencyEnv: an Env decorator that charges a fixed wall-clock delay for
// every random-access read, turning the instantaneous MemEnv into a
// stand-in for a real storage device.
//
// Concurrency benchmarks need this on top of the I/O-counting machinery:
// with MemEnv alone a point lookup completes in microseconds and any
// locking scheme looks fine, whereas on a device the read path spends most
// of its time waiting on I/O. The delay makes lookups I/O-bound, so a
// benchmark can observe whether the engine overlaps those waits (lock-free
// read path) or serializes them (one big lock). Only reads through
// RandomAccessFile — the lookup path's data/filter/index page fetches —
// are delayed; sequential recovery reads pass through, keeping setup fast.
//
// An optional write latency (default 0: disabled) charges every
// WritableFile::Append, and a separate sync latency charges every Sync.
// Write benchmarks use these to model a device where the WAL append and
// especially the fsync dominate — the regime where group commit pays off
// by amortizing one append+fsync over many queued writers.
//
// ReadAhead hints model an NVMe queue at depth > 1: the hint timestamps
// the moment the transfer was handed to the device, and the eventual Read
// of that offset charges only the latency that has not already elapsed —
// a read issued early enough ahead of its use completes "for free". Reads
// issued concurrently from several threads overlap naturally (each sleeps
// on its own thread), so the hint machinery matters for the single-
// threaded pipelined-scan case where the same thread hints block k+1..k+r
// before sinking its wait into block k.

#ifndef MONKEYDB_IO_LATENCY_ENV_H_
#define MONKEYDB_IO_LATENCY_ENV_H_

#include <chrono>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>

#include "io/env.h"
#include "obs/perf_context.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace monkeydb {

class LatencyEnv : public Env {
 public:
  // Does not take ownership of base, which must outlive this Env.
  LatencyEnv(Env* base, std::chrono::microseconds read_latency,
             std::chrono::microseconds write_latency =
                 std::chrono::microseconds(0),
             std::chrono::microseconds sync_latency =
                 std::chrono::microseconds(0))
      : base_(base),
        read_latency_(read_latency),
        write_latency_(write_latency),
        sync_latency_(sync_latency) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    std::unique_ptr<RandomAccessFile> file;
    MONKEYDB_RETURN_IF_ERROR(base_->NewRandomAccessFile(fname, &file));
    *result = std::make_unique<DelayedFile>(std::move(file), read_latency_);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    if (write_latency_.count() == 0 && sync_latency_.count() == 0) {
      return base_->NewWritableFile(fname, result);
    }
    std::unique_ptr<WritableFile> file;
    MONKEYDB_RETURN_IF_ERROR(base_->NewWritableFile(fname, &file));
    *result = std::make_unique<DelayedWritableFile>(std::move(file),
                                                    write_latency_,
                                                    sync_latency_);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }

 private:
  class DelayedFile : public RandomAccessFile {
   public:
    DelayedFile(std::unique_ptr<RandomAccessFile> base,
                std::chrono::microseconds latency)
        : base_(std::move(base)), latency_(latency) {}

    // monkey-lint: io-under-mutex(fn) — simulated-latency bookkeeping:
    // the clock read under the hint-tracker mutex IS the latency model
    // (it measures how much of the simulated transfer already elapsed).
    Status Read(uint64_t offset, size_t n, Slice* result,
                char* scratch) const override {
      // The sleep below IS the device time in this model; charge it (plus
      // the underlying read) to the thread's iostats when timing is on.
      PerfTimer timer(&GetIOStatsContext()->read_nanos);
      auto remaining = latency_;
      {
        MutexLock lock(mu_);
        auto it = inflight_.find(offset);
        if (it != inflight_.end()) {
          const auto elapsed =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - it->second);
          remaining = elapsed >= latency_ ? std::chrono::microseconds(0)
                                          : latency_ - elapsed;
          inflight_.erase(it);
        }
      }
      if (remaining.count() > 0) std::this_thread::sleep_for(remaining);
      return base_->Read(offset, n, result, scratch);
    }

    // A batched submission overlaps at the simulated device: all requests
    // are in flight together, so the caller waits once for the slowest
    // remaining transfer instead of summing per-request latencies. That
    // models exactly what an io_uring batch buys on hardware with queue
    // depth > 1.
    // monkey-lint: io-under-mutex(fn) — simulated-latency bookkeeping,
    // as in Read above.
    Status ReadBatch(ReadRequest* reqs, size_t count) const override {
      PerfTimer timer(&GetIOStatsContext()->read_nanos);
      auto max_remaining = std::chrono::microseconds(0);
      {
        MutexLock lock(mu_);
        for (size_t i = 0; i < count; i++) {
          auto remaining = latency_;
          auto it = inflight_.find(reqs[i].offset);
          if (it != inflight_.end()) {
            const auto elapsed =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - it->second);
            remaining = elapsed >= latency_ ? std::chrono::microseconds(0)
                                            : latency_ - elapsed;
            inflight_.erase(it);
          }
          if (remaining > max_remaining) max_remaining = remaining;
        }
      }
      if (max_remaining.count() > 0)
        std::this_thread::sleep_for(max_remaining);
      return base_->ReadBatch(reqs, count);
    }

    bool SupportsReadBatch() const override { return true; }

    // monkey-lint: io-under-mutex(fn) — simulated-latency bookkeeping,
    // as in Read above (here: stamping the transfer start).
    void ReadAhead(uint64_t offset, size_t n) const override {
      base_->ReadAhead(offset, n);
      MutexLock lock(mu_);
      // Never refresh an existing hint: the transfer started at the FIRST
      // hint, and moving the timestamp forward would charge the later Read
      // more, not less. Bound the table so a caller that hints without
      // ever reading cannot grow it unboundedly.
      if (inflight_.size() < kMaxTrackedHints) {
        inflight_.emplace(offset, std::chrono::steady_clock::now());
      }
    }

   private:
    static constexpr size_t kMaxTrackedHints = 4096;

    std::unique_ptr<RandomAccessFile> base_;
    std::chrono::microseconds latency_;
    mutable Mutex mu_;
    mutable std::unordered_map<uint64_t,
                               std::chrono::steady_clock::time_point>
        inflight_ GUARDED_BY(mu_);
  };

  class DelayedWritableFile : public WritableFile {
   public:
    DelayedWritableFile(std::unique_ptr<WritableFile> base,
                        std::chrono::microseconds write_latency,
                        std::chrono::microseconds sync_latency)
        : base_(std::move(base)),
          write_latency_(write_latency),
          sync_latency_(sync_latency) {}

    Status Append(const Slice& data) override {
      PerfTimer timer(&GetIOStatsContext()->write_nanos);
      if (write_latency_.count() > 0)
        std::this_thread::sleep_for(write_latency_);
      return base_->Append(data);
    }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override {
      PerfTimer timer(&GetIOStatsContext()->fsync_nanos);
      if (sync_latency_.count() > 0)
        std::this_thread::sleep_for(sync_latency_);
      return base_->Sync();
    }
    Status Close() override { return base_->Close(); }

   private:
    std::unique_ptr<WritableFile> base_;
    std::chrono::microseconds write_latency_;
    std::chrono::microseconds sync_latency_;
  };

  Env* base_;
  std::chrono::microseconds read_latency_;
  std::chrono::microseconds write_latency_;
  std::chrono::microseconds sync_latency_;
};

}  // namespace monkeydb

#endif  // MONKEYDB_IO_LATENCY_ENV_H_
