// Internal helpers for O_DIRECT reads (shared by PosixEnv and UringEnv).
//
// O_DIRECT transfers must be aligned three ways: file offset, memory
// address, and length, all to the device's logical block size. SSTable
// data blocks are page-aligned on disk but their payloads carry a 5-byte
// trailer, and index/filter/footer reads are not aligned at all — so a
// direct-mode read fetches the smallest aligned window enclosing the
// requested range into an alignment-correct bounce buffer and copies the
// range out. The invariant every caller relies on: the result is
// byte-identical to a buffered read of the same range, including short
// reads at the file tail.

#ifndef MONKEYDB_IO_ALIGNED_READ_H_
#define MONKEYDB_IO_ALIGNED_READ_H_

#include <cstdint>
#include <cstdlib>
#include <memory>

namespace monkeydb {

// Alignment for O_DIRECT transfers. 4 KiB satisfies every logical block
// size in practice (devices expose 512 or 4096) and matches the engine's
// page_size default, so one data-block read maps to one aligned window.
inline constexpr size_t kDirectIoAlignment = 4096;

inline uint64_t AlignDown(uint64_t v) {
  return v & ~static_cast<uint64_t>(kDirectIoAlignment - 1);
}

inline uint64_t AlignUp(uint64_t v) {
  return AlignDown(v + kDirectIoAlignment - 1);
}

struct AlignedFree {
  void operator()(char* p) const { std::free(p); }
};
using AlignedBufferPtr = std::unique_ptr<char, AlignedFree>;

// Allocates n bytes aligned to kDirectIoAlignment (null on failure).
inline AlignedBufferPtr AllocAligned(size_t n) {
  void* p = nullptr;
  if (posix_memalign(&p, kDirectIoAlignment, n) != 0) p = nullptr;
  return AlignedBufferPtr(static_cast<char*>(p));
}

}  // namespace monkeydb

#endif  // MONKEYDB_IO_ALIGNED_READ_H_
