// Env: the storage-environment abstraction.
//
// All file access in MonkeyDB flows through an Env so experiments can run on
// (a) the real filesystem (PosixEnv), (b) a deterministic in-memory
// filesystem (MemEnv), or (c) an instrumented decorator (CountingEnv, see
// counting_env.h) that measures disk I/Os at page granularity — the unit the
// paper's cost models are expressed in.

#ifndef MONKEYDB_IO_ENV_H_
#define MONKEYDB_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace monkeydb {

// Sequential read-only file (WAL/manifest recovery).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  // Reads up to n bytes. *result points into scratch (which must have room
  // for n bytes) or into internal storage. Short reads indicate EOF.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;

  virtual Status Skip(uint64_t n) = 0;
};

// One element of a batched random-access read. The caller owns scratch
// (which must have room for n bytes); on completion result points into
// scratch and status holds the per-request outcome. Short results indicate
// EOF, exactly as with RandomAccessFile::Read.
struct ReadRequest {
  uint64_t offset = 0;
  size_t n = 0;
  char* scratch = nullptr;
  Slice result;
  Status status;
};

// Random-access read-only file (SSTables).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  // Reads up to n bytes starting at offset. Thread-safe.
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;

  // Batched read: completes every request before returning, filling each
  // request's result and status. The default implementation is a loop of
  // Read() calls — one syscall (or simulated device access) per request —
  // so every file supports the interface; backends that can hand the whole
  // batch to the device at once (UringEnv: one io_uring_enter for the
  // entire span) override it and return true from SupportsReadBatch().
  // Thread-safe; requests may target overlapping ranges.
  virtual Status ReadBatch(ReadRequest* reqs, size_t count) const {
    for (size_t i = 0; i < count; i++) {
      reqs[i].status =
          Read(reqs[i].offset, reqs[i].n, &reqs[i].result, reqs[i].scratch);
    }
    return Status::OK();
  }

  // True iff ReadBatch submits the batch as one unit (amortizing one
  // syscall over the span) rather than looping over Read. Callers use this
  // to decide between the batched fetch plan and per-block fan-out, and
  // instrumentation layers (CountingEnv) use it to count syscalls
  // faithfully.
  virtual bool SupportsReadBatch() const { return false; }

  // Asynchronous-read hint: [offset, offset + n) will be read soon, so the
  // device can start the transfer now and overlap it with whatever the
  // caller does in the meantime (an NVMe queue at depth > 1). Thread-safe,
  // fire-and-forget, never fails; a subsequent Read of the range returns
  // the data as usual, just (on devices that honor the hint) with the
  // already-elapsed transfer time deducted from its latency. Default:
  // no-op. PosixEnv forwards to posix_fadvise(WILLNEED) — clamped to the
  // file size and deduplicated against already-hinted windows; LatencyEnv
  // timestamps the hint and charges only the remaining latency.
  virtual void ReadAhead(uint64_t offset, size_t n) const {}
};

// Append-only writable file (SSTable building, WAL, manifest).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  // Fills *result with the names (not paths) of the children of dir.
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;
};

// Which real-filesystem I/O backend a DB opened without an explicit Env
// uses (DbOptions::io_backend). kUring falls back to kPosix automatically
// when io_uring is unavailable at runtime.
enum class IoBackend { kPosix, kUring };

// Backend construction knobs shared by PosixEnv and UringEnv factories.
struct EnvOptions {
  // Open SSTable (random-access) files with O_DIRECT and perform aligned
  // reads, bypassing the OS page cache so the BlockCache is the cache
  // being measured. Filesystems that reject O_DIRECT (tmpfs) fall back to
  // buffered reads per file, counted in the backend's stats.
  bool use_direct_io = false;
};

// Process-wide POSIX environment singleton. Do not delete.
Env* GetPosixEnv();

// A PosixEnv with non-default options (use_direct_io). The caller owns it.
std::unique_ptr<Env> NewPosixEnv(const EnvOptions& options);

// Creates a fresh, empty in-memory environment. Deterministic and fast;
// the default substrate for tests and I/O-count experiments.
std::unique_ptr<Env> NewMemEnv();

}  // namespace monkeydb

#endif  // MONKEYDB_IO_ENV_H_
