// UringEnv: a batched io_uring I/O backend behind the Env abstraction.
//
// Random-access reads (the SSTable lookup path) go through a shared
// io_uring: RandomAccessFile::ReadBatch fills one SQE per request and hands
// the entire span to the kernel with a single io_uring_enter, completions
// harvested in the same call. Files register themselves into the ring's
// fixed-file table (IOSQE_FIXED_FILE) when a slot is free, and the
// O_DIRECT mode reads through registered, alignment-correct buffers
// (IORING_OP_READ_FIXED). Everything else — writable files, sequential
// recovery reads, directory ops — delegates to PosixEnv: the write path is
// append+fsync-bound and gains nothing from a ring.
//
// The backend is built on raw syscalls (io_uring_setup/enter/register), so
// it probes for kernel support at construction and the caller falls back
// to PosixEnv when the probe fails (old kernels, seccomp-filtered
// containers). DB::Open performs that fallback automatically for
// DbOptions::io_backend = kUring and logs it.

#ifndef MONKEYDB_IO_URING_ENV_H_
#define MONKEYDB_IO_URING_ENV_H_

#include <cstdint>
#include <memory>

#include "io/env.h"

namespace monkeydb {

// Lifetime counters of one UringEnv (relaxed atomics underneath; a
// snapshot is not a consistent cut but every field is monotone).
struct UringStatsSnapshot {
  uint64_t sqes_submitted = 0;      // Read SQEs pushed into the ring.
  uint64_t batch_submits = 0;       // io_uring_enter calls (batched reads).
  uint64_t batched_requests = 0;    // Requests carried by those calls.
  uint64_t short_read_retries = 0;  // Re-submitted partial/EAGAIN reads.
  uint64_t fixed_file_reads = 0;    // SQEs that used a registered file slot.
  uint64_t fixed_buffer_reads = 0;  // SQEs that used a registered buffer.
  uint64_t direct_io_fallbacks = 0; // O_DIRECT opens the fs rejected.
  uint64_t bounce_copies = 0;       // Aligned-window copies (direct mode).

  // Mean requests per batched syscall — the amortization the backend
  // exists to deliver.
  double BatchedPerSyscall() const {
    return batch_submits == 0
               ? 0.0
               : static_cast<double>(batched_requests) /
                     static_cast<double>(batch_submits);
  }
};

class UringEnv;

struct UringEnvOptions : EnvOptions {
  // Submission-queue depth. Batches larger than this are chunked across
  // multiple io_uring_enter calls.
  unsigned ring_entries = 256;
  // Size of the fixed-file registration table (0 disables registration).
  unsigned fixed_file_slots = 128;
};

// Creates an io_uring-backed Env, probing for kernel support. Returns null
// with *status describing the failure when io_uring is unavailable; the
// caller is expected to fall back to PosixEnv.
std::unique_ptr<UringEnv> NewUringEnv(const UringEnvOptions& options,
                                      Status* status);

// One cached process-wide probe: can this kernel/container set up a ring?
bool IoUringSupported();

// Testing hook: force every subsequent probe (and NewUringEnv call) to
// report io_uring as unsupported, exercising the automatic PosixEnv
// fallback on kernels that do support it. Pass false to restore reality.
void ForceUringUnsupportedForTesting(bool forced);

// Process-wide count of kUring -> kPosix fallbacks (DB::Open increments it
// whenever the probe fails; tests and the CI fallback leg assert on it).
uint64_t UringFallbackEvents();
void RecordUringFallbackEvent();

class UringEnv : public Env {
 public:
  ~UringEnv() override;

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;

  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;

  UringStatsSnapshot Stats() const;
  const UringEnvOptions& options() const;

 private:
  friend std::unique_ptr<UringEnv> NewUringEnv(const UringEnvOptions&,
                                               Status*);
  class Impl;
  explicit UringEnv(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace monkeydb

#endif  // MONKEYDB_IO_URING_ENV_H_
