// IoStats: page-granular I/O accounting, plus a simulated device clock.
//
// The paper's cost models count disk-page I/Os (unit: one page read or
// written). CountingEnv charges every random read and every appended byte
// against an IoStats at disk-page granularity, and a DeviceModel converts
// those counts into simulated latency with the paper's parameters:
//   Ω   — time to read one page from persistent storage (Sec. 4.4),
//   φ   — cost ratio between a write and a read I/O (Eq. 10).

#ifndef MONKEYDB_IO_IO_STATS_H_
#define MONKEYDB_IO_IO_STATS_H_

#include <atomic>
#include <cstdint>

namespace monkeydb {

struct IoStatsSnapshot {
  uint64_t read_ios = 0;       // Page-granular random reads.
  uint64_t write_ios = 0;      // Page-granular writes (appends).
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_calls = 0;     // Device accesses (one per batched submit).
  uint64_t batch_reads = 0;          // Batched submissions (ReadBatch).
  uint64_t batch_read_requests = 0;  // Requests carried by those batches.

  IoStatsSnapshot operator-(const IoStatsSnapshot& rhs) const {
    IoStatsSnapshot d;
    d.read_ios = read_ios - rhs.read_ios;
    d.write_ios = write_ios - rhs.write_ios;
    d.bytes_read = bytes_read - rhs.bytes_read;
    d.bytes_written = bytes_written - rhs.bytes_written;
    d.read_calls = read_calls - rhs.read_calls;
    d.batch_reads = batch_reads - rhs.batch_reads;
    d.batch_read_requests = batch_read_requests - rhs.batch_read_requests;
    return d;
  }
};

class IoStats {
 public:
  void AddRead(uint64_t pages, uint64_t bytes) {
    read_ios_.fetch_add(pages, std::memory_order_relaxed);
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    read_calls_.fetch_add(1, std::memory_order_relaxed);
  }

  void AddWrite(uint64_t pages, uint64_t bytes) {
    write_ios_.fetch_add(pages, std::memory_order_relaxed);
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  }

  // A batched submission of `requests` reads totaling `pages`/`bytes`,
  // handed to the device as ONE access (so read_calls grows by 1, not by
  // `requests` — that collapse is what the batch path is measured on).
  void AddBatchRead(uint64_t requests, uint64_t pages, uint64_t bytes) {
    read_ios_.fetch_add(pages, std::memory_order_relaxed);
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    read_calls_.fetch_add(1, std::memory_order_relaxed);
    batch_reads_.fetch_add(1, std::memory_order_relaxed);
    batch_read_requests_.fetch_add(requests, std::memory_order_relaxed);
  }

  IoStatsSnapshot Snapshot() const {
    IoStatsSnapshot s;
    s.read_ios = read_ios_.load(std::memory_order_relaxed);
    s.write_ios = write_ios_.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    s.read_calls = read_calls_.load(std::memory_order_relaxed);
    s.batch_reads = batch_reads_.load(std::memory_order_relaxed);
    s.batch_read_requests =
        batch_read_requests_.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    read_ios_.store(0);
    write_ios_.store(0);
    bytes_read_.store(0);
    bytes_written_.store(0);
    read_calls_.store(0);
    batch_reads_.store(0);
    batch_read_requests_.store(0);
  }

 private:
  std::atomic<uint64_t> read_ios_{0};
  std::atomic<uint64_t> write_ios_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> read_calls_{0};
  std::atomic<uint64_t> batch_reads_{0};
  std::atomic<uint64_t> batch_read_requests_{0};
};

// Converts I/O counts into simulated seconds.
struct DeviceModel {
  double read_seconds_per_page = 10e-3;  // Ω: HDD seek ≈ 10 ms (Sec. 4.4).
  double write_read_cost_ratio = 1.0;    // φ (1.0 = disk, >1 = flash).

  static DeviceModel Hdd() { return DeviceModel{10e-3, 1.0}; }
  static DeviceModel Flash() { return DeviceModel{100e-6, 2.0}; }

  double SimulatedSeconds(const IoStatsSnapshot& s) const {
    return static_cast<double>(s.read_ios) * read_seconds_per_page +
           static_cast<double>(s.write_ios) * read_seconds_per_page *
               write_read_cost_ratio;
  }
};

}  // namespace monkeydb

#endif  // MONKEYDB_IO_IO_STATS_H_
