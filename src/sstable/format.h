// On-disk format shared by the table builder and reader.
//
// File layout (offsets in bytes):
//   [data block 0][pad to page]      <- page-aligned: the fence-pointer
//   [data block 1][pad to page]         guarantee "one I/O per probe"
//   ...                                 (paper Sec. 2) holds exactly
//   [filter block]                   <- serialized Bloom filter (may be empty)
//   [index block]                    <- fence pointers: last key per page
//   [footer, 48 bytes]
//
// Each block is [payload][1-byte type][4-byte masked crc32c of payload+type].
// Data blocks are padded so each occupies exactly one disk page.

#ifndef MONKEYDB_SSTABLE_FORMAT_H_
#define MONKEYDB_SSTABLE_FORMAT_H_

#include <cstdint>
#include <string>

#include "io/env.h"
#include "util/coding.h"
#include "util/slice.h"
#include "util/status.h"

namespace monkeydb {

struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;  // Payload size, excluding the 5-byte trailer.

  void EncodeTo(std::string* dst) const {
    PutVarint64(dst, offset);
    PutVarint64(dst, size);
  }

  Status DecodeFrom(Slice* input) {
    if (GetVarint64(input, &offset) && GetVarint64(input, &size)) {
      return Status::OK();
    }
    return Status::Corruption("bad block handle");
  }
};

// Footer layout: filter handle + index handle (varints, zero-padded to 40
// bytes), then fixed64 magic.
struct Footer {
  static constexpr size_t kEncodedLength = 48;
  static constexpr uint64_t kMagicNumber = 0x4d6f6e6b65794442ull;  // "MonkeyDB"

  BlockHandle filter_handle;
  BlockHandle index_handle;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice input);
};

// Size of the per-block trailer: 1-byte type tag + 4-byte masked CRC.
inline constexpr size_t kBlockTrailerSize = 5;

// Block type tags (compression is not implemented; kept for format
// compatibility and corruption detection).
inline constexpr char kNoCompression = 0x0;

// Reads the block whose payload is described by handle, verifying the CRC.
// On success *contents holds the payload bytes. The read lands directly in
// *contents' storage — no intermediate buffer or copy on the buffered path.
Status ReadBlockContents(RandomAccessFile* file, const BlockHandle& handle,
                         std::string* contents);

// Verifies the CRC + type tag of a raw block read (*raw holds payload +
// 5-byte trailer, exactly handle.size + kBlockTrailerSize bytes) and strips
// the trailer, leaving the payload in place. Shared by ReadBlockContents
// and the batched fetch path, which reads many raw blocks in one
// submission and verifies each afterwards.
Status VerifyAndStripBlockTrailer(const BlockHandle& handle,
                                  std::string* raw);

}  // namespace monkeydb

#endif  // MONKEYDB_SSTABLE_FORMAT_H_
