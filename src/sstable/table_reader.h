// TableReader: read-side of an SSTable (a sorted run).
//
// The fence-pointer index and the Bloom filter are loaded into main memory
// at Open (the paper keeps both resident: M_pointers and M_filters). A point
// lookup consults the filter, binary-searches the fence pointers, and reads
// exactly one page-aligned data block from the environment (or the block
// cache).
//
// Scans can pipeline their I/O: NewIterator accepts TableScanOptions with a
// readahead depth and an optional thread pool. Whenever the iterator enters
// data block k it schedules asynchronous fetches of blocks k+1..k+readahead
// (an async-read hint to the file plus, when a pool is given, a background
// fetch into the block cache), so by the time the scan crosses a block
// boundary the next block is already resident or in flight. Prefetched
// blocks enter the cache at low priority (the LRU midpoint) so a long scan
// cannot evict the point-lookup working set.

#ifndef MONKEYDB_SSTABLE_TABLE_READER_H_
#define MONKEYDB_SSTABLE_TABLE_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/block_cache.h"
#include "io/env.h"
#include "lsm/internal_key.h"
#include "obs/metrics.h"
#include "sstable/block.h"
#include "sstable/format.h"
#include "util/iterator.h"

namespace monkeydb {

class ThreadPool;

struct TableReaderOptions {
  const InternalKeyComparator* comparator = nullptr;  // Required.
  BlockCache* block_cache = nullptr;                  // Optional.
  // Identifies this file in the block cache; must be unique per table.
  uint64_t cache_file_id = 0;
  // Histogram sink for cache-lookup/block-read latencies (null = no
  // recording, not even a clock read).
  MetricsRegistry* metrics = nullptr;
};

// Per-iterator scan configuration. The defaults (no readahead, no pool)
// reproduce the unpipelined scan exactly: one synchronous block read at
// each block boundary and high-priority cache inserts.
struct TableScanOptions {
  // How many data blocks beyond the current one to keep in flight. 0
  // disables readahead.
  int readahead_blocks = 0;
  // Pool that executes background fetches. With readahead_blocks > 0 but no
  // pool, the iterator still issues async-read hints to the file (letting a
  // latency-modelling Env start the "transfer" early) and performs the read
  // itself on arrival.
  ThreadPool* pool = nullptr;
};

// Result of a point lookup within one table.
enum class TableLookupResult {
  kFound,       // Newest visible entry is a value; *value filled.
  kDeleted,     // Newest visible entry is a tombstone.
  kNotPresent,  // No entry for this user key (possibly after a false
                // positive block read).
  kFilteredOut, // Bloom filter says definitely absent; no I/O issued.
};

class TableReader {
 public:
  // Opens a table. file is owned by the reader afterwards.
  static Status Open(const TableReaderOptions& options,
                     std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_size,
                     std::unique_ptr<TableReader>* table);

  TableReader(const TableReader&) = delete;
  TableReader& operator=(const TableReader&) = delete;

  // Point lookup for lookup.user_key() at snapshot lookup sequence. On
  // kFound fills *value (and *type when non-null, so callers can resolve
  // value-log handles).
  Status Get(const LookupKey& lookup, std::string* value,
             TableLookupResult* result, ValueType* type = nullptr);

  // Outcome of the in-memory half of a point lookup (Bloom filter + fence
  // pointers — no I/O).
  enum class ProbeState {
    kFilteredOut,  // Bloom filter says definitely absent.
    kNoBlock,      // Past the last fence pointer: not in this table.
    kBlockNeeded,  // *handle names the one data block that may hold it.
  };

  // The no-I/O half of Get. The batched read path (DB::MultiGet) calls
  // this for every (key, run) pair first, then fetches the surviving
  // blocks together, then resolves each key with SearchBlock.
  Status FindBlockHandle(const LookupKey& lookup, BlockHandle* handle,
                         ProbeState* state) const;

  // Resolves a lookup inside raw block contents previously fetched for the
  // handle FindBlockHandle produced (same semantics as the tail of Get).
  Status SearchBlock(const std::shared_ptr<const std::string>& contents,
                     const LookupKey& lookup, std::string* value,
                     TableLookupResult* result,
                     ValueType* type = nullptr) const;

  // Reads the raw block payload at handle, consulting the cache first and
  // inserting on a miss at the given priority. Thread-safe.
  Status ReadBlockShared(const BlockHandle& handle,
                         BlockCache::InsertPriority priority,
                         std::shared_ptr<const std::string>* contents) const;

  // Batched ReadBlockShared: resolves `count` handles at once. Cache hits
  // are served in place; all misses are submitted to the file as ONE
  // ReadBatch (one device access on batch-capable backends), verified, and
  // inserted into the cache. contents[i]/statuses[i] hold each block's
  // outcome; the return value reports only whole-batch failures.
  // Thread-safe. Falls back to a loop of ReadBlockShared when the file
  // cannot batch.
  Status ReadBlocksShared(const BlockHandle* handles, size_t count,
                          BlockCache::InsertPriority priority,
                          std::shared_ptr<const std::string>* contents,
                          Status* statuses) const;

  // True iff the underlying file turns ReadBlocksShared misses into one
  // batched submission. Callers use it to pick between the batched fetch
  // plan and per-block fan-out across read_io_threads.
  bool SupportsBatchReads() const;

  // Async-read hint for the block at handle: tells the file's device the
  // bytes will be read soon so the transfer overlaps with other work.
  void HintBlock(const BlockHandle& handle) const;

  // Iterates over all entries (internal keys) in the table. With readahead
  // configured in scan, the iterator pipelines block fetches ahead of the
  // scan position; the key/value sequence is identical either way. The
  // returned iterator must not outlive this table or scan.pool.
  std::unique_ptr<Iterator> NewIterator(
      const TableScanOptions& scan = TableScanOptions()) const;

  // True iff the filter admits the key (or there is no filter). Exposed for
  // instrumentation and tests.
  bool FilterMayContain(const Slice& user_key) const;

  uint64_t filter_size_bits() const;
  uint64_t num_data_blocks() const;

  // Appends the user key of every fence pointer (the largest key of each
  // data block) to *out. These are natural split candidates for
  // range-partitioned subcompactions: all the data below a fence lives in
  // earlier pages. No I/O — the index block is resident.
  void AppendBoundaryUserKeys(std::vector<std::string>* out) const;

 private:
  TableReader(const TableReaderOptions& options,
              std::unique_ptr<RandomAccessFile> file);

  // Reads (or fetches from cache) the data block at handle. priority is the
  // cache insert position on a miss: point lookups use kHigh (MRU),
  // scans/readahead use kLow (midpoint) so they cannot flush the cache.
  Status ReadDataBlock(const BlockHandle& handle,
                       std::shared_ptr<const Block>* block,
                       BlockCache::InsertPriority priority =
                           BlockCache::InsertPriority::kHigh) const;

  TableReaderOptions options_;
  std::unique_ptr<RandomAccessFile> file_;
  std::string filter_;                  // Serialized Bloom filter (in RAM).
  std::unique_ptr<Block> index_block_;  // Fence pointers (in RAM).

  friend class TableIterator;
};

}  // namespace monkeydb

#endif  // MONKEYDB_SSTABLE_TABLE_READER_H_
