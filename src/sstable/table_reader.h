// TableReader: read-side of an SSTable (a sorted run).
//
// The fence-pointer index and the Bloom filter are loaded into main memory
// at Open (the paper keeps both resident: M_pointers and M_filters). A point
// lookup consults the filter, binary-searches the fence pointers, and reads
// exactly one page-aligned data block from the environment (or the block
// cache).

#ifndef MONKEYDB_SSTABLE_TABLE_READER_H_
#define MONKEYDB_SSTABLE_TABLE_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/block_cache.h"
#include "io/env.h"
#include "lsm/internal_key.h"
#include "sstable/block.h"
#include "sstable/format.h"
#include "util/iterator.h"

namespace monkeydb {

struct TableReaderOptions {
  const InternalKeyComparator* comparator = nullptr;  // Required.
  BlockCache* block_cache = nullptr;                  // Optional.
  // Identifies this file in the block cache; must be unique per table.
  uint64_t cache_file_id = 0;
};

// Result of a point lookup within one table.
enum class TableLookupResult {
  kFound,       // Newest visible entry is a value; *value filled.
  kDeleted,     // Newest visible entry is a tombstone.
  kNotPresent,  // No entry for this user key (possibly after a false
                // positive block read).
  kFilteredOut, // Bloom filter says definitely absent; no I/O issued.
};

class TableReader {
 public:
  // Opens a table. file is owned by the reader afterwards.
  static Status Open(const TableReaderOptions& options,
                     std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_size,
                     std::unique_ptr<TableReader>* table);

  TableReader(const TableReader&) = delete;
  TableReader& operator=(const TableReader&) = delete;

  // Point lookup for lookup.user_key() at snapshot lookup sequence. On
  // kFound fills *value (and *type when non-null, so callers can resolve
  // value-log handles).
  Status Get(const LookupKey& lookup, std::string* value,
             TableLookupResult* result, ValueType* type = nullptr);

  // Iterates over all entries (internal keys) in the table.
  std::unique_ptr<Iterator> NewIterator() const;

  // True iff the filter admits the key (or there is no filter). Exposed for
  // instrumentation and tests.
  bool FilterMayContain(const Slice& user_key) const;

  uint64_t filter_size_bits() const;
  uint64_t num_data_blocks() const;

  // Appends the user key of every fence pointer (the largest key of each
  // data block) to *out. These are natural split candidates for
  // range-partitioned subcompactions: all the data below a fence lives in
  // earlier pages. No I/O — the index block is resident.
  void AppendBoundaryUserKeys(std::vector<std::string>* out) const;

 private:
  TableReader(const TableReaderOptions& options,
              std::unique_ptr<RandomAccessFile> file);

  // Reads (or fetches from cache) the data block at handle.
  Status ReadDataBlock(const BlockHandle& handle,
                       std::shared_ptr<const Block>* block) const;

  TableReaderOptions options_;
  std::unique_ptr<RandomAccessFile> file_;
  std::string filter_;                  // Serialized Bloom filter (in RAM).
  std::unique_ptr<Block> index_block_;  // Fence pointers (in RAM).

  friend class TableIterator;
};

}  // namespace monkeydb

#endif  // MONKEYDB_SSTABLE_TABLE_READER_H_
