// Data/index block format with prefix compression and restart points
// (LevelDB-style):
//
//   entry:   varint32 shared | varint32 non_shared | varint32 value_len
//            | key delta bytes | value bytes
//   trailer: fixed32 restart_offset[num_restarts] | fixed32 num_restarts
//
// Every kRestartInterval-th entry stores the full key; Seek binary-searches
// the restart array then scans forward.

#ifndef MONKEYDB_SSTABLE_BLOCK_H_
#define MONKEYDB_SSTABLE_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lsm/internal_key.h"
#include "util/iterator.h"
#include "util/slice.h"

namespace monkeydb {

class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  // Adds an entry. REQUIRES: key > all previously added keys.
  void Add(const Slice& key, const Slice& value);

  // Returns the finished block payload and leaves the builder unusable
  // until Reset().
  Slice Finish();

  void Reset();

  // Estimated size of the block being built (including trailer).
  size_t CurrentSizeEstimate() const;

  bool empty() const { return buffer_.empty(); }

 private:
  const int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;          // Entries since last restart.
  bool finished_ = false;
  std::string last_key_;
};

// An immutable, parsed block supporting iteration. The block owns its
// contents (or shares them via shared_ptr with a block cache).
class Block {
 public:
  // Takes shared ownership of the payload bytes.
  explicit Block(std::shared_ptr<const std::string> contents);

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return data_size_; }
  bool ok() const { return ok_; }

  // The comparator orders the (internal) keys stored in this block.
  std::unique_ptr<Iterator> NewIterator(
      const InternalKeyComparator* comparator) const;

 private:
  std::shared_ptr<const std::string> contents_;
  const char* data_ = nullptr;
  size_t data_size_ = 0;      // Bytes before the restart array.
  uint32_t num_restarts_ = 0;
  const char* restarts_ = nullptr;
  bool ok_ = false;
};

}  // namespace monkeydb

#endif  // MONKEYDB_SSTABLE_BLOCK_H_
