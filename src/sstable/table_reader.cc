#include "sstable/table_reader.h"

#include <cassert>
#include <unordered_map>

#include "bloom/bloom_filter.h"
#include "obs/perf_context.h"
#include "obs/trace.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace monkeydb {

TableReader::TableReader(const TableReaderOptions& options,
                         std::unique_ptr<RandomAccessFile> file)
    : options_(options), file_(std::move(file)) {}

Status TableReader::Open(const TableReaderOptions& options,
                         std::unique_ptr<RandomAccessFile> file,
                         uint64_t file_size,
                         std::unique_ptr<TableReader>* table) {
  assert(options.comparator != nullptr);
  if (file_size < Footer::kEncodedLength) {
    return Status::Corruption("file too short to be a table");
  }

  char footer_buf[Footer::kEncodedLength];
  Slice footer_slice;
  MONKEYDB_RETURN_IF_ERROR(file->Read(file_size - Footer::kEncodedLength,
                                      Footer::kEncodedLength, &footer_slice,
                                      footer_buf));
  Footer footer;
  MONKEYDB_RETURN_IF_ERROR(footer.DecodeFrom(footer_slice));

  auto reader =
      std::unique_ptr<TableReader>(new TableReader(options, std::move(file)));

  // Filter and fence pointers live in main memory from here on.
  MONKEYDB_RETURN_IF_ERROR(ReadBlockContents(
      reader->file_.get(), footer.filter_handle, &reader->filter_));

  std::string index_contents;
  MONKEYDB_RETURN_IF_ERROR(ReadBlockContents(
      reader->file_.get(), footer.index_handle, &index_contents));
  reader->index_block_ = std::make_unique<Block>(
      std::make_shared<const std::string>(std::move(index_contents)));
  if (!reader->index_block_->ok()) {
    return Status::Corruption("malformed index block");
  }

  *table = std::move(reader);
  return Status::OK();
}

bool TableReader::FilterMayContain(const Slice& user_key) const {
  return BloomFilterReader::MayContain(Slice(filter_), user_key);
}

uint64_t TableReader::filter_size_bits() const {
  return BloomFilterReader::SizeBits(Slice(filter_));
}

uint64_t TableReader::num_data_blocks() const {
  uint64_t n = 0;
  auto it = index_block_->NewIterator(options_.comparator);
  for (it->SeekToFirst(); it->Valid(); it->Next()) n++;
  return n;
}

// monkey-lint: io-under-mutex(fn) — walks the resident index block only;
// the iterator here is Block::Iter (pure memory), which the lint's
// simple-name resolution cannot tell apart from I/O-capable iterators.
void TableReader::AppendBoundaryUserKeys(std::vector<std::string>* out) const {
  auto it = index_block_->NewIterator(options_.comparator);
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    const Slice user_key = ExtractUserKey(it->key());
    out->emplace_back(user_key.data(), user_key.size());
  }
}

Status TableReader::ReadBlockShared(
    const BlockHandle& handle, BlockCache::InsertPriority priority,
    std::shared_ptr<const std::string>* contents) const {
  // block_read_nanos spans the whole fetch: cache lookup + any disk read.
  PerfTimer read_timer(&GetPerfContext()->block_read_nanos);
  TraceSpan fetch_span(TraceName::kBlockFetch);
  BlockCache::Key cache_key{options_.cache_file_id, handle.offset};
  if (options_.block_cache != nullptr) {
    bool was_prefetched = false;
    std::shared_ptr<const std::string> cached;
    {
      StopWatch watch(options_.metrics, Hist::kBlockCacheLookupLatency);
      cached = options_.block_cache->Lookup(cache_key, &was_prefetched);
    }
    if (cached != nullptr) {
      if (PerfCountsEnabled()) {
        PerfContext* perf = GetPerfContext();
        perf->blocks_read_from_cache++;
        if (was_prefetched) perf->blocks_read_from_prefetch++;
        perf->block_bytes_read += cached->size();
      }
      if (fetch_span.armed()) {
        fetch_span.set_args(1, static_cast<int64_t>(cached->size()));
      }
      *contents = std::move(cached);
      return Status::OK();
    }
  }

  std::string raw;
  {
    StopWatch watch(options_.metrics, Hist::kBlockReadLatency);
    MONKEYDB_RETURN_IF_ERROR(ReadBlockContents(file_.get(), handle, &raw));
  }
  if (PerfCountsEnabled()) {
    PerfContext* perf = GetPerfContext();
    perf->blocks_read_from_disk++;
    perf->block_bytes_read += raw.size();
  }
  if (fetch_span.armed()) {
    fetch_span.set_args(0, static_cast<int64_t>(raw.size()));
  }
  auto shared_contents = std::make_shared<const std::string>(std::move(raw));
  if (options_.block_cache != nullptr) {
    options_.block_cache->Insert(cache_key, shared_contents, priority);
  }
  *contents = std::move(shared_contents);
  return Status::OK();
}

bool TableReader::SupportsBatchReads() const {
  return file_->SupportsReadBatch();
}

Status TableReader::ReadBlocksShared(
    const BlockHandle* handles, size_t count,
    BlockCache::InsertPriority priority,
    std::shared_ptr<const std::string>* contents, Status* statuses) const {
  // Pass 1: serve cache hits, collect misses.
  std::vector<size_t> misses;
  misses.reserve(count);
  for (size_t i = 0; i < count; i++) {
    statuses[i] = Status::OK();
    contents[i] = nullptr;
    if (options_.block_cache == nullptr) {
      misses.push_back(i);
      continue;
    }
    PerfTimer read_timer(&GetPerfContext()->block_read_nanos);
    bool was_prefetched = false;
    std::shared_ptr<const std::string> cached;
    {
      StopWatch watch(options_.metrics, Hist::kBlockCacheLookupLatency);
      cached = options_.block_cache->Lookup(
          {options_.cache_file_id, handles[i].offset}, &was_prefetched);
    }
    if (cached != nullptr) {
      if (PerfCountsEnabled()) {
        PerfContext* perf = GetPerfContext();
        perf->blocks_read_from_cache++;
        if (was_prefetched) perf->blocks_read_from_prefetch++;
        perf->block_bytes_read += cached->size();
      }
      contents[i] = std::move(cached);
    } else {
      misses.push_back(i);
    }
  }
  if (misses.empty()) return Status::OK();

  if (!file_->SupportsReadBatch()) {
    for (size_t i : misses) {
      statuses[i] = ReadBlockShared(handles[i], priority, &contents[i]);
    }
    return Status::OK();
  }

  // Pass 2: one batched submission for every miss, straight into each
  // block's final string storage (zero intermediate copy, as in
  // ReadBlockContents).
  PerfTimer read_timer(&GetPerfContext()->block_read_nanos);
  TraceSpan fetch_span(TraceName::kBlockFetch);
  std::vector<std::string> raws(misses.size());
  std::vector<ReadRequest> reqs(misses.size());
  int64_t miss_bytes = 0;
  for (size_t m = 0; m < misses.size(); m++) {
    const BlockHandle& handle = handles[misses[m]];
    raws[m].resize(handle.size + kBlockTrailerSize);
    reqs[m].offset = handle.offset;
    reqs[m].n = raws[m].size();
    reqs[m].scratch = raws[m].data();
    miss_bytes += static_cast<int64_t>(raws[m].size());
  }
  if (fetch_span.armed()) fetch_span.set_args(0, miss_bytes);
  {
    StopWatch watch(options_.metrics, Hist::kBlockReadLatency);
    Status s = file_->ReadBatch(reqs.data(), reqs.size());
    if (!s.ok()) {
      for (size_t i : misses) statuses[i] = s;
      return s;
    }
  }
  for (size_t m = 0; m < misses.size(); m++) {
    const size_t i = misses[m];
    const BlockHandle& handle = handles[i];
    if (!reqs[m].status.ok()) {
      statuses[i] = reqs[m].status;
      continue;
    }
    if (reqs[m].result.size() != raws[m].size()) {
      statuses[i] = Status::Corruption("truncated block read");
      continue;
    }
    if (reqs[m].result.data() != raws[m].data()) {
      raws[m].assign(reqs[m].result.data(), reqs[m].result.size());
    }
    statuses[i] = VerifyAndStripBlockTrailer(handle, &raws[m]);
    if (!statuses[i].ok()) continue;
    if (PerfCountsEnabled()) {
      PerfContext* perf = GetPerfContext();
      perf->blocks_read_from_disk++;
      perf->block_bytes_read += raws[m].size();
    }
    auto shared =
        std::make_shared<const std::string>(std::move(raws[m]));
    if (options_.block_cache != nullptr) {
      options_.block_cache->Insert({options_.cache_file_id, handle.offset},
                                   shared, priority);
    }
    contents[i] = std::move(shared);
  }
  return Status::OK();
}

Status TableReader::ReadDataBlock(const BlockHandle& handle,
                                  std::shared_ptr<const Block>* block,
                                  BlockCache::InsertPriority priority) const {
  std::shared_ptr<const std::string> contents;
  MONKEYDB_RETURN_IF_ERROR(ReadBlockShared(handle, priority, &contents));
  *block = std::make_shared<const Block>(std::move(contents));
  if (!(*block)->ok()) return Status::Corruption("malformed data block");
  return Status::OK();
}

Status TableReader::FindBlockHandle(const LookupKey& lookup,
                                    BlockHandle* handle,
                                    ProbeState* state) const {
  const bool perf = PerfCountsEnabled();
  // 1. Bloom filter (in memory, no I/O).
  if (perf) GetPerfContext()->filter_probes++;
  bool may_contain;
  {
    PerfTimer timer(&GetPerfContext()->filter_probe_nanos);
    TraceSpan filter_span(TraceName::kFilterProbe);
    may_contain = FilterMayContain(lookup.user_key());
    if (filter_span.armed()) filter_span.set_args(may_contain ? 1 : 0);
  }
  if (!may_contain) {
    if (perf) GetPerfContext()->filter_negatives++;
    *state = ProbeState::kFilteredOut;
    return Status::OK();
  }

  // 2. Fence pointers (in memory): find the first page whose largest key is
  // >= the lookup internal key.
  if (perf) GetPerfContext()->fence_seeks++;
  TraceSpan fence_span(TraceName::kFenceSeek);
  auto index_iter = index_block_->NewIterator(options_.comparator);
  index_iter->Seek(lookup.internal_key());
  if (!index_iter->Valid()) {
    *state = ProbeState::kNoBlock;
    return index_iter->status();
  }

  Slice handle_value = index_iter->value();
  MONKEYDB_RETURN_IF_ERROR(handle->DecodeFrom(&handle_value));
  *state = ProbeState::kBlockNeeded;
  if (fence_span.armed()) fence_span.set_args(1);
  return Status::OK();
}

Status TableReader::SearchBlock(
    const std::shared_ptr<const std::string>& contents,
    const LookupKey& lookup, std::string* value, TableLookupResult* result,
    ValueType* type) const {
  auto block = std::make_shared<const Block>(contents);
  if (!block->ok()) return Status::Corruption("malformed data block");
  auto block_iter = block->NewIterator(options_.comparator);
  block_iter->Seek(lookup.internal_key());
  if (!block_iter->Valid()) {
    *result = TableLookupResult::kNotPresent;
    return block_iter->status();
  }

  ParsedInternalKey parsed;
  if (!ParseInternalKey(block_iter->key(), &parsed)) {
    return Status::Corruption("malformed internal key in data block");
  }
  if (options_.comparator->user_comparator()->Compare(
          parsed.user_key, lookup.user_key()) != 0) {
    *result = TableLookupResult::kNotPresent;  // Bloom false positive.
    return Status::OK();
  }
  if (type != nullptr) *type = parsed.type;
  if (parsed.type == ValueType::kDeletion) {
    *result = TableLookupResult::kDeleted;
    return Status::OK();
  }
  value->assign(block_iter->value().data(), block_iter->value().size());
  *result = TableLookupResult::kFound;
  return Status::OK();
}

void TableReader::HintBlock(const BlockHandle& handle) const {
  file_->ReadAhead(handle.offset, handle.size + kBlockTrailerSize);
}

Status TableReader::Get(const LookupKey& lookup, std::string* value,
                        TableLookupResult* result, ValueType* type) {
  ProbeState state;
  BlockHandle handle;
  MONKEYDB_RETURN_IF_ERROR(FindBlockHandle(lookup, &handle, &state));
  if (state == ProbeState::kFilteredOut) {
    *result = TableLookupResult::kFilteredOut;
    return Status::OK();
  }
  if (state == ProbeState::kNoBlock) {
    *result = TableLookupResult::kNotPresent;
    return Status::OK();
  }

  // 3. One data-page I/O.
  std::shared_ptr<const std::string> contents;
  MONKEYDB_RETURN_IF_ERROR(ReadBlockShared(
      handle, BlockCache::InsertPriority::kHigh, &contents));
  return SearchBlock(contents, lookup, value, result, type);
}

namespace {

// State shared between a TableIterator and its in-flight background
// fetches. The iterator holds one live generation at a time; Seek and the
// destructor retire the generation by setting cancelled and draining reads
// that have already started. Pool tasks that were queued but never started
// observe cancelled (or their erased slot) and exit without touching the
// table, so the table and pool only need to outlive the iterator, not the
// queue.
struct PrefetchSet {
  struct Slot {
    bool started = false;  // A thread has claimed the read.
    bool done = false;     // status/contents are filled in.
    Status status;
    std::shared_ptr<const std::string> contents;
  };

  Mutex mu;
  CondVar cv{&mu};
  bool cancelled GUARDED_BY(mu) = false;
  // Keyed by block offset.
  std::unordered_map<uint64_t, Slot> slots GUARDED_BY(mu);
};

}  // namespace

// Two-level iterator: walks the fence-pointer index and lazily opens data
// blocks. At namespace scope (not anonymous) so the friend declaration in
// TableReader applies.
//
// With readahead enabled, entering data block k schedules asynchronous
// fetches of blocks k+1..k+readahead: an async-read hint to the file plus,
// when a pool is available, a background read into the block cache. The
// block boundary crossing then consumes the prefetched bytes (waiting for
// an in-flight read if necessary) instead of stalling on a cold read.
class TableIterator : public Iterator {
 public:
  TableIterator(const TableReader* table, const TableScanOptions& scan)
      : table_(table),
        scan_(scan),
        index_iter_(table->index_block_->NewIterator(
            table->options_.comparator)) {}

  ~TableIterator() override { CancelPrefetch(); }

  bool Valid() const override {
    return block_iter_ != nullptr && block_iter_->Valid();
  }

  void SeekToFirst() override {
    CancelPrefetch();
    index_iter_->SeekToFirst();
    InitDataBlock(/*seek_to_first=*/true);
    SkipEmptyBlocksForward();
    ScheduleReadahead();
  }

  void SeekToLast() override {
    CancelPrefetch();
    index_iter_->SeekToLast();
    InitDataBlock(/*seek_to_first=*/false);
    if (block_iter_ != nullptr) block_iter_->SeekToLast();
    SkipEmptyBlocksBackward();
  }

  void Seek(const Slice& target) override {
    CancelPrefetch();
    index_iter_->Seek(target);
    InitDataBlock(/*seek_to_first=*/false);
    if (block_iter_ != nullptr) block_iter_->Seek(target);
    SkipEmptyBlocksForward();
    ScheduleReadahead();
  }

  void Next() override {
    assert(Valid());
    block_iter_->Next();
    if (block_iter_->Valid()) return;
    SkipEmptyBlocksForward();
    ScheduleReadahead();
  }

  void Prev() override {
    assert(Valid());
    block_iter_->Prev();
    SkipEmptyBlocksBackward();
  }

  Slice key() const override { return block_iter_->key(); }
  Slice value() const override { return block_iter_->value(); }

  Status status() const override {
    if (!status_.ok()) return status_;
    if (!index_iter_->status().ok()) return index_iter_->status();
    if (block_iter_ != nullptr) return block_iter_->status();
    return Status::OK();
  }

 private:
  void InitDataBlock(bool seek_to_first) {
    block_iter_.reset();
    block_.reset();
    if (!index_iter_->Valid()) return;
    BlockHandle handle;
    Slice handle_value = index_iter_->value();
    Status s = handle.DecodeFrom(&handle_value);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    // Scan reads enter the cache at low priority once readahead is on, so
    // a pipelined scan stays out of the point-lookup working set; with
    // readahead off the behavior is byte-identical to the classic path.
    const auto priority = scan_.readahead_blocks > 0
                              ? BlockCache::InsertPriority::kLow
                              : BlockCache::InsertPriority::kHigh;
    std::shared_ptr<const std::string> contents;
    if (TryConsumePrefetch(handle.offset, &contents, &s)) {
      if (s.ok()) {
        auto blk = std::make_shared<const Block>(std::move(contents));
        if (blk->ok()) {
          block_ = std::move(blk);
        } else {
          s = Status::Corruption("malformed data block");
        }
      }
    } else {
      s = table_->ReadDataBlock(handle, &block_, priority);
    }
    if (!s.ok()) {
      status_ = s;
      return;
    }
    block_iter_ = block_->NewIterator(table_->options_.comparator);
    if (seek_to_first) block_iter_->SeekToFirst();
  }

  // Schedules background fetches for the readahead window after the
  // current block. No-op when readahead is off or the scan is at the end.
  // On a batch-capable file with a pool, the whole window becomes ONE
  // background task submitting one ReadBatch; otherwise each block gets an
  // async-read hint plus (with a pool) its own background read.
  void ScheduleReadahead() {
    if (scan_.readahead_blocks <= 0 || !index_iter_->Valid()) return;
    // Walk a private copy of the (in-memory) fence-pointer index forward
    // from the current position.
    auto ahead =
        table_->index_block_->NewIterator(table_->options_.comparator);
    ahead->Seek(index_iter_->key());
    if (!ahead->Valid()) return;
    if (prefetch_ == nullptr) prefetch_ = std::make_shared<PrefetchSet>();
    std::vector<BlockHandle> window;
    for (int i = 0; i < scan_.readahead_blocks; i++) {
      ahead->Next();
      if (!ahead->Valid()) break;
      BlockHandle handle;
      Slice handle_value = ahead->value();
      if (!handle.DecodeFrom(&handle_value).ok()) break;
      if (ClaimPrefetchSlot(handle)) window.push_back(handle);
    }
    if (window.empty()) return;
    if (scan_.pool != nullptr && table_->SupportsBatchReads() &&
        window.size() > 1) {
      SchedulePrefetchBatch(std::move(window));
      return;
    }
    for (const BlockHandle& handle : window) SchedulePrefetch(handle);
  }

  // Registers a slot for the block unless it is already cached, scheduled,
  // or in flight. Returns true iff the caller now owns scheduling it.
  bool ClaimPrefetchSlot(const BlockHandle& handle) {
    BlockCache* cache = table_->options_.block_cache;
    if (cache != nullptr &&
        cache->Contains({table_->options_.cache_file_id, handle.offset})) {
      return false;  // Already resident; the scan will hit the cache.
    }
    MutexLock lock(prefetch_->mu);
    return prefetch_->slots.emplace(handle.offset, PrefetchSet::Slot{})
        .second;
  }

  void SchedulePrefetch(const BlockHandle& handle) {
    // Hint the device before anything else: a latency-modelling Env starts
    // the transfer clock at the hint, so the eventual read — from a pool
    // thread or inline at the boundary crossing — only pays the latency
    // that has not already elapsed.
    table_->HintBlock(handle);
    if (scan_.pool == nullptr) return;
    auto set = prefetch_;
    const TableReader* table = table_;
    const BlockHandle h = handle;
    scan_.pool->Submit([set, table, h] {
      {
        MutexLock lock(set->mu);
        auto it = set->slots.find(h.offset);
        if (set->cancelled || it == set->slots.end() || it->second.started) {
          return;  // Retired generation or claimed by the foreground.
        }
        it->second.started = true;
      }
      std::shared_ptr<const std::string> contents;
      Status s = table->ReadBlockShared(
          h, BlockCache::InsertPriority::kLow, &contents);
      MutexLock lock(set->mu);
      auto it = set->slots.find(h.offset);
      if (it != set->slots.end()) {
        it->second.status = s;
        it->second.contents = std::move(contents);
        it->second.done = true;
      }
      set->cv.SignalAll();
    });
  }

  // One background task for the whole readahead window: claims every slot
  // the foreground has not stolen yet, submits the claimed blocks as one
  // ReadBatch, and publishes each result. No per-block hints — the batch
  // submission itself is the overlap mechanism on batch-capable backends.
  void SchedulePrefetchBatch(std::vector<BlockHandle> window) {
    auto set = prefetch_;
    const TableReader* table = table_;
    scan_.pool->Submit([set, table, window = std::move(window)] {
      std::vector<BlockHandle> claimed;
      claimed.reserve(window.size());
      {
        MutexLock lock(set->mu);
        if (set->cancelled) return;
        for (const BlockHandle& h : window) {
          auto it = set->slots.find(h.offset);
          if (it == set->slots.end() || it->second.started) continue;
          it->second.started = true;
          claimed.push_back(h);
        }
      }
      if (claimed.empty()) return;
      std::vector<std::shared_ptr<const std::string>> contents(
          claimed.size());
      std::vector<Status> statuses(claimed.size());
      Status batch = table->ReadBlocksShared(
          claimed.data(), claimed.size(), BlockCache::InsertPriority::kLow,
          contents.data(), statuses.data());
      MutexLock lock(set->mu);
      for (size_t i = 0; i < claimed.size(); i++) {
        auto it = set->slots.find(claimed[i].offset);
        if (it == set->slots.end()) continue;
        it->second.status = batch.ok() ? statuses[i] : batch;
        it->second.contents = std::move(contents[i]);
        it->second.done = true;
      }
      set->cv.SignalAll();
    });
  }

  // Consumes the prefetch slot for offset if one exists: waits for an
  // in-flight read, or — when no pool thread picked the slot up yet —
  // erases it and tells the caller to read inline (the hint already fired,
  // so a latency-modelling Env charges only the remaining latency).
  bool TryConsumePrefetch(uint64_t offset,
                          std::shared_ptr<const std::string>* contents,
                          Status* status) {
    if (prefetch_ == nullptr) return false;
    MutexLock lock(prefetch_->mu);
    auto it = prefetch_->slots.find(offset);
    if (it == prefetch_->slots.end()) return false;
    if (!it->second.started) {
      // Claim it from the queue; a late-starting pool task finds the slot
      // gone and exits.
      prefetch_->slots.erase(it);
      return false;
    }
    // Only this thread inserts into slots, so `it` survives the wait.
    while (!it->second.done) prefetch_->cv.Wait();
    *status = it->second.status;
    *contents = std::move(it->second.contents);
    prefetch_->slots.erase(it);
    return true;
  }

  // Retires the current prefetch generation: marks it cancelled and drains
  // reads that already started (they hold a raw table pointer). Queued
  // tasks that never started exit later through their shared_ptr copy.
  void CancelPrefetch() {
    if (prefetch_ == nullptr) return;
    {
      MutexLock lock(prefetch_->mu);
      prefetch_->cancelled = true;
      for (;;) {
        bool in_flight = false;
        for (const auto& [offset, slot] : prefetch_->slots) {
          if (slot.started && !slot.done) {
            in_flight = true;
            break;
          }
        }
        if (!in_flight) break;
        prefetch_->cv.Wait();
      }
    }
    prefetch_ = nullptr;
  }

  void SkipEmptyBlocksForward() {
    while ((block_iter_ == nullptr || !block_iter_->Valid()) &&
           index_iter_->Valid() && status_.ok()) {
      index_iter_->Next();
      if (!index_iter_->Valid()) {
        block_iter_.reset();
        return;
      }
      InitDataBlock(/*seek_to_first=*/true);
    }
  }

  void SkipEmptyBlocksBackward() {
    while ((block_iter_ == nullptr || !block_iter_->Valid()) &&
           index_iter_->Valid() && status_.ok()) {
      index_iter_->Prev();
      if (!index_iter_->Valid()) {
        block_iter_.reset();
        return;
      }
      InitDataBlock(/*seek_to_first=*/false);
      if (block_iter_ != nullptr) block_iter_->SeekToLast();
    }
  }

  const TableReader* table_;
  TableScanOptions scan_;
  std::unique_ptr<Iterator> index_iter_;
  std::shared_ptr<const Block> block_;
  std::unique_ptr<Iterator> block_iter_;
  std::shared_ptr<PrefetchSet> prefetch_;  // Live readahead generation.
  Status status_;
};

std::unique_ptr<Iterator> TableReader::NewIterator(
    const TableScanOptions& scan) const {
  return std::make_unique<TableIterator>(this, scan);
}

}  // namespace monkeydb
