#include "sstable/table_reader.h"

#include <cassert>

#include "bloom/bloom_filter.h"

namespace monkeydb {

TableReader::TableReader(const TableReaderOptions& options,
                         std::unique_ptr<RandomAccessFile> file)
    : options_(options), file_(std::move(file)) {}

Status TableReader::Open(const TableReaderOptions& options,
                         std::unique_ptr<RandomAccessFile> file,
                         uint64_t file_size,
                         std::unique_ptr<TableReader>* table) {
  assert(options.comparator != nullptr);
  if (file_size < Footer::kEncodedLength) {
    return Status::Corruption("file too short to be a table");
  }

  char footer_buf[Footer::kEncodedLength];
  Slice footer_slice;
  MONKEYDB_RETURN_IF_ERROR(file->Read(file_size - Footer::kEncodedLength,
                                      Footer::kEncodedLength, &footer_slice,
                                      footer_buf));
  Footer footer;
  MONKEYDB_RETURN_IF_ERROR(footer.DecodeFrom(footer_slice));

  auto reader =
      std::unique_ptr<TableReader>(new TableReader(options, std::move(file)));

  // Filter and fence pointers live in main memory from here on.
  MONKEYDB_RETURN_IF_ERROR(ReadBlockContents(
      reader->file_.get(), footer.filter_handle, &reader->filter_));

  std::string index_contents;
  MONKEYDB_RETURN_IF_ERROR(ReadBlockContents(
      reader->file_.get(), footer.index_handle, &index_contents));
  reader->index_block_ = std::make_unique<Block>(
      std::make_shared<const std::string>(std::move(index_contents)));
  if (!reader->index_block_->ok()) {
    return Status::Corruption("malformed index block");
  }

  *table = std::move(reader);
  return Status::OK();
}

bool TableReader::FilterMayContain(const Slice& user_key) const {
  return BloomFilterReader::MayContain(Slice(filter_), user_key);
}

uint64_t TableReader::filter_size_bits() const {
  return BloomFilterReader::SizeBits(Slice(filter_));
}

uint64_t TableReader::num_data_blocks() const {
  uint64_t n = 0;
  auto it = index_block_->NewIterator(options_.comparator);
  for (it->SeekToFirst(); it->Valid(); it->Next()) n++;
  return n;
}

void TableReader::AppendBoundaryUserKeys(std::vector<std::string>* out) const {
  auto it = index_block_->NewIterator(options_.comparator);
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    const Slice user_key = ExtractUserKey(it->key());
    out->emplace_back(user_key.data(), user_key.size());
  }
}

Status TableReader::ReadDataBlock(
    const BlockHandle& handle, std::shared_ptr<const Block>* block) const {
  BlockCache::Key cache_key{options_.cache_file_id, handle.offset};
  if (options_.block_cache != nullptr) {
    auto cached = options_.block_cache->Lookup(cache_key);
    if (cached != nullptr) {
      *block = std::make_shared<const Block>(std::move(cached));
      return Status::OK();
    }
  }

  std::string contents;
  MONKEYDB_RETURN_IF_ERROR(ReadBlockContents(file_.get(), handle, &contents));
  auto shared_contents =
      std::make_shared<const std::string>(std::move(contents));
  if (options_.block_cache != nullptr) {
    options_.block_cache->Insert(cache_key, shared_contents);
  }
  *block = std::make_shared<const Block>(std::move(shared_contents));
  if (!(*block)->ok()) return Status::Corruption("malformed data block");
  return Status::OK();
}

Status TableReader::Get(const LookupKey& lookup, std::string* value,
                        TableLookupResult* result, ValueType* type) {
  // 1. Bloom filter (in memory, no I/O).
  if (!FilterMayContain(lookup.user_key())) {
    *result = TableLookupResult::kFilteredOut;
    return Status::OK();
  }

  // 2. Fence pointers (in memory): find the first page whose largest key is
  // >= the lookup internal key.
  auto index_iter = index_block_->NewIterator(options_.comparator);
  index_iter->Seek(lookup.internal_key());
  if (!index_iter->Valid()) {
    *result = TableLookupResult::kNotPresent;
    return index_iter->status();
  }

  BlockHandle handle;
  Slice handle_value = index_iter->value();
  MONKEYDB_RETURN_IF_ERROR(handle.DecodeFrom(&handle_value));

  // 3. One data-page I/O.
  std::shared_ptr<const Block> block;
  MONKEYDB_RETURN_IF_ERROR(ReadDataBlock(handle, &block));

  auto block_iter = block->NewIterator(options_.comparator);
  block_iter->Seek(lookup.internal_key());
  if (!block_iter->Valid()) {
    *result = TableLookupResult::kNotPresent;
    return block_iter->status();
  }

  ParsedInternalKey parsed;
  if (!ParseInternalKey(block_iter->key(), &parsed)) {
    return Status::Corruption("malformed internal key in data block");
  }
  if (options_.comparator->user_comparator()->Compare(
          parsed.user_key, lookup.user_key()) != 0) {
    *result = TableLookupResult::kNotPresent;  // Bloom false positive.
    return Status::OK();
  }
  if (type != nullptr) *type = parsed.type;
  if (parsed.type == ValueType::kDeletion) {
    *result = TableLookupResult::kDeleted;
    return Status::OK();
  }
  value->assign(block_iter->value().data(), block_iter->value().size());
  *result = TableLookupResult::kFound;
  return Status::OK();
}

// Two-level iterator: walks the fence-pointer index and lazily opens data
// blocks. At namespace scope (not anonymous) so the friend declaration in
// TableReader applies.
class TableIterator : public Iterator {
 public:
  explicit TableIterator(const TableReader* table)
      : table_(table),
        index_iter_(table->index_block_->NewIterator(
            table->options_.comparator)) {}

  bool Valid() const override {
    return block_iter_ != nullptr && block_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock(/*seek_to_first=*/true);
    SkipEmptyBlocksForward();
  }

  void SeekToLast() override {
    index_iter_->SeekToLast();
    InitDataBlock(/*seek_to_first=*/false);
    if (block_iter_ != nullptr) block_iter_->SeekToLast();
    SkipEmptyBlocksBackward();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock(/*seek_to_first=*/false);
    if (block_iter_ != nullptr) block_iter_->Seek(target);
    SkipEmptyBlocksForward();
  }

  void Next() override {
    assert(Valid());
    block_iter_->Next();
    SkipEmptyBlocksForward();
  }

  void Prev() override {
    assert(Valid());
    block_iter_->Prev();
    SkipEmptyBlocksBackward();
  }

  Slice key() const override { return block_iter_->key(); }
  Slice value() const override { return block_iter_->value(); }

  Status status() const override {
    if (!status_.ok()) return status_;
    if (!index_iter_->status().ok()) return index_iter_->status();
    if (block_iter_ != nullptr) return block_iter_->status();
    return Status::OK();
  }

 private:
  void InitDataBlock(bool seek_to_first) {
    block_iter_.reset();
    block_.reset();
    if (!index_iter_->Valid()) return;
    BlockHandle handle;
    Slice handle_value = index_iter_->value();
    Status s = handle.DecodeFrom(&handle_value);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    s = table_->ReadDataBlock(handle, &block_);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    block_iter_ = block_->NewIterator(table_->options_.comparator);
    if (seek_to_first) block_iter_->SeekToFirst();
  }

  void SkipEmptyBlocksForward() {
    while ((block_iter_ == nullptr || !block_iter_->Valid()) &&
           index_iter_->Valid() && status_.ok()) {
      index_iter_->Next();
      if (!index_iter_->Valid()) {
        block_iter_.reset();
        return;
      }
      InitDataBlock(/*seek_to_first=*/true);
    }
  }

  void SkipEmptyBlocksBackward() {
    while ((block_iter_ == nullptr || !block_iter_->Valid()) &&
           index_iter_->Valid() && status_.ok()) {
      index_iter_->Prev();
      if (!index_iter_->Valid()) {
        block_iter_.reset();
        return;
      }
      InitDataBlock(/*seek_to_first=*/false);
      if (block_iter_ != nullptr) block_iter_->SeekToLast();
    }
  }

  const TableReader* table_;
  std::unique_ptr<Iterator> index_iter_;
  std::shared_ptr<const Block> block_;
  std::unique_ptr<Iterator> block_iter_;
  Status status_;
};

std::unique_ptr<Iterator> TableReader::NewIterator() const {
  return std::make_unique<TableIterator>(this);
}

}  // namespace monkeydb
