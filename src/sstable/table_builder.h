// TableBuilder: streams sorted internal-key entries into an SSTable file.
//
// Data blocks are padded to exactly one disk page each so that a fence-
// pointer probe costs exactly one page I/O (the paper's cost unit). The
// Bloom filter covers user keys and is sized by a per-table FPR chosen by
// the FPR allocation policy (uniform baseline or Monkey).

#ifndef MONKEYDB_SSTABLE_TABLE_BUILDER_H_
#define MONKEYDB_SSTABLE_TABLE_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "bloom/bloom_filter.h"
#include "io/env.h"
#include "lsm/internal_key.h"
#include "sstable/block.h"
#include "sstable/format.h"
#include "util/slice.h"
#include "util/status.h"

namespace monkeydb {

struct TableBuilderOptions {
  // Disk page size; one data block occupies exactly one page.
  size_t block_size = 4096;
  int restart_interval = 16;
  // Target false positive rate for this table's Bloom filter. 1.0 disables
  // the filter (Monkey's unfiltered deep levels).
  double filter_fpr = 0.01;
};

class TableBuilder {
 public:
  // file must outlive the builder and be freshly opened.
  TableBuilder(const TableBuilderOptions& options, WritableFile* file);

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  // Adds an entry. REQUIRES: internal_key > all previously added keys.
  void Add(const Slice& internal_key, const Slice& value);

  // Finishes the table: flushes the last block, writes the filter block,
  // index block, and footer. Does not Close() the file.
  Status Finish();

  uint64_t num_entries() const { return num_entries_; }
  // Bytes written so far (file size after Finish()).
  uint64_t file_size() const { return offset_; }
  uint64_t num_data_blocks() const { return num_data_blocks_; }
  // Size in bits of the built filter (valid after Finish()).
  uint64_t filter_size_bits() const { return filter_size_bits_; }

  Status status() const { return status_; }

  Slice smallest_key() const { return Slice(smallest_key_); }
  Slice largest_key() const { return Slice(largest_key_); }

 private:
  void FlushDataBlock();
  Status WriteRawBlock(const Slice& payload, BlockHandle* handle,
                       bool pad_to_page);

  TableBuilderOptions options_;
  WritableFile* file_;
  uint64_t offset_ = 0;
  Status status_;

  BlockBuilder data_block_;
  BlockBuilder index_block_;
  BloomFilterBuilder filter_builder_;

  std::string last_internal_key_;
  std::string smallest_key_;
  std::string largest_key_;
  uint64_t num_entries_ = 0;
  uint64_t num_data_blocks_ = 0;
  uint64_t filter_size_bits_ = 0;
  bool finished_ = false;
};

}  // namespace monkeydb

#endif  // MONKEYDB_SSTABLE_TABLE_BUILDER_H_
