#include "sstable/table_builder.h"

#include <cassert>

#include "util/coding.h"
#include "util/hash.h"

namespace monkeydb {

TableBuilder::TableBuilder(const TableBuilderOptions& options,
                           WritableFile* file)
    : options_(options),
      file_(file),
      data_block_(options.restart_interval),
      index_block_(1) {}

void TableBuilder::Add(const Slice& internal_key, const Slice& value) {
  if (!status_.ok() || finished_) return;

  // A block must fit in one page together with its 5-byte trailer; flush
  // before adding if this entry would overflow.
  const size_t entry_upper_bound =
      internal_key.size() + value.size() + 15 /* varints */ +
      sizeof(uint32_t) /* possible restart */;
  if (!data_block_.empty() &&
      data_block_.CurrentSizeEstimate() + entry_upper_bound +
              kBlockTrailerSize >
          options_.block_size) {
    FlushDataBlock();
  }

  if (smallest_key_.empty() && num_entries_ == 0) {
    smallest_key_.assign(internal_key.data(), internal_key.size());
  }
  largest_key_.assign(internal_key.data(), internal_key.size());

  data_block_.Add(internal_key, value);
  filter_builder_.AddKey(ExtractUserKey(internal_key));
  last_internal_key_.assign(internal_key.data(), internal_key.size());
  num_entries_++;
}

void TableBuilder::FlushDataBlock() {
  if (data_block_.empty() || !status_.ok()) return;
  Slice payload = data_block_.Finish();
  BlockHandle handle;
  status_ = WriteRawBlock(payload, &handle, /*pad_to_page=*/true);
  data_block_.Reset();
  if (!status_.ok()) return;
  num_data_blocks_++;

  // Fence pointer: the last internal key of the block maps to its handle.
  std::string handle_encoding;
  handle.EncodeTo(&handle_encoding);
  index_block_.Add(Slice(last_internal_key_), Slice(handle_encoding));
}

Status TableBuilder::WriteRawBlock(const Slice& payload, BlockHandle* handle,
                                   bool pad_to_page) {
  handle->offset = offset_;
  handle->size = payload.size();

  // Trailer: type byte + masked CRC over payload+type.
  char trailer[kBlockTrailerSize];
  trailer[0] = kNoCompression;
  std::string crc_input(payload.data(), payload.size());
  crc_input.push_back(kNoCompression);
  EncodeFixed32(trailer + 1, MaskCrc(Crc32c(crc_input.data(),
                                            crc_input.size())));

  MONKEYDB_RETURN_IF_ERROR(file_->Append(payload));
  MONKEYDB_RETURN_IF_ERROR(
      file_->Append(Slice(trailer, kBlockTrailerSize)));
  offset_ += payload.size() + kBlockTrailerSize;

  if (pad_to_page) {
    const size_t remainder = offset_ % options_.block_size;
    if (remainder != 0) {
      const size_t pad = options_.block_size - remainder;
      std::string zeros(pad, '\0');
      MONKEYDB_RETURN_IF_ERROR(file_->Append(zeros));
      offset_ += pad;
    }
  }
  return Status::OK();
}

Status TableBuilder::Finish() {
  if (finished_) return status_;
  FlushDataBlock();
  finished_ = true;
  if (!status_.ok()) return status_;

  Footer footer;

  // Filter block (may be empty if FPR >= 1).
  std::string filter = filter_builder_.FinishForFpr(options_.filter_fpr);
  filter_size_bits_ = BloomFilterReader::SizeBits(filter);
  status_ = WriteRawBlock(Slice(filter), &footer.filter_handle,
                          /*pad_to_page=*/false);
  if (!status_.ok()) return status_;

  // Index block (fence pointers).
  Slice index_payload = index_block_.Finish();
  status_ = WriteRawBlock(index_payload, &footer.index_handle,
                          /*pad_to_page=*/false);
  if (!status_.ok()) return status_;

  std::string footer_encoding;
  footer.EncodeTo(&footer_encoding);
  status_ = file_->Append(footer_encoding);
  if (status_.ok()) offset_ += footer_encoding.size();
  return status_;
}

}  // namespace monkeydb
