#include "sstable/format.h"

#include <memory>

#include "util/hash.h"

namespace monkeydb {

void Footer::EncodeTo(std::string* dst) const {
  const size_t original_size = dst->size();
  filter_handle.EncodeTo(dst);
  index_handle.EncodeTo(dst);
  dst->resize(original_size + 40);  // Zero-pad the handle area.
  PutFixed64(dst, kMagicNumber);
}

Status Footer::DecodeFrom(Slice input) {
  if (input.size() < kEncodedLength) {
    return Status::Corruption("footer too short");
  }
  const char* magic_ptr = input.data() + kEncodedLength - 8;
  if (DecodeFixed64(magic_ptr) != kMagicNumber) {
    return Status::Corruption("bad table magic number");
  }
  Slice handles(input.data(), 40);
  MONKEYDB_RETURN_IF_ERROR(filter_handle.DecodeFrom(&handles));
  return index_handle.DecodeFrom(&handles);
}

Status VerifyAndStripBlockTrailer(const BlockHandle& handle,
                                  std::string* raw) {
  if (raw->size() != handle.size + kBlockTrailerSize) {
    return Status::Corruption("truncated block read");
  }
  const char* data = raw->data();
  const uint32_t expected = UnmaskCrc(DecodeFixed32(data + handle.size + 1));
  const uint32_t actual = Crc32c(data, handle.size + 1);
  if (expected != actual) {
    return Status::Corruption("block checksum mismatch");
  }
  if (data[handle.size] != kNoCompression) {
    return Status::Corruption("unknown block type");
  }
  raw->resize(handle.size);
  return Status::OK();
}

Status ReadBlockContents(RandomAccessFile* file, const BlockHandle& handle,
                         std::string* contents) {
  // Read straight into the destination string: the buffer handed to the
  // cache is the buffer the device filled, so the buffered path has zero
  // intermediate copies (O_DIRECT backends bounce once internally through
  // an aligned window — see io/aligned_read.h).
  const size_t n = handle.size + kBlockTrailerSize;
  contents->resize(n);
  Slice result;
  MONKEYDB_RETURN_IF_ERROR(
      file->Read(handle.offset, n, &result, contents->data()));
  if (result.size() != n) {
    return Status::Corruption("truncated block read");
  }
  // An env may return a slice into its own storage instead of scratch
  // (MemEnv does); fold it back into the destination in that case.
  if (result.data() != contents->data()) {
    contents->assign(result.data(), result.size());
  }
  return VerifyAndStripBlockTrailer(handle, contents);
}

}  // namespace monkeydb
