#include "sstable/format.h"

#include <memory>

#include "util/hash.h"

namespace monkeydb {

void Footer::EncodeTo(std::string* dst) const {
  const size_t original_size = dst->size();
  filter_handle.EncodeTo(dst);
  index_handle.EncodeTo(dst);
  dst->resize(original_size + 40);  // Zero-pad the handle area.
  PutFixed64(dst, kMagicNumber);
}

Status Footer::DecodeFrom(Slice input) {
  if (input.size() < kEncodedLength) {
    return Status::Corruption("footer too short");
  }
  const char* magic_ptr = input.data() + kEncodedLength - 8;
  if (DecodeFixed64(magic_ptr) != kMagicNumber) {
    return Status::Corruption("bad table magic number");
  }
  Slice handles(input.data(), 40);
  MONKEYDB_RETURN_IF_ERROR(filter_handle.DecodeFrom(&handles));
  return index_handle.DecodeFrom(&handles);
}

Status ReadBlockContents(RandomAccessFile* file, const BlockHandle& handle,
                         std::string* contents) {
  const size_t n = handle.size + kBlockTrailerSize;
  auto buf = std::make_unique<char[]>(n);
  Slice result;
  MONKEYDB_RETURN_IF_ERROR(file->Read(handle.offset, n, &result, buf.get()));
  if (result.size() != n) {
    return Status::Corruption("truncated block read");
  }
  const char* data = result.data();
  const uint32_t expected = UnmaskCrc(DecodeFixed32(data + handle.size + 1));
  const uint32_t actual = Crc32c(data, handle.size + 1);
  if (expected != actual) {
    return Status::Corruption("block checksum mismatch");
  }
  if (data[handle.size] != kNoCompression) {
    return Status::Corruption("unknown block type");
  }
  contents->assign(data, handle.size);
  return Status::OK();
}

}  // namespace monkeydb
