#include "sstable/block.h"

#include <algorithm>
#include <cassert>

#include "util/coding.h"

namespace monkeydb {

// --- BlockBuilder ---

BlockBuilder::BlockBuilder(int restart_interval)
    : restart_interval_(restart_interval) {
  assert(restart_interval_ >= 1);
  restarts_.push_back(0);
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.clear();
  restarts_.push_back(0);
  counter_ = 0;
  finished_ = false;
  last_key_.clear();
}

size_t BlockBuilder::CurrentSizeEstimate() const {
  return buffer_.size() + restarts_.size() * sizeof(uint32_t) +
         sizeof(uint32_t);
}

void BlockBuilder::Add(const Slice& key, const Slice& value) {
  assert(!finished_);
  size_t shared = 0;
  if (counter_ < restart_interval_) {
    // Compute the shared prefix with the previous key.
    const size_t min_length = std::min(last_key_.size(), key.size());
    while (shared < min_length && last_key_[shared] == key[shared]) {
      shared++;
    }
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  const size_t non_shared = key.size() - shared;

  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(non_shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.append(key.data() + shared, non_shared);
  buffer_.append(value.data(), value.size());

  last_key_.resize(shared);
  last_key_.append(key.data() + shared, non_shared);
  counter_++;
}

Slice BlockBuilder::Finish() {
  for (uint32_t restart : restarts_) {
    PutFixed32(&buffer_, restart);
  }
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  finished_ = true;
  return Slice(buffer_);
}

// --- Block ---

Block::Block(std::shared_ptr<const std::string> contents)
    : contents_(std::move(contents)) {
  const std::string& c = *contents_;
  if (c.size() < sizeof(uint32_t)) return;
  num_restarts_ = DecodeFixed32(c.data() + c.size() - sizeof(uint32_t));
  const size_t restart_array_bytes =
      (static_cast<size_t>(num_restarts_) + 1) * sizeof(uint32_t);
  if (restart_array_bytes > c.size()) return;
  data_ = c.data();
  data_size_ = c.size() - restart_array_bytes;
  restarts_ = c.data() + data_size_;
  ok_ = true;
}

namespace {

class BlockIterator : public Iterator {
 public:
  BlockIterator(const InternalKeyComparator* comparator, const char* data,
                size_t data_size, const char* restarts, uint32_t num_restarts,
                std::shared_ptr<const std::string> owner)
      : comparator_(comparator),
        data_(data),
        data_size_(data_size),
        restarts_(restarts),
        num_restarts_(num_restarts),
        owner_(std::move(owner)),
        current_(data_size) {}

  bool Valid() const override { return current_ < data_size_; }

  void SeekToFirst() override {
    SeekToRestartPoint(0);
    ParseNextKey();
  }

  void SeekToLast() override {
    SeekToRestartPoint(num_restarts_ == 0 ? 0 : num_restarts_ - 1);
    while (ParseNextKey() && next_offset_ < data_size_) {
      // Keep advancing to the last entry.
    }
  }

  void Seek(const Slice& target) override {
    // Binary search over restart points: find the last restart whose key is
    // < target, then scan forward.
    uint32_t left = 0;
    uint32_t right = (num_restarts_ == 0) ? 0 : num_restarts_ - 1;
    while (left < right) {
      const uint32_t mid = (left + right + 1) / 2;
      Slice mid_key;
      if (!KeyAtRestart(mid, &mid_key)) {
        Corrupt();
        return;
      }
      if (comparator_->Compare(mid_key, target) < 0) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }
    SeekToRestartPoint(left);
    while (ParseNextKey()) {
      if (comparator_->Compare(Slice(key_), target) >= 0) return;
    }
  }

  void Next() override {
    assert(Valid());
    ParseNextKey();
  }

  void Prev() override {
    assert(Valid());
    // Find the restart point strictly before current_, then scan to the
    // entry preceding current_.
    const size_t original = current_;
    uint32_t restart_index = num_restarts_ - 1;
    while (restart_index > 0 && RestartOffset(restart_index) >= original) {
      restart_index--;
    }
    if (RestartOffset(restart_index) >= original) {
      current_ = data_size_;  // Before the first entry: invalidate.
      key_.clear();
      return;
    }
    SeekToRestartPoint(restart_index);
    while (true) {
      const size_t entry_start = next_offset_;
      if (!ParseNextKey()) return;
      if (next_offset_ >= original) {
        current_ = entry_start;
        return;
      }
    }
  }

  Slice key() const override {
    assert(Valid());
    return Slice(key_);
  }

  Slice value() const override {
    assert(Valid());
    return value_;
  }

  Status status() const override { return status_; }

 private:
  size_t RestartOffset(uint32_t index) const {
    return DecodeFixed32(restarts_ + index * sizeof(uint32_t));
  }

  void SeekToRestartPoint(uint32_t index) {
    key_.clear();
    next_offset_ = (num_restarts_ == 0) ? 0 : RestartOffset(index);
    current_ = data_size_;
    value_ = Slice();
  }

  // Decodes a full key at a restart point without disturbing the cursor.
  bool KeyAtRestart(uint32_t index, Slice* out) {
    const char* p = data_ + RestartOffset(index);
    const char* limit = data_ + data_size_;
    uint32_t shared, non_shared, value_len;
    p = GetVarint32Ptr(p, limit, &shared);
    if (p == nullptr || shared != 0) return false;
    p = GetVarint32Ptr(p, limit, &non_shared);
    if (p == nullptr) return false;
    p = GetVarint32Ptr(p, limit, &value_len);
    if (p == nullptr || p + non_shared > limit) return false;
    *out = Slice(p, non_shared);
    return true;
  }

  // Parses the entry at next_offset_ into key_/value_ and advances. Returns
  // false (and invalidates) at end of block or on corruption.
  bool ParseNextKey() {
    current_ = next_offset_;
    if (current_ >= data_size_) {
      key_.clear();
      value_ = Slice();
      current_ = data_size_;
      return false;
    }
    const char* p = data_ + current_;
    const char* limit = data_ + data_size_;
    uint32_t shared, non_shared, value_len;
    p = GetVarint32Ptr(p, limit, &shared);
    if (p) p = GetVarint32Ptr(p, limit, &non_shared);
    if (p) p = GetVarint32Ptr(p, limit, &value_len);
    if (p == nullptr || p + non_shared + value_len > limit ||
        shared > key_.size()) {
      Corrupt();
      return false;
    }
    key_.resize(shared);
    key_.append(p, non_shared);
    value_ = Slice(p + non_shared, value_len);
    next_offset_ = (p + non_shared + value_len) - data_;
    return true;
  }

  void Corrupt() {
    status_ = Status::Corruption("malformed block entry");
    current_ = data_size_;
    key_.clear();
  }

  const InternalKeyComparator* comparator_;
  const char* data_;
  size_t data_size_;
  const char* restarts_;
  uint32_t num_restarts_;
  std::shared_ptr<const std::string> owner_;  // Keeps the payload alive.

  size_t current_;       // Offset of current entry (data_size_ = invalid).
  size_t next_offset_ = 0;
  std::string key_;
  Slice value_;
  Status status_;
};

class ErrorIterator : public Iterator {
 public:
  explicit ErrorIterator(Status s) : status_(std::move(s)) {}
  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void SeekToLast() override {}
  void Seek(const Slice&) override {}
  void Next() override {}
  void Prev() override {}
  Slice key() const override { return Slice(); }
  Slice value() const override { return Slice(); }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

std::unique_ptr<Iterator> Block::NewIterator(
    const InternalKeyComparator* comparator) const {
  if (!ok_) {
    return std::make_unique<ErrorIterator>(
        Status::Corruption("malformed block"));
  }
  return std::make_unique<BlockIterator>(comparator, data_, data_size_,
                                         restarts_, num_restarts_, contents_);
}

}  // namespace monkeydb
