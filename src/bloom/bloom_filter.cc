#include "bloom/bloom_filter.h"

#include <cmath>

#include "bloom/bloom_math.h"
#include "util/hash.h"

namespace monkeydb {

namespace {

// Double hashing (Kirsch-Mitzenmacher): probe_i = h1 + i·h2. One 64-bit
// hash split into two 32-bit halves gives independent-enough h1/h2.
inline void SplitHash(uint64_t h, uint32_t* h1, uint32_t* h2) {
  *h1 = static_cast<uint32_t>(h);
  *h2 = static_cast<uint32_t>(h >> 32) | 1;  // Odd so it cycles all slots.
}

}  // namespace

void BloomFilterBuilder::AddKey(const Slice& key) {
  hashes_.push_back(XxHash64(key, /*seed=*/0xB10053ED));
}

std::string BloomFilterBuilder::Finish(double bits_per_key) {
  const double total_bits = bits_per_key * static_cast<double>(hashes_.size());
  return BuildFromHashes(total_bits);
}

std::string BloomFilterBuilder::FinishForFpr(double fpr) {
  const double total_bits =
      bloom::BitsForFpr(fpr, static_cast<double>(hashes_.size()));
  return BuildFromHashes(total_bits);
}

std::string BloomFilterBuilder::BuildFromHashes(double total_bits) {
  std::string result;
  if (total_bits < 1.0 || hashes_.empty()) {
    hashes_.clear();
    return result;  // Empty filter: MayContain always true.
  }

  uint64_t bits = static_cast<uint64_t>(std::llround(total_bits));
  if (bits < 64) bits = 64;  // Floor so tiny runs still filter something.
  const uint64_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  const double bits_per_entry =
      static_cast<double>(bits) / static_cast<double>(hashes_.size());
  const int k = bloom::OptimalNumProbes(bits_per_entry);

  result.resize(bytes, 0);
  char* array = result.data();
  for (uint64_t h : hashes_) {
    uint32_t h1, h2;
    SplitHash(h, &h1, &h2);
    for (int i = 0; i < k; i++) {
      const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % bits;
      array[bit / 8] |= static_cast<char>(1 << (bit % 8));
    }
  }
  result.push_back(static_cast<char>(k));
  hashes_.clear();
  return result;
}

bool BloomFilterReader::MayContain(const Slice& filter, const Slice& key) {
  if (filter.size() < 2) return true;  // Empty / degenerate filter.
  const size_t array_bytes = filter.size() - 1;
  const int k = static_cast<unsigned char>(filter[filter.size() - 1]);
  if (k > 30) return true;  // Reserved encodings: treat as always-positive.
  const uint64_t bits = array_bytes * 8;

  const uint64_t h = XxHash64(key, /*seed=*/0xB10053ED);
  uint32_t h1, h2;
  SplitHash(h, &h1, &h2);
  const char* array = filter.data();
  for (int i = 0; i < k; i++) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % bits;
    if ((array[bit / 8] & (1 << (bit % 8))) == 0) return false;
  }
  return true;
}

uint64_t BloomFilterReader::SizeBits(const Slice& filter) {
  if (filter.size() < 2) return 0;
  return (filter.size() - 1) * 8;
}

}  // namespace monkeydb
