// Bloom filter math from the paper (Eq. 2 and its inverse), assuming the
// optimal number of hash functions k = (bits/entries)·ln 2.
//
//   FPR  = e^{-(bits/entries)·ln(2)^2}                     (Eq. 2)
//   bits = -entries·ln(FPR)/ln(2)^2                        (Sec. 4.1)

#ifndef MONKEYDB_BLOOM_BLOOM_MATH_H_
#define MONKEYDB_BLOOM_BLOOM_MATH_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace monkeydb {
namespace bloom {

inline constexpr double kLn2 = 0.6931471805599453;
inline constexpr double kLn2Squared = kLn2 * kLn2;

// Expected false positive rate of a filter with the given bits-per-entry
// ratio (Eq. 2). bits_per_entry <= 0 yields FPR = 1 (no filter).
inline double FalsePositiveRate(double bits_per_entry) {
  if (bits_per_entry <= 0.0) return 1.0;
  return std::exp(-bits_per_entry * kLn2Squared);
}

// Bits per entry required to achieve the given false positive rate.
// fpr >= 1 requires 0 bits; fpr must be > 0.
inline double BitsPerEntryForFpr(double fpr) {
  if (fpr >= 1.0) return 0.0;
  return -std::log(fpr) / kLn2Squared;
}

// Total bits for `entries` keys at the given FPR.
inline double BitsForFpr(double fpr, double entries) {
  return BitsPerEntryForFpr(fpr) * entries;
}

// Optimal number of hash probes for a bits-per-entry ratio, clamped to
// [1, 30]. (k = bits/entries · ln 2 minimizes the FPR.)
inline int OptimalNumProbes(double bits_per_entry) {
  int k = static_cast<int>(std::lround(bits_per_entry * kLn2));
  return std::clamp(k, 1, 30);
}

}  // namespace bloom
}  // namespace monkeydb

#endif  // MONKEYDB_BLOOM_BLOOM_MATH_H_
