// BlockedBloomFilter: a register-/cache-friendly Bloom filter variant where
// all probes of a key land in one 64-byte cache line (as used by RocksDB's
// "new" filter format). Trades a small FPR penalty for ~k-fold fewer cache
// misses per query.
//
// Orthogonal to Monkey — the allocation policy decides *how many bits* a
// run gets; this decides how those bits are arranged. Serialized format:
//   [cache-line blocks][num_probes: 1 byte][kFormatTag: 1 byte]
// (The trailing tag distinguishes it from the standard filter's encoding;
// readers of one format must not be handed the other.)

#ifndef MONKEYDB_BLOOM_BLOCKED_BLOOM_FILTER_H_
#define MONKEYDB_BLOOM_BLOCKED_BLOOM_FILTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace monkeydb {

class BlockedBloomFilterBuilder {
 public:
  void AddKey(const Slice& key);

  size_t num_keys() const { return hashes_.size(); }

  // Builds a filter sized for bits_per_key (fractional ok); <= 0 yields the
  // empty always-positive filter. Resets the builder.
  std::string Finish(double bits_per_key);

 private:
  std::vector<uint64_t> hashes_;
};

class BlockedBloomFilterReader {
 public:
  static bool MayContain(const Slice& filter, const Slice& key);
  static uint64_t SizeBits(const Slice& filter);
};

}  // namespace monkeydb

#endif  // MONKEYDB_BLOOM_BLOCKED_BLOOM_FILTER_H_
