#include "bloom/blocked_bloom_filter.h"

#include <cmath>

#include "bloom/bloom_math.h"
#include "util/hash.h"

namespace monkeydb {

namespace {

constexpr size_t kBlockBytes = 64;  // One cache line.
constexpr size_t kBlockBits = kBlockBytes * 8;
constexpr char kFormatTag = 'B';

// Picks the block from the high hash bits, then derives in-block probe
// positions from the low bits via an odd multiplicative step.
struct ProbePlan {
  uint64_t block;
  uint32_t h1;
  uint32_t h2;
};

ProbePlan PlanProbes(uint64_t hash, uint64_t num_blocks) {
  ProbePlan plan;
  plan.block = (hash >> 32) % num_blocks;
  plan.h1 = static_cast<uint32_t>(hash);
  plan.h2 = (static_cast<uint32_t>(hash >> 17)) | 1;
  return plan;
}

}  // namespace

void BlockedBloomFilterBuilder::AddKey(const Slice& key) {
  hashes_.push_back(XxHash64(key, /*seed=*/0xB10C4ED));
}

std::string BlockedBloomFilterBuilder::Finish(double bits_per_key) {
  std::string result;
  const double total_bits =
      bits_per_key * static_cast<double>(hashes_.size());
  if (total_bits < 1.0 || hashes_.empty()) {
    hashes_.clear();
    return result;
  }
  uint64_t num_blocks = static_cast<uint64_t>(
      std::ceil(total_bits / static_cast<double>(kBlockBits)));
  if (num_blocks == 0) num_blocks = 1;

  const double bits_per_entry =
      static_cast<double>(num_blocks * kBlockBits) /
      static_cast<double>(hashes_.size());
  const int k = bloom::OptimalNumProbes(bits_per_entry);

  result.resize(num_blocks * kBlockBytes, 0);
  char* data = result.data();
  for (uint64_t hash : hashes_) {
    const ProbePlan plan = PlanProbes(hash, num_blocks);
    char* block = data + plan.block * kBlockBytes;
    for (int i = 0; i < k; i++) {
      const uint32_t bit =
          (plan.h1 + static_cast<uint32_t>(i) * plan.h2) % kBlockBits;
      block[bit / 8] |= static_cast<char>(1 << (bit % 8));
    }
  }
  result.push_back(static_cast<char>(k));
  result.push_back(kFormatTag);
  hashes_.clear();
  return result;
}

bool BlockedBloomFilterReader::MayContain(const Slice& filter,
                                          const Slice& key) {
  if (filter.size() < kBlockBytes + 2) return true;
  if (filter[filter.size() - 1] != kFormatTag) return true;
  const size_t array_bytes = filter.size() - 2;
  if (array_bytes % kBlockBytes != 0) return true;
  const uint64_t num_blocks = array_bytes / kBlockBytes;
  const int k = static_cast<unsigned char>(filter[filter.size() - 2]);
  if (k == 0 || k > 30) return true;

  const uint64_t hash = XxHash64(key, /*seed=*/0xB10C4ED);
  const ProbePlan plan = PlanProbes(hash, num_blocks);
  const char* block = filter.data() + plan.block * kBlockBytes;
  for (int i = 0; i < k; i++) {
    const uint32_t bit =
        (plan.h1 + static_cast<uint32_t>(i) * plan.h2) % kBlockBits;
    if ((block[bit / 8] & (1 << (bit % 8))) == 0) return false;
  }
  return true;
}

uint64_t BlockedBloomFilterReader::SizeBits(const Slice& filter) {
  if (filter.size() < kBlockBytes + 2) return 0;
  return (filter.size() - 2) * 8;
}

}  // namespace monkeydb
