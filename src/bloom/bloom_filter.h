// BloomFilter: a standard bit-array Bloom filter with double hashing,
// serializable into SSTable filter blocks.
//
// Monkey's contribution is *how many bits* each run's filter gets, so the
// filter itself is deliberately the textbook structure the paper assumes:
// optimal k = (bits/n)·ln 2 hash functions over a flat bit array, giving
// FPR = e^{-(bits/n)·ln(2)^2} (Eq. 2).
//
// Serialized format:
//   [bit array bytes][num_probes: 1 byte]
// An empty serialization (0 bytes) represents the "no filter" case (FPR = 1,
// MayContain always true) used for Monkey's unfiltered deep levels.

#ifndef MONKEYDB_BLOOM_BLOOM_FILTER_H_
#define MONKEYDB_BLOOM_BLOOM_FILTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace monkeydb {

class BloomFilterBuilder {
 public:
  BloomFilterBuilder() = default;

  // Registers a key to be included when the filter is built.
  void AddKey(const Slice& key);

  size_t num_keys() const { return hashes_.size(); }

  // Builds a filter sized for the given bits-per-key budget (fractional
  // budgets are honoured by rounding the *total* size, so e.g. 0.5 bits/key
  // over 1M keys still yields a useful filter). A budget <= 0 produces the
  // empty (always-positive) filter. Resets the builder.
  std::string Finish(double bits_per_key);

  // Builds a filter that targets the given false positive rate (Eq. 2
  // inverted). fpr >= 1 produces the empty filter.
  std::string FinishForFpr(double fpr);

  void Reset() { hashes_.clear(); }

 private:
  std::string BuildFromHashes(double total_bits);

  std::vector<uint64_t> hashes_;
};

// Stateless queries against a serialized filter.
class BloomFilterReader {
 public:
  // Returns false only if the key is definitely absent.
  static bool MayContain(const Slice& filter, const Slice& key);

  // Size in bits of the filter's bit array (0 for the empty filter).
  static uint64_t SizeBits(const Slice& filter);
};

}  // namespace monkeydb

#endif  // MONKEYDB_BLOOM_BLOOM_FILTER_H_
