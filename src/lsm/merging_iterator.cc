#include "lsm/merging_iterator.h"

#include <cassert>

namespace monkeydb {

namespace {

class MergingIterator : public Iterator {
 public:
  MergingIterator(const InternalKeyComparator* comparator,
                  std::vector<std::unique_ptr<Iterator>> children)
      : comparator_(comparator),
        children_(std::move(children)),
        current_(nullptr) {}

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    direction_ = kForward;
    FindSmallest();
  }

  void SeekToLast() override {
    for (auto& child : children_) child->SeekToLast();
    direction_ = kBackward;
    FindLargest();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) child->Seek(target);
    direction_ = kForward;
    FindSmallest();
  }

  void Next() override {
    assert(Valid());
    if (direction_ != kForward) {
      // Reposition all non-current children after the current key.
      const std::string key = current_->key().ToString();
      for (auto& child : children_) {
        if (child.get() == current_) continue;
        child->Seek(Slice(key));
        if (child->Valid() &&
            comparator_->Compare(child->key(), Slice(key)) == 0) {
          child->Next();
        }
      }
      direction_ = kForward;
    }
    current_->Next();
    FindSmallest();
  }

  void Prev() override {
    assert(Valid());
    if (direction_ != kBackward) {
      const std::string key = current_->key().ToString();
      for (auto& child : children_) {
        if (child.get() == current_) continue;
        child->Seek(Slice(key));
        if (child->Valid()) {
          child->Prev();  // First entry < key.
        } else {
          child->SeekToLast();  // All entries < key.
        }
      }
      direction_ = kBackward;
    }
    current_->Prev();
    FindLargest();
  }

  Slice key() const override {
    assert(Valid());
    return current_->key();
  }

  Slice value() const override {
    assert(Valid());
    return current_->value();
  }

  Status status() const override {
    for (const auto& child : children_) {
      MONKEYDB_RETURN_IF_ERROR(child->status());
    }
    return Status::OK();
  }

 private:
  enum Direction { kForward, kBackward };

  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (auto& child : children_) {
      if (!child->Valid()) continue;
      if (smallest == nullptr ||
          comparator_->Compare(child->key(), smallest->key()) < 0) {
        smallest = child.get();
      }
    }
    current_ = smallest;
  }

  void FindLargest() {
    Iterator* largest = nullptr;
    for (auto& child : children_) {
      if (!child->Valid()) continue;
      if (largest == nullptr ||
          comparator_->Compare(child->key(), largest->key()) > 0) {
        largest = child.get();
      }
    }
    current_ = largest;
  }

  const InternalKeyComparator* comparator_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_;
  Direction direction_ = kForward;
};

class EmptyIterator : public Iterator {
 public:
  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void SeekToLast() override {}
  void Seek(const Slice&) override {}
  void Next() override {}
  void Prev() override {}
  Slice key() const override { return Slice(); }
  Slice value() const override { return Slice(); }
  Status status() const override { return Status::OK(); }
};

}  // namespace

std::unique_ptr<Iterator> NewMergingIterator(
    const InternalKeyComparator* comparator,
    std::vector<std::unique_ptr<Iterator>> children) {
  if (children.empty()) return std::make_unique<EmptyIterator>();
  if (children.size() == 1) return std::move(children[0]);
  return std::make_unique<MergingIterator>(comparator, std::move(children));
}

}  // namespace monkeydb
