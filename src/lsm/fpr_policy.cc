#include "lsm/fpr_policy.h"

#include "bloom/bloom_math.h"

namespace monkeydb {

double UniformFprPolicy::RunFpr(const LsmShape& shape, int level) const {
  return bloom::FalsePositiveRate(shape.bits_per_entry_budget);
}

}  // namespace monkeydb
