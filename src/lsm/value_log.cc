#include "lsm/value_log.h"

#include <cstdlib>
#include <memory>
#include <vector>

#include "util/hash.h"

namespace monkeydb {

std::string ValueLog::FileName(uint64_t number) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "/vlog-%06llu.data",
           static_cast<unsigned long long>(number));
  return dir_ + buf;
}

// monkey-lint: io-under-mutex(fn) — pre-publication init: the log object
// escapes only on success, so mu_ is uncontended and held for the
// GUARDED_BY contracts alone.
Status ValueLog::Open(Env* env, const std::string& dbname,
                      std::unique_ptr<ValueLog>* log) {
  auto vlog = std::unique_ptr<ValueLog>(new ValueLog(env, dbname));

  // Continue numbering above any existing log files (their contents stay
  // readable via the handles already persisted in the tree).
  std::vector<std::string> children;
  // monkey-lint: status-sink — a fresh directory has nothing to list;
  // numbering then simply restarts at 1, which is correct.
  env->GetChildren(dbname, &children).IgnoreError();
  uint64_t max_number = 0;
  for (const std::string& child : children) {
    unsigned long long number;
    if (sscanf(child.c_str(), "vlog-%llu.data", &number) == 1) {
      max_number = std::max<uint64_t>(max_number, number);
    }
  }
  {
    // Pre-publication init; the lock is uncontended but keeps the
    // GUARDED_BY contract checkable.
    MutexLock lock(vlog->mu_);
    vlog->active_number_ = max_number + 1;
    MONKEYDB_RETURN_IF_ERROR(env->NewWritableFile(
        vlog->FileName(vlog->active_number_), &vlog->active_));
  }
  *log = std::move(vlog);
  return Status::OK();
}

// monkey-lint: io-under-mutex(fn) — the value log is a single append-only
// file: mu_ is what orders records and makes handle offsets correct, so
// the append (and requested sync) happen under it by design. Concurrency
// comes from the group-commit layer above, and ReaderFor keeps reads off
// this lock.
Status ValueLog::Add(const Slice& value, bool sync, ValueHandle* handle) {
  MutexLock lock(mu_);
  std::string header;
  PutFixed32(&header, MaskCrc(Crc32c(value.data(), value.size())));
  PutFixed32(&header, static_cast<uint32_t>(value.size()));

  handle->file_number = active_number_;
  handle->offset = active_offset_;
  handle->size = static_cast<uint32_t>(value.size());

  MONKEYDB_RETURN_IF_ERROR(active_->Append(header));
  MONKEYDB_RETURN_IF_ERROR(active_->Append(value));
  if (sync) MONKEYDB_RETURN_IF_ERROR(active_->Sync());
  active_offset_ += header.size() + value.size();
  bytes_appended_ += header.size() + value.size();
  return Status::OK();
}

Status ValueLog::ReaderFor(uint64_t number,
                           std::shared_ptr<RandomAccessFile>* reader) {
  {
    MutexLock lock(mu_);
    auto it = readers_.find(number);
    if (it != readers_.end()) {
      *reader = it->second;
      return Status::OK();
    }
  }
  // Cache miss: open with mu_ released. The open is a syscall, and mu_ is
  // the append lock — holding it here would park every writer (and, worse,
  // every Add's fsync would park this reader) behind a file open. Racing
  // misses both open the file; the first to re-acquire wins and the loser
  // adopts the cached reader, dropping its own.
  std::unique_ptr<RandomAccessFile> file;
  MONKEYDB_RETURN_IF_ERROR(env_->NewRandomAccessFile(FileName(number),
                                                     &file));
  auto shared = std::shared_ptr<RandomAccessFile>(std::move(file));
  MutexLock lock(mu_);
  auto inserted = readers_.emplace(number, shared);
  *reader = inserted.second ? shared : inserted.first->second;
  return Status::OK();
}

Status ValueLog::Get(const ValueHandle& handle, std::string* value) {
  std::shared_ptr<RandomAccessFile> reader;
  // Reading from the active file requires its buffered bytes to be
  // visible; our Env implementations write through, so this is safe.
  MONKEYDB_RETURN_IF_ERROR(ReaderFor(handle.file_number, &reader));

  const size_t n = 8 + handle.size;
  auto scratch = std::make_unique<char[]>(n);
  Slice result;
  MONKEYDB_RETURN_IF_ERROR(
      reader->Read(handle.offset, n, &result, scratch.get()));
  if (result.size() != n) {
    return Status::Corruption("short value-log read");
  }
  const uint32_t expected_crc = UnmaskCrc(DecodeFixed32(result.data()));
  const uint32_t stored_size = DecodeFixed32(result.data() + 4);
  if (stored_size != handle.size) {
    return Status::Corruption("value-log size mismatch");
  }
  if (Crc32c(result.data() + 8, handle.size) != expected_crc) {
    return Status::Corruption("value-log checksum mismatch");
  }
  value->assign(result.data() + 8, handle.size);
  return Status::OK();
}

}  // namespace monkeydb
