#include "lsm/version.h"

#include "util/coding.h"

namespace monkeydb {

int Version::DeepestNonEmptyLevel() const {
  for (int level = NumLevels(); level >= 1; level--) {
    if (!RunsAt(level).empty()) return level;
  }
  return 0;
}

uint64_t Version::EntriesAt(int level) const {
  uint64_t total = 0;
  for (const RunPtr& run : RunsAt(level)) total += run->num_entries;
  return total;
}

uint64_t Version::TotalEntries() const {
  uint64_t total = 0;
  for (const auto& level : levels_) {
    for (const auto& run : level) total += run->num_entries;
  }
  return total;
}

uint64_t Version::TotalRuns() const {
  uint64_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

uint64_t Version::TotalFilterBits() const {
  uint64_t total = 0;
  for (const auto& level : levels_) {
    for (const auto& run : level) {
      if (run->table != nullptr) total += run->table->filter_size_bits();
    }
  }
  return total;
}

uint64_t ReadView::MemEntries() const {
  uint64_t total = mem != nullptr ? mem->num_entries() : 0;
  for (const auto& m : imm) total += m->num_entries();
  return total;
}

std::vector<const MemTable*> ReadView::MemTables() const {
  std::vector<const MemTable*> tables;
  tables.reserve(1 + imm.size());
  if (mem != nullptr) tables.push_back(mem.get());
  for (const auto& m : imm) tables.push_back(m.get());
  return tables;
}

// Edit record tags.
namespace {
constexpr uint32_t kTagAddedRun = 1;
constexpr uint32_t kTagDeletedFile = 2;
constexpr uint32_t kTagLastSequence = 3;
constexpr uint32_t kTagNextFileNumber = 4;
}  // namespace

void VersionEdit::EncodeTo(std::string* dst) const {
  for (const AddedRun& run : added) {
    PutVarint32(dst, kTagAddedRun);
    PutVarint32(dst, static_cast<uint32_t>(run.level));
    PutVarint64(dst, run.file_number);
    PutVarint64(dst, run.file_size);
    PutVarint64(dst, run.num_entries);
    PutVarint64(dst, run.sequence);
    PutLengthPrefixedSlice(dst, Slice(run.smallest));
    PutLengthPrefixedSlice(dst, Slice(run.largest));
  }
  for (uint64_t file_number : deleted_files) {
    PutVarint32(dst, kTagDeletedFile);
    PutVarint64(dst, file_number);
  }
  PutVarint32(dst, kTagLastSequence);
  PutVarint64(dst, last_sequence);
  PutVarint32(dst, kTagNextFileNumber);
  PutVarint64(dst, next_file_number);
}

Status VersionEdit::DecodeFrom(const Slice& src) {
  added.clear();
  deleted_files.clear();
  Slice input = src;
  uint32_t tag;
  while (GetVarint32(&input, &tag)) {
    switch (tag) {
      case kTagAddedRun: {
        AddedRun run;
        uint32_t level;
        Slice smallest, largest;
        if (!GetVarint32(&input, &level) ||
            !GetVarint64(&input, &run.file_number) ||
            !GetVarint64(&input, &run.file_size) ||
            !GetVarint64(&input, &run.num_entries) ||
            !GetVarint64(&input, &run.sequence) ||
            !GetLengthPrefixedSlice(&input, &smallest) ||
            !GetLengthPrefixedSlice(&input, &largest)) {
          return Status::Corruption("bad AddedRun record");
        }
        run.level = static_cast<int>(level);
        run.smallest = smallest.ToString();
        run.largest = largest.ToString();
        added.push_back(std::move(run));
        break;
      }
      case kTagDeletedFile: {
        uint64_t file_number;
        if (!GetVarint64(&input, &file_number)) {
          return Status::Corruption("bad DeletedFile record");
        }
        deleted_files.push_back(file_number);
        break;
      }
      case kTagLastSequence:
        if (!GetVarint64(&input, &last_sequence)) {
          return Status::Corruption("bad LastSequence record");
        }
        break;
      case kTagNextFileNumber:
        if (!GetVarint64(&input, &next_file_number)) {
          return Status::Corruption("bad NextFileNumber record");
        }
        break;
      default:
        return Status::Corruption("unknown version edit tag");
    }
  }
  return Status::OK();
}

}  // namespace monkeydb
