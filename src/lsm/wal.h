// Write-ahead log: every update is appended here before entering the
// memtable, so the buffer's contents survive a crash (paper Sec. 2 buffers
// all updates in memory; the WAL is the standard durability companion).
//
// Record format (one record per *write group*: the group-commit leader
// coalesces every batch in its group into a single record, so a crash
// preserves whole groups — a superset of per-batch atomicity):
//   fixed32 masked_crc(payload) | fixed32 payload_length | payload
// Payload format:
//   fixed64 first_sequence | varint32 count |
//   count x { type byte | key (length-prefixed) | value (length-prefixed,
//             puts only) }

#ifndef MONKEYDB_LSM_WAL_H_
#define MONKEYDB_LSM_WAL_H_

#include <functional>
#include <memory>
#include <string>

#include "io/env.h"
#include "lsm/internal_key.h"
#include "util/slice.h"
#include "util/status.h"

namespace monkeydb {

class MetricsRegistry;

class WalWriter {
 public:
  explicit WalWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  // Routes the fsync portion of synchronous appends into
  // Hist::kWalSyncLatency (null = no histogram; the DB only sets this on
  // the WAL proper, not the manifest, so manifest syncs are not
  // misattributed).
  void SetMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  // Appends one record. If sync, fsyncs after the append.
  Status AddRecord(const Slice& payload, bool sync);

  Status Close() { return file_->Close(); }

 private:
  std::unique_ptr<WritableFile> file_;
  MetricsRegistry* metrics_ = nullptr;
};

class WalReader {
 public:
  explicit WalReader(std::unique_ptr<SequentialFile> file)
      : file_(std::move(file)) {}

  // Reads the next record into *payload (backed by *scratch). Returns false
  // at clean EOF or on a torn/corrupt tail (recovery stops there).
  bool ReadRecord(std::string* scratch, Slice* payload);

 private:
  std::unique_ptr<SequentialFile> file_;
};

// --- Batch payload encoding helpers ---

class WalBatch {
 public:
  explicit WalBatch(SequenceNumber first_sequence);

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  // Records a key whose value lives in the value log; handle_encoding is
  // the serialized ValueHandle.
  void PutHandle(const Slice& key, const Slice& handle_encoding);
  // Generic form of the three above (value is ignored for deletions); the
  // group-commit leader uses it to merge heterogeneous batches.
  void Add(ValueType type, const Slice& key, const Slice& value);

  uint32_t count() const { return count_; }
  Slice payload() const { return Slice(rep_); }

  // Decodes a batch payload, invoking apply(seq, type, key, value) for each
  // entry in order. Returns Corruption on malformed payloads.
  static Status Iterate(
      const Slice& payload,
      const std::function<void(SequenceNumber, ValueType, const Slice&,
                               const Slice&)>& apply);

 private:
  std::string rep_;
  uint32_t count_ = 0;
  size_t count_offset_;
};

}  // namespace monkeydb

#endif  // MONKEYDB_LSM_WAL_H_
