// DbOptions: the tuning knobs of the LSM engine — exactly the design knobs
// the paper identifies (Sec. 4): merge policy, size ratio T, buffer size
// M_buffer, filter memory M_filters (as bits per entry) and its allocation
// policy.

#ifndef MONKEYDB_LSM_OPTIONS_H_
#define MONKEYDB_LSM_OPTIONS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "io/block_cache.h"
#include "io/env.h"
#include "lsm/fpr_policy.h"
#include "obs/event_listener.h"
#include "obs/logger.h"
#include "util/comparator.h"

namespace monkeydb {

struct DbOptions {
  // Storage environment (use NewMemEnv() or GetPosixEnv(), optionally
  // wrapped in a CountingEnv). Null = the DB constructs and owns a
  // real-filesystem backend chosen by io_backend/use_direct_io below.
  Env* env = nullptr;

  // --- I/O substrate (consulted only when env == nullptr; see DESIGN.md
  // §12 "I/O substrate") ---

  // Which real-filesystem backend to build. kUring submits the batched
  // read plans (MultiGet stage 3, scan readahead windows) to the kernel as
  // one io_uring_enter each; it probes for io_uring at Open and falls back
  // to kPosix automatically — with a log line and a fallback-counter bump
  // — on kernels/containers without it. The MONKEYDB_IO_BACKEND
  // environment variable ("posix"/"uring") overrides this knob, so CI can
  // sweep backends without rebuilding.
  IoBackend io_backend = IoBackend::kPosix;

  // Open SSTables with O_DIRECT and read via aligned windows, bypassing
  // the OS page cache so block_cache is the only cache in the experiment.
  // Filesystems that reject O_DIRECT (tmpfs) degrade to buffered reads per
  // file. Adds exactly one aligned bounce copy per block read; the default
  // buffered path reads straight into the block's final storage.
  bool use_direct_io = false;

  const Comparator* comparator = nullptr;  // Defaults to bytewise.

  // --- LSM design knobs (paper Sec. 4, "Design Knobs") ---

  MergePolicy merge_policy = MergePolicy::kLeveling;

  // T: capacity ratio between adjacent levels. Must be >= 2.
  double size_ratio = 2.0;

  // M_buffer in bytes: flush the memtable once it reaches this size.
  size_t buffer_size_bytes = 1 << 20;  // 1 MB, the paper's default setup.

  // M_filters expressed as bits per entry. 0 disables filters entirely.
  double bits_per_entry = 5.0;  // The paper's default experimental setup.

  // How the filter memory is divided among levels. Null = uniform baseline.
  std::shared_ptr<const FprAllocationPolicy> fpr_policy;

  // --- Physical parameters ---

  // Disk page size; data blocks are page-aligned so one probe = one I/O.
  size_t page_size = 4096;

  // Optional block cache (paper Appendix F). Null = no cache.
  BlockCache* block_cache = nullptr;

  // Durability: fsync WAL appends. Off by default (experiments measure
  // steady-state I/O, not fsync latency).
  bool sync_writes = false;

  // WiscKey-style key-value separation: values of at least this many bytes
  // are stored in the value log and the tree keeps only a handle, so merges
  // move keys without their values (Sec. 6 "Reducing Merge Overheads").
  // 0 disables separation.
  size_t value_separation_threshold = 0;

  // Expected total number of entries (N). When set, filter-allocation
  // planning targets the final tree geometry instead of adapting to the
  // current fill level — this is how the paper's experiments configure
  // Monkey. 0 = adapt dynamically as the tree grows.
  uint64_t expected_entries = 0;

  // --- Threading (see DESIGN.md "Threading") ---

  // Run flushes and cascading merges on a background worker thread. A full
  // memtable is frozen into an immutable-memtable queue and the writer
  // continues into a fresh memtable; writers slow down and then stall only
  // when the queue reaches max_immutable_memtables. Off by default: the
  // synchronous mode keeps compactions on the writing thread with a
  // deterministic per-operation I/O schedule, which the model-validation
  // tests and figure benches rely on.
  bool background_compaction = false;

  // Capacity of the immutable-memtable queue (frozen memtables awaiting a
  // background flush). The writer is briefly slowed once the queue is one
  // short of full and stalls while it is full. Only used when
  // background_compaction is true. Must be >= 1.
  int max_immutable_memtables = 2;

  // Group commit: concurrent writers enqueue behind a writer queue; the
  // front writer (the leader) coalesces every pending batch — up to this
  // many payload bytes — into a single WAL record with one fsync (issued
  // when any group member asked for sync), applies the merged batch to the
  // memtable once, and wakes the followers with their individual statuses.
  // The leader's own batch always commits regardless of this cap. A single
  // uncontended writer forms a group of one, which is byte- and
  // I/O-identical to the pre-group-commit write path.
  size_t max_write_group_bytes = 1 << 20;

  // Number of threads executing merge work. 1 (the default) runs every
  // flush and merge single-threaded, exactly like the original engine
  // (bit-identical per-operation I/O schedule). Values > 1 create a pool
  // of compaction_threads - 1 extra workers and split large leveling
  // merges into that many disjoint key ranges at fence-pointer boundaries
  // (range-partitioned subcompactions): the ranges are merged in parallel
  // into separate output runs with disjoint user-key spans and installed
  // atomically as one version edit. Only leveling merges are partitioned
  // (tiering counts runs per level, so fragmenting a run would distort its
  // geometry); other policies ignore values > 1. Must be >= 1.
  int compaction_threads = 1;

  // Parallel write-group application (see DESIGN.md "Write path II").
  // With this on, the group-commit leader still assigns contiguous
  // sequence numbers and writes/fsyncs ONE WAL record for the whole
  // group, but instead of applying every batch itself it wakes the
  // followers and each writer inserts its own batch into the memtable
  // concurrently (lock-free CAS skiplist splices over a sharded,
  // hugepage-backed ConcurrentArena). The group's sequence is published
  // only after the last writer finishes, so reads never observe a
  // half-applied group. Off (the default) keeps the classic serial
  // leader-applies-all path, byte-identical to previous builds. The
  // MONKEYDB_CONCURRENT_MEMTABLE environment variable ("0"/"1")
  // overrides this knob, so CI can sweep both modes without rebuilding.
  // Hugepage backing for the arena is controlled independently by
  // MONKEYDB_ARENA_HUGEPAGE ("auto"/"thp"/"never"; see README).
  bool allow_concurrent_memtable_write = false;

  // Memtable arena block size in bytes; 0 picks a default: 4 KiB for the
  // classic single-writer arena (the historical value — flush-boundary
  // accounting depends on it, so the figure benches stay byte-identical),
  // and for the concurrent arena 2 MiB (one hugepage) clamped down to
  // buffer_size_bytes/2 (floor 64 KiB) so small write buffers do not
  // overshoot their flush threshold by a whole block.
  size_t arena_block_size = 0;

  // --- Read pipelining (see DESIGN.md "Read path") ---

  // Scan readahead depth: while a range scan is consuming data block k of
  // a run, the iterator keeps the next scan_readahead_blocks blocks of
  // that run in flight (an async-read hint to the Env plus, when
  // read_io_threads > 0, a background fetch into the block cache), so
  // crossing a block boundary does not stall on a cold read. 0 (the
  // default) disables readahead entirely: scans issue exactly the same
  // sequence of synchronous reads as the classic engine. Overridable per
  // iterator via ReadOptions::readahead_blocks.
  int scan_readahead_blocks = 0;

  // Threads in the shared read-path pool that executes scan readahead and
  // batched (MultiGet) block fetches. 0 disables the pool: readahead then
  // degrades to hint-only pipelining and MultiGet fetches its blocks
  // sequentially (both still correct, just less overlapped). The pool is
  // idle unless readahead or MultiGet is actually used.
  int read_io_threads = 4;

  // --- Observability (see DESIGN.md "Observability") ---

  // Maintain the MetricsRegistry: latency histograms (Get, MultiGet,
  // Write queue-wait/WAL-sync/memtable-apply, iterator Seek/Next, flush,
  // merge, subcompaction, block-cache lookup, WAL fsync) exported by
  // DB::DumpMetrics() in Prometheus or JSON form. Off by default: the
  // disabled path records nothing and never reads the clock, keeping the
  // figure benches' I/O and output byte-identical to a build without the
  // metrics layer. (Thread-local PerfContext breakdowns are independent of
  // this switch — see obs/perf_context.h.)
  bool enable_metrics = false;

  // Listeners receive flush/compaction/stall/WAL-rotation/filter-
  // allocation callbacks (contract in obs/event_listener.h). Callbacks may
  // fire with internal locks held: keep them fast and never call back into
  // the DB. Exceptions are caught and counted, never propagated.
  std::vector<std::shared_ptr<EventListener>> listeners;

  // Destination for the engine's info log (LevelDB's LOG file; create one
  // with NewFileLogger). Null = no logging. Events delivered to listeners
  // are also logged here.
  std::shared_ptr<Logger> info_log;
};

class Snapshot;

struct ReadOptions {
  bool fill_block_cache = true;
  // Read at this snapshot instead of the latest state. Not owned; must
  // stay unreleased for the duration of the read (nullptr = latest).
  const Snapshot* snapshot = nullptr;
  // Per-iterator scan readahead depth: -1 (the default) inherits
  // DbOptions::scan_readahead_blocks, 0 disables readahead for this
  // iterator, > 0 overrides the depth. Lets one DB serve pipelined and
  // classic scans side by side (benchmarks sweep this without reopening).
  int readahead_blocks = -1;
  // Force-arm request tracing for this read regardless of the global
  // sample rate: the call records a span tree (obs/trace.h) into the
  // flight recorder, retrievable via DB::DumpTrace(). Default off — a
  // non-traced read never touches the trace clock.
  bool trace = false;
};

struct WriteOptions {
  bool sync = false;
  // Force-arm request tracing for this write (see ReadOptions::trace).
  bool trace = false;
};

// ServerOptions: knobs of the RESP serving layer (src/server; DESIGN.md
// §14 "Serving layer"). The server is a separate binary (monkey_server)
// layered strictly on top of the DB API — none of these knobs affects an
// embedded DB, and DbOptions defaults are untouched.
struct ServerOptions {
  // Address/port the listener set binds. Port 0 binds an ephemeral port
  // (MonkeyServer::port() reports the one actually bound — tests use it).
  std::string server_bind = "127.0.0.1";
  int server_port = 6380;

  // Number of independent DB instances the keyspace is hash-partitioned
  // across. Each shard owns its own event-loop thread and its own
  // SO_REUSEPORT listener on server_port (the kernel spreads incoming
  // connections across them), so shards share no engine state at all:
  // separate memtables, WALs, compaction workers, block caches. Commands
  // route per key (XxHash64 % shards); MGET/MSET/DEL spanning shards are
  // split per shard and reassembled in request order. Must be >= 1.
  int server_shards = 1;

  // listen(2) backlog per shard listener.
  int server_backlog = 511;

  // Disable Nagle on accepted sockets; pipelined request/response traffic
  // wants its replies on the wire immediately.
  bool server_tcp_nodelay = true;

  // Pipelining cap: at most this many parsed-but-unanswered commands are
  // coalesced per connection per event-loop tick. Commands beyond the cap
  // stay buffered and feed the next tick. Bounds the per-tick batch fed
  // into MultiGet/the group-commit writer and the reply burst a single
  // connection can generate.
  int server_max_pipeline = 1024;

  // Slow-client backpressure (bounded output queue). When a connection's
  // unflushed reply bytes exceed the soft limit the server stops reading
  // from it (EPOLLIN dropped) until the backlog drains below half the
  // limit; past the hard limit the connection is closed outright. A
  // pipelined reply burst can overshoot the soft limit by at most one
  // tick's replies; the hard limit is the true bound.
  size_t server_output_soft_limit_bytes = 8u << 20;
  size_t server_output_hard_limit_bytes = 64u << 20;

  // Protocol limits, RESP frames violating them get an -ERR "Protocol
  // error" reply and the connection is closed (never a crash): max bytes
  // of one bulk argument, max elements of one multibulk command, and max
  // bytes of one inline command line.
  size_t server_max_bulk_bytes = 64u << 20;
  size_t server_max_multibulk = 1u << 20;
  size_t server_max_inline_bytes = 64u << 10;

  // Tracing / SLOWLOG (DESIGN.md §16). trace_sample_rate head-samples
  // incoming commands into the flight recorder: each command run is armed
  // with this probability and its spans land in the per-thread trace
  // rings, served back via `TRACE`, `SLOWLOG GET`, and HTTP /trace. The
  // MONKEYDB_TRACE_SAMPLE environment variable, when set, overrides this
  // knob (same contract as MONKEYDB_IO_BACKEND). 0.0 (the default) keeps
  // the request path free of clock reads entirely.
  double trace_sample_rate = 0.0;

  // Tail capture: a command run slower than this threshold is recorded in
  // the server's SLOWLOG ring together with its span tree (runs are
  // always armed for tracing while the threshold is active, so the tree
  // exists even for un-sampled requests). 0 (the default) disables the
  // slowlog and its per-run clock reads. slowlog_max_len bounds the ring;
  // oldest entries fall off.
  uint64_t slowlog_threshold_us = 0;
  size_t slowlog_max_len = 128;

  // Maintain the server's own MetricsRegistry: per-command latency
  // summaries (server_get/set/del/mget/mset/scan_latency_us), the
  // pipeline-depth histogram, and connection/protocol/backpressure
  // counters. Independent of db_options.enable_metrics (the per-shard
  // engine registries). On by default — observability is the point of a
  // server; turn it off to shave the clock reads.
  bool server_enable_metrics = true;

  // Template DbOptions every shard DB is opened with (shard i lives in
  // <data_dir>/shard-<i>). env must be null or a thread-safe Env shared
  // by all shards (tests pass one MemEnv); when null each shard builds
  // and owns its own backend per io_backend/use_direct_io, so io_uring
  // rings are per shard. enable_metrics here governs the engine
  // histograms that /metrics exports per shard.
  DbOptions db_options;
};

}  // namespace monkeydb

#endif  // MONKEYDB_LSM_OPTIONS_H_
