// Snapshot: a pinned sequence number giving a consistent point-in-time
// read view. While a snapshot is active, compactions retain the newest
// version of each key that is visible at it.

#ifndef MONKEYDB_LSM_SNAPSHOT_H_
#define MONKEYDB_LSM_SNAPSHOT_H_

#include "lsm/internal_key.h"

namespace monkeydb {

class DB;

class Snapshot {
 public:
  SequenceNumber sequence() const { return sequence_; }

 private:
  friend class DB;
  explicit Snapshot(SequenceNumber sequence) : sequence_(sequence) {}

  const SequenceNumber sequence_;
};

}  // namespace monkeydb

#endif  // MONKEYDB_LSM_SNAPSHOT_H_
