// Version: the current set of disk-resident runs, organized into levels of
// exponentially increasing capacity (paper Fig. 2), plus the manifest that
// makes this state recoverable.
//
// Level 0 is the in-memory buffer (the memtable); levels 1..L hold runs.
// With leveling a level holds at most one run; with tiering up to T-1 runs
// ordered newest-first.

#ifndef MONKEYDB_LSM_VERSION_H_
#define MONKEYDB_LSM_VERSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/env.h"
#include "lsm/internal_key.h"
#include "memtable/memtable.h"
#include "sstable/table_reader.h"
#include "util/status.h"

namespace monkeydb {

// Metadata + open reader for one immutable sorted run.
struct RunMetadata {
  uint64_t file_number = 0;
  uint64_t file_size = 0;
  uint64_t num_entries = 0;
  uint64_t sequence = 0;  // Creation order; larger = newer.
  std::string smallest;   // Internal keys.
  std::string largest;
  std::shared_ptr<TableReader> table;  // Open reader (always set in memory).
};

using RunPtr = std::shared_ptr<RunMetadata>;

// The levels of the tree. levels()[0] corresponds to Level 1 in the paper's
// numbering (index i holds Level i+1).
//
// Concurrency: the engine keeps one master Version that is only mutated
// under the writer/compaction locks, and publishes immutable copies to
// readers via ReadView (below). Copying is cheap — levels hold shared_ptrs
// to immutable runs, so a copy shares every run and TableReader.
class Version {
 public:
  const std::vector<std::vector<RunPtr>>& levels() const { return levels_; }
  std::vector<std::vector<RunPtr>>* mutable_levels() { return &levels_; }

  // Ensures the vector has at least `level` levels (1-based).
  void EnsureLevel(int level) {
    if (static_cast<int>(levels_.size()) < level) levels_.resize(level);
  }

  // Runs at a 1-based level, newest first.
  const std::vector<RunPtr>& RunsAt(int level) const {
    static const std::vector<RunPtr> kEmpty;
    if (level < 1 || level > static_cast<int>(levels_.size())) return kEmpty;
    return levels_[level - 1];
  }

  int NumLevels() const { return static_cast<int>(levels_.size()); }

  // Deepest level with at least one run (0 if the tree is empty on disk).
  int DeepestNonEmptyLevel() const;

  // Total entries at a 1-based level. A level normally holds whole runs,
  // but after a range-partitioned subcompaction it may hold several
  // disjoint fragments of one logical run — capacity checks must sum them.
  uint64_t EntriesAt(int level) const;

  uint64_t TotalEntries() const;
  uint64_t TotalRuns() const;
  uint64_t TotalFilterBits() const;

 private:
  std::vector<std::vector<RunPtr>> levels_;
};

// A consistent, immutable snapshot of the whole tree as seen by the read
// path: the active memtable, any frozen (immutable) memtables awaiting a
// background flush (newest first), and the disk-resident runs. The engine
// publishes a new ReadView (a pointer swap under a dedicated micro-mutex,
// never held across I/O) after every structural change;
// Get/NewIterator/GetStats copy the pointer once and then probe
// filters and read blocks without holding any lock. Every component is
// reference-counted, so a view stays valid (and its run files readable —
// Envs keep removed-but-open files alive, POSIX unlink semantics) even
// after compactions replace the tree underneath it.
struct ReadView {
  std::shared_ptr<MemTable> mem;
  std::vector<std::shared_ptr<MemTable>> imm;  // Newest first.
  std::shared_ptr<const Version> version;

  // Entries buffered in memory (active + immutable memtables).
  uint64_t MemEntries() const;

  // Every memtable in probe order: active first, then frozen newest-first.
  std::vector<const MemTable*> MemTables() const;
};

// --- Manifest: a log of version edits for recovery ---

// One edit record: files added to levels and file numbers deleted.
struct VersionEdit {
  struct AddedRun {
    int level = 1;
    uint64_t file_number = 0;
    uint64_t file_size = 0;
    uint64_t num_entries = 0;
    uint64_t sequence = 0;
    std::string smallest;
    std::string largest;
  };

  std::vector<AddedRun> added;
  std::vector<uint64_t> deleted_files;
  uint64_t last_sequence = 0;
  uint64_t next_file_number = 0;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& src);
};

}  // namespace monkeydb

#endif  // MONKEYDB_LSM_VERSION_H_
