// WriteBatch: a group of updates applied atomically — they share one WAL
// record, so after a crash either all of them or none of them survive.

#ifndef MONKEYDB_LSM_WRITE_BATCH_H_
#define MONKEYDB_LSM_WRITE_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lsm/internal_key.h"
#include "util/slice.h"

namespace monkeydb {

class WriteBatch {
 public:
  WriteBatch() = default;

  void Put(const Slice& key, const Slice& value) {
    ops_.push_back(Op{ValueType::kValue, key.ToString(), value.ToString()});
  }

  void Delete(const Slice& key) {
    ops_.push_back(Op{ValueType::kDeletion, key.ToString(), std::string()});
  }

  void Clear() { ops_.clear(); }

  size_t count() const { return ops_.size(); }

  // Internal: the recorded operations, in order.
  struct Op {
    ValueType type;
    std::string key;
    std::string value;
  };
  const std::vector<Op>& ops() const { return ops_; }

 private:
  std::vector<Op> ops_;
};

}  // namespace monkeydb

#endif  // MONKEYDB_LSM_WRITE_BATCH_H_
