// WriteBatch: a group of updates applied atomically — they share one WAL
// record, so after a crash either all of them or none of them survive.

#ifndef MONKEYDB_LSM_WRITE_BATCH_H_
#define MONKEYDB_LSM_WRITE_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lsm/internal_key.h"
#include "util/slice.h"

namespace monkeydb {

class WriteBatch {
 public:
  WriteBatch() = default;

  void Put(const Slice& key, const Slice& value) {
    ops_.push_back(Op{ValueType::kValue, key.ToString(), value.ToString()});
    approximate_bytes_ += key.size() + value.size() + kPerOpOverhead;
  }

  void Delete(const Slice& key) {
    ops_.push_back(Op{ValueType::kDeletion, key.ToString(), std::string()});
    approximate_bytes_ += key.size() + kPerOpOverhead;
  }

  void Clear() {
    ops_.clear();
    approximate_bytes_ = 0;
  }

  size_t count() const { return ops_.size(); }

  // Rough WAL payload footprint of this batch; the group-commit leader uses
  // it to cap how many follower batches join one write group.
  size_t approximate_bytes() const { return approximate_bytes_; }

  // Internal: the recorded operations, in order.
  struct Op {
    ValueType type;
    std::string key;
    std::string value;
  };
  const std::vector<Op>& ops() const { return ops_; }

 private:
  // Type byte plus two varint length prefixes, conservatively.
  static constexpr size_t kPerOpOverhead = 8;

  std::vector<Op> ops_;
  size_t approximate_bytes_ = 0;
};

}  // namespace monkeydb

#endif  // MONKEYDB_LSM_WRITE_BATCH_H_
