// MergingIterator: k-way merge over sorted child iterators, ordered by the
// internal key comparator. Ties (same internal key) cannot occur because
// sequence numbers are unique; for robustness, earlier children win.

#ifndef MONKEYDB_LSM_MERGING_ITERATOR_H_
#define MONKEYDB_LSM_MERGING_ITERATOR_H_

#include <memory>
#include <vector>

#include "lsm/internal_key.h"
#include "util/iterator.h"

namespace monkeydb {

// Takes ownership of the children. comparator must outlive the iterator.
std::unique_ptr<Iterator> NewMergingIterator(
    const InternalKeyComparator* comparator,
    std::vector<std::unique_ptr<Iterator>> children);

}  // namespace monkeydb

#endif  // MONKEYDB_LSM_MERGING_ITERATOR_H_
