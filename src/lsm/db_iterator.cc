// DbIterator: merges the memtable and every disk run into a forward
// iterator over live user keys — the engine's range-lookup path (the
// paper's Q: one cursor per run, sort-merge, skip superseded entries).

#include <cassert>

#include "lsm/db.h"
#include "lsm/merging_iterator.h"

namespace monkeydb {

class DbIterator : public Iterator {
 public:
  DbIterator(const DB* db, const InternalKeyComparator* comparator,
             std::unique_ptr<Iterator> internal_iter,
             SequenceNumber sequence,
             std::shared_ptr<const ReadView> pinned_view)
      : db_(db),
        comparator_(comparator),
        iter_(std::move(internal_iter)),
        sequence_(sequence),
        pinned_view_(std::move(pinned_view)) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    StopWatch watch(db_->metrics_.get(), Hist::kIterSeekLatency);
    iter_->SeekToFirst();
    FindNextUserEntry();
  }

  void Seek(const Slice& target) override {
    StopWatch watch(db_->metrics_.get(), Hist::kIterSeekLatency);
    // Seek to the newest version of target visible at the read sequence.
    LookupKey lookup(target, sequence_);
    iter_->Seek(lookup.internal_key());
    FindNextUserEntry();
  }

  void Next() override {
    assert(valid_);
    StopWatch watch(db_->metrics_.get(), Hist::kIterNextLatency);
    iter_->Next();
    FindNextUserEntry();
  }

  // Backward iteration is intentionally unsupported: the paper's range
  // lookups are forward scans (Sec. 4.2, Q).
  void SeekToLast() override { valid_ = false; }
  void Prev() override { valid_ = false; }

  Slice key() const override {
    assert(valid_);
    return Slice(saved_key_);
  }

  Slice value() const override {
    assert(valid_);
    return Slice(saved_value_);
  }

  Status status() const override {
    if (!status_.ok()) return status_;
    return iter_->status();
  }

 private:
  // Advances iter_ to the next visible, live user entry: the newest version
  // of each user key wins; tombstones hide all older versions.
  void FindNextUserEntry() {
    valid_ = false;
    while (iter_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(iter_->key(), &parsed)) {
        iter_->Next();
        continue;
      }
      if (parsed.sequence > sequence_) {
        iter_->Next();  // Written after the read snapshot.
        continue;
      }
      const bool same_as_skipped =
          has_skip_ && comparator_->user_comparator()->Compare(
                           parsed.user_key, Slice(skip_key_)) == 0;
      if (same_as_skipped) {
        iter_->Next();
        continue;
      }
      // Newest version of a fresh user key.
      if (parsed.type == ValueType::kDeletion) {
        skip_key_.assign(parsed.user_key.data(), parsed.user_key.size());
        has_skip_ = true;
        iter_->Next();
        continue;
      }
      // A live value: emit it, and skip its older versions.
      saved_key_.assign(parsed.user_key.data(), parsed.user_key.size());
      saved_value_.assign(iter_->value().data(), iter_->value().size());
      if (parsed.type == ValueType::kValueHandle) {
        status_ = db_->ResolveHandle(&saved_value_);
        if (!status_.ok()) return;  // Invalid; surfaced via status().
      }
      skip_key_ = saved_key_;
      has_skip_ = true;
      valid_ = true;
      return;
    }
  }

  const DB* db_;
  const InternalKeyComparator* comparator_;
  std::unique_ptr<Iterator> iter_;
  SequenceNumber sequence_;
  Status status_;
  // Keeps every memtable and TableReader under iter_ alive, even after
  // compactions replace the tree.
  std::shared_ptr<const ReadView> pinned_view_;

  bool valid_ = false;
  bool has_skip_ = false;
  std::string skip_key_;
  std::string saved_key_;
  std::string saved_value_;
};

std::unique_ptr<Iterator> DB::NewIterator(const ReadOptions& options) {
  // Lock-free: pin a published ReadView; the sequence is loaded first so
  // the view (at least as new) is guaranteed to contain every entry at or
  // below it.
  const SequenceNumber read_seq =
      options.snapshot != nullptr
          ? options.snapshot->sequence()
          : last_sequence_.load(std::memory_order_acquire);
  std::shared_ptr<const ReadView> view = CurrentView();
  std::vector<std::unique_ptr<Iterator>> children;
  for (const MemTable* mem : view->MemTables()) {
    children.push_back(mem->NewIterator());
  }
  // Scan pipelining: each table cursor prefetches its own upcoming blocks
  // (ReadOptions overrides the DB-wide depth; -1 inherits it). With depth 0
  // this is exactly the classic synchronous scan.
  TableScanOptions scan;
  scan.readahead_blocks = options.readahead_blocks >= 0
                              ? options.readahead_blocks
                              : options_.scan_readahead_blocks;
  scan.pool = read_pool_.get();
  const Version& version = *view->version;
  for (int level = 1; level <= version.NumLevels(); level++) {
    for (const RunPtr& run : version.RunsAt(level)) {
      children.push_back(run->table->NewIterator(scan));
    }
  }
  auto merged =
      NewMergingIterator(&internal_comparator_, std::move(children));
  return std::make_unique<DbIterator>(this, &internal_comparator_,
                                      std::move(merged), read_seq,
                                      std::move(view));
}

}  // namespace monkeydb
