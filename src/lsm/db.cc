#include "lsm/db.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <cmath>
#include <map>
#include <set>
#include <thread>

#include "io/uring_env.h"
#include "lsm/merging_iterator.h"
#include "obs/exposition.h"
#include "obs/perf_context.h"
#include "obs/trace.h"
#include "sstable/table_builder.h"
#include "util/coding.h"

namespace monkeydb {

namespace {

const FprAllocationPolicy* DefaultFprPolicy() {
  static const UniformFprPolicy* policy = new UniformFprPolicy;
  return policy;
}

std::string MakeTableFileName(const std::string& dbname, uint64_t number) {
  char buf[32];
  snprintf(buf, sizeof(buf), "/%06llu.sst",
           static_cast<unsigned long long>(number));
  return dbname + buf;
}

// Wall-clock timer that reads the clock only when enabled — used where a
// duration feeds both a histogram and an event struct, so the
// metrics-off/no-listeners path stays free of clock calls.
class OptionalTimer {
 public:
  explicit OptionalTimer(bool enabled) : enabled_(enabled) {
    if (enabled_) start_ = std::chrono::steady_clock::now();
  }
  uint64_t ElapsedMicros() const {
    if (!enabled_) return 0;
    // monkey-lint: io-under-mutex — metrics clock read: a vDSO call with
    // no syscall or blocking, deliberately charged to the covered
    // operation wherever it ends, including under mu_.
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  }

 private:
  bool enabled_;
  std::chrono::steady_clock::time_point start_;
};

// Memtable configuration derived from the DB's knobs. The classic path
// keeps arena_block_size = 0 (Arena's historical 4 KiB default — flush
// accounting granularity the figure benches depend on). The concurrent
// path defaults to 2 MiB blocks (one hugepage) but halves down to at most
// buffer_size/2 (floor 64 KiB) so a small write buffer is not blown past
// its flush threshold by a single block.
MemTableOptions MemTableOptionsFromDb(const DbOptions& options) {
  MemTableOptions mopts;
  mopts.concurrent_inserts = options.allow_concurrent_memtable_write;
  mopts.arena_block_size = options.arena_block_size;
  if (mopts.concurrent_inserts && mopts.arena_block_size == 0) {
    size_t block = ConcurrentArena::kHugePageSize;
    while (block > (64u << 10) && block > options.buffer_size_bytes / 2) {
      block /= 2;
    }
    mopts.arena_block_size = block;
  }
  return mopts;
}

}  // namespace

// Windowed (ring-of-epochs) views advanced once per DumpMetrics scrape;
// the fpr window tracks the three per-level probe counters the measured-FPR
// gauges are derived from, laid out [runs_probed | filter_negatives |
// false_positives] x kMaxLevels.
struct DB::WindowState {
  WindowState() : fpr(3 * Counters::kMaxLevels) {}
  EpochWindow fpr;
  WindowedHistogram get_latency;
};

DB::DB(const DbOptions& options, std::string name)
    : options_(options),
      name_(std::move(name)),
      internal_comparator_(options.comparator != nullptr
                               ? options.comparator
                               : BytewiseComparator()),
      mem_(std::make_shared<MemTable>(internal_comparator_,
                                      MemTableOptionsFromDb(options))),
      metrics_(options.enable_metrics ? new MetricsRegistry : nullptr) {}

DB::~DB() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  bg_work_cv_.SignalAll();
  bg_done_cv_.SignalAll();
  if (bg_thread_.joinable()) bg_thread_.join();
  // Only after the worker is gone is it safe to tear down wal_/manifest_
  // (and for the caller to destroy the Env). Uncontended by now, but
  // holding mu_ keeps the GUARDED_BY contract checkable.
  MutexLock lock(mu_);
  DrainObsoleteFilesLocked();
  // monkey-lint: io-under-mutex, status-sink — shutdown path: the worker
  // is joined and mu_ uncontended; a failed close loses nothing the WAL
  // protocol has not already made durable.
  if (wal_ != nullptr) wal_->Close().IgnoreError();
  if (manifest_ != nullptr) manifest_->Close().IgnoreError();
}

std::string DB::TableFileName(uint64_t number) const {
  return MakeTableFileName(name_, number);
}

std::string DB::WalFileName(uint64_t number) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "/wal-%06llu.log",
           static_cast<unsigned long long>(number));
  return name_ + buf;
}

Status DB::Open(const DbOptions& options, const std::string& name,
                std::unique_ptr<DB>* dbptr) {
  // No explicit Env: construct (and own) the real-filesystem backend named
  // by io_backend/use_direct_io. kUring probes at runtime and falls back
  // to the posix backend automatically, with a log line and a fallback-
  // counter bump, so the same binary runs on kernels without io_uring.
  DbOptions resolved = options;
  std::unique_ptr<Env> owned_env;
  UringEnv* uring_env = nullptr;
  if (resolved.env == nullptr) {
    IoBackend backend = resolved.io_backend;
    if (const char* override_name = getenv("MONKEYDB_IO_BACKEND")) {
      if (strcmp(override_name, "uring") == 0) {
        backend = IoBackend::kUring;
      } else if (strcmp(override_name, "posix") == 0) {
        backend = IoBackend::kPosix;
      }
    }
    if (backend == IoBackend::kUring) {
      UringEnvOptions uring_options;
      uring_options.use_direct_io = resolved.use_direct_io;
      Status uring_status;
      auto env = NewUringEnv(uring_options, &uring_status);
      if (env != nullptr) {
        uring_env = env.get();
        owned_env = std::move(env);
        if (resolved.info_log != nullptr) {
          resolved.info_log->Info("io backend: uring (direct_io=%d)",
                                  resolved.use_direct_io ? 1 : 0);
        }
      } else {
        RecordUringFallbackEvent();
        if (resolved.info_log != nullptr) {
          resolved.info_log->Warn(
              "io_uring unavailable (%s); falling back to posix backend",
              uring_status.ToString().c_str());
        }
      }
    }
    if (owned_env == nullptr) {
      EnvOptions env_options;
      env_options.use_direct_io = resolved.use_direct_io;
      owned_env = NewPosixEnv(env_options);
    }
    resolved.env = owned_env.get();
  }
  // Same override idiom for the concurrent-memtable write path: CI sweeps
  // both modes over the full test suite without rebuilding.
  if (const char* concurrent = getenv("MONKEYDB_CONCURRENT_MEMTABLE")) {
    if (strcmp(concurrent, "1") == 0) {
      resolved.allow_concurrent_memtable_write = true;
    } else if (strcmp(concurrent, "0") == 0) {
      resolved.allow_concurrent_memtable_write = false;
    }
  }
  if (resolved.size_ratio < 2.0) {
    return Status::InvalidArgument("size_ratio must be >= 2");
  }
  if (resolved.max_immutable_memtables < 1) {
    return Status::InvalidArgument("max_immutable_memtables must be >= 1");
  }
  if (resolved.compaction_threads < 1) {
    return Status::InvalidArgument("compaction_threads must be >= 1");
  }
  if (resolved.scan_readahead_blocks < 0) {
    return Status::InvalidArgument("scan_readahead_blocks must be >= 0");
  }
  if (resolved.read_io_threads < 0) {
    return Status::InvalidArgument("read_io_threads must be >= 0");
  }
  MONKEYDB_RETURN_IF_ERROR(resolved.env->CreateDir(name));

  auto db = std::unique_ptr<DB>(new DB(resolved, name));
  db->owned_env_ = std::move(owned_env);
  db->uring_env_ = uring_env;
  if (resolved.read_io_threads > 0) {
    db->read_pool_ = std::make_unique<ThreadPool>(resolved.read_io_threads);
  }
  MONKEYDB_RETURN_IF_ERROR(db->Recover());
  *dbptr = std::move(db);
  return Status::OK();
}

Status DB::OpenTable(RunPtr run) {
  std::unique_ptr<RandomAccessFile> file;
  const std::string fname = TableFileName(run->file_number);
  MONKEYDB_RETURN_IF_ERROR(options_.env->NewRandomAccessFile(fname, &file));
  TableReaderOptions topts;
  topts.comparator = &internal_comparator_;
  topts.block_cache = options_.block_cache;
  topts.cache_file_id = run->file_number;
  topts.metrics = metrics_.get();
  std::unique_ptr<TableReader> table;
  MONKEYDB_RETURN_IF_ERROR(
      TableReader::Open(topts, std::move(file), run->file_size, &table));
  run->table = std::move(table);
  return Status::OK();
}

// monkey-lint: io-under-mutex(fn) — recovery runs before the DB is
// published: no reader or writer exists yet, so mu_ is uncontended and
// held only to keep the GUARDED_BY contracts checkable.
Status DB::Recover() {
  MutexLock lock(mu_);
  const std::string manifest_path = name_ + "/MANIFEST";

  if (options_.value_separation_threshold > 0) {
    MONKEYDB_RETURN_IF_ERROR(ValueLog::Open(options_.env, name_, &vlog_));
  }

  if (options_.env->FileExists(manifest_path)) {
    // Replay version edits (metadata only).
    std::unique_ptr<SequentialFile> file;
    MONKEYDB_RETURN_IF_ERROR(
        options_.env->NewSequentialFile(manifest_path, &file));
    WalReader reader(std::move(file));
    std::string scratch;
    Slice record;
    while (reader.ReadRecord(&scratch, &record)) {
      VersionEdit edit;
      MONKEYDB_RETURN_IF_ERROR(edit.DecodeFrom(record));
      // Apply: deletes first, then adds.
      for (uint64_t fn : edit.deleted_files) {
        for (auto& level : *current_.mutable_levels()) {
          level.erase(std::remove_if(level.begin(), level.end(),
                                     [fn](const RunPtr& r) {
                                       return r->file_number == fn;
                                     }),
                      level.end());
        }
      }
      for (const VersionEdit::AddedRun& added : edit.added) {
        auto run = std::make_shared<RunMetadata>();
        run->file_number = added.file_number;
        run->file_size = added.file_size;
        run->num_entries = added.num_entries;
        run->sequence = added.sequence;
        run->smallest = added.smallest;
        run->largest = added.largest;
        current_.EnsureLevel(added.level);
        auto& level_runs = (*current_.mutable_levels())[added.level - 1];
        level_runs.push_back(std::move(run));
        std::sort(level_runs.begin(), level_runs.end(),
                  [](const RunPtr& a, const RunPtr& b) {
                    return a->sequence > b->sequence;  // Newest first.
                  });
      }
      if (edit.last_sequence > last_sequence_.load(std::memory_order_relaxed)) {
        last_sequence_.store(edit.last_sequence, std::memory_order_relaxed);
      }
      if (edit.next_file_number > next_file_number_) {
        next_file_number_ = edit.next_file_number;
      }
    }

    // Open tables for all surviving runs; remove orphaned files.
    std::set<uint64_t> live;
    for (auto& level : *current_.mutable_levels()) {
      for (auto& run : level) {
        MONKEYDB_RETURN_IF_ERROR(OpenTable(run));
        live.insert(run->file_number);
      }
    }
    std::vector<std::string> children;
    if (options_.env->GetChildren(name_, &children).ok()) {
      for (const std::string& child : children) {
        if (child.size() > 4 &&
            child.compare(child.size() - 4, 4, ".sst") == 0) {
          const uint64_t fn = strtoull(child.c_str(), nullptr, 10);
          if (live.count(fn) == 0) {
            // monkey-lint: status-sink — best-effort orphan sweep; a file
            // that survives is retried on the next Recover.
            options_.env->RemoveFile(name_ + "/" + child).IgnoreError();
          }
        }
      }
    }
  }

  // Replay WALs into the memtable: the legacy single "wal.log" (pre-rotation
  // layout) first, then numbered wal-*.log files in creation order.
  std::vector<std::string> old_wals;
  const std::string legacy_wal = name_ + "/wal.log";
  if (options_.env->FileExists(legacy_wal)) {
    MONKEYDB_RETURN_IF_ERROR(ReplayWal(legacy_wal));
    old_wals.push_back(legacy_wal);
  }
  {
    std::vector<std::string> children;
    std::vector<uint64_t> wal_numbers;
    if (options_.env->GetChildren(name_, &children).ok()) {
      for (const std::string& child : children) {
        if (child.rfind("wal-", 0) == 0 && child.size() > 8 &&
            child.compare(child.size() - 4, 4, ".log") == 0) {
          wal_numbers.push_back(strtoull(child.c_str() + 4, nullptr, 10));
        }
      }
    }
    std::sort(wal_numbers.begin(), wal_numbers.end());
    for (uint64_t number : wal_numbers) {
      MONKEYDB_RETURN_IF_ERROR(ReplayWal(WalFileName(number)));
      old_wals.push_back(WalFileName(number));
      if (number > wal_number_) wal_number_ = number;
    }
  }

  // Rewrite a fresh manifest snapshot.
  {
    std::unique_ptr<WritableFile> mfile;
    MONKEYDB_RETURN_IF_ERROR(
        options_.env->NewWritableFile(manifest_path + ".tmp", &mfile));
    manifest_ = std::make_unique<WalWriter>(std::move(mfile));
    VersionEdit snapshot;
    for (int level = 1; level <= current_.NumLevels(); level++) {
      for (const RunPtr& run : current_.RunsAt(level)) {
        VersionEdit::AddedRun added;
        added.level = level;
        added.file_number = run->file_number;
        added.file_size = run->file_size;
        added.num_entries = run->num_entries;
        added.sequence = run->sequence;
        added.smallest = run->smallest;
        added.largest = run->largest;
        snapshot.added.push_back(std::move(added));
      }
    }
    snapshot.last_sequence = last_sequence_.load(std::memory_order_relaxed);
    snapshot.next_file_number = next_file_number_;
    std::string encoded;
    snapshot.EncodeTo(&encoded);
    MONKEYDB_RETURN_IF_ERROR(
        manifest_->AddRecord(encoded, options_.sync_writes));
    MONKEYDB_RETURN_IF_ERROR(
        options_.env->RenameFile(manifest_path + ".tmp", manifest_path));
  }

  // Merge threads must exist before the replay flush below so its cascades
  // can already partition (and so synchronous mode gets parallelism too).
  if (options_.compaction_threads > 1) {
    compaction_pool_ =
        std::make_unique<ThreadPool>(options_.compaction_threads - 1);
  }

  // If WAL replay left entries in the memtable, persist them now (before the
  // replayed logs are discarded).
  if (mem_->num_entries() > 0) {
    MONKEYDB_RETURN_IF_ERROR(FlushMemTable(mem_, /*swap_active=*/true,
                                           /*io_unlock=*/false));
    MONKEYDB_RETURN_IF_ERROR(Cascade(/*io_unlock=*/false));
  }
  for (const std::string& wal : old_wals) {
    // monkey-lint: status-sink — best-effort retirement of replayed WALs;
    // a leftover is replayed again (idempotent) and re-retired next Open.
    options_.env->RemoveFile(wal).IgnoreError();
  }
  MONKEYDB_RETURN_IF_ERROR(NewWalLocked());
  DrainObsoleteFilesLocked();

  PublishViewLocked();
  if (options_.background_compaction) {
    bg_thread_ = std::thread(&DB::BackgroundMain, this);
  }
  return Status::OK();
}

// monkey-lint: io-under-mutex(fn) — recovery-only: called from Recover
// before the DB is published, where mu_ is uncontended (see Recover).
Status DB::ReplayWal(const std::string& wal_path) {
  std::unique_ptr<SequentialFile> file;
  MONKEYDB_RETURN_IF_ERROR(options_.env->NewSequentialFile(wal_path, &file));
  WalReader reader(std::move(file));
  std::string scratch;
  Slice record;
  // The lambda body is analyzed without this function's lock set, so hand
  // it the memtable pointer directly instead of reading mem_ inside it.
  MemTable* const mem = mem_.get();
  while (reader.ReadRecord(&scratch, &record)) {
    Status s = WalBatch::Iterate(
        record, [this, mem](SequenceNumber seq, ValueType type,
                            const Slice& key, const Slice& value) {
          mem->Add(seq, type, key, value);
          if (seq > last_sequence_.load(std::memory_order_relaxed)) {
            last_sequence_.store(seq, std::memory_order_relaxed);
          }
        });
    MONKEYDB_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

// monkey-lint: io-under-mutex(fn) — WAL rotation must be atomic with the
// memtable swap it accompanies: a commit between the swap and the new WAL
// would write into a log already slated for retirement. The close is a
// buffered-file teardown and the open a single create; both are the
// LevelDB-lineage rotation cost, paid under mu_ by design.
Status DB::NewWalLocked() {
  const uint64_t retired = wal_ != nullptr ? wal_number_ : 0;
  // monkey-lint: status-sink — the WAL being closed is already fully
  // synced by every committed group; close failure loses nothing.
  if (wal_ != nullptr) wal_->Close().IgnoreError();
  wal_number_++;
  std::unique_ptr<WritableFile> file;
  MONKEYDB_RETURN_IF_ERROR(
      options_.env->NewWritableFile(WalFileName(wal_number_), &file));
  wal_ = std::make_unique<WalWriter>(std::move(file));
  wal_->SetMetrics(metrics_.get());
  counters_.wal_rotations.fetch_add(1, std::memory_order_relaxed);
  if (HasObservers()) {
    WalRotationInfo info;
    info.retired_file_number = retired;
    info.new_file_number = wal_number_;
    if (options_.info_log != nullptr) {
      options_.info_log->Info("wal rotation: %llu -> %llu",
                              static_cast<unsigned long long>(retired),
                              static_cast<unsigned long long>(wal_number_));
    }
    NotifyListeners(
        [&info](EventListener* l) { l->OnWalRotation(info); });
  }
  return Status::OK();
}

// --- Read-view publication ---

void DB::PublishViewLocked() {
  auto view = std::make_shared<ReadView>();
  view->mem = mem_;
  view->imm.reserve(imm_.size());
  for (const ImmEntry& entry : imm_) view->imm.push_back(entry.mem);
  view->version = std::make_shared<const Version>(current_);
  MutexLock view_lock(view_mu_);
  view_ = std::move(view);
}

// --- Write path ---

Status DB::Put(const WriteOptions& options, const Slice& key,
               const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(options, batch);
}

Status DB::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, batch);
}

Status DB::Write(const WriteOptions& options, const WriteBatch& batch) {
  if (batch.count() == 0) return Status::OK();
  counters_.writes.fetch_add(1, std::memory_order_relaxed);
  StopWatch write_watch(metrics_.get(), Hist::kWriteLatency);
  if (PerfCountsEnabled()) GetPerfContext()->write_count++;
  TraceArmer trace_armer(options.trace || TraceSampleHead());
  TraceSpan write_span(TraceName::kDbWrite,
                       static_cast<int64_t>(batch.approximate_bytes()));
  Writer w(&batch, options.sync || options_.sync_writes, &mu_);
  MutexLock lock(mu_);
  writers_.push_back(&w);
  {
    // Queue wait: time parked behind the group-commit queue (zero for an
    // uncontended writer, which immediately becomes leader).
    StopWatch queue_watch(metrics_.get(), Hist::kWriteQueueWait);
    PerfTimer queue_timer(&GetPerfContext()->write_queue_wait_nanos);
    TraceSpan queue_span(TraceName::kWriteQueueWait);
    while (!w.done && &w != writers_.front()) {
      if (w.apply_assigned) {
        // Parallel group apply: the leader made this batch durable in the
        // group's WAL record and handed us its memtable insertion. Do it
        // (mu_ is released inside), then park again until the leader
        // publishes the group and marks us done.
        ApplyParallelWriter(&w);
        continue;
      }
      w.cv.Wait();
    }
    if (queue_span.armed()) queue_span.set_args(w.done ? 0 : 1);
  }
  if (w.done) {
    // A previous leader committed this batch.
    if (PerfCountsEnabled()) GetPerfContext()->write_groups_joined++;
    return w.status;
  }
  if (PerfCountsEnabled()) GetPerfContext()->write_groups_led++;

  // This thread is the group leader: it commits a prefix of the queue —
  // every batch that fits under max_write_group_bytes (its own always
  // does) — in one WAL append, then wakes the followers.
  std::vector<Writer*> group;
  size_t group_bytes = 0;
  for (Writer* writer : writers_) {
    if (!group.empty() &&
        group_bytes + writer->batch->approximate_bytes() >
            options_.max_write_group_bytes) {
      break;
    }
    group.push_back(writer);
    group_bytes += writer->batch->approximate_bytes();
  }
  counters_.write_groups.fetch_add(1, std::memory_order_relaxed);
  counters_.write_group_batches.fetch_add(group.size(),
                                          std::memory_order_relaxed);
  if (metrics_ != nullptr) {
    metrics_->Record(Hist::kWriteGroupSize, group.size());
  }

  Status status;
  if (!bg_error_.ok()) {
    status = bg_error_;
    for (Writer* writer : group) writer->status = status;
  } else {
    status = CommitGroupLocked(group);
  }

  // Trigger a flush before handing leadership over: MaybeCompactBuffer may
  // release mu_ (backpressure, synchronous compaction I/O), and keeping
  // this thread at the queue front for its duration stops a new leader
  // from committing into a memtable that is being swapped out. The flush
  // outcome is the leader's alone — the followers' batches are already
  // durably committed.
  if (status.ok()) {
    status = MaybeCompactBuffer();
  }

  // Pop the group and wake its members with their individual statuses.
  Writer* last_writer = group.back();
  while (true) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    if (ready != &w) {
      ready->done = true;
      ready->cv.Signal();
    }
    if (ready == last_writer) break;
  }
  if (!writers_.empty()) writers_.front()->cv.Signal();
  return status;
}

Status DB::CommitGroupLocked(const std::vector<Writer*>& group) {
  const SequenceNumber first_seq =
      last_sequence_.load(std::memory_order_relaxed) + 1;
  // The vlog/WAL appends and memtable inserts run with mu_ released so
  // enqueueing writers and the background worker proceed. mem_, wal_, and
  // vlog_ stay stable meanwhile: only the queue front commits, and every
  // maintenance path that swaps them first waits for commit_in_flight_ to
  // clear (holding mu_, which also blocks the next leader).
  commit_in_flight_ = true;

  // Hoisted out of the unlock window: the parallel-apply path reuses the
  // per-member resolutions after mu_ is reacquired, and the leader's
  // `resolved` vector must outlive the followers' insertions (they hold
  // raw pointers into it via Writer::apply_ops).
  std::vector<char> included(group.size(), 1);
  std::vector<std::vector<std::pair<ValueType, std::string>>> resolved(
      group.size());
  size_t included_members = 0;
  bool parallel_apply = false;
  {
    // The window: mem_/wal_/vlog_ are accessed with mu_ released, covered
    // by the commit_in_flight_ interlock described above (ScopedUnlock
    // hides the release from the thread-safety analysis by design).
    ScopedUnlock window(&mu_);

    // Key-value separation, resolved per member: large values go to the
    // value log first (so a WAL record's handle is durable only after its
    // value is). A member whose value-log append fails is excluded from the
    // group with its own error; the others still commit.
    for (size_t i = 0; i < group.size(); i++) {
      Writer* writer = group[i];
      auto& ops = resolved[i];
      ops.reserve(writer->batch->count());
      Status member_status;
      for (const WriteBatch::Op& op : writer->batch->ops()) {
        if (op.type == ValueType::kValue && vlog_ != nullptr &&
            op.value.size() >= options_.value_separation_threshold) {
          ValueHandle handle;
          member_status = vlog_->Add(op.value, writer->sync, &handle);
          if (!member_status.ok()) break;
          counters_.value_log_writes.fetch_add(1, std::memory_order_relaxed);
          counters_.value_log_bytes.fetch_add(op.value.size(),
                                              std::memory_order_relaxed);
          std::string encoding;
          handle.EncodeTo(&encoding);
          ops.emplace_back(ValueType::kValueHandle, std::move(encoding));
        } else {
          ops.emplace_back(op.type, op.value);
        }
      }
      if (!member_status.ok()) {
        included[i] = 0;
        writer->status = member_status;
      }
    }

    // One WAL record for the whole group; one fsync if any member asked.
    WalBatch wal_batch(first_seq);
    bool group_sync = false;
    size_t included_ops = 0;
    for (size_t i = 0; i < group.size(); i++) {
      if (!included[i]) continue;
      const auto& ops = group[i]->batch->ops();
      for (size_t j = 0; j < ops.size(); j++) {
        wal_batch.Add(resolved[i][j].first, ops[j].key, resolved[i][j].second);
      }
      included_ops += ops.size();
      included_members++;
      if (group[i]->sync) group_sync = true;
    }

    if (included_ops > 0) {
      Status append_status;
      {
        // kWalWriteLatency covers the whole AddRecord (the fsync portion
        // is additionally broken out as kWalSyncLatency inside WalWriter).
        StopWatch wal_watch(metrics_.get(), Hist::kWalWriteLatency);
        PerfTimer wal_timer(&GetPerfContext()->wal_write_nanos);
        TraceSpan wal_span(
            TraceName::kWalAppend,
            static_cast<int64_t>(wal_batch.payload().size()),
            group_sync ? 1 : 0);
        append_status = wal_->AddRecord(wal_batch.payload(), group_sync);
      }
      counters_.wal_appends.fetch_add(1, std::memory_order_relaxed);
      if (group_sync) {
        counters_.wal_syncs.fetch_add(1, std::memory_order_relaxed);
      }
      if (append_status.ok() && options_.allow_concurrent_memtable_write &&
          mem_->concurrent_inserts() && included_members > 1) {
        // The record is durable and more than one writer contributed:
        // apply it in parallel instead. The assignment must happen under
        // mu_ (it signals the followers' queue cvs), so just mark the
        // decision here and fall through past the window.
        parallel_apply = true;
      } else if (append_status.ok()) {
        // Apply with contiguous sequence numbers in queue order. Published
        // once at the end: readers filter by last_sequence_, so no prefix of
        // the group (or of any batch) ever becomes visible.
        StopWatch apply_watch(metrics_.get(), Hist::kMemtableApplyLatency);
        PerfTimer apply_timer(&GetPerfContext()->memtable_apply_nanos);
        TraceSpan apply_span(TraceName::kMemtableApply,
                             static_cast<int64_t>(included_members));
        SequenceNumber seq = first_seq;
        for (size_t i = 0; i < group.size(); i++) {
          if (!included[i]) continue;
          const auto& ops = group[i]->batch->ops();
          for (size_t j = 0; j < ops.size(); j++) {
            mem_->Add(seq++, resolved[i][j].first, ops[j].key,
                      resolved[i][j].second);
          }
          group[i]->status = Status::OK();
        }
        last_sequence_.store(seq - 1, std::memory_order_release);
      } else {
        // Not applied and possibly not durable: every included member fails.
        for (size_t i = 0; i < group.size(); i++) {
          if (included[i]) group[i]->status = append_status;
        }
      }
    }

  }

  if (parallel_apply) {
    // Parallel group application (allow_concurrent_memtable_write). With
    // mu_ held, hand every included follower a contiguous sequence chunk
    // (queue order — the exact assignment the serial path would make) and
    // wake it; each inserts its own batch into the memtable concurrently
    // via the skiplist's lock-free splices. commit_in_flight_ keeps mem_
    // stable for the raw pointers while mu_ is released.
    MemTable* mem_raw = mem_.get();
    const bool leader_included = included[0] != 0;
    ParallelApplyState state(static_cast<int>(included_members) -
                             (leader_included ? 1 : 0));
    SequenceNumber seq = first_seq;
    SequenceNumber leader_seq = 0;
    for (size_t i = 0; i < group.size(); i++) {
      if (!included[i]) continue;
      Writer* writer = group[i];
      const SequenceNumber member_first = seq;
      seq += writer->batch->ops().size();
      if (i == 0) {
        leader_seq = member_first;
        continue;  // The leader applies its own batch itself, below.
      }
      writer->apply_first_seq = member_first;
      writer->apply_ops = &resolved[i];
      writer->apply_state = &state;
      writer->apply_mem = mem_raw;
      writer->apply_assigned = true;
      writer->cv.Signal();
    }
    const SequenceNumber end_seq = seq - 1;
    counters_.memtable_parallel_groups.fetch_add(1,
                                                 std::memory_order_relaxed);
    counters_.memtable_parallel_batches.fetch_add(
        included_members, std::memory_order_relaxed);
    if (metrics_ != nullptr) {
      metrics_->Record(Hist::kParallelApplyFanout, included_members);
    }
    {
      ScopedUnlock window(&mu_);
      StopWatch apply_watch(metrics_.get(), Hist::kMemtableApplyLatency);
      PerfTimer apply_timer(&GetPerfContext()->memtable_apply_nanos);
      TraceSpan apply_span(TraceName::kMemtableApply,
                           static_cast<int64_t>(included_members));
      if (leader_included) {
        const auto& ops = group[0]->batch->ops();
        SequenceNumber s = leader_seq;
        for (size_t j = 0; j < ops.size(); j++) {
          mem_raw->Add(s++, resolved[0][j].first, ops[j].key,
                       resolved[0][j].second);
        }
        group[0]->status = Status::OK();
      }
      // Last-writer-out barrier: wait for every follower's insertions
      // before publishing the group's sequence, so readers never observe
      // a half-applied group. The followers' release decrements pair with
      // this acquire load, ordering their Adds (and their Status writes)
      // before the store below.
      {
        MutexLock barrier(state.mu);
        while (state.remaining.load(std::memory_order_acquire) > 0) {
          state.cv.Wait();
        }
      }
      last_sequence_.store(end_seq, std::memory_order_release);
    }
  }

  commit_in_flight_ = false;
  commit_cv_.SignalAll();
  return group[0]->status;
}

void DB::ApplyParallelWriter(Writer* w) {
  ParallelApplyState* state = w->apply_state;
  {
    // Same interlock story as the leader's window: the group's leader set
    // commit_in_flight_ and cannot clear it until this writer decrements
    // `remaining`, so apply_mem and apply_ops stay alive and stable.
    ScopedUnlock window(&mu_);
    PerfTimer apply_timer(&GetPerfContext()->memtable_apply_nanos);
    const auto& ops = w->batch->ops();
    const auto& resolved_ops = *w->apply_ops;
    SequenceNumber seq = w->apply_first_seq;
    for (size_t j = 0; j < ops.size(); j++) {
      w->apply_mem->Add(seq++, resolved_ops[j].first, ops[j].key,
                        resolved_ops[j].second);
    }
    w->status = Status::OK();
    // Release decrement: publishes this writer's Adds and status to the
    // leader's acquire load. Signal under the barrier mutex so the
    // leader's predicate check and wait cannot miss the final decrement.
    if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      MutexLock barrier(state->mu);
      state->cv.Signal();
    }
  }
  // Back under mu_; `state` may be gone already (the leader only waits
  // for the decrement), so only this writer's own fields are touched.
  w->apply_assigned = false;
  w->apply_ops = nullptr;
  w->apply_state = nullptr;
  w->apply_mem = nullptr;
}

void DB::AccumulateMemTableStats(const MemTable& mem) {
  if (!mem.concurrent_inserts()) return;
  const ConcurrentArena::StatsSnapshot s = mem.arena_stats();
  counters_.arena_cas_retries.fetch_add(s.cas_retries,
                                        std::memory_order_relaxed);
  counters_.arena_slow_allocs.fetch_add(s.slow_allocs,
                                        std::memory_order_relaxed);
  counters_.arena_shard_refills.fetch_add(s.shard_refills,
                                          std::memory_order_relaxed);
  counters_.arena_hugetlb_blocks.fetch_add(s.hugetlb_blocks,
                                           std::memory_order_relaxed);
  counters_.arena_thp_blocks.fetch_add(s.thp_blocks,
                                       std::memory_order_relaxed);
  counters_.arena_plain_blocks.fetch_add(s.plain_blocks,
                                         std::memory_order_relaxed);
  counters_.skiplist_cas_retries.fetch_add(mem.skiplist_cas_retries(),
                                           std::memory_order_relaxed);
}

Status DB::MaybeCompactBuffer() {
  if (mem_->ApproximateMemoryUsage() < options_.buffer_size_bytes) {
    return Status::OK();
  }
  if (options_.background_compaction) return SwitchMemTable();
  Status s = FlushActiveMemTableLocked();
  DrainObsoleteFilesLocked();
  return s;
}

Status DB::SwitchMemTable() {
  // Soft backpressure: one queue slot left — slow this writer down to give
  // the worker a head start before the hard stall.
  if (options_.max_immutable_memtables >= 2 &&
      static_cast<int>(imm_.size()) == options_.max_immutable_memtables - 1) {
    counters_.write_slowdowns.fetch_add(1, std::memory_order_relaxed);
    SetStallCondition(WriteStallInfo::Condition::kSlowdown);
    mu_.Unlock();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    mu_.Lock();
  }
  while (static_cast<int>(imm_.size()) >= options_.max_immutable_memtables &&
         bg_error_.ok() && !shutting_down_) {
    counters_.write_stalls.fetch_add(1, std::memory_order_relaxed);
    SetStallCondition(WriteStallInfo::Condition::kStalled);
    bg_done_cv_.Wait();
  }
  SetStallCondition(WriteStallInfo::Condition::kNormal);
  if (!bg_error_.ok()) return bg_error_;
  if (shutting_down_) return Status::IoError("shutting down");

  // Never swap mem_/wal_ out from under a group-commit leader working
  // outside mu_ (this caller may not be the leader: Flush() and the stall
  // wait above release mu_, so a commit can be in flight here).
  while (commit_in_flight_) commit_cv_.Wait();

  // The frozen memtable takes no more Adds (the commit wait above), so
  // its contention counters are final: fold them into the DB aggregates.
  AccumulateMemTableStats(*mem_);
  imm_.insert(imm_.begin(), ImmEntry{mem_, wal_number_});
  MONKEYDB_RETURN_IF_ERROR(NewWalLocked());
  mem_ = std::make_shared<MemTable>(internal_comparator_,
                                    MemTableOptionsFromDb(options_));
  PublishViewLocked();
  bg_work_cv_.Signal();
  return Status::OK();
}

Status DB::FlushActiveMemTableLocked() {
  // A group-commit leader may be mid-commit outside mu_ when an external
  // Flush()/CompactAll() lands here; wait it out before touching mem_/wal_.
  // (The caller holds mu_ from here on, so no new commit can start.)
  while (commit_in_flight_) commit_cv_.Wait();
  if (mem_->num_entries() == 0) return Status::OK();
  MONKEYDB_RETURN_IF_ERROR(FlushMemTable(mem_, /*swap_active=*/true,
                                         /*io_unlock=*/false));
  MONKEYDB_RETURN_IF_ERROR(Cascade(/*io_unlock=*/false));
  // The flushed entries are durable as a run; retire their WAL. The
  // unlink is queued — every caller drains right after this returns.
  const uint64_t old_wal = wal_number_;
  MONKEYDB_RETURN_IF_ERROR(NewWalLocked());
  obsolete_files_.push_back(WalFileName(old_wal));
  return Status::OK();
}

// --- Background worker ---

void DB::BackgroundMain() {
  MutexLock lock(mu_);
  while (true) {
    while (!(shutting_down_ ||
             (bg_error_.ok() && (!imm_.empty() || CascadePendingLocked())))) {
      bg_work_cv_.Wait();
    }
    // Pending frozen memtables stay durable in their WALs and are replayed
    // on the next Open.
    if (shutting_down_) break;
    worker_busy_ = true;
    // Flushes outrank merges: a cascade abandoned mid-way (its early-exit
    // fires when a frozen memtable arrives) leaves CascadePendingLocked()
    // true, so the loop comes back to it once the queue is drained.
    Status s = !imm_.empty() ? FlushOldestImmutable()
                             : Cascade(/*io_unlock=*/true);
    // Unlink retired files before clearing worker_busy_: WaitForDrain
    // returns once the worker idles, and "drained" includes the disk
    // reflecting the new tree.
    DrainObsoleteFilesLocked();
    worker_busy_ = false;
    if (!s.ok() && bg_error_.ok()) bg_error_ = s;
    bg_done_cv_.SignalAll();
  }
}

Status DB::FlushOldestImmutable() {
  ImmEntry entry = imm_.back();
  MONKEYDB_RETURN_IF_ERROR(FlushMemTable(entry.mem, /*swap_active=*/false,
                                         /*io_unlock=*/true));
  // Retire the frozen memtable and the WAL that kept it durable. The pop
  // happens after its run is published, so readers always see the entries
  // in at least one place (briefly in both — duplicates at equal sequence
  // numbers resolve identically). It also happens BEFORE the cascades, so
  // their flush-priority early-exit only triggers for newly frozen
  // memtables, not the one whose entries were just persisted.
  imm_.pop_back();
  PublishViewLocked();
  obsolete_files_.push_back(WalFileName(entry.wal_number));
  return Cascade(/*io_unlock=*/true);
}

Status DB::WaitForDrain() {
  // The worker is awake whenever work exists (it only sleeps at a true
  // fixpoint), but nudge it anyway in case this caller created work
  // without a notification.
  bg_work_cv_.Signal();
  while ((!imm_.empty() || worker_busy_ || CascadePendingLocked()) &&
         bg_error_.ok() && !shutting_down_) {
    bg_done_cv_.Wait();
  }
  return bg_error_;
}

const Snapshot* DB::GetSnapshot() {
  MutexLock lock(mu_);
  const SequenceNumber seq = last_sequence_.load(std::memory_order_relaxed);
  snapshots_.insert(seq);
  return new Snapshot(seq);
}

void DB::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) return;
  {
    MutexLock lock(mu_);
    auto it = snapshots_.find(snapshot->sequence());
    if (it != snapshots_.end()) snapshots_.erase(it);
  }
  delete snapshot;
}

SequenceNumber DB::SmallestSnapshotLocked() const {
  return snapshots_.empty() ? last_sequence_.load(std::memory_order_relaxed)
                            : *snapshots_.begin();
}

// RAII around one merge: bumps the merge counter on entry, fires
// OnCompactionBegin immediately, and on destruction records
// Hist::kMergeLatency and fires OnCompactionCompleted — with ok=false
// unless Completed() ran, so early error returns report the failure.
class DB::CompactionScope {
 public:
  CompactionScope(DB* db, CompactionJobInfo info)
      : db_(db),
        info_(info),
        timer_(db->metrics_ != nullptr || db->HasObservers()) {
    db_->counters_.merges.fetch_add(1, std::memory_order_relaxed);
    if (!db_->HasObservers()) return;
    if (db_->options_.info_log != nullptr) {
      db_->options_.info_log->Info(
          "compaction begin: L%d -> L%d (%llu runs, %llu entries)",
          info_.input_level, info_.output_level,
          static_cast<unsigned long long>(info_.input_runs),
          static_cast<unsigned long long>(info_.input_entries));
    }
    db_->NotifyListeners(
        [this](EventListener* l) { l->OnCompactionBegin(info_); });
  }

  // Success epilogue. subcompactions is the number of output runs the
  // merge produced in parallel (1 for unpartitioned merges).
  void Completed(uint64_t output_entries, uint64_t subcompactions) {
    info_.output_entries = output_entries;
    info_.subcompactions = subcompactions > 0 ? subcompactions : 1;
    ok_ = true;
  }

  ~CompactionScope() {
    info_.micros = timer_.ElapsedMicros();
    info_.ok = ok_;
    if (db_->metrics_ != nullptr) {
      db_->metrics_->Record(Hist::kMergeLatency, info_.micros);
    }
    if (!db_->HasObservers()) return;
    if (db_->options_.info_log != nullptr) {
      db_->options_.info_log->Log(
          ok_ ? LogLevel::kInfo : LogLevel::kError,
          "compaction end: L%d -> L%d, %llu entries out, %llu us%s",
          info_.input_level, info_.output_level,
          static_cast<unsigned long long>(info_.output_entries),
          static_cast<unsigned long long>(info_.micros),
          ok_ ? "" : " (failed)");
    }
    db_->NotifyListeners(
        [this](EventListener* l) { l->OnCompactionCompleted(info_); });
  }

  CompactionScope(const CompactionScope&) = delete;
  CompactionScope& operator=(const CompactionScope&) = delete;

 private:
  DB* db_;
  CompactionJobInfo info_;
  OptionalTimer timer_;
  bool ok_ = false;
};

Status DB::Flush() {
  MutexLock lock(mu_);
  if (options_.background_compaction) {
    if (!bg_error_.ok()) return bg_error_;
    if (mem_->num_entries() > 0) {
      MONKEYDB_RETURN_IF_ERROR(SwitchMemTable());
    }
    return WaitForDrain();
  }
  Status s = FlushActiveMemTableLocked();
  DrainObsoleteFilesLocked();
  return s;
}

Status DB::CompactAll() {
  MutexLock lock(mu_);
  if (options_.background_compaction) {
    if (!bg_error_.ok()) return bg_error_;
    if (mem_->num_entries() > 0) {
      MONKEYDB_RETURN_IF_ERROR(SwitchMemTable());
    }
    MONKEYDB_RETURN_IF_ERROR(WaitForDrain());
    // The worker is idle and the queue empty; mu_ is held for the rest of
    // the merge, so the tree is stable (writers block — CompactAll is a
    // stop-the-world maintenance operation).
  } else {
    MONKEYDB_RETURN_IF_ERROR(FlushActiveMemTableLocked());
  }
  const int target = std::max(1, current_.DeepestNonEmptyLevel());

  VersionEdit edit;
  std::vector<std::unique_ptr<Iterator>> children;
  for (int level = 1; level <= current_.NumLevels(); level++) {
    for (const RunPtr& run : current_.RunsAt(level)) {
      children.push_back(run->table->NewIterator());
      edit.deleted_files.push_back(run->file_number);
    }
  }
  if (children.empty()) return Status::OK();
  CompactionJobInfo cinfo;
  cinfo.input_level = 1;
  cinfo.output_level = target;
  cinfo.input_runs = children.size();
  cinfo.input_entries = current_.TotalEntries();
  CompactionScope scope(this, cinfo);

  std::set<uint64_t> replaced(edit.deleted_files.begin(),
                              edit.deleted_files.end());
  auto merged = NewMergingIterator(&internal_comparator_, std::move(children));
  RunPtr out;
  MONKEYDB_RETURN_IF_ERROR(BuildRun(merged.get(), target,
                                    /*drop_tombstones=*/true,
                                    current_.TotalEntries(), replaced, &out,
                                    /*io_unlock=*/false));
  scope.Completed(out != nullptr ? out->num_entries : 0, 1);
  if (out != nullptr) {
    VersionEdit::AddedRun added;
    added.level = target;
    added.file_number = out->file_number;
    added.file_size = out->file_size;
    added.num_entries = out->num_entries;
    added.sequence = out->sequence;
    added.smallest = out->smallest;
    added.largest = out->largest;
    edit.added.push_back(std::move(added));
  }
  for (auto& level : *current_.mutable_levels()) level.clear();
  if (out != nullptr) {
    (*current_.mutable_levels())[target - 1].push_back(out);
  }
  Status s = LogAndApply(edit);
  // The merge is published; the stop-the-world window can end, so the
  // unlinks run with writers admitted again.
  DrainObsoleteFilesLocked();
  return s;
}

// --- Read path ---

Status DB::Get(const ReadOptions& options, const Slice& key,
               std::string* value) {
  counters_.gets.fetch_add(1, std::memory_order_relaxed);
  StopWatch get_watch(metrics_.get(), Hist::kGetLatency);
  PerfTimer get_timer(&GetPerfContext()->get_nanos);
  if (PerfCountsEnabled()) GetPerfContext()->get_count++;
  TraceArmer trace_armer(options.trace || TraceSampleHead());
  TraceSpan get_span(TraceName::kDbGet);

  // Load the read sequence BEFORE the view: the view loaded afterwards is
  // at least as new, so every entry at or below the sequence is in it.
  const SequenceNumber read_seq =
      options.snapshot != nullptr
          ? options.snapshot->sequence()
          : last_sequence_.load(std::memory_order_acquire);
  const std::shared_ptr<const ReadView> view = CurrentView();
  LookupKey lookup(key, read_seq);

  // 1. The buffer (Level 0): active memtable, then frozen ones newest-first.
  {
    PerfTimer mem_timer(&GetPerfContext()->memtable_lookup_nanos);
    TraceSpan mem_span(TraceName::kMemtableProbe);
    bool found_entry = false;
    ValueType type = ValueType::kValue;
    int memtables_probed = 0;
    for (const MemTable* mem : view->MemTables()) {
      memtables_probed++;
      Status s = mem->Get(lookup, value, &found_entry, &type);
      if (found_entry) {
        if (PerfCountsEnabled()) GetPerfContext()->memtable_hits++;
        if (mem_span.armed()) mem_span.set_args(memtables_probed, 1);
        if (get_span.armed()) get_span.set_args(1);
        if (s.ok() && type == ValueType::kValueHandle) {
          return ResolveHandle(value);
        }
        return s;
      }
    }
    if (mem_span.armed()) mem_span.set_args(memtables_probed, 0);
  }

  // 2. Disk levels, shallowest to deepest; runs newest to oldest.
  const Version& version = *view->version;
  const bool perf = PerfCountsEnabled();
  // Predicted per-level FPR for kRunProbe annotations (the allocator's
  // Eq. 5/6 plan, in parts-per-billion so the arg stays integral).
  // Computed once, and only for armed requests.
  const bool traced = get_span.armed();
  LsmShape trace_shape;
  const FprAllocationPolicy* trace_policy = nullptr;
  if (traced) {
    trace_shape = CurrentShape();
    trace_policy = options_.fpr_policy != nullptr ? options_.fpr_policy.get()
                                                  : DefaultFprPolicy();
  }
  for (int level = 1; level <= version.NumLevels(); level++) {
    // Stats index the first on-disk level as 0 and clamp at the array end.
    const int sl = StatLevel(level - 1);
    for (const RunPtr& run : version.RunsAt(level)) {
      TableLookupResult result;
      ValueType type = ValueType::kValue;
      TraceSpan run_span(TraceName::kRunProbe, level);
      MONKEYDB_RETURN_IF_ERROR(
          run->table->Get(lookup, value, &result, &type));
      if (run_span.armed()) {
        run_span.set_args(
            level, static_cast<int64_t>(result),
            static_cast<int64_t>(trace_policy->RunFpr(trace_shape, level) *
                                 1e9));
      }
      switch (result) {
        case TableLookupResult::kFound:
          counters_.runs_probed.fetch_add(1, std::memory_order_relaxed);
          counters_.runs_probed_per_level[sl].fetch_add(
              1, std::memory_order_relaxed);
          if (perf) {
            GetPerfContext()->runs_probed++;
            GetPerfContext()->runs_probed_per_level[sl]++;
          }
          if (get_span.armed()) get_span.set_args(1);
          if (type == ValueType::kValueHandle) return ResolveHandle(value);
          return Status::OK();
        case TableLookupResult::kDeleted:
          counters_.runs_probed.fetch_add(1, std::memory_order_relaxed);
          counters_.runs_probed_per_level[sl].fetch_add(
              1, std::memory_order_relaxed);
          if (perf) {
            GetPerfContext()->runs_probed++;
            GetPerfContext()->runs_probed_per_level[sl]++;
          }
          return Status::NotFound("deleted");
        case TableLookupResult::kNotPresent:
          counters_.runs_probed.fetch_add(1, std::memory_order_relaxed);
          counters_.runs_probed_per_level[sl].fetch_add(
              1, std::memory_order_relaxed);
          counters_.false_positives.fetch_add(1, std::memory_order_relaxed);
          counters_.false_positives_per_level[sl].fetch_add(
              1, std::memory_order_relaxed);
          if (perf) {
            GetPerfContext()->runs_probed++;
            GetPerfContext()->runs_probed_per_level[sl]++;
            GetPerfContext()->bloom_false_positives++;
            GetPerfContext()->false_positives_per_level[sl]++;
          }
          break;
        case TableLookupResult::kFilteredOut:
          counters_.filter_negatives.fetch_add(1, std::memory_order_relaxed);
          counters_.filter_negatives_per_level[sl].fetch_add(
              1, std::memory_order_relaxed);
          if (perf) {
            GetPerfContext()->filter_negatives_per_level[sl]++;
          }
          break;
      }
    }
  }
  // A bare NotFound is the paper's zero-result lookup: every disk access it
  // performed was a Bloom false positive (measured R in DumpMetrics).
  counters_.gets_not_found.fetch_add(1, std::memory_order_relaxed);
  return Status::NotFound();
}

std::vector<Status> DB::MultiGet(const ReadOptions& options,
                                 const std::vector<Slice>& keys,
                                 std::vector<std::string>* values) {
  counters_.multigets.fetch_add(1, std::memory_order_relaxed);
  counters_.gets.fetch_add(keys.size(), std::memory_order_relaxed);
  StopWatch batch_watch(metrics_.get(), Hist::kMultiGetLatency);
  TraceArmer trace_armer(options.trace || TraceSampleHead());
  TraceSpan batch_span(TraceName::kDbMultiGet,
                       static_cast<int64_t>(keys.size()));

  values->assign(keys.size(), std::string());
  std::vector<Status> statuses(keys.size(), Status::OK());
  if (keys.empty()) return statuses;

  // One snapshot for the whole batch (sequence before view, as in Get).
  const SequenceNumber read_seq =
      options.snapshot != nullptr
          ? options.snapshot->sequence()
          : last_sequence_.load(std::memory_order_acquire);
  const std::shared_ptr<const ReadView> view = CurrentView();

  std::vector<LookupKey> lookups;
  lookups.reserve(keys.size());
  for (const Slice& key : keys) lookups.emplace_back(key, read_seq);

  // Stage 1: the buffer (Level 0) — no I/O. Keys resolved here never reach
  // the disk stages.
  std::vector<bool> resolved(keys.size(), false);
  size_t unresolved = 0;
  for (size_t i = 0; i < keys.size(); i++) {
    bool found_entry = false;
    ValueType type = ValueType::kValue;
    for (const MemTable* mem : view->MemTables()) {
      Status s = mem->Get(lookups[i], &(*values)[i], &found_entry, &type);
      if (found_entry) {
        if (s.ok() && type == ValueType::kValueHandle) {
          s = ResolveHandle(&(*values)[i]);
        }
        statuses[i] = s;
        resolved[i] = true;
        break;
      }
    }
    if (!resolved[i]) unresolved++;
  }

  if (unresolved == 0) return statuses;

  // Stage 2: plan the disk probes — every (key, run) Bloom-filter and
  // fence-pointer probe up front, still no I/O. Each surviving probe names
  // exactly one data block.
  const Version& version = *view->version;
  struct Probe {
    const TableReader* table;
    BlockHandle handle;
    uint64_t file_number;
    int stat_level;  // StatLevel(level - 1) of the run that planned it.
  };
  // Per key, in run order (shallowest level first, runs newest first) —
  // the order Get would probe in.
  std::vector<std::vector<Probe>> probes(keys.size());
  for (int level = 1; level <= version.NumLevels(); level++) {
    const int sl = StatLevel(level - 1);
    for (const RunPtr& run : version.RunsAt(level)) {
      for (size_t i = 0; i < keys.size(); i++) {
        if (resolved[i]) continue;
        TableReader::ProbeState state;
        BlockHandle handle;
        Status s = run->table->FindBlockHandle(lookups[i], &handle, &state);
        if (!s.ok()) {
          statuses[i] = s;
          resolved[i] = true;
          continue;
        }
        switch (state) {
          case TableReader::ProbeState::kBlockNeeded:
            probes[i].push_back(Probe{run->table.get(), handle,
                                      run->file_number, sl});
            break;
          case TableReader::ProbeState::kFilteredOut:
            counters_.filter_negatives.fetch_add(1,
                                                 std::memory_order_relaxed);
            counters_.filter_negatives_per_level[sl].fetch_add(
                1, std::memory_order_relaxed);
            if (PerfCountsEnabled()) {
              GetPerfContext()->filter_negatives_per_level[sl]++;
            }
            break;
          case TableReader::ProbeState::kNoBlock:
            break;
        }
      }
    }
  }

  // Stage 3: fetch the surviving blocks together. Dedup (several keys can
  // share a block) and order by (file, offset) — one sorted pass over the
  // devices. Hints go out for every block before the first read, so the
  // reads overlap; the pool then fans them out when available.
  struct BlockFetch {
    const TableReader* table;
    BlockHandle handle;
    Status status;
    std::shared_ptr<const std::string> contents;
  };
  std::map<std::pair<uint64_t, uint64_t>, size_t> fetch_index;
  std::vector<BlockFetch> fetches;
  for (size_t i = 0; i < keys.size(); i++) {
    for (const Probe& probe : probes[i]) {
      fetch_index.emplace(
          std::make_pair(probe.file_number, probe.handle.offset),
          fetch_index.size());
    }
  }
  fetches.resize(fetch_index.size());
  for (size_t i = 0; i < keys.size(); i++) {
    for (const Probe& probe : probes[i]) {
      const size_t fi = fetch_index.at(
          std::make_pair(probe.file_number, probe.handle.offset));
      fetches[fi].table = probe.table;
      fetches[fi].handle = probe.handle;
    }
  }
  // fetch_index iterates in (file, offset) order.
  std::vector<size_t> fetch_order;
  fetch_order.reserve(fetches.size());
  for (const auto& [key, fi] : fetch_index) fetch_order.push_back(fi);

  // Partition the (sorted, hence per-table contiguous) plan: multi-block
  // groups on batch-capable tables are submitted to the device as ONE
  // ReadBatch each — the whole per-table fetch plan in one io_uring_enter
  // on the uring backend. Everything else keeps the classic path: an
  // async-read hint per block, then per-block fan-out.
  struct BatchGroup {
    const TableReader* table;
    std::vector<size_t> fis;
  };
  std::vector<BatchGroup> groups;
  std::vector<size_t> singles;
  for (size_t pos = 0; pos < fetch_order.size();) {
    const TableReader* table = fetches[fetch_order[pos]].table;
    size_t end = pos;
    while (end < fetch_order.size() &&
           fetches[fetch_order[end]].table == table) {
      end++;
    }
    if (table->SupportsBatchReads() && end - pos > 1) {
      groups.push_back(BatchGroup{
          table, std::vector<size_t>(fetch_order.begin() + pos,
                                     fetch_order.begin() + end)});
    } else {
      for (size_t k = pos; k < end; k++) singles.push_back(fetch_order[k]);
    }
    pos = end;
  }
  // Hints go out for every classic-path block before the first read, so
  // those reads overlap. Batched groups need no hints: the single
  // submission is the overlap mechanism.
  for (size_t fi : singles) {
    fetches[fi].table->HintBlock(fetches[fi].handle);
  }
  auto fetch_one = [&fetches](size_t fi) {
    BlockFetch& f = fetches[fi];
    f.status = f.table->ReadBlockShared(
        f.handle, BlockCache::InsertPriority::kHigh, &f.contents);
  };
  auto fetch_group = [&fetches](const BatchGroup& g) {
    std::vector<BlockHandle> handles(g.fis.size());
    std::vector<std::shared_ptr<const std::string>> contents(g.fis.size());
    std::vector<Status> statuses(g.fis.size());
    for (size_t k = 0; k < g.fis.size(); k++) {
      handles[k] = fetches[g.fis[k]].handle;
    }
    Status batch = g.table->ReadBlocksShared(
        handles.data(), handles.size(), BlockCache::InsertPriority::kHigh,
        contents.data(), statuses.data());
    for (size_t k = 0; k < g.fis.size(); k++) {
      BlockFetch& f = fetches[g.fis[k]];
      f.status = batch.ok() ? statuses[k] : batch;
      f.contents = std::move(contents[k]);
    }
  };
  const size_t num_tasks = singles.size() + groups.size();
  if (read_pool_ != nullptr && num_tasks > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_tasks);
    for (size_t fi : singles) {
      tasks.push_back([&fetch_one, fi] { fetch_one(fi); });
    }
    for (const BatchGroup& g : groups) {
      tasks.push_back([&fetch_group, &g] { fetch_group(g); });
    }
    read_pool_->RunBatch(std::move(tasks));
  } else {
    for (size_t fi : singles) fetch_one(fi);
    for (const BatchGroup& g : groups) fetch_group(g);
  }

  // Stage 4: resolve each key against its blocks in run order (newest
  // first), matching Get's shadowing semantics. Blocks fetched beyond a
  // key's resolution point are speculative I/O already done; they are not
  // counted as probes.
  for (size_t i = 0; i < keys.size(); i++) {
    if (resolved[i]) continue;
    statuses[i] = Status::NotFound();
    bool decided = false;
    for (const Probe& probe : probes[i]) {
      const BlockFetch& f = fetches[fetch_index.at(
          std::make_pair(probe.file_number, probe.handle.offset))];
      if (!f.status.ok()) {
        statuses[i] = f.status;
        decided = true;
        break;
      }
      TableLookupResult result;
      ValueType type = ValueType::kValue;
      Status s = probe.table->SearchBlock(f.contents, lookups[i],
                                          &(*values)[i], &result, &type);
      if (!s.ok()) {
        statuses[i] = s;
        decided = true;
        break;
      }
      counters_.runs_probed.fetch_add(1, std::memory_order_relaxed);
      counters_.runs_probed_per_level[probe.stat_level].fetch_add(
          1, std::memory_order_relaxed);
      if (PerfCountsEnabled()) {
        GetPerfContext()->runs_probed++;
        GetPerfContext()->runs_probed_per_level[probe.stat_level]++;
      }
      if (result == TableLookupResult::kFound) {
        statuses[i] = type == ValueType::kValueHandle
                          ? ResolveHandle(&(*values)[i])
                          : Status::OK();
        decided = true;
        break;
      }
      if (result == TableLookupResult::kDeleted) {
        statuses[i] = Status::NotFound("deleted");
        decided = true;
        break;
      }
      // kNotPresent: Bloom false positive; keep going.
      counters_.false_positives.fetch_add(1, std::memory_order_relaxed);
      counters_.false_positives_per_level[probe.stat_level].fetch_add(
          1, std::memory_order_relaxed);
      if (PerfCountsEnabled()) {
        GetPerfContext()->bloom_false_positives++;
        GetPerfContext()->false_positives_per_level[probe.stat_level]++;
      }
    }
    if (!decided) {
      // Ran out of candidate blocks: a zero-result lookup.
      counters_.gets_not_found.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return statuses;
}

// Replaces *value (an encoded ValueHandle) with the value it points at.
Status DB::ResolveHandle(std::string* value) const {
  if (vlog_ == nullptr) {
    return Status::Corruption("value handle found but no value log open");
  }
  ValueHandle handle;
  Slice input(*value);
  if (!handle.DecodeFrom(&input)) {
    return Status::Corruption("malformed value handle");
  }
  counters_.value_log_reads.fetch_add(1, std::memory_order_relaxed);
  if (PerfCountsEnabled()) GetPerfContext()->value_log_reads++;
  PerfTimer timer(&GetPerfContext()->value_log_read_nanos);
  return vlog_->Get(handle, value);
}

// --- Flush & compaction ---

uint64_t DB::LevelCapacityEntries(int level) const {
  // Paper Fig. 2: Level i holds up to B·P·T^i entries.
  const double cap =
      static_cast<double>(buffer_entries_.load(std::memory_order_relaxed)) *
      std::pow(options_.size_ratio, level);
  return static_cast<uint64_t>(cap);
}

bool DB::CanDropTombstones(int output_level) const {
  for (int level = output_level + 1; level <= current_.NumLevels(); level++) {
    if (!current_.RunsAt(level).empty()) return false;
  }
  return true;
}

DB::CompactionJob DB::PrepareJobLocked(
    int target_level, bool drop_tombstones, uint64_t estimated_entries,
    const std::set<uint64_t>& replaced_files) {
  // Size the filter for this run via the allocation policy, handing it the
  // exact post-compaction geometry (each surviving run's entry count plus
  // this run's estimate at the front of its target level).
  const FprAllocationPolicy* policy = options_.fpr_policy != nullptr
                                          ? options_.fpr_policy.get()
                                          : DefaultFprPolicy();
  uint64_t pending_mem_entries = mem_->num_entries();
  for (const ImmEntry& entry : imm_) {
    pending_mem_entries += entry.mem->num_entries();
  }
  const uint64_t buffer_entries =
      buffer_entries_.load(std::memory_order_relaxed);
  LsmShape shape;
  shape.total_entries =
      std::max(current_.TotalEntries() + pending_mem_entries,
               options_.expected_entries);
  shape.buffer_entries =
      buffer_entries > 0 ? buffer_entries : mem_->num_entries();
  shape.size_ratio = options_.size_ratio;
  shape.num_levels = std::max(current_.DeepestNonEmptyLevel(), target_level);
  shape.merge_policy = options_.merge_policy;
  shape.bits_per_entry_budget = options_.bits_per_entry;
  shape.run_entries.resize(
      std::max(current_.NumLevels(), target_level));
  shape.run_filter_bits.resize(shape.run_entries.size());
  for (int level = 1; level <= current_.NumLevels(); level++) {
    for (const RunPtr& run : current_.RunsAt(level)) {
      if (replaced_files.count(run->file_number) > 0) continue;
      shape.run_entries[level - 1].push_back(run->num_entries);
      shape.run_filter_bits[level - 1].push_back(
          run->table != nullptr
              ? static_cast<double>(run->table->filter_size_bits())
              : 0.0);
    }
  }
  auto& target_runs = shape.run_entries[target_level - 1];
  target_runs.insert(target_runs.begin(), std::max<uint64_t>(
                                              estimated_entries, 1));
  auto& target_bits = shape.run_filter_bits[target_level - 1];
  target_bits.insert(target_bits.begin(), -1.0);

  CompactionJob job;
  job.target_level = target_level;
  job.drop_tombstones = drop_tombstones;
  job.fpr = policy->RunFpr(shape, target_level);
  job.file_number = next_file_number_++;
  job.smallest_snapshot = SmallestSnapshotLocked();
  job.run_sequence = last_sequence_.load(std::memory_order_relaxed);

  // Surface Monkey's per-level allocation decisions: fire whenever the
  // policy assigns this level a different FPR than the last run built there.
  const int sl = StatLevel(target_level - 1);
  const double prev_fpr = last_fpr_per_level_[sl];
  if (job.fpr != prev_fpr) {
    last_fpr_per_level_[sl] = job.fpr;
    if (HasObservers()) {
      FilterAllocationInfo finfo;
      finfo.level = target_level;
      finfo.previous_fpr = prev_fpr;
      finfo.fpr = job.fpr;
      finfo.run_entries = std::max<uint64_t>(estimated_entries, 1);
      if (options_.info_log != nullptr) {
        options_.info_log->Info(
            "filter allocation: L%d fpr %.6g -> %.6g (%llu entries)",
            finfo.level, finfo.previous_fpr, finfo.fpr,
            static_cast<unsigned long long>(finfo.run_entries));
      }
      NotifyListeners(
          [&finfo](EventListener* l) { l->OnFilterAllocation(finfo); });
    }
  }
  return job;
}

Status DB::BuildRunFromJob(Iterator* iter, const CompactionJob& job,
                           RunPtr* out) {
  const std::string fname = TableFileName(job.file_number);
  std::unique_ptr<WritableFile> file;
  MONKEYDB_RETURN_IF_ERROR(options_.env->NewWritableFile(fname, &file));

  TableBuilderOptions topts;
  topts.block_size = options_.page_size;
  topts.filter_fpr = job.fpr;
  TableBuilder builder(topts, file.get());

  // Version retention: internal-key order puts the newest version of each
  // user key first. A version can be dropped once a newer version of the
  // same key with sequence <= the smallest active snapshot has been seen
  // (nothing can observe past it). Tombstones additionally need
  // drop_tombstones (no older data below the output level).
  std::string prev_user_key;
  bool has_prev = false;
  bool hide_older_versions = false;
  uint64_t entries_compacted = 0;
  // Subcompaction bounds: emit only [start_key, end_key). Both bounds sit
  // at (user_key, kMaxSequenceNumber), before every real version of that
  // user key, so the version-dropping state below never straddles a
  // fragment boundary.
  if (job.start_key.empty()) {
    iter->SeekToFirst();
  } else {
    iter->Seek(Slice(job.start_key));
  }
  for (; iter->Valid(); iter->Next()) {
    if (!job.end_key.empty() &&
        internal_comparator_.Compare(iter->key(), Slice(job.end_key)) >= 0) {
      break;
    }
    ParsedInternalKey parsed;
    if (!ParseInternalKey(iter->key(), &parsed)) {
      return Status::Corruption("malformed key during compaction");
    }
    const bool same_key =
        has_prev && internal_comparator_.user_comparator()->Compare(
                        parsed.user_key, Slice(prev_user_key)) == 0;
    if (!same_key) {
      prev_user_key.assign(parsed.user_key.data(), parsed.user_key.size());
      has_prev = true;
      hide_older_versions = false;
    } else if (hide_older_versions) {
      continue;  // Superseded below every active snapshot.
    }
    if (parsed.sequence <= job.smallest_snapshot) {
      hide_older_versions = true;  // Everything older is unobservable.
    }

    if (job.drop_tombstones && parsed.type == ValueType::kDeletion &&
        parsed.sequence <= job.smallest_snapshot) {
      continue;  // Nothing older exists: the tombstone has done its job.
    }
    builder.Add(iter->key(), iter->value());
    entries_compacted++;
  }
  counters_.entries_compacted.fetch_add(entries_compacted,
                                        std::memory_order_relaxed);
  MONKEYDB_RETURN_IF_ERROR(iter->status());
  MONKEYDB_RETURN_IF_ERROR(builder.Finish());
  MONKEYDB_RETURN_IF_ERROR(file->Close());

  if (builder.num_entries() == 0) {
    // monkey-lint: status-sink — best-effort cleanup of an output every
    // entry of which was dropped; it never entered the manifest, so a
    // leftover is swept by the next Recover.
    options_.env->RemoveFile(fname).IgnoreError();
    return Status::OK();  // *out stays null: everything was dropped.
  }

  auto run = std::make_shared<RunMetadata>();
  run->file_number = job.file_number;
  run->file_size = builder.file_size();
  run->num_entries = builder.num_entries();
  run->sequence = job.run_sequence;
  run->smallest = builder.smallest_key().ToString();
  run->largest = builder.largest_key().ToString();
  MONKEYDB_RETURN_IF_ERROR(OpenTable(run));
  *out = std::move(run);
  return Status::OK();
}

Status DB::BuildRun(Iterator* iter, int target_level, bool drop_tombstones,
                    uint64_t estimated_entries,
                    const std::set<uint64_t>& replaced_files, RunPtr* out,
                    bool io_unlock) {
  out->reset();
  const CompactionJob job = PrepareJobLocked(target_level, drop_tombstones,
                                             estimated_entries,
                                             replaced_files);
  // Background mode (io_unlock): all the I/O happens with mu_ released, so
  // writers and readers proceed. The tree itself stays stable — only this
  // worker makes structural changes, which is the protocol that covers the
  // window.
  ScopedUnlock window(&mu_, io_unlock);
  return BuildRunFromJob(iter, job, out);
}

Status DB::BuildMergeOutputs(const std::vector<RunPtr>& inputs,
                             const std::shared_ptr<MemTable>& mem,
                             int target_level, bool drop_tombstones,
                             uint64_t estimated_entries,
                             const std::set<uint64_t>& replaced_files,
                             std::vector<RunPtr>* outputs,
                             bool io_unlock) {
  auto make_iter = [&]() {
    std::vector<std::unique_ptr<Iterator>> children;
    if (mem != nullptr) children.push_back(mem->NewIterator());
    for (const RunPtr& run : inputs) {
      children.push_back(run->table->NewIterator());
    }
    return NewMergingIterator(&internal_comparator_, std::move(children));
  };

  // Pick the partitioning. Only leveling merges are split: tiering and
  // lazy leveling count runs per level, and fragments would distort that
  // geometry (lazy leveling's single-run-at-the-deepest-level invariant
  // would even re-fragment forever).
  int want = 1;
  if (compaction_pool_ != nullptr &&
      options_.merge_policy == MergePolicy::kLeveling) {
    want = compaction_pool_->num_threads() + 1;
  }
  std::vector<std::string> boundaries;  // K-1 boundary *user* keys.
  if (want > 1) {
    // Candidate split points: the fence-pointer (per-data-block largest)
    // user keys of every input run — all in memory, no I/O. Splitting at
    // fences keeps each fragment's input a whole number of pages.
    std::vector<std::string> candidates;
    for (const RunPtr& run : inputs) {
      if (run->table != nullptr) {
        run->table->AppendBoundaryUserKeys(&candidates);
      }
    }
    const Comparator* ucmp = internal_comparator_.user_comparator();
    std::sort(candidates.begin(), candidates.end(),
              [ucmp](const std::string& a, const std::string& b) {
                return ucmp->Compare(Slice(a), Slice(b)) < 0;
              });
    candidates.erase(
        std::unique(candidates.begin(), candidates.end(),
                    [ucmp](const std::string& a, const std::string& b) {
                      return ucmp->Compare(Slice(a), Slice(b)) == 0;
                    }),
        candidates.end());
    if (static_cast<int>(candidates.size()) + 1 < want) {
      want = static_cast<int>(candidates.size()) + 1;
    }
    for (int i = 1; i < want; i++) {
      boundaries.push_back(candidates[i * candidates.size() / want]);
    }
  }

  if (boundaries.empty()) {
    // Single-threaded path — exactly the original merge (bit-identical
    // with compaction_threads == 1).
    auto merged = make_iter();
    RunPtr out;
    MONKEYDB_RETURN_IF_ERROR(BuildRun(merged.get(), target_level,
                                      drop_tombstones, estimated_entries,
                                      replaced_files, &out, io_unlock));
    if (out != nullptr) outputs->push_back(std::move(out));
    return Status::OK();
  }

  // One shared decision (FPR, smallest snapshot, run sequence) for all
  // fragments — they are pieces of one logical run — then a private file
  // number and key range per fragment. Boundary internal keys use
  // (user_key, kMaxSequenceNumber, kValueTypeForSeek), which sorts before
  // every real version of that user key: no key's versions straddle a
  // fragment, so a lookup probing one fragment sees all of them.
  const CompactionJob base = PrepareJobLocked(
      target_level, drop_tombstones, estimated_entries, replaced_files);
  const int parts = static_cast<int>(boundaries.size()) + 1;
  std::vector<CompactionJob> jobs(parts, base);
  for (int i = 0; i < parts; i++) {
    if (i > 0) {
      jobs[i].file_number = next_file_number_++;
      AppendInternalKey(&jobs[i].start_key, Slice(boundaries[i - 1]),
                        kMaxSequenceNumber, kValueTypeForSeek);
    }
    if (i < parts - 1) {
      AppendInternalKey(&jobs[i].end_key, Slice(boundaries[i]),
                        kMaxSequenceNumber, kValueTypeForSeek);
    }
  }

  // Merge the fragments in parallel, each through its own merging iterator
  // over the full input set (the per-fragment Seek skips to its range).
  // Everything below touches no mu_-guarded state, so in background mode
  // mu_ is released for the duration.
  std::vector<RunPtr> outs(parts);
  std::vector<Status> statuses(parts);
  {
    ScopedUnlock window(&mu_, io_unlock);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(parts);
    for (int i = 0; i < parts; i++) {
      tasks.push_back([this, &make_iter, &jobs, &outs, &statuses, i] {
        StopWatch watch(metrics_.get(), Hist::kSubcompactionLatency);
        auto iter = make_iter();
        statuses[i] = BuildRunFromJob(iter.get(), jobs[i], &outs[i]);
      });
    }
    compaction_pool_->RunBatch(std::move(tasks));
  }

  // First failure wins; any orphaned output files from sibling fragments
  // are swept by the next Recover (they never enter the manifest).
  for (const Status& s : statuses) MONKEYDB_RETURN_IF_ERROR(s);
  for (auto& out : outs) {
    if (out != nullptr) outputs->push_back(std::move(out));
  }
  return Status::OK();
}

Status DB::LogAndApply(const VersionEdit& edit) {
  VersionEdit full = edit;
  full.last_sequence = last_sequence_.load(std::memory_order_relaxed);
  full.next_file_number = next_file_number_;
  std::string encoded;
  full.EncodeTo(&encoded);
  // monkey-lint: io-under-mutex — the manifest append IS the version
  // commit point: mu_ serializes version edits, and releasing it between
  // the append and PublishViewLocked would let a second edit commit
  // against a tree the manifest no longer describes.
  MONKEYDB_RETURN_IF_ERROR(
      manifest_->AddRecord(encoded, options_.sync_writes));

  // Make the new tree visible before removing replaced files. Views already
  // taken keep the old files readable through their open TableReaders
  // (removal only unlinks the name).
  PublishViewLocked();

  // Queue physical deletion for files not re-added by the same edit. The
  // unlink itself is deferred to DrainObsoleteFilesLocked: this function
  // runs under mu_, and an unlink is a metadata-write syscall that would
  // stall every writer and reader behind it. Cache eviction stays here —
  // it is pure memory work and must not outlive the file's retirement.
  std::set<uint64_t> readded;
  for (const auto& added : edit.added) readded.insert(added.file_number);
  for (uint64_t fn : edit.deleted_files) {
    if (readded.count(fn) == 0) {
      obsolete_files_.push_back(TableFileName(fn));
      if (options_.block_cache != nullptr) {
        options_.block_cache->EraseFile(fn);
      }
    }
  }
  return Status::OK();
}

void DB::DrainObsoleteFilesLocked() {
  while (!obsolete_files_.empty()) {
    std::vector<std::string> doomed;
    doomed.swap(obsolete_files_);
    // The names left every published view when they were queued; open
    // TableReaders keep the data readable past the unlink, so no protocol
    // beyond the swap above is needed for the window.
    ScopedUnlock window(&mu_);
    for (const std::string& name : doomed) {
      // monkey-lint: status-sink — best-effort unlink; an orphan is swept
      // by the next Recover.
      options_.env->RemoveFile(name).IgnoreError();
    }
  }
}

Status DB::FlushMemTable(std::shared_ptr<MemTable> mem, bool swap_active,
                         bool io_unlock) {
  if (mem->num_entries() == 0) return Status::OK();
  if (buffer_entries_.load(std::memory_order_relaxed) == 0) {
    buffer_entries_.store(mem->num_entries(), std::memory_order_relaxed);
  }
  counters_.flushes.fetch_add(1, std::memory_order_relaxed);

  FlushJobInfo info;
  info.entries = mem->num_entries();
  info.triggered_merge = options_.merge_policy == MergePolicy::kLeveling &&
                         !current_.RunsAt(1).empty();
  if (HasObservers()) {
    if (options_.info_log != nullptr) {
      options_.info_log->Info("flush begin: %llu entries%s",
                              static_cast<unsigned long long>(info.entries),
                              info.triggered_merge ? " (merge into L1)" : "");
    }
    NotifyListeners([&info](EventListener* l) { l->OnFlushBegin(info); });
  }
  OptionalTimer timer(metrics_ != nullptr || HasObservers());
  Status s = FlushMemTableImpl(std::move(mem), swap_active, io_unlock);
  info.micros = timer.ElapsedMicros();
  info.ok = s.ok();
  if (metrics_ != nullptr) {
    metrics_->Record(Hist::kFlushLatency, info.micros);
  }
  if (HasObservers()) {
    if (options_.info_log != nullptr) {
      options_.info_log->Log(
          s.ok() ? LogLevel::kInfo : LogLevel::kError,
          "flush end: %llu entries in %llu us%s",
          static_cast<unsigned long long>(info.entries),
          static_cast<unsigned long long>(info.micros),
          s.ok() ? "" : " (failed)");
    }
    NotifyListeners([&info](EventListener* l) { l->OnFlushCompleted(info); });
  }
  return s;
}

Status DB::FlushMemTableImpl(std::shared_ptr<MemTable> mem, bool swap_active,
                             bool io_unlock) {
  if (options_.merge_policy == MergePolicy::kLeveling) {
    // Flush & merge with the Level-1 run in one pass (paper Fig. 3).
    VersionEdit edit;
    const std::vector<RunPtr> level1 = current_.RunsAt(1);  // Copy.
    for (const RunPtr& run : level1) {
      edit.deleted_files.push_back(run->file_number);
    }
    std::set<uint64_t> replaced(edit.deleted_files.begin(),
                                edit.deleted_files.end());
    uint64_t estimate = mem->num_entries();
    for (const RunPtr& run : level1) estimate += run->num_entries;
    std::vector<RunPtr> outs;
    MONKEYDB_RETURN_IF_ERROR(BuildMergeOutputs(level1, mem, 1,
                                               CanDropTombstones(1),
                                               estimate, replaced, &outs,
                                               io_unlock));
    for (const RunPtr& out : outs) {
      VersionEdit::AddedRun added;
      added.level = 1;
      added.file_number = out->file_number;
      added.file_size = out->file_size;
      added.num_entries = out->num_entries;
      added.sequence = out->sequence;
      added.smallest = out->smallest;
      added.largest = out->largest;
      edit.added.push_back(std::move(added));
    }
    // Apply to the in-memory version.
    auto* levels = current_.mutable_levels();
    current_.EnsureLevel(1);
    (*levels)[0] = outs;
    if (swap_active) {
      AccumulateMemTableStats(*mem);
      mem_ = std::make_shared<MemTable>(internal_comparator_,
                                        MemTableOptionsFromDb(options_));
    }
    return LogAndApply(edit);
  }

  // Tiering and lazy leveling: the flushed run lands at Level 1 as-is.
  auto mem_iter = mem->NewIterator();
  RunPtr out;
  MONKEYDB_RETURN_IF_ERROR(BuildRun(
      mem_iter.get(), 1,
      CanDropTombstones(1) && current_.RunsAt(1).empty(),
      mem->num_entries(), {}, &out, io_unlock));
  if (swap_active) {
    AccumulateMemTableStats(*mem);
    mem_ = std::make_shared<MemTable>(internal_comparator_,
                                      MemTableOptionsFromDb(options_));
    PublishViewLocked();
  }
  if (out != nullptr) {
    current_.EnsureLevel(1);
    auto& level1 = (*current_.mutable_levels())[0];
    level1.insert(level1.begin(), out);
    VersionEdit edit;
    VersionEdit::AddedRun added;
    added.level = 1;
    added.file_number = out->file_number;
    added.file_size = out->file_size;
    added.num_entries = out->num_entries;
    added.sequence = out->sequence;
    added.smallest = out->smallest;
    added.largest = out->largest;
    edit.added.push_back(std::move(added));
    MONKEYDB_RETURN_IF_ERROR(LogAndApply(edit));
  }
  return Status::OK();
}

Status DB::Cascade(bool io_unlock) {
  switch (options_.merge_policy) {
    case MergePolicy::kLeveling:
      return CascadeLeveling(io_unlock);
    case MergePolicy::kTiering:
      return CascadeTiering(io_unlock);
    case MergePolicy::kLazyLeveling:
      return CascadeLazyLeveling(io_unlock);
  }
  return Status::OK();
}

bool DB::CascadePendingLocked() const {
  // Before the first flush of this incarnation buffer_entries_ is 0, every
  // level capacity reads as 0, and "pending" would be vacuously true
  // forever; cascades are only meaningful once B·P is known.
  if (buffer_entries_.load(std::memory_order_relaxed) == 0) return false;
  const int trigger =
      std::max(2, static_cast<int>(std::llround(options_.size_ratio)));
  switch (options_.merge_policy) {
    case MergePolicy::kLeveling:
      for (int level = 1; level <= current_.NumLevels(); level++) {
        const uint64_t entries = current_.EntriesAt(level);
        if (entries > 0 && entries > LevelCapacityEntries(level)) return true;
      }
      return false;
    case MergePolicy::kTiering:
      for (int level = 1; level <= current_.NumLevels(); level++) {
        if (static_cast<int>(current_.RunsAt(level).size()) >= trigger) {
          return true;
        }
      }
      return false;
    case MergePolicy::kLazyLeveling: {
      const int deepest = current_.DeepestNonEmptyLevel();
      for (int level = 1; level <= current_.NumLevels(); level++) {
        const std::vector<RunPtr>& runs = current_.RunsAt(level);
        if (runs.empty()) continue;
        if (level == deepest) {
          if (runs.size() > 1) return true;
          if (runs[0]->num_entries > LevelCapacityEntries(level)) return true;
        } else if (static_cast<int>(runs.size()) >= trigger) {
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

Status DB::CascadeLeveling(bool io_unlock) {
  // When a level exceeds its capacity, its run(s) move to the next level
  // (merging with the resident run, if any). Every level is scanned, not
  // just a chain from Level 1: a background worker that abandoned a
  // cascade mid-way to prioritize a flush resumes with the violation at an
  // arbitrary depth. With the invariant intact (synchronous mode) the scan
  // performs exactly the seed's chain of merges.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int level = 1; level <= current_.NumLevels(); level++) {
      // Flush priority: yield to the worker loop whenever a frozen
      // memtable is waiting; CascadePendingLocked brings us back.
      if (io_unlock && !imm_.empty()) return Status::OK();
      const std::vector<RunPtr> runs = current_.RunsAt(level);  // Copy.
      if (runs.empty()) continue;
      if (current_.EntriesAt(level) <= LevelCapacityEntries(level)) continue;

      const int next_level = level + 1;
      current_.EnsureLevel(next_level);
      const std::vector<RunPtr> next_runs =
          current_.RunsAt(next_level);  // Copy.
      VersionEdit edit;

      if (next_runs.empty()) {
        // Trivial move: metadata-only (keeps the existing filters, like
        // LevelDB's non-overlapping move; see DESIGN.md). Moves every
        // fragment of the level together.
        auto* levels = current_.mutable_levels();
        for (const RunPtr& run : runs) {
          edit.deleted_files.push_back(run->file_number);
          VersionEdit::AddedRun added;
          added.level = next_level;
          added.file_number = run->file_number;
          added.file_size = run->file_size;
          added.num_entries = run->num_entries;
          added.sequence = run->sequence;
          added.smallest = run->smallest;
          added.largest = run->largest;
          edit.added.push_back(std::move(added));
          (*levels)[next_level - 1].push_back(run);
        }
        (*levels)[level - 1].clear();
        MONKEYDB_RETURN_IF_ERROR(LogAndApply(edit));
      } else {
        std::vector<RunPtr> inputs = runs;
        inputs.insert(inputs.end(), next_runs.begin(), next_runs.end());
        uint64_t estimate = 0;
        for (const RunPtr& run : inputs) {
          edit.deleted_files.push_back(run->file_number);
          estimate += run->num_entries;
        }
        CompactionJobInfo cinfo;
        cinfo.input_level = level;
        cinfo.output_level = next_level;
        cinfo.input_runs = inputs.size();
        cinfo.input_entries = estimate;
        CompactionScope scope(this, cinfo);
        std::set<uint64_t> replaced(edit.deleted_files.begin(),
                                    edit.deleted_files.end());
        std::vector<RunPtr> outs;
        MONKEYDB_RETURN_IF_ERROR(BuildMergeOutputs(
            inputs, nullptr, next_level, CanDropTombstones(next_level),
            estimate, replaced, &outs, io_unlock));
        uint64_t out_entries = 0;
        for (const RunPtr& out : outs) {
          VersionEdit::AddedRun added;
          added.level = next_level;
          added.file_number = out->file_number;
          added.file_size = out->file_size;
          added.num_entries = out->num_entries;
          added.sequence = out->sequence;
          added.smallest = out->smallest;
          added.largest = out->largest;
          edit.added.push_back(std::move(added));
          out_entries += out->num_entries;
        }
        auto* levels = current_.mutable_levels();
        (*levels)[level - 1].clear();
        (*levels)[next_level - 1] = outs;
        MONKEYDB_RETURN_IF_ERROR(LogAndApply(edit));
        scope.Completed(out_entries, outs.size());
      }
      changed = true;
      break;  // Restart the scan: the receiving level may now overflow.
    }
  }
  return Status::OK();
}

Status DB::CascadeTiering(bool io_unlock) {
  // When the T-th run arrives at a level, merge all of its runs into one
  // run at the next level (paper Fig. 3).
  const int trigger =
      std::max(2, static_cast<int>(std::llround(options_.size_ratio)));
  int level = 1;
  while (level <= current_.NumLevels()) {
    // Flush priority: yield between merge steps when a frozen memtable is
    // waiting; CascadePendingLocked re-dispatches the cascade afterwards.
    if (io_unlock && !imm_.empty()) return Status::OK();
    const std::vector<RunPtr> runs = current_.RunsAt(level);  // Copy.
    if (static_cast<int>(runs.size()) < trigger) {
      level++;
      continue;
    }
    const int next_level = level + 1;
    current_.EnsureLevel(next_level);

    VersionEdit edit;
    std::vector<std::unique_ptr<Iterator>> children;
    for (const RunPtr& run : runs) {
      children.push_back(run->table->NewIterator());
      edit.deleted_files.push_back(run->file_number);
    }
    std::set<uint64_t> replaced(edit.deleted_files.begin(),
                                edit.deleted_files.end());
    uint64_t estimate = 0;
    for (const RunPtr& run : runs) estimate += run->num_entries;
    CompactionJobInfo cinfo;
    cinfo.input_level = level;
    cinfo.output_level = next_level;
    cinfo.input_runs = runs.size();
    cinfo.input_entries = estimate;
    CompactionScope scope(this, cinfo);
    auto merged =
        NewMergingIterator(&internal_comparator_, std::move(children));
    RunPtr out;
    const bool drop = CanDropTombstones(next_level) &&
                      current_.RunsAt(next_level).empty();
    MONKEYDB_RETURN_IF_ERROR(BuildRun(merged.get(), next_level, drop,
                                      estimate, replaced, &out, io_unlock));
    if (out != nullptr) {
      VersionEdit::AddedRun added;
      added.level = next_level;
      added.file_number = out->file_number;
      added.file_size = out->file_size;
      added.num_entries = out->num_entries;
      added.sequence = out->sequence;
      added.smallest = out->smallest;
      added.largest = out->largest;
      edit.added.push_back(std::move(added));
    }
    auto* levels = current_.mutable_levels();
    (*levels)[level - 1].clear();
    if (out != nullptr) {
      auto& next_runs = (*levels)[next_level - 1];
      next_runs.insert(next_runs.begin(), out);
    }
    MONKEYDB_RETURN_IF_ERROR(LogAndApply(edit));
    scope.Completed(out != nullptr ? out->num_entries : 0, 1);
    level = next_level;  // The push may have filled the next level.
  }
  return Status::OK();
}

// Lazy leveling (extension; see MergePolicy::kLazyLeveling): runs behave
// as in tiering at levels 1..L-1 and as in leveling at the largest level.
// Implemented as a fixpoint over three local rules:
//  (1) a non-largest level reaching T runs merges them together with
//      whatever sits at the next level into a single run there;
//  (2) the largest level always collapses to a single run;
//  (3) when the largest level's run outgrows its capacity it moves down,
//      founding a new largest level.
Status DB::CascadeLazyLeveling(bool io_unlock) {
  const int trigger =
      std::max(2, static_cast<int>(std::llround(options_.size_ratio)));
  bool changed = true;
  while (changed) {
    changed = false;
    // Flush priority: yield between merge steps when a frozen memtable is
    // waiting; CascadePendingLocked re-dispatches the cascade afterwards.
    if (io_unlock && !imm_.empty()) return Status::OK();
    const int deepest = current_.DeepestNonEmptyLevel();
    for (int level = 1; level <= current_.NumLevels(); level++) {
      const std::vector<RunPtr> runs = current_.RunsAt(level);  // Copy.
      if (runs.empty()) continue;

      if (level == deepest) {
        if (runs.size() > 1) {
          // Rule (2): collapse the largest level into one run.
          VersionEdit edit;
          std::vector<std::unique_ptr<Iterator>> children;
          for (const RunPtr& run : runs) {
            children.push_back(run->table->NewIterator());
            edit.deleted_files.push_back(run->file_number);
          }
          std::set<uint64_t> replaced(edit.deleted_files.begin(),
                                      edit.deleted_files.end());
          uint64_t estimate = 0;
          for (const RunPtr& run : runs) estimate += run->num_entries;
          CompactionJobInfo cinfo;
          cinfo.input_level = level;
          cinfo.output_level = level;
          cinfo.input_runs = runs.size();
          cinfo.input_entries = estimate;
          CompactionScope scope(this, cinfo);
          auto merged = NewMergingIterator(&internal_comparator_,
                                           std::move(children));
          RunPtr out;
          MONKEYDB_RETURN_IF_ERROR(BuildRun(merged.get(), level,
                                            CanDropTombstones(level),
                                            estimate, replaced, &out,
                                            io_unlock));
          auto* levels = current_.mutable_levels();
          (*levels)[level - 1].clear();
          if (out != nullptr) {
            (*levels)[level - 1].push_back(out);
            VersionEdit::AddedRun added;
            added.level = level;
            added.file_number = out->file_number;
            added.file_size = out->file_size;
            added.num_entries = out->num_entries;
            added.sequence = out->sequence;
            added.smallest = out->smallest;
            added.largest = out->largest;
            edit.added.push_back(std::move(added));
          }
          MONKEYDB_RETURN_IF_ERROR(LogAndApply(edit));
          scope.Completed(out != nullptr ? out->num_entries : 0, 1);
          changed = true;
          break;
        }
        if (runs[0]->num_entries > LevelCapacityEntries(level)) {
          // Rule (3): the largest level overflows; trivial-move its run
          // down to found a new largest level.
          const RunPtr run = runs[0];
          const int next_level = level + 1;
          current_.EnsureLevel(next_level);
          VersionEdit edit;
          edit.deleted_files.push_back(run->file_number);
          VersionEdit::AddedRun added;
          added.level = next_level;
          added.file_number = run->file_number;
          added.file_size = run->file_size;
          added.num_entries = run->num_entries;
          added.sequence = run->sequence;
          added.smallest = run->smallest;
          added.largest = run->largest;
          edit.added.push_back(std::move(added));
          auto* levels = current_.mutable_levels();
          (*levels)[level - 1].clear();
          (*levels)[next_level - 1].push_back(run);
          MONKEYDB_RETURN_IF_ERROR(LogAndApply(edit));
          changed = true;
          break;
        }
        continue;
      }

      if (static_cast<int>(runs.size()) >= trigger) {
        // Rule (1): merge this level's runs into the next level. Only the
        // largest level absorbs its resident run (leveled landing);
        // intermediate levels receive the merged run as a new tiered run.
        const int next_level = level + 1;
        current_.EnsureLevel(next_level);
        const bool absorb_next = (next_level == deepest);
        VersionEdit edit;
        std::vector<std::unique_ptr<Iterator>> children;
        uint64_t estimate = 0;
        for (const RunPtr& run : runs) {
          children.push_back(run->table->NewIterator());
          edit.deleted_files.push_back(run->file_number);
          estimate += run->num_entries;
        }
        if (absorb_next) {
          for (const RunPtr& run : current_.RunsAt(next_level)) {
            children.push_back(run->table->NewIterator());
            edit.deleted_files.push_back(run->file_number);
            estimate += run->num_entries;
          }
        }
        std::set<uint64_t> replaced(edit.deleted_files.begin(),
                                    edit.deleted_files.end());
        CompactionJobInfo cinfo;
        cinfo.input_level = level;
        cinfo.output_level = next_level;
        cinfo.input_runs = edit.deleted_files.size();
        cinfo.input_entries = estimate;
        CompactionScope scope(this, cinfo);
        auto merged = NewMergingIterator(&internal_comparator_,
                                         std::move(children));
        RunPtr out;
        const bool drop = CanDropTombstones(next_level) &&
                          (absorb_next || current_.RunsAt(next_level).empty());
        MONKEYDB_RETURN_IF_ERROR(BuildRun(merged.get(), next_level, drop,
                                          estimate, replaced, &out,
                                          io_unlock));
        auto* levels = current_.mutable_levels();
        (*levels)[level - 1].clear();
        if (absorb_next) (*levels)[next_level - 1].clear();
        if (out != nullptr) {
          auto& next_runs = (*levels)[next_level - 1];
          next_runs.insert(next_runs.begin(), out);
          VersionEdit::AddedRun added;
          added.level = next_level;
          added.file_number = out->file_number;
          added.file_size = out->file_size;
          added.num_entries = out->num_entries;
          added.sequence = out->sequence;
          added.smallest = out->smallest;
          added.largest = out->largest;
          edit.added.push_back(std::move(added));
        }
        MONKEYDB_RETURN_IF_ERROR(LogAndApply(edit));
        scope.Completed(out != nullptr ? out->num_entries : 0, 1);
        changed = true;
        break;
      }
    }
  }
  return Status::OK();
}

// --- Stats ---

DbStats DB::GetStats() const {
  const std::shared_ptr<const ReadView> view = CurrentView();
  const Version& version = *view->version;

  DbStats stats;
  stats.gets = counters_.gets.load(std::memory_order_relaxed);
  stats.runs_probed = counters_.runs_probed.load(std::memory_order_relaxed);
  stats.filter_negatives =
      counters_.filter_negatives.load(std::memory_order_relaxed);
  stats.false_positives =
      counters_.false_positives.load(std::memory_order_relaxed);
  stats.flushes = counters_.flushes.load(std::memory_order_relaxed);
  stats.merges = counters_.merges.load(std::memory_order_relaxed);
  stats.entries_compacted =
      counters_.entries_compacted.load(std::memory_order_relaxed);
  stats.write_slowdowns =
      counters_.write_slowdowns.load(std::memory_order_relaxed);
  stats.write_stalls = counters_.write_stalls.load(std::memory_order_relaxed);
  stats.multigets = counters_.multigets.load(std::memory_order_relaxed);
  stats.gets_not_found =
      counters_.gets_not_found.load(std::memory_order_relaxed);
  stats.writes = counters_.writes.load(std::memory_order_relaxed);
  stats.write_groups =
      counters_.write_groups.load(std::memory_order_relaxed);
  stats.write_group_batches =
      counters_.write_group_batches.load(std::memory_order_relaxed);
  stats.wal_appends = counters_.wal_appends.load(std::memory_order_relaxed);
  stats.wal_syncs = counters_.wal_syncs.load(std::memory_order_relaxed);
  stats.wal_rotations =
      counters_.wal_rotations.load(std::memory_order_relaxed);
  stats.value_log_writes =
      counters_.value_log_writes.load(std::memory_order_relaxed);
  stats.value_log_bytes =
      counters_.value_log_bytes.load(std::memory_order_relaxed);
  stats.value_log_reads =
      counters_.value_log_reads.load(std::memory_order_relaxed);
  // Concurrent-memtable aggregates: retired memtables' totals live in
  // counters_ (folded in at swap time); the live memtable contributes its
  // current values on top. All zero with the feature off.
  stats.memtable_parallel_groups =
      counters_.memtable_parallel_groups.load(std::memory_order_relaxed);
  stats.memtable_parallel_batches =
      counters_.memtable_parallel_batches.load(std::memory_order_relaxed);
  const ConcurrentArena::StatsSnapshot arena = view->mem->arena_stats();
  stats.arena_cas_retries =
      counters_.arena_cas_retries.load(std::memory_order_relaxed) +
      arena.cas_retries;
  stats.arena_slow_allocs =
      counters_.arena_slow_allocs.load(std::memory_order_relaxed) +
      arena.slow_allocs;
  stats.arena_shard_refills =
      counters_.arena_shard_refills.load(std::memory_order_relaxed) +
      arena.shard_refills;
  stats.arena_hugetlb_blocks =
      counters_.arena_hugetlb_blocks.load(std::memory_order_relaxed) +
      arena.hugetlb_blocks;
  stats.arena_thp_blocks =
      counters_.arena_thp_blocks.load(std::memory_order_relaxed) +
      arena.thp_blocks;
  stats.arena_plain_blocks =
      counters_.arena_plain_blocks.load(std::memory_order_relaxed) +
      arena.plain_blocks;
  stats.arena_backing = ConcurrentArena::BackingName(arena.backing);
  stats.skiplist_cas_retries =
      counters_.skiplist_cas_retries.load(std::memory_order_relaxed) +
      view->mem->skiplist_cas_retries();
  // Per-level probe attribution, truncated at the deepest level that saw
  // any traffic.
  int deepest_traffic = 0;
  for (int l = 0; l < Counters::kMaxLevels; l++) {
    if (counters_.runs_probed_per_level[l].load(std::memory_order_relaxed) +
            counters_.filter_negatives_per_level[l].load(
                std::memory_order_relaxed) +
            counters_.false_positives_per_level[l].load(
                std::memory_order_relaxed) >
        0) {
      deepest_traffic = l + 1;
    }
  }
  for (int l = 0; l < deepest_traffic; l++) {
    stats.runs_probed_per_level.push_back(
        counters_.runs_probed_per_level[l].load(std::memory_order_relaxed));
    stats.filter_negatives_per_level.push_back(
        counters_.filter_negatives_per_level[l].load(
            std::memory_order_relaxed));
    stats.false_positives_per_level.push_back(
        counters_.false_positives_per_level[l].load(
            std::memory_order_relaxed));
  }
  if (options_.block_cache != nullptr) {
    stats.block_cache_hits = options_.block_cache->hits();
    stats.block_cache_misses = options_.block_cache->misses();
    stats.block_cache_prefetch_hits = options_.block_cache->prefetch_hits();
    stats.block_cache_scan_inserts = options_.block_cache->scan_inserts();
  }

  stats.memtable_entries = view->MemEntries();
  stats.total_disk_entries = version.TotalEntries();
  stats.total_runs = version.TotalRuns();
  stats.deepest_level = version.DeepestNonEmptyLevel();
  stats.filter_bits_total = version.TotalFilterBits();
  for (int level = 1; level <= version.NumLevels(); level++) {
    uint64_t entries = 0, bits = 0;
    for (const RunPtr& run : version.RunsAt(level)) {
      entries += run->num_entries;
      if (run->table != nullptr) bits += run->table->filter_size_bits();
    }
    stats.entries_per_level.push_back(entries);
    stats.runs_per_level.push_back(version.RunsAt(level).size());
    stats.filter_bits_per_level.push_back(bits);
  }
  return stats;
}

std::string DB::DebugString() const {
  const DbStats stats = GetStats();
  std::string out;
  char line[160];
  snprintf(line, sizeof(line),
           "LSM-tree: %s, T=%.0f, buffer=%zu B, %.1f bits/entry budget\n",
           options_.merge_policy == MergePolicy::kLeveling ? "leveling"
           : options_.merge_policy == MergePolicy::kTiering
               ? "tiering"
               : "lazy-leveling",
           options_.size_ratio, options_.buffer_size_bytes,
           options_.bits_per_entry);
  out += line;
  snprintf(line, sizeof(line),
           "memtable: %llu entries | disk: %llu entries in %llu runs\n",
           static_cast<unsigned long long>(stats.memtable_entries),
           static_cast<unsigned long long>(stats.total_disk_entries),
           static_cast<unsigned long long>(stats.total_runs));
  out += line;
  for (size_t level = 0; level < stats.entries_per_level.size(); level++) {
    if (stats.runs_per_level[level] == 0) continue;
    const double bpe =
        stats.entries_per_level[level] > 0
            ? static_cast<double>(stats.filter_bits_per_level[level]) /
                  static_cast<double>(stats.entries_per_level[level])
            : 0.0;
    snprintf(line, sizeof(line),
             "  level %zu: %llu run(s), %llu entries, %.2f bits/entry\n",
             level + 1,
             static_cast<unsigned long long>(stats.runs_per_level[level]),
             static_cast<unsigned long long>(stats.entries_per_level[level]),
             bpe);
    out += line;
  }
  snprintf(line, sizeof(line),
           "lookups: %llu (filtered %llu, false-positive %llu) | "
           "flushes %llu, merges %llu\n",
           static_cast<unsigned long long>(stats.gets),
           static_cast<unsigned long long>(stats.filter_negatives),
           static_cast<unsigned long long>(stats.false_positives),
           static_cast<unsigned long long>(stats.flushes),
           static_cast<unsigned long long>(stats.merges));
  out += line;
  return out;
}

void DB::ResetStats() {
  counters_.gets.store(0, std::memory_order_relaxed);
  counters_.gets_not_found.store(0, std::memory_order_relaxed);
  counters_.multigets.store(0, std::memory_order_relaxed);
  counters_.runs_probed.store(0, std::memory_order_relaxed);
  counters_.filter_negatives.store(0, std::memory_order_relaxed);
  counters_.false_positives.store(0, std::memory_order_relaxed);
  counters_.flushes.store(0, std::memory_order_relaxed);
  counters_.merges.store(0, std::memory_order_relaxed);
  counters_.entries_compacted.store(0, std::memory_order_relaxed);
  counters_.write_slowdowns.store(0, std::memory_order_relaxed);
  counters_.write_stalls.store(0, std::memory_order_relaxed);
  counters_.writes.store(0, std::memory_order_relaxed);
  counters_.write_groups.store(0, std::memory_order_relaxed);
  counters_.write_group_batches.store(0, std::memory_order_relaxed);
  counters_.wal_appends.store(0, std::memory_order_relaxed);
  counters_.wal_syncs.store(0, std::memory_order_relaxed);
  counters_.wal_rotations.store(0, std::memory_order_relaxed);
  counters_.value_log_writes.store(0, std::memory_order_relaxed);
  counters_.value_log_bytes.store(0, std::memory_order_relaxed);
  counters_.value_log_reads.store(0, std::memory_order_relaxed);
  for (int l = 0; l < Counters::kMaxLevels; l++) {
    counters_.runs_probed_per_level[l].store(0, std::memory_order_relaxed);
    counters_.filter_negatives_per_level[l].store(0,
                                                  std::memory_order_relaxed);
    counters_.false_positives_per_level[l].store(0,
                                                 std::memory_order_relaxed);
  }
  if (metrics_ != nullptr) metrics_->Reset();
  if (options_.block_cache != nullptr) options_.block_cache->ResetCounters();
}

std::string DB::DumpStats() const {
  const DbStats stats = GetStats();
  std::string out = DebugString();
  char line[192];
  snprintf(line, sizeof(line),
           "reads: gets %llu (not-found %llu), multigets %llu, "
           "runs probed %llu, vlog reads %llu\n",
           static_cast<unsigned long long>(stats.gets),
           static_cast<unsigned long long>(stats.gets_not_found),
           static_cast<unsigned long long>(stats.multigets),
           static_cast<unsigned long long>(stats.runs_probed),
           static_cast<unsigned long long>(stats.value_log_reads));
  out += line;
  for (size_t l = 0; l < stats.runs_probed_per_level.size(); l++) {
    const uint64_t probes = stats.false_positives_per_level[l] +
                            stats.filter_negatives_per_level[l];
    snprintf(line, sizeof(line),
             "  level %zu probes: %llu data reads, %llu filtered, "
             "%llu false-positive (fpr %.6f)\n",
             l + 1,
             static_cast<unsigned long long>(stats.runs_probed_per_level[l]),
             static_cast<unsigned long long>(
                 stats.filter_negatives_per_level[l]),
             static_cast<unsigned long long>(
                 stats.false_positives_per_level[l]),
             probes > 0 ? static_cast<double>(
                              stats.false_positives_per_level[l]) /
                              static_cast<double>(probes)
                        : 0.0);
    out += line;
  }
  snprintf(line, sizeof(line),
           "writes: %llu in %llu groups (%llu batches) | wal: %llu appends, "
           "%llu syncs, %llu rotations\n",
           static_cast<unsigned long long>(stats.writes),
           static_cast<unsigned long long>(stats.write_groups),
           static_cast<unsigned long long>(stats.write_group_batches),
           static_cast<unsigned long long>(stats.wal_appends),
           static_cast<unsigned long long>(stats.wal_syncs),
           static_cast<unsigned long long>(stats.wal_rotations));
  out += line;
  if (options_.allow_concurrent_memtable_write) {
    snprintf(line, sizeof(line),
             "concurrent memtable: %llu parallel groups (%llu batches) | "
             "arena[%s]: %llu cas retries, %llu slow allocs, %llu refills | "
             "skiplist: %llu cas retries\n",
             static_cast<unsigned long long>(stats.memtable_parallel_groups),
             static_cast<unsigned long long>(stats.memtable_parallel_batches),
             stats.arena_backing.c_str(),
             static_cast<unsigned long long>(stats.arena_cas_retries),
             static_cast<unsigned long long>(stats.arena_slow_allocs),
             static_cast<unsigned long long>(stats.arena_shard_refills),
             static_cast<unsigned long long>(stats.skiplist_cas_retries));
    out += line;
  }
  snprintf(line, sizeof(line),
           "value log: %llu writes (%llu bytes) | backpressure: %llu "
           "slowdowns, %llu stalls\n",
           static_cast<unsigned long long>(stats.value_log_writes),
           static_cast<unsigned long long>(stats.value_log_bytes),
           static_cast<unsigned long long>(stats.write_slowdowns),
           static_cast<unsigned long long>(stats.write_stalls));
  out += line;
  snprintf(line, sizeof(line),
           "compaction: %llu entries rewritten | block cache: %llu hits, "
           "%llu misses, %llu prefetch hits\n",
           static_cast<unsigned long long>(stats.entries_compacted),
           static_cast<unsigned long long>(stats.block_cache_hits),
           static_cast<unsigned long long>(stats.block_cache_misses),
           static_cast<unsigned long long>(stats.block_cache_prefetch_hits));
  out += line;
  return out;
}

bool DB::GetUringStats(UringStatsSnapshot* out) const {
  if (uring_env_ == nullptr) return false;
  *out = uring_env_->Stats();
  return true;
}

std::string DB::DumpTrace() const { return DumpTraceJson(0); }

std::string DB::DumpMetrics(MetricsFormat format) const {
  const DbStats stats = GetStats();
  const std::shared_ptr<const ReadView> view = CurrentView();
  const Version& version = *view->version;

  // The allocator's plan for the current geometry (paper Eqs. 4-8): ask
  // the configured policy what FPR it assigns each level right now, and
  // fold per-level run counts into the predicted zero-result lookup cost
  // R = sum over runs of their FPR (Eq. 3).
  LsmShape shape;
  shape.total_entries = version.TotalEntries() + view->MemEntries();
  shape.buffer_entries = buffer_entries_.load(std::memory_order_relaxed);
  shape.size_ratio = options_.size_ratio;
  shape.num_levels = std::max(1, version.DeepestNonEmptyLevel());
  shape.merge_policy = options_.merge_policy;
  shape.bits_per_entry_budget = options_.bits_per_entry;
  const FprAllocationPolicy* policy = options_.fpr_policy != nullptr
                                          ? options_.fpr_policy.get()
                                          : DefaultFprPolicy();
  const int levels = shape.num_levels;
  std::vector<double> predicted_fpr(levels, 0.0);
  std::vector<double> measured_fpr(levels, 0.0);
  std::vector<uint64_t> runs_at(levels, 0);
  double predicted_r = 0.0;
  for (int l = 1; l <= levels; l++) {
    predicted_fpr[l - 1] = policy->RunFpr(shape, l);
    runs_at[l - 1] =
        l <= version.NumLevels() ? version.RunsAt(l).size() : 0;
    predicted_r +=
        predicted_fpr[l - 1] * static_cast<double>(runs_at[l - 1]);
  }
  for (size_t l = 0;
       l < static_cast<size_t>(levels) &&
       l < stats.false_positives_per_level.size();
       l++) {
    const uint64_t probes = stats.false_positives_per_level[l] +
                            stats.filter_negatives_per_level[l];
    if (probes > 0) {
      measured_fpr[l] =
          static_cast<double>(stats.false_positives_per_level[l]) /
          static_cast<double>(probes);
    }
  }
  const double measured_r =
      stats.gets_not_found > 0
          ? static_cast<double>(stats.false_positives) /
                static_cast<double>(stats.gets_not_found)
          : 0.0;

  // Windowed view: advance the epoch ring with this scrape's cumulative
  // counters, then report the per-level measured FPR over (roughly) the
  // last minute — the drift signal an online tuner consumes. A histogram
  // window of Get latency rides along when metrics are enabled.
  constexpr uint64_t kWindowSecs = 60;
  std::vector<double> measured_fpr_1m(levels, 0.0);
  uint64_t fpr_window_secs = 0;
  HistogramData get_latency_1m;
  bool have_get_latency_1m = false;
  {
    const uint64_t now_secs = TraceNowNanos() / 1000000000ull;
    const size_t n = Counters::kMaxLevels;
    std::vector<uint64_t> cum(3 * n, 0);
    for (size_t l = 0; l < n; l++) {
      if (l < stats.runs_probed_per_level.size()) {
        cum[l] = stats.runs_probed_per_level[l];
      }
      if (l < stats.filter_negatives_per_level.size()) {
        cum[n + l] = stats.filter_negatives_per_level[l];
      }
      if (l < stats.false_positives_per_level.size()) {
        cum[2 * n + l] = stats.false_positives_per_level[l];
      }
    }
    // Merge the sharded histogram before taking window_mu_: the merge
    // walks every registry shard and needs no window state.
    HistogramMerger merged;
    if (metrics_ != nullptr) {
      metrics_->MergeHistogram(Hist::kGetLatency, &merged);
    }
    MutexLock window_lock(window_mu_);
    if (window_ == nullptr) window_ = std::make_unique<WindowState>();
    window_->fpr.Advance(now_secs, cum);
    std::vector<uint64_t> delta;
    if (window_->fpr.Delta(kWindowSecs, &delta, &fpr_window_secs)) {
      for (int l = 0; l < levels && l < static_cast<int>(n); l++) {
        const uint64_t fp = delta[2 * n + l];
        const uint64_t probes = fp + delta[n + l];
        if (probes > 0) {
          measured_fpr_1m[l] =
              static_cast<double>(fp) / static_cast<double>(probes);
        }
      }
    }
    if (metrics_ != nullptr) {
      window_->get_latency.Advance(now_secs, merged);
      have_get_latency_1m =
          window_->get_latency.SnapshotWindow(kWindowSecs, &get_latency_1m);
    }
  }

  if (format == MetricsFormat::kJson) {
    JsonWriter w;
    w.BeginObject("counters");
    w.Field("gets", stats.gets);
    w.Field("gets_not_found", stats.gets_not_found);
    w.Field("multigets", stats.multigets);
    w.Field("runs_probed", stats.runs_probed);
    w.Field("filter_negatives", stats.filter_negatives);
    w.Field("false_positives", stats.false_positives);
    w.Field("flushes", stats.flushes);
    w.Field("merges", stats.merges);
    w.Field("entries_compacted", stats.entries_compacted);
    w.Field("write_slowdowns", stats.write_slowdowns);
    w.Field("write_stalls", stats.write_stalls);
    w.Field("writes", stats.writes);
    w.Field("write_groups", stats.write_groups);
    w.Field("write_group_batches", stats.write_group_batches);
    w.Field("wal_appends", stats.wal_appends);
    w.Field("wal_syncs", stats.wal_syncs);
    w.Field("wal_rotations", stats.wal_rotations);
    w.Field("value_log_writes", stats.value_log_writes);
    w.Field("value_log_bytes", stats.value_log_bytes);
    w.Field("value_log_reads", stats.value_log_reads);
    w.Field("block_cache_hits", stats.block_cache_hits);
    w.Field("block_cache_misses", stats.block_cache_misses);
    w.Field("block_cache_prefetch_hits", stats.block_cache_prefetch_hits);
    w.Field("block_cache_scan_inserts", stats.block_cache_scan_inserts);
    if (metrics_ != nullptr) {
      for (int t = 0; t < static_cast<int>(Tick::kNumTicks); t++) {
        w.Field(TickName(static_cast<Tick>(t)),
                metrics_->TickTotal(static_cast<Tick>(t)));
      }
    }
    w.EndObject();
    w.BeginObject("tree");
    w.Field("memtable_entries", stats.memtable_entries);
    w.Field("disk_entries", stats.total_disk_entries);
    w.Field("runs", stats.total_runs);
    w.Field("deepest_level", static_cast<uint64_t>(stats.deepest_level));
    w.Field("filter_bits", stats.filter_bits_total);
    w.EndObject();
    if (uring_env_ != nullptr) {
      const UringStatsSnapshot io = uring_env_->Stats();
      w.BeginObject("io_uring");
      w.Field("sqes_submitted", io.sqes_submitted);
      w.Field("batch_submits", io.batch_submits);
      w.Field("batched_requests", io.batched_requests);
      w.Field("batched_per_syscall", io.BatchedPerSyscall());
      w.Field("short_read_retries", io.short_read_retries);
      w.Field("fixed_file_reads", io.fixed_file_reads);
      w.Field("fixed_buffer_reads", io.fixed_buffer_reads);
      w.Field("direct_io_fallbacks", io.direct_io_fallbacks);
      w.Field("bounce_copies", io.bounce_copies);
      w.Field("probe_fallback_events", UringFallbackEvents());
      w.EndObject();
    }
    w.BeginObject("fpr");
    w.Field("predicted_lookup_cost", predicted_r);
    w.Field("measured_lookup_cost", measured_r);
    w.Field("window_secs", fpr_window_secs);
    for (int l = 0; l < levels; l++) {
      char key[32];
      snprintf(key, sizeof(key), "L%d", l + 1);
      w.BeginObject(key);
      w.Field("predicted", predicted_fpr[l]);
      w.Field("measured", measured_fpr[l]);
      w.Field("measured_1m", measured_fpr_1m[l]);
      w.Field("runs", runs_at[l]);
      w.EndObject();
    }
    w.EndObject();
    if (metrics_ != nullptr) {
      w.BeginObject("histograms");
      for (int h = 0; h < static_cast<int>(Hist::kNumHistograms); h++) {
        w.Histogram(HistName(static_cast<Hist>(h)),
                    metrics_->SnapshotHistogram(static_cast<Hist>(h)));
      }
      if (have_get_latency_1m) {
        w.Histogram("get_latency_us_1m", get_latency_1m);
      }
      w.EndObject();
    }
    return w.Finish();
  }

  PrometheusWriter w;
  w.Counter("monkeydb_gets_total", "Point lookups",
            static_cast<double>(stats.gets));
  w.Counter("monkeydb_gets_not_found_total",
            "Zero-result lookups (no tombstone hit)",
            static_cast<double>(stats.gets_not_found));
  w.Counter("monkeydb_multigets_total", "MultiGet batches",
            static_cast<double>(stats.multigets));
  w.Counter("monkeydb_runs_probed_total", "Runs whose data page was read",
            static_cast<double>(stats.runs_probed));
  w.Counter("monkeydb_filter_negatives_total",
            "Probes answered by a Bloom filter",
            static_cast<double>(stats.filter_negatives));
  w.Counter("monkeydb_bloom_false_positives_total",
            "Data page reads that found nothing",
            static_cast<double>(stats.false_positives));
  w.Counter("monkeydb_flushes_total", "Memtable flushes",
            static_cast<double>(stats.flushes));
  w.Counter("monkeydb_merges_total", "Compaction merges",
            static_cast<double>(stats.merges));
  w.Counter("monkeydb_entries_compacted_total",
            "Entries rewritten by compaction",
            static_cast<double>(stats.entries_compacted));
  w.Counter("monkeydb_write_slowdowns_total", "Writer slowdown episodes",
            static_cast<double>(stats.write_slowdowns));
  w.Counter("monkeydb_write_stalls_total", "Writer stall episodes",
            static_cast<double>(stats.write_stalls));
  w.Counter("monkeydb_writes_total", "Write calls",
            static_cast<double>(stats.writes));
  w.Counter("monkeydb_write_groups_total", "Group commits",
            static_cast<double>(stats.write_groups));
  w.Counter("monkeydb_write_group_batches_total",
            "Batches coalesced into commit groups",
            static_cast<double>(stats.write_group_batches));
  w.Counter("monkeydb_wal_appends_total", "WAL records written",
            static_cast<double>(stats.wal_appends));
  w.Counter("monkeydb_wal_syncs_total", "WAL fsyncs",
            static_cast<double>(stats.wal_syncs));
  w.Counter("monkeydb_wal_rotations_total", "WAL file rotations",
            static_cast<double>(stats.wal_rotations));
  w.Counter("monkeydb_value_log_writes_total",
            "Values separated into the value log",
            static_cast<double>(stats.value_log_writes));
  w.Counter("monkeydb_value_log_bytes_total",
            "Payload bytes appended to the value log",
            static_cast<double>(stats.value_log_bytes));
  w.Counter("monkeydb_value_log_reads_total",
            "Value-handle resolutions on the read path",
            static_cast<double>(stats.value_log_reads));
  w.Counter("monkeydb_block_cache_hits_total", "Block cache hits",
            static_cast<double>(stats.block_cache_hits));
  w.Counter("monkeydb_block_cache_misses_total", "Block cache misses",
            static_cast<double>(stats.block_cache_misses));
  w.Counter("monkeydb_block_cache_prefetch_hits_total",
            "Cache hits served by readahead before first demand reference",
            static_cast<double>(stats.block_cache_prefetch_hits));
  w.Gauge("monkeydb_memtable_entries", "Entries buffered in memtables",
          static_cast<double>(stats.memtable_entries));
  w.Gauge("monkeydb_disk_entries", "Entries across all on-disk runs",
          static_cast<double>(stats.total_disk_entries));
  w.Gauge("monkeydb_runs", "On-disk runs",
          static_cast<double>(stats.total_runs));
  w.Gauge("monkeydb_deepest_level", "Deepest non-empty level",
          static_cast<double>(stats.deepest_level));
  w.Gauge("monkeydb_filter_bits", "Total Bloom filter bits",
          static_cast<double>(stats.filter_bits_total));
  if (uring_env_ != nullptr) {
    const UringStatsSnapshot io = uring_env_->Stats();
    w.Counter("monkeydb_uring_sqes_submitted_total",
              "Read SQEs pushed into the io_uring",
              static_cast<double>(io.sqes_submitted));
    w.Counter("monkeydb_uring_batch_submits_total",
              "io_uring_enter calls for batched reads",
              static_cast<double>(io.batch_submits));
    w.Counter("monkeydb_uring_batched_requests_total",
              "Read requests carried by batched submissions",
              static_cast<double>(io.batched_requests));
    w.Gauge("monkeydb_uring_batched_per_syscall",
            "Mean read requests per batched io_uring_enter",
            io.BatchedPerSyscall());
    w.Counter("monkeydb_uring_short_read_retries_total",
              "Re-submitted partial/EAGAIN reads",
              static_cast<double>(io.short_read_retries));
    w.Counter("monkeydb_uring_direct_io_fallbacks_total",
              "O_DIRECT opens rejected by the filesystem",
              static_cast<double>(io.direct_io_fallbacks));
    w.Counter("monkeydb_uring_probe_fallbacks_total",
              "kUring -> kPosix fallbacks (probe failed)",
              static_cast<double>(UringFallbackEvents()));
  }

  w.DeclareGauge("monkey_predicted_fpr",
                 "Per-level run FPR assigned by the allocation policy for "
                 "the current geometry");
  for (int l = 0; l < levels; l++) {
    char label[16];
    snprintf(label, sizeof(label), "%d", l + 1);
    w.LabeledSample("monkey_predicted_fpr", {{"level", label}},
                    predicted_fpr[l]);
  }
  w.DeclareGauge("monkey_measured_fpr",
                 "Observed per-level false-positive rate: false positives "
                 "over filter probes that reached the level");
  for (int l = 0; l < levels; l++) {
    char label[16];
    snprintf(label, sizeof(label), "%d", l + 1);
    w.LabeledSample("monkey_measured_fpr", {{"level", label}},
                    measured_fpr[l]);
  }
  w.DeclareGauge("monkey_measured_fpr_1m",
                 "Windowed per-level false-positive rate over roughly the "
                 "last minute of scrapes (0 until two scrapes exist)");
  for (int l = 0; l < levels; l++) {
    char label[16];
    snprintf(label, sizeof(label), "%d", l + 1);
    w.LabeledSample("monkey_measured_fpr_1m", {{"level", label}},
                    measured_fpr_1m[l]);
  }
  w.Gauge("monkey_fpr_window_secs",
          "Span actually covered by the windowed FPR gauges",
          static_cast<double>(fpr_window_secs));
  w.Gauge("monkey_predicted_lookup_cost",
          "Predicted zero-result lookup I/Os R: sum of run FPRs (Eq. 3)",
          predicted_r);
  w.Gauge("monkey_measured_lookup_cost",
          "Measured zero-result lookup I/Os: false positives per "
          "zero-result lookup",
          measured_r);

  if (metrics_ != nullptr) {
    for (int h = 0; h < static_cast<int>(Hist::kNumHistograms); h++) {
      w.Summary(std::string("monkeydb_") + HistName(static_cast<Hist>(h)),
                "Latency histogram (microseconds unless the name says "
                "otherwise)",
                metrics_->SnapshotHistogram(static_cast<Hist>(h)));
    }
    if (have_get_latency_1m) {
      w.Summary("monkeydb_get_latency_us_1m",
                "Get latency over roughly the last minute of scrapes",
                get_latency_1m);
    }
    for (int t = 0; t < static_cast<int>(Tick::kNumTicks); t++) {
      w.Counter(std::string("monkeydb_") + TickName(static_cast<Tick>(t)) +
                    "_total",
                "Observability-internal counter",
                static_cast<double>(
                    metrics_->TickTotal(static_cast<Tick>(t))));
    }
  }
  return w.str();
}

void DB::SetStallCondition(WriteStallInfo::Condition next) {
  if (next == stall_condition_) return;
  WriteStallInfo info;
  info.previous = stall_condition_;
  info.current = next;
  info.immutable_memtables = imm_.size();
  stall_condition_ = next;
  if (!HasObservers()) return;
  if (options_.info_log != nullptr) {
    options_.info_log->Log(
        next == WriteStallInfo::Condition::kNormal ? LogLevel::kInfo
                                                   : LogLevel::kWarn,
        "write stall state: %s -> %s (%llu frozen memtables)",
        ToString(info.previous), ToString(info.current),
        static_cast<unsigned long long>(info.immutable_memtables));
  }
  NotifyListeners(
      [&info](EventListener* l) { l->OnWriteStallChange(info); });
}

uint64_t DB::ApproximateSize(const Slice& start, const Slice& limit) const {
  if (internal_comparator_.user_comparator()->Compare(start, limit) >= 0) {
    return 0;
  }
  const std::shared_ptr<const ReadView> view = CurrentView();
  const Version& version = *view->version;
  uint64_t total = 0;
  for (int level = 1; level <= version.NumLevels(); level++) {
    for (const RunPtr& run : version.RunsAt(level)) {
      const Slice run_smallest = ExtractUserKey(Slice(run->smallest));
      const Slice run_largest = ExtractUserKey(Slice(run->largest));
      const Comparator* cmp = internal_comparator_.user_comparator();
      if (cmp->Compare(limit, run_smallest) <= 0 ||
          cmp->Compare(start, run_largest) > 0) {
        continue;  // Disjoint.
      }
      // Fraction of the run's data blocks whose fence range intersects
      // [start, limit): estimated by index-block iteration (in memory).
      if (run->table == nullptr) continue;
      const uint64_t blocks = run->table->num_data_blocks();
      if (blocks == 0) continue;
      // Walk fence pointers via a table iterator over the index granularity
      // would read data pages; instead interpolate: assume keys uniform
      // between smallest and largest and scale by entry overlap share.
      // This is the standard metadata-only estimate (no I/O).
      const double run_bytes = static_cast<double>(run->file_size);
      // Compare as strings for a crude interpolation anchor.
      auto frac = [&](const Slice& key) {
        if (cmp->Compare(key, run_smallest) <= 0) return 0.0;
        if (cmp->Compare(key, run_largest) >= 0) return 1.0;
        // Interpolate on the first 8 bytes.
        auto prefix_value = [](const Slice& s) {
          uint64_t v = 0;
          for (int i = 0; i < 8; i++) {
            v = (v << 8) |
                (i < static_cast<int>(s.size())
                     ? static_cast<unsigned char>(s[i])
                     : 0);
          }
          return static_cast<double>(v);
        };
        const double lo = prefix_value(run_smallest);
        const double hi = prefix_value(run_largest);
        if (hi <= lo) return 0.5;
        return std::min(
            1.0, std::max(0.0, (prefix_value(key) - lo) / (hi - lo)));
      };
      total += static_cast<uint64_t>(run_bytes *
                                     (frac(limit) - frac(start)));
    }
  }
  return total;
}

// monkey-lint: io-under-mutex(fn) — Checkpoint is a stop-the-world admin
// operation: the copied manifest, runs, and WAL must describe one
// consistent tree, so mu_ stays held across the whole copy by design.
// Writers stall for its duration; that is the documented cost.
Status DB::Checkpoint(const std::string& target_dir) {
  MutexLock lock(mu_);
  if (options_.background_compaction) {
    // Drain frozen memtables so the copy includes every buffer that has
    // left the active memtable (and so the worker cannot swap files
    // underneath the copy loop).
    MONKEYDB_RETURN_IF_ERROR(WaitForDrain());
  }
  MONKEYDB_RETURN_IF_ERROR(options_.env->CreateDir(target_dir));

  auto copy_file = [&](const std::string& from,
                       const std::string& to) -> Status {
    std::unique_ptr<SequentialFile> src;
    MONKEYDB_RETURN_IF_ERROR(options_.env->NewSequentialFile(from, &src));
    std::unique_ptr<WritableFile> dst;
    MONKEYDB_RETURN_IF_ERROR(options_.env->NewWritableFile(to, &dst));
    char buf[64 << 10];
    while (true) {
      Slice chunk;
      MONKEYDB_RETURN_IF_ERROR(src->Read(sizeof(buf), &chunk, buf));
      if (chunk.empty()) break;
      MONKEYDB_RETURN_IF_ERROR(dst->Append(chunk));
    }
    return dst->Close();
  };

  // 1. Copy every live run and collect the snapshot edit.
  VersionEdit snapshot;
  for (int level = 1; level <= current_.NumLevels(); level++) {
    for (const RunPtr& run : current_.RunsAt(level)) {
      char name[32];
      snprintf(name, sizeof(name), "/%06llu.sst",
               static_cast<unsigned long long>(run->file_number));
      MONKEYDB_RETURN_IF_ERROR(
          copy_file(name_ + name, target_dir + name));
      VersionEdit::AddedRun added;
      added.level = level;
      added.file_number = run->file_number;
      added.file_size = run->file_size;
      added.num_entries = run->num_entries;
      added.sequence = run->sequence;
      added.smallest = run->smallest;
      added.largest = run->largest;
      snapshot.added.push_back(std::move(added));
    }
  }
  snapshot.last_sequence = last_sequence_.load(std::memory_order_relaxed);
  snapshot.next_file_number = next_file_number_;

  // 2. Copy value-log segments (handles in the runs reference them).
  std::vector<std::string> children;
  if (options_.env->GetChildren(name_, &children).ok()) {
    for (const std::string& child : children) {
      if (child.rfind("vlog-", 0) == 0) {
        MONKEYDB_RETURN_IF_ERROR(
            copy_file(name_ + "/" + child, target_dir + "/" + child));
      }
    }
  }

  // 3. Write the manifest snapshot. The active memtable is NOT included:
  // the checkpoint captures everything up to the last flush (call Flush()
  // first for an up-to-the-write checkpoint).
  std::unique_ptr<WritableFile> mfile;
  MONKEYDB_RETURN_IF_ERROR(
      options_.env->NewWritableFile(target_dir + "/MANIFEST", &mfile));
  WalWriter manifest(std::move(mfile));
  std::string encoded;
  snapshot.EncodeTo(&encoded);
  MONKEYDB_RETURN_IF_ERROR(manifest.AddRecord(encoded, true));
  return manifest.Close();
}

LsmShape DB::CurrentShape() const {
  const std::shared_ptr<const ReadView> view = CurrentView();
  LsmShape shape;
  shape.total_entries = view->version->TotalEntries() + view->MemEntries();
  shape.buffer_entries = buffer_entries_.load(std::memory_order_relaxed);
  shape.size_ratio = options_.size_ratio;
  shape.num_levels = std::max(1, view->version->DeepestNonEmptyLevel());
  shape.merge_policy = options_.merge_policy;
  shape.bits_per_entry_budget = options_.bits_per_entry;
  return shape;
}

}  // namespace monkeydb
