#include "lsm/wal.h"

#include "obs/metrics.h"
#include "obs/perf_context.h"
#include "util/coding.h"
#include "util/hash.h"

namespace monkeydb {

Status WalWriter::AddRecord(const Slice& payload, bool sync) {
  std::string header;
  PutFixed32(&header, MaskCrc(Crc32c(payload.data(), payload.size())));
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  MONKEYDB_RETURN_IF_ERROR(file_->Append(header));
  MONKEYDB_RETURN_IF_ERROR(file_->Append(payload));
  if (sync) {
    StopWatch watch(metrics_, Hist::kWalSyncLatency);
    PerfTimer timer(&GetPerfContext()->wal_sync_nanos);
    return file_->Sync();
  }
  return Status::OK();
}

bool WalReader::ReadRecord(std::string* scratch, Slice* payload) {
  char header[8];
  Slice header_slice;
  if (!file_->Read(8, &header_slice, header).ok() ||
      header_slice.size() < 8) {
    return false;  // Clean EOF (or torn header: stop recovery here).
  }
  const uint32_t expected_crc = UnmaskCrc(DecodeFixed32(header_slice.data()));
  const uint32_t length = DecodeFixed32(header_slice.data() + 4);
  // A garbage header can claim a multi-GB record; bound the allocation so a
  // torn tail is detected cheaply. No legitimate record approaches this.
  constexpr uint32_t kMaxRecordBytes = 256u << 20;
  if (length > kMaxRecordBytes) return false;

  scratch->resize(length);
  Slice body;
  if (!file_->Read(length, &body, scratch->data()).ok() ||
      body.size() < length) {
    return false;  // Torn record.
  }
  if (Crc32c(body.data(), body.size()) != expected_crc) {
    return false;  // Corrupt tail.
  }
  *payload = body;
  return true;
}

WalBatch::WalBatch(SequenceNumber first_sequence) {
  PutFixed64(&rep_, first_sequence);
  count_offset_ = rep_.size();
  PutFixed32(&rep_, 0);  // Patched by count updates below.
}

void WalBatch::Put(const Slice& key, const Slice& value) {
  rep_.push_back(static_cast<char>(ValueType::kValue));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
  count_++;
  EncodeFixed32(rep_.data() + count_offset_, count_);
}

void WalBatch::PutHandle(const Slice& key, const Slice& handle_encoding) {
  rep_.push_back(static_cast<char>(ValueType::kValueHandle));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, handle_encoding);
  count_++;
  EncodeFixed32(rep_.data() + count_offset_, count_);
}

void WalBatch::Delete(const Slice& key) {
  rep_.push_back(static_cast<char>(ValueType::kDeletion));
  PutLengthPrefixedSlice(&rep_, key);
  count_++;
  EncodeFixed32(rep_.data() + count_offset_, count_);
}

void WalBatch::Add(ValueType type, const Slice& key, const Slice& value) {
  switch (type) {
    case ValueType::kValue:
      Put(key, value);
      break;
    case ValueType::kValueHandle:
      PutHandle(key, value);
      break;
    case ValueType::kDeletion:
      Delete(key);
      break;
  }
}

Status WalBatch::Iterate(
    const Slice& payload,
    const std::function<void(SequenceNumber, ValueType, const Slice&,
                             const Slice&)>& apply) {
  Slice input = payload;
  if (input.size() < 12) return Status::Corruption("wal batch too short");
  const SequenceNumber first_seq = DecodeFixed64(input.data());
  input.remove_prefix(8);
  const uint32_t count = DecodeFixed32(input.data());
  input.remove_prefix(4);

  for (uint32_t i = 0; i < count; i++) {
    if (input.empty()) return Status::Corruption("wal batch truncated");
    const uint8_t type_byte = static_cast<uint8_t>(input[0]);
    input.remove_prefix(1);
    if (type_byte > static_cast<uint8_t>(ValueType::kValueHandle)) {
      return Status::Corruption("bad wal entry type");
    }
    const ValueType type = static_cast<ValueType>(type_byte);
    Slice key, value;
    if (!GetLengthPrefixedSlice(&input, &key)) {
      return Status::Corruption("bad wal key");
    }
    if (type != ValueType::kDeletion &&
        !GetLengthPrefixedSlice(&input, &value)) {
      return Status::Corruption("bad wal value");
    }
    apply(first_seq + i, type, key, value);
  }
  if (!input.empty()) return Status::Corruption("trailing wal bytes");
  return Status::OK();
}

}  // namespace monkeydb
