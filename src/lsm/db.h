// DB: the public key-value store API over the LSM-tree engine.
//
// Threading model (full discussion in DESIGN.md "Threading"):
//  - The read path (Get, NewIterator, GetStats, DebugString,
//    ApproximateSize, CurrentShape) never blocks on the writer mutex or on
//    in-flight compactions: it snapshots an immutable, reference-counted
//    ReadView (memtable + frozen memtables + runs) — the only shared state
//    touched is a pointer copy under a dedicated micro-mutex — and performs
//    every filter probe and block read with no lock held at all.
//  - Writers commit through a group-commit queue (LevelDB's JoinBatchGroup
//    scheme): each writer enqueues its batch and waits; the writer at the
//    front becomes the leader, coalesces the queued batches (up to
//    DbOptions::max_write_group_bytes) into ONE WAL record with ONE fsync
//    (when any member asked for sync), applies the merged batch to the
//    memtable with contiguous sequence numbers, and wakes the followers
//    with their individual statuses. Concurrent writers therefore pay one
//    WAL append + fsync per *group*, not per batch.
//  - With background_compaction=false (the default), flushes and cascading
//    merges run synchronously inside the writing thread, exactly like the
//    amortized model in the paper.
//  - With background_compaction=true, a full memtable is frozen onto an
//    immutable-memtable queue and flushed (plus cascades) by a background
//    worker; writers experience slowdown/stall backpressure only when the
//    queue fills. Flushes take priority over cascading merges: a cascade
//    in progress yields between merge steps when a frozen memtable is
//    waiting.
//  - With compaction_threads > 1, large leveling merges are split at
//    fence-pointer boundaries into disjoint key ranges and merged in
//    parallel by a thread pool, producing multiple disjoint output runs
//    installed atomically as one version edit.
// The engine supports both merge policies (leveling/tiering), any size
// ratio T >= 2, any buffer size, and pluggable Bloom-filter memory
// allocation (uniform vs Monkey).

#ifndef MONKEYDB_LSM_DB_H_
#define MONKEYDB_LSM_DB_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "lsm/internal_key.h"
#include "lsm/options.h"
#include "lsm/snapshot.h"
#include "lsm/version.h"
#include "lsm/value_log.h"
#include "lsm/wal.h"
#include "lsm/write_batch.h"
#include "memtable/memtable.h"
#include "obs/event_listener.h"
#include "obs/metrics.h"
#include "util/iterator.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace monkeydb {

class UringEnv;
struct UringStatsSnapshot;

// Aggregate statistics for experiments and debugging.
struct DbStats {
  uint64_t memtable_entries = 0;  // Active + frozen memtables.
  uint64_t total_disk_entries = 0;
  uint64_t total_runs = 0;
  int deepest_level = 0;
  std::vector<uint64_t> entries_per_level;   // Index 0 = Level 1.
  std::vector<uint64_t> runs_per_level;
  std::vector<uint64_t> filter_bits_per_level;
  uint64_t filter_bits_total = 0;

  // Lookup-path counters since Open (or the last ResetStats).
  uint64_t gets = 0;
  uint64_t gets_not_found = 0;    // Zero-result lookups (no tombstone hit).
  uint64_t runs_probed = 0;       // Runs whose data page was read.
  uint64_t filter_negatives = 0;  // Probes skipped by a Bloom filter.
  uint64_t false_positives = 0;   // Page reads that found nothing.
  uint64_t multigets = 0;         // MultiGet batches (not keys).

  // The same probe events attributed to on-disk levels (index 0 = Level
  // 1), truncated at the deepest level that saw traffic. measured FPR at
  // level l = false_positives / (filter_negatives + false_positives) —
  // DumpMetrics() exports this next to the allocator's predicted FPR.
  std::vector<uint64_t> runs_probed_per_level;
  std::vector<uint64_t> filter_negatives_per_level;
  std::vector<uint64_t> false_positives_per_level;

  // Block cache counters since Open (all zero when no cache is
  // configured). prefetch_hits are lookups served by a readahead/scan
  // block before its first demand reference; scan_inserts are the
  // low-priority (LRU midpoint) inserts those fetches performed.
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
  uint64_t block_cache_prefetch_hits = 0;
  uint64_t block_cache_scan_inserts = 0;

  // Compaction counters since Open.
  uint64_t flushes = 0;
  uint64_t merges = 0;
  uint64_t entries_compacted = 0;

  // Writer-backpressure counters since Open (background mode only).
  uint64_t write_slowdowns = 0;
  uint64_t write_stalls = 0;

  // Write-path counters (PR 2/3 machinery that GetStats never surfaced).
  uint64_t writes = 0;              // Put/Delete/Write calls.
  uint64_t write_groups = 0;        // Commit groups (leader commits).
  uint64_t write_group_batches = 0; // Batches coalesced into those groups.
  uint64_t wal_appends = 0;         // WAL records written.
  uint64_t wal_syncs = 0;           // WAL fsyncs issued.
  uint64_t wal_rotations = 0;
  uint64_t value_log_writes = 0;    // Values separated into the log.
  uint64_t value_log_bytes = 0;     // Payload bytes appended to the log.
  uint64_t value_log_reads = 0;     // Handle resolutions on the read path.

  // Concurrent-memtable counters (all zero unless
  // allow_concurrent_memtable_write is on; see DESIGN.md "Write path II").
  // Arena/skiplist numbers aggregate every memtable since Open: retired
  // (flushed) memtables fold their totals in when they are swapped out,
  // and the live memtable's current values are added on top.
  uint64_t memtable_parallel_groups = 0;   // Groups applied in parallel.
  uint64_t memtable_parallel_batches = 0;  // Batches across those groups.
  uint64_t arena_cas_retries = 0;     // Failed bump-pointer CASes.
  uint64_t arena_slow_allocs = 0;     // Allocations through the shard lock.
  uint64_t arena_shard_refills = 0;   // Shard chunk refills.
  uint64_t arena_hugetlb_blocks = 0;  // Blocks by backing tier.
  uint64_t arena_thp_blocks = 0;
  uint64_t arena_plain_blocks = 0;
  // Backing tier of the live memtable's most recent block:
  // "hugetlb", "thp", "plain", or "none" (classic arena / no blocks yet).
  std::string arena_backing = "none";
  uint64_t skiplist_cas_retries = 0;  // Failed splice CASes.
};

class DB {
 public:
  // Opens (creating if needed) the database at `name`. Recovers from the
  // manifest and WAL if they exist.
  static Status Open(const DbOptions& options, const std::string& name,
                     std::unique_ptr<DB>* dbptr);

  ~DB();

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) EXCLUDES(mu_);
  Status Delete(const WriteOptions& options, const Slice& key)
      EXCLUDES(mu_);

  // Applies every operation in the batch atomically (one WAL record:
  // after a crash, all of them or none of them survive).
  Status Write(const WriteOptions& options, const WriteBatch& batch)
      EXCLUDES(mu_);

  // Pins the current state for consistent reads via
  // ReadOptions::snapshot. Must be released with ReleaseSnapshot.
  const Snapshot* GetSnapshot() EXCLUDES(mu_);
  void ReleaseSnapshot(const Snapshot* snapshot) EXCLUDES(mu_);

  // Point lookup. Returns NotFound if the key does not exist or was
  // deleted. Never blocks on the writer mutex or in-flight compactions.
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value);

  // Batched point lookup: resolves every key against ONE consistent
  // snapshot and pipelines the disk probes. The batch first probes the
  // memtables and every run's Bloom filter + fence pointers (no I/O),
  // dedups the surviving data blocks, sorts them by (file, offset), and
  // fetches them together — hinting all of them to the device up front and
  // reading through the shared read pool when one exists — before
  // resolving each key in run order. Results land in (*values)[i] with the
  // per-key outcome in the returned vector ((*values) is resized; order
  // matches keys). Unlike N sequential Gets, a run deeper than a key's
  // resolution may be probed speculatively; the extra reads are bounded by
  // the Bloom false-positive rate.
  [[nodiscard]] std::vector<Status> MultiGet(
      const ReadOptions& options, const std::vector<Slice>& keys,
      std::vector<std::string>* values);

  // Forward iteration over live user keys (newest visible version, no
  // tombstones). SeekToLast/Prev are not supported. The iterator reads a
  // pinned snapshot of the tree and never blocks writers or compactions.
  std::unique_ptr<Iterator> NewIterator(const ReadOptions& options);

  // Forces the memtable to disk (flush + cascading merges per policy). In
  // background mode this drains the whole immutable-memtable queue before
  // returning.
  Status Flush() EXCLUDES(mu_);

  // Full compaction: merges the memtable and every run into a single run at
  // the deepest occupied level, purging tombstones and superseded versions.
  Status CompactAll() EXCLUDES(mu_);

  DbStats GetStats() const;

  // Zeroes every operation counter (DbStats' mutable half), the metrics
  // registry's histograms, and the block cache's hit/miss counters, so
  // benches can measure per-phase deltas instead of lifetime totals.
  // Structural fields (levels, runs, filter bits) are derived from the
  // tree and are unaffected. If the block cache is shared between DBs its
  // counters reset for all of them.
  void ResetStats();

  // Human-readable summary of the tree: per-level runs, entries, and
  // realized filter bits/entry (LevelDB's GetProperty-style report).
  std::string DebugString() const;

  // DebugString plus every DbStats counter (read path, write path,
  // compaction, backpressure), routed through the same GetStats snapshot
  // the tests assert against.
  std::string DumpStats() const;

  // Metrics exposition (DESIGN.md "Observability"). Includes the
  // paper-specific series monkey_predicted_fpr{level} (the allocator's
  // Eq. 5/6 plan for the current geometry) vs monkey_measured_fpr{level}
  // (observed false-positive rate), and predicted zero-result lookup cost
  // R (Eq. 3: sum of per-level run FPRs) vs the measured average.
  // Histograms appear only when enable_metrics is true; counters and the
  // FPR gauges are always present.
  enum class MetricsFormat { kPrometheus, kJson };
  std::string DumpMetrics(MetricsFormat format) const;

  // Chrome/Perfetto trace-event JSON of every span retained in the
  // process-wide flight recorder (obs/trace.h; DESIGN.md §16). Spans are
  // recorded only for armed requests — ReadOptions/WriteOptions::trace or
  // head sampling — so with tracing off this returns an empty event list.
  // Load the output in https://ui.perfetto.dev, or pretty-print it with
  // tools/trace_view.py.
  std::string DumpTrace() const;

  // io_uring backend counters, when this DB owns a UringEnv (env == null
  // and io_backend resolved to kUring). Returns false — leaving *out
  // untouched — on every other backend. Lets out-of-process surfaces (the
  // RESP server's INFO reply) report the I/O substrate without parsing
  // DumpMetrics.
  bool GetUringStats(UringStatsSnapshot* out) const;

  // The registry behind DumpMetrics (null unless enable_metrics). Exposed
  // for benches/tests that want HistogramData snapshots directly.
  MetricsRegistry* metrics() const { return metrics_.get(); }

  // Approximate on-disk bytes of entries in [start, limit), estimated from
  // run metadata and fence pointers (no data I/O).
  uint64_t ApproximateSize(const Slice& start, const Slice& limit) const;

  // Writes a consistent copy of the database (runs + manifest snapshot +
  // value-log segments) into `target_dir` on the same Env. The copy can be
  // opened as an independent database. In background mode the immutable-
  // memtable queue is drained first so the copy includes every frozen
  // buffer.
  Status Checkpoint(const std::string& target_dir) EXCLUDES(mu_);

  // The current tree geometry, as fed to the FPR allocation policy.
  LsmShape CurrentShape() const;

  const DbOptions& options() const { return options_; }

 private:
  DB(const DbOptions& options, std::string name);

  // A frozen memtable awaiting a background flush, plus the WAL file that
  // makes it durable until the flush completes.
  struct ImmEntry {
    std::shared_ptr<MemTable> mem;
    uint64_t wal_number = 0;
  };

  // Everything BuildRunFromJob needs, captured under mu_ so the actual run
  // construction (all the I/O) can run with mu_ released.
  struct CompactionJob {
    int target_level = 1;
    bool drop_tombstones = false;
    uint64_t file_number = 0;
    double fpr = 1.0;
    SequenceNumber smallest_snapshot = 0;
    SequenceNumber run_sequence = 0;
    // Subcompaction bounds (internal keys; empty = unbounded). The merge
    // emits only entries in [start_key, end_key). Boundaries always sit at
    // (user_key, kMaxSequenceNumber) so no user key's versions straddle a
    // split (see BuildMergeOutputs).
    std::string start_key;
    std::string end_key;
  };

  // One queued writer in the group-commit protocol (LevelDB's Writer).
  // Lives on the caller's stack; the deque holds non-owning pointers.
  // done/status are deliberately NOT GUARDED_BY(mu_): the queue protocol
  // covers them — `done` is only written by a leader holding mu_ and only
  // read by the owning thread (under mu_, or after it observed done under
  // mu_), and `status` is written inside the leader's commit window (mu_
  // released, commit_in_flight_ set) before `done` publishes it.
  // Shared state of one parallel-apply group (lives on the leader's
  // stack for the duration of the group; see CommitGroupLocked).
  // `remaining` counts writers that have not finished inserting their
  // batch; the last one out signals `cv` to release the leader, which is
  // the only waiter. Its mutex is private to the group — never held
  // together with mu_.
  struct ParallelApplyState {
    explicit ParallelApplyState(int n) : remaining(n) {}
    std::atomic<int> remaining;
    Mutex mu;
    CondVar cv{&mu};
  };

  struct Writer {
    Writer(const WriteBatch* b, bool s, Mutex* mu)
        : batch(b), sync(s), cv(mu) {}
    const WriteBatch* batch;
    bool sync;
    bool done = false;   // Set by the leader that committed (or failed) us.
    Status status;       // Valid once done.
    CondVar cv;          // Bound to mu_; signaled with mu_ held.

    // Parallel-apply assignment (set by the leader under mu_ after the
    // group's WAL record is durable, cleared by the owning thread under
    // mu_ once its insertion is done). While apply_assigned is true the
    // pointers below are kept alive by the leader, which cannot finish
    // the group until every member decrements apply_state->remaining.
    bool apply_assigned = false;
    SequenceNumber apply_first_seq = 0;
    // This writer's vlog-resolved operations (type, payload) — parallel
    // to its batch's ops; owned by the leader's `resolved` vector.
    const std::vector<std::pair<ValueType, std::string>>* apply_ops =
        nullptr;
    ParallelApplyState* apply_state = nullptr;
    MemTable* apply_mem = nullptr;
  };

  Status Recover() EXCLUDES(mu_);
  Status ReplayWal(const std::string& wal_path) REQUIRES(mu_);

  // Rotates to a fresh numbered WAL file. Does not delete the previous one
  // (its memtable may still be in flight).
  Status NewWalLocked() REQUIRES(mu_);
  std::string WalFileName(uint64_t number) const;

  // Commits `group` (a prefix of writers_) as its leader: resolves
  // value-log separation per member, builds one merged WAL record, appends
  // it (one fsync if any member wants sync), and applies it to the
  // memtable with contiguous sequence numbers. mu_ is released during the
  // vlog/WAL/memtable work (commit_in_flight_ keeps maintenance ops out)
  // and reacquired before returning. Each member's individual outcome is
  // written to its Writer::status: a member whose batch was not applied
  // never sees ok(). Returns the leader's own status. REQUIRES:
  // group[0] == writers_.front() is the calling thread.
  Status CommitGroupLocked(const std::vector<Writer*>& group)
      REQUIRES(mu_);

  // Inserts `w`'s assigned sub-batch into the memtable as part of a
  // parallel apply group (allow_concurrent_memtable_write). Runs with mu_
  // released (the group's WAL record is already durable; commit_in_flight_
  // keeps the memtable stable); reacquires mu_ and clears the assignment
  // before returning. Called by follower threads from DB::Write's wait
  // loop when the leader hands them their assignment.
  void ApplyParallelWriter(Writer* w) REQUIRES(mu_);

  // Folds a retiring memtable's arena/skiplist counters into counters_ so
  // DbStats aggregates survive the flush. Called wherever mem_ is swapped.
  void AccumulateMemTableStats(const MemTable& mem);

  // Memtable-full handling shared by Put/Delete/Write. Synchronous mode
  // flushes inline; background mode freezes the memtable (with
  // backpressure) and wakes the worker. May release and reacquire mu_.
  Status MaybeCompactBuffer() REQUIRES(mu_);

  // Freezes the active memtable onto the immutable queue, rotating the WAL
  // and applying slowdown/stall backpressure when the queue is full. May
  // release and reacquire mu_.
  Status SwitchMemTable() REQUIRES(mu_);

  // Flushes `mem` to Level 1 per the merge policy. Callers run Cascade()
  // afterwards — separately, so the background worker can retire the frozen
  // memtable from imm_ first and the cascades' flush-priority early-exit
  // (yield when a frozen memtable is waiting) sees only *other* pending
  // flushes. If swap_active, the active memtable is replaced with a fresh
  // one once its Level-1 run is built (synchronous mode); background mode
  // passes the frozen memtable and manages its queue entry itself. With
  // io_unlock, mu_ is released around every run build (background mode) so
  // writers and readers proceed during the I/O. mem is taken by value: the
  // active-memtable caller passes mem_, which this function reassigns.
  Status FlushMemTable(std::shared_ptr<MemTable> mem, bool swap_active,
                       bool io_unlock) REQUIRES(mu_);
  // The pre-observability flush body; FlushMemTable wraps it with the
  // flush events, log lines, and the kFlushLatency histogram.
  Status FlushMemTableImpl(std::shared_ptr<MemTable> mem, bool swap_active,
                           bool io_unlock) REQUIRES(mu_);

  // RAII around one merge (defined in db.cc): bumps the merge counter,
  // fires OnCompactionBegin/Completed with timing, and records
  // Hist::kMergeLatency. Reports failure unless Completed() was called.
  class CompactionScope;

  // Synchronous-mode flush of the active memtable (with cascades) + WAL
  // rotation. Waits out any in-flight group commit first. mu_ is kept held
  // through all the I/O — synchronous mode.
  Status FlushActiveMemTableLocked() REQUIRES(mu_);

  // The cascades restore every level's invariant (scanning all levels, not
  // just a chain from Level 1 — a background worker may resume a cascade it
  // abandoned earlier to prioritize a flush). With io_unlock they
  // early-exit between merge steps whenever a frozen memtable is waiting;
  // BackgroundMain re-dispatches via CascadePendingLocked.
  Status CascadeLeveling(bool io_unlock) REQUIRES(mu_);
  Status CascadeTiering(bool io_unlock) REQUIRES(mu_);
  Status CascadeLazyLeveling(bool io_unlock) REQUIRES(mu_);

  // Dispatches to the configured policy's cascade (released around run
  // builds when io_unlock is set).
  Status Cascade(bool io_unlock) REQUIRES(mu_);

  // True iff some level violates its merge-policy invariant, i.e. the
  // cascade for the configured policy would do work. Must match the
  // cascades' stop conditions exactly or the worker would spin (or stall).
  bool CascadePendingLocked() const REQUIRES(mu_);

  // Captures the post-compaction tree geometry, resolves the FPR for the
  // output run, and allocates its file number.
  CompactionJob PrepareJobLocked(int target_level, bool drop_tombstones,
                                 uint64_t estimated_entries,
                                 const std::set<uint64_t>& replaced_files)
      REQUIRES(mu_);

  // Builds a new on-disk run from iter (which yields internal keys in
  // order) according to job. Touches no mu_-guarded state: callers may
  // drop mu_ around it.
  Status BuildRunFromJob(Iterator* iter, const CompactionJob& job,
                         RunPtr* out);

  // PrepareJobLocked + BuildRunFromJob. estimated_entries is an upper
  // bound on the output size and replaced_files lists the runs this
  // compaction consumes; both feed the FPR policy's view of the
  // post-compaction tree geometry. With io_unlock, mu_ is released during
  // the build.
  Status BuildRun(Iterator* iter, int target_level, bool drop_tombstones,
                  uint64_t estimated_entries,
                  const std::set<uint64_t>& replaced_files, RunPtr* out,
                  bool io_unlock) REQUIRES(mu_);

  // Merges `inputs` (plus `mem`, when non-null) into the target level,
  // possibly as several parallel range-partitioned subcompactions when a
  // compaction pool exists and the policy is leveling: the key space is
  // split at fence-pointer boundaries (always between user keys, never
  // between versions of one key) into disjoint ranges, each merged by its
  // own thread into its own output run, all sharing one FPR/sequence/
  // snapshot decision. Appends the non-empty outputs to *outputs in key
  // order; with compaction_threads == 1 this is byte-identical to the
  // single BuildRun path. With io_unlock, mu_ is released during the
  // builds.
  Status BuildMergeOutputs(const std::vector<RunPtr>& inputs,
                           const std::shared_ptr<MemTable>& mem,
                           int target_level, bool drop_tombstones,
                           uint64_t estimated_entries,
                           const std::set<uint64_t>& replaced_files,
                           std::vector<RunPtr>* outputs,
                           bool io_unlock) REQUIRES(mu_);

  // True iff nothing older than output_level exists, so tombstones and all
  // superseded entries can be dropped.
  bool CanDropTombstones(int output_level) const REQUIRES(mu_);

  // Appends edit to the manifest, applies it to current_, and publishes a
  // new ReadView. Files the edit retires are queued on obsolete_files_ for
  // DrainObsoleteFilesLocked — never unlinked here, where mu_ is held.
  Status LogAndApply(const VersionEdit& edit) REQUIRES(mu_);

  // Unlinks everything queued on obsolete_files_ with mu_ released (the
  // names left every published view when they were queued, so nothing can
  // reach them). Re-checks the queue after re-acquiring in case more files
  // were retired during the window. Called from the background worker
  // after each work item and from the synchronous flush/compaction paths
  // before they return.
  void DrainObsoleteFilesLocked() REQUIRES(mu_);

  uint64_t LevelCapacityEntries(int level) const;

  // Replaces *value (an encoded ValueHandle) with the logged value.
  Status ResolveHandle(std::string* value) const;

  std::string TableFileName(uint64_t number) const;
  Status OpenTable(RunPtr run);

  // --- Read-path snapshot publication ---

  // Rebuilds the published ReadView from mem_/imm_/current_.
  void PublishViewLocked() REQUIRES(mu_) EXCLUDES(view_mu_);
  std::shared_ptr<const ReadView> CurrentView() const EXCLUDES(view_mu_) {
    // view_mu_ is held only for this pointer copy (it is NOT mu_ — the
    // read path still never waits on writers or compactions).
    // std::atomic<std::shared_ptr> would express this directly, but
    // libstdc++ 12's _Sp_atomic::load unlocks its spinlock with a relaxed
    // fetch_sub, which TSan (correctly, per the memory model) flags as a
    // data race against the next store's pointer write.
    MutexLock lock(view_mu_);
    return view_;
  }

  // --- Background worker ---

  void BackgroundMain() EXCLUDES(mu_);
  // Flushes the oldest frozen memtable (releasing the lock during I/O),
  // then retires it and its WAL.
  Status FlushOldestImmutable() REQUIRES(mu_);
  // Blocks until the immutable queue is empty and the worker is idle.
  Status WaitForDrain() REQUIRES(mu_);

  // Backend Env constructed by Open when DbOptions::env was null. Declared
  // first so it is destroyed last — every table file, WAL, and manifest
  // below was created by it.
  std::unique_ptr<Env> owned_env_;
  // Non-null iff owned_env_ is the io_uring backend; exposes its counters
  // (sqes submitted, batched-per-syscall ratio, retries) to DumpMetrics.
  UringEnv* uring_env_ = nullptr;

  const DbOptions options_;
  const std::string name_;
  InternalKeyComparator internal_comparator_;

  // Smallest sequence pinned by an active snapshot (or last_sequence_ if
  // none). Compactions must keep versions visible at this point.
  SequenceNumber SmallestSnapshotLocked() const REQUIRES(mu_);

  // Writer/metadata mutex. Guards mem_/imm_ membership, snapshots_,
  // next_file_number_, wal_/manifest_ appends, and every structural change
  // to current_. The read path never takes it.
  mutable Mutex mu_;
  // mem_ and wal_ are GUARDED_BY(mu_) for their swaps; the group-commit
  // leader also accesses them through CommitGroupLocked's ScopedUnlock
  // window, where the commit_in_flight_ interlock (not mu_) keeps them
  // stable — see that function.
  std::shared_ptr<MemTable> mem_ GUARDED_BY(mu_);
  std::vector<ImmEntry> imm_ GUARDED_BY(mu_);  // Newest first.

  // Group-commit writer queue. front() is the leader; it commits a prefix
  // of the queue and pops it. commit_in_flight_ is true while the leader
  // works outside mu_; maintenance operations that swap mem_ or the WAL
  // (Flush, CompactAll, Checkpoint, GetSnapshot) wait on commit_cv_ for it
  // to clear so they never observe a half-applied group.
  std::deque<Writer*> writers_ GUARDED_BY(mu_);
  bool commit_in_flight_ GUARDED_BY(mu_) = false;
  CondVar commit_cv_{&mu_};
  std::multiset<SequenceNumber> snapshots_ GUARDED_BY(mu_);
  std::atomic<SequenceNumber> last_sequence_{0};
  uint64_t next_file_number_ GUARDED_BY(mu_) = 1;
  uint64_t wal_number_ GUARDED_BY(mu_) = 0;
  // Files retired from every published view, awaiting unlink outside mu_.
  std::vector<std::string> obsolete_files_ GUARDED_BY(mu_);
  std::atomic<uint64_t> buffer_entries_{0};  // B·P: set from first flush.

  // Master tree state, mutated only under mu_ by the thread performing
  // structural work (in background mode, only the worker or a drained
  // maintenance op — so it is stable across the worker's unlock windows).
  Version current_ GUARDED_BY(mu_);
  // Immutable snapshot for the read path; replaced on every structural
  // change. view_mu_ guards only the pointer swap itself and is never held
  // across probes, merges, or I/O (see CurrentView for why this is not an
  // std::atomic<std::shared_ptr>).
  mutable Mutex view_mu_;
  std::shared_ptr<const ReadView> view_ GUARDED_BY(view_mu_);

  // Set once in Recover (before any concurrency) and internally
  // synchronized; the read path calls vlog_->Get with no lock held.
  std::unique_ptr<ValueLog> vlog_;  // Non-null iff separation is enabled.
  std::unique_ptr<WalWriter> wal_ GUARDED_BY(mu_);
  std::unique_ptr<WalWriter> manifest_ GUARDED_BY(mu_);

  // Background flush/compaction state (background mode only). Shutdown
  // ordering: ~DB sets shutting_down_ under mu_, wakes both cvs, joins the
  // worker, and only then tears members down, so the worker never touches
  // a dead Env or Version.
  std::thread bg_thread_;
  // Extra merge threads for range-partitioned subcompactions; non-null iff
  // compaction_threads > 1 (holds compaction_threads - 1 threads — the
  // dispatching thread works too). Destroyed after bg_thread_ joins.
  std::unique_ptr<ThreadPool> compaction_pool_;
  // Read-path pool executing scan readahead and MultiGet block fetches;
  // non-null iff read_io_threads > 0. Idle unless those features are used.
  // Iterators hand it to TableIterator, so they must not outlive the DB
  // (already the contract — they hold a raw DB pointer).
  std::unique_ptr<ThreadPool> read_pool_;
  CondVar bg_work_cv_{&mu_};  // Signals the worker: work/shutdown.
  CondVar bg_done_cv_{&mu_};  // Signals writers: progress made.
  bool worker_busy_ GUARDED_BY(mu_) = false;
  bool shutting_down_ GUARDED_BY(mu_) = false;
  Status bg_error_ GUARDED_BY(mu_);  // Sticky; surfaced on writes.

  // Lock-free operation counters (the mutable pieces of DbStats).
  struct Counters {
    // Deep enough for any geometry the benches build; probes on deeper
    // levels clamp into the last slot.
    static constexpr int kMaxLevels = 24;

    std::atomic<uint64_t> gets{0};
    std::atomic<uint64_t> gets_not_found{0};
    std::atomic<uint64_t> multigets{0};
    std::atomic<uint64_t> runs_probed{0};
    std::atomic<uint64_t> filter_negatives{0};
    std::atomic<uint64_t> false_positives{0};
    std::atomic<uint64_t> flushes{0};
    std::atomic<uint64_t> merges{0};
    std::atomic<uint64_t> entries_compacted{0};
    std::atomic<uint64_t> write_slowdowns{0};
    std::atomic<uint64_t> write_stalls{0};
    std::atomic<uint64_t> writes{0};
    std::atomic<uint64_t> write_groups{0};
    std::atomic<uint64_t> write_group_batches{0};
    std::atomic<uint64_t> wal_appends{0};
    std::atomic<uint64_t> wal_syncs{0};
    std::atomic<uint64_t> wal_rotations{0};
    std::atomic<uint64_t> value_log_writes{0};
    std::atomic<uint64_t> value_log_bytes{0};
    std::atomic<uint64_t> value_log_reads{0};

    // Concurrent-memtable path. The group counters are bumped per commit;
    // the arena/skiplist counters accumulate retired memtables' totals
    // (AccumulateMemTableStats) — GetStats adds the live memtable on top.
    std::atomic<uint64_t> memtable_parallel_groups{0};
    std::atomic<uint64_t> memtable_parallel_batches{0};
    std::atomic<uint64_t> arena_cas_retries{0};
    std::atomic<uint64_t> arena_slow_allocs{0};
    std::atomic<uint64_t> arena_shard_refills{0};
    std::atomic<uint64_t> arena_hugetlb_blocks{0};
    std::atomic<uint64_t> arena_thp_blocks{0};
    std::atomic<uint64_t> arena_plain_blocks{0};
    std::atomic<uint64_t> skiplist_cas_retries{0};

    // Per-level probe attribution (index 0 = Level 1); feeds the
    // measured-FPR gauges in DumpMetrics.
    std::atomic<uint64_t> runs_probed_per_level[kMaxLevels] = {};
    std::atomic<uint64_t> filter_negatives_per_level[kMaxLevels] = {};
    std::atomic<uint64_t> false_positives_per_level[kMaxLevels] = {};
  };
  mutable Counters counters_;

  // Clamps a 0-based on-disk level index into the per-level counter range.
  static int StatLevel(int level) {
    return level < 0 ? 0
                     : (level >= Counters::kMaxLevels
                            ? Counters::kMaxLevels - 1
                            : level);
  }

  // Non-null iff options_.enable_metrics; every StopWatch site takes this
  // pointer, so the disabled configuration skips even the clock reads.
  std::unique_ptr<MetricsRegistry> metrics_;

  // Windowed (ring-of-epochs) views advanced on each DumpMetrics() scrape:
  // per-level {runs_probed, filter_negatives, false_positives} deltas feed
  // the monkey_measured_fpr_1m{level} gauges, and a windowed get-latency
  // histogram rides along when metrics are enabled. Scrape-driven: the
  // request path never touches them. Guarded by window_mu_ (scrapes can
  // race each other; nothing else contends).
  struct WindowState;
  mutable Mutex window_mu_;
  mutable std::unique_ptr<WindowState> window_ GUARDED_BY(window_mu_);

  // Delivers an event to every listener, swallowing (but counting and
  // logging) exceptions so a faulty listener cannot take down a writer or
  // the background worker. Several call sites hold mu_ — part of the
  // listener contract (obs/event_listener.h).
  template <typename Fn>
  void NotifyListeners(Fn&& fn) const {
    for (const auto& listener : options_.listeners) {
      try {
        if (metrics_ != nullptr) metrics_->Tick1(Tick::kListenerCallbacks);
        fn(listener.get());
      } catch (...) {
        if (metrics_ != nullptr) metrics_->Tick1(Tick::kListenerFailures);
        if (options_.info_log != nullptr) {
          options_.info_log->Warn("event listener threw; ignored");
        }
      }
    }
  }

  bool HasObservers() const {
    return !options_.listeners.empty() || options_.info_log != nullptr;
  }

  // Stall-state edge detection for OnWriteStallChange (writer thread(s),
  // serialized by mu_ at every transition site).
  WriteStallInfo::Condition stall_condition_ GUARDED_BY(mu_) =
      WriteStallInfo::Condition::kNormal;
  // Publishes a stall-condition transition (no-op if unchanged).
  void SetStallCondition(WriteStallInfo::Condition next) REQUIRES(mu_);

  // Last FPR the allocator assigned per target level, for
  // OnFilterAllocation change detection (written under mu_ in
  // PrepareJobLocked).
  double last_fpr_per_level_[Counters::kMaxLevels] GUARDED_BY(mu_) = {};

  friend class DbIterator;
};

}  // namespace monkeydb

#endif  // MONKEYDB_LSM_DB_H_
