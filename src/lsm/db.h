// DB: the public key-value store API over the LSM-tree engine.
//
// Single-threaded by design (operations are internally serialized with a
// mutex): compactions run synchronously inside the writing thread, exactly
// like the amortized model in the paper. The engine supports both merge
// policies (leveling/tiering), any size ratio T >= 2, any buffer size, and
// pluggable Bloom-filter memory allocation (uniform vs Monkey).

#ifndef MONKEYDB_LSM_DB_H_
#define MONKEYDB_LSM_DB_H_

#include <cstdint>
#include <memory>
#include <set>
#include <mutex>
#include <string>
#include <vector>

#include "lsm/internal_key.h"
#include "lsm/options.h"
#include "lsm/snapshot.h"
#include "lsm/version.h"
#include "lsm/value_log.h"
#include "lsm/wal.h"
#include "lsm/write_batch.h"
#include "memtable/memtable.h"
#include "util/iterator.h"

namespace monkeydb {

// Aggregate statistics for experiments and debugging.
struct DbStats {
  uint64_t memtable_entries = 0;
  uint64_t total_disk_entries = 0;
  uint64_t total_runs = 0;
  int deepest_level = 0;
  std::vector<uint64_t> entries_per_level;   // Index 0 = Level 1.
  std::vector<uint64_t> runs_per_level;
  std::vector<uint64_t> filter_bits_per_level;
  uint64_t filter_bits_total = 0;

  // Lookup-path counters since Open.
  uint64_t gets = 0;
  uint64_t runs_probed = 0;       // Runs whose data page was read.
  uint64_t filter_negatives = 0;  // Probes skipped by a Bloom filter.
  uint64_t false_positives = 0;   // Page reads that found nothing.

  // Compaction counters since Open.
  uint64_t flushes = 0;
  uint64_t merges = 0;
  uint64_t entries_compacted = 0;
};

class DB {
 public:
  // Opens (creating if needed) the database at `name`. Recovers from the
  // manifest and WAL if they exist.
  static Status Open(const DbOptions& options, const std::string& name,
                     std::unique_ptr<DB>* dbptr);

  ~DB();

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value);
  Status Delete(const WriteOptions& options, const Slice& key);

  // Applies every operation in the batch atomically (one WAL record:
  // after a crash, all of them or none of them survive).
  Status Write(const WriteOptions& options, const WriteBatch& batch);

  // Pins the current state for consistent reads via
  // ReadOptions::snapshot. Must be released with ReleaseSnapshot.
  const Snapshot* GetSnapshot();
  void ReleaseSnapshot(const Snapshot* snapshot);

  // Point lookup. Returns NotFound if the key does not exist or was
  // deleted.
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value);

  // Forward iteration over live user keys (newest visible version, no
  // tombstones). SeekToLast/Prev are not supported.
  std::unique_ptr<Iterator> NewIterator(const ReadOptions& options);

  // Forces the memtable to disk (flush + cascading merges per policy).
  Status Flush();

  // Full compaction: merges the memtable and every run into a single run at
  // the deepest occupied level, purging tombstones and superseded versions.
  Status CompactAll();

  DbStats GetStats() const;

  // Human-readable summary of the tree: per-level runs, entries, and
  // realized filter bits/entry (LevelDB's GetProperty-style report).
  std::string DebugString() const;

  // Approximate on-disk bytes of entries in [start, limit), estimated from
  // run metadata and fence pointers (no data I/O).
  uint64_t ApproximateSize(const Slice& start, const Slice& limit) const;

  // Writes a consistent copy of the database (runs + manifest snapshot +
  // value-log segments) into `target_dir` on the same Env. The copy can be
  // opened as an independent database.
  Status Checkpoint(const std::string& target_dir);

  // The current tree geometry, as fed to the FPR allocation policy.
  LsmShape CurrentShape() const;

  const DbOptions& options() const { return options_; }

 private:
  DB(const DbOptions& options, std::string name);

  Status Recover();
  Status ReplayWal(const std::string& wal_path);
  Status NewWal();

  Status WriteInternal(const WriteOptions& options, ValueType type,
                       const Slice& key, const Slice& value);

  // Flush + cascade, per merge policy. REQUIRES: mu_ held.
  Status FlushMemTableLocked();
  Status CascadeLeveling(RunPtr incoming);
  Status CascadeTiering();
  Status CascadeLazyLeveling();

  // Builds a new on-disk run from iter (which yields internal keys in
  // order), installing its Bloom filter per the FPR policy for
  // target_level. Drops superseded versions; drops tombstones iff
  // drop_tombstones. estimated_entries is an upper bound on the output
  // size and replaced_files lists the runs this compaction consumes; both
  // feed the FPR policy's view of the post-compaction tree geometry.
  Status BuildRun(Iterator* iter, int target_level, bool drop_tombstones,
                  uint64_t estimated_entries,
                  const std::set<uint64_t>& replaced_files, RunPtr* out);

  // True iff nothing older than output_level exists, so tombstones and all
  // superseded entries can be dropped.
  bool CanDropTombstones(int output_level) const;

  // Appends edit to the manifest and applies it to current_.
  Status LogAndApply(const VersionEdit& edit);

  uint64_t LevelCapacityEntries(int level) const;

  // Replaces *value (an encoded ValueHandle) with the logged value.
  Status ResolveHandle(std::string* value) const;

  std::string TableFileName(uint64_t number) const;
  Status OpenTable(RunPtr run);

  const DbOptions options_;
  const std::string name_;
  InternalKeyComparator internal_comparator_;

  // Smallest sequence pinned by an active snapshot (or last_sequence_ if
  // none). Compactions must keep versions visible at this point. REQUIRES:
  // mu_ held.
  SequenceNumber SmallestSnapshotLocked() const;

  mutable std::mutex mu_;
  std::shared_ptr<MemTable> mem_;
  std::multiset<SequenceNumber> snapshots_;
  SequenceNumber last_sequence_ = 0;
  uint64_t next_file_number_ = 1;
  uint64_t buffer_entries_ = 0;  // B·P: set from the first flush.

  Version current_;
  std::unique_ptr<ValueLog> vlog_;  // Non-null iff separation is enabled.
  std::unique_ptr<WalWriter> wal_;
  std::unique_ptr<WalWriter> manifest_;

  // Mutable pieces of DbStats.
  mutable DbStats stats_;

  friend class DbIterator;
};

}  // namespace monkeydb

#endif  // MONKEYDB_LSM_DB_H_
