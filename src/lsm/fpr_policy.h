// FprAllocationPolicy: decides the false positive rate of the Bloom filter
// built for a run at a given level.
//
// This is the seam where Monkey plugs into the engine: the baseline policy
// assigns the same bits-per-entry everywhere (like LevelDB/RocksDB); the
// Monkey policy (src/monkey/fpr_allocator.h) assigns exponentially smaller
// FPRs to shallower levels per Eqs. 5/6 of the paper.

#ifndef MONKEYDB_LSM_FPR_POLICY_H_
#define MONKEYDB_LSM_FPR_POLICY_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace monkeydb {

enum class MergePolicy {
  kLeveling,      // One run per level; eager merges (read-optimized).
  kTiering,       // Up to T-1 runs per level; lazy merges (write-optimized).
  // Extension (the paper's follow-up design, "lazy leveling"): tiering at
  // levels 1..L-1 and leveling at the largest level — cheap updates with
  // leveled lookup cost at the level that holds most of the data.
  kLazyLeveling,
};

// A snapshot of the tree geometry, passed to the policy so it can size
// filters for the *current* data volume.
struct LsmShape {
  uint64_t total_entries = 0;      // N: entries across all runs.
  uint64_t buffer_entries = 0;     // B·P: entries that fit in the buffer.
  double size_ratio = 2.0;         // T.
  int num_levels = 1;              // L (>= 1).
  MergePolicy merge_policy = MergePolicy::kLeveling;
  // Overall filter budget expressed as bits per entry (M_filters / N).
  double bits_per_entry_budget = 10.0;

  // Optional exact geometry: entries of every run as the tree will look
  // *after* the pending compaction, per level (index 0 = Level 1). The run
  // being built is the FIRST element of its target level. When present,
  // allocation policies may optimize over the real run sizes (the paper's
  // Appendix C) instead of the idealized geometric profile.
  std::vector<std::vector<uint64_t>> run_entries;

  // Parallel to run_entries: the bits already committed to each surviving
  // run's filter (-1 for the run being built). Lets a policy respect the
  // overall budget exactly even though older filters are only resized when
  // their runs are rewritten.
  std::vector<std::vector<double>> run_filter_bits;
};

class FprAllocationPolicy {
 public:
  virtual ~FprAllocationPolicy() = default;

  // False positive rate for a run at `level` (1-based; level L is the
  // largest). Must be in (0, 1].
  virtual double RunFpr(const LsmShape& shape, int level) const = 0;

  virtual const char* Name() const = 0;
};

// The state-of-the-art baseline: every filter gets the same bits-per-entry,
// hence the same FPR (Eq. 2 with the per-entry budget).
class UniformFprPolicy : public FprAllocationPolicy {
 public:
  double RunFpr(const LsmShape& shape, int level) const override;
  const char* Name() const override { return "uniform"; }
};

}  // namespace monkeydb

#endif  // MONKEYDB_LSM_FPR_POLICY_H_
