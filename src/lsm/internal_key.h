// Internal key format (LevelDB-style).
//
// Every entry in the memtable and SSTables is keyed by an *internal key*:
//   user_key | trailer(8 bytes, little-endian): (sequence << 8) | type
// Ordering: user key ascending, then sequence *descending* (so the newest
// version of a key sorts first), then type descending. Deletes are entries
// with type kTypeDeletion — the paper's "flag attached to each entry to
// indicate if it is a delete" (Sec. 2).

#ifndef MONKEYDB_LSM_INTERNAL_KEY_H_
#define MONKEYDB_LSM_INTERNAL_KEY_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/comparator.h"
#include "util/slice.h"

namespace monkeydb {

using SequenceNumber = uint64_t;

// Max sequence: 56 bits (8 reserved for the type tag).
inline constexpr SequenceNumber kMaxSequenceNumber = ((1ull << 56) - 1);

enum class ValueType : uint8_t {
  kDeletion = 0x0,
  kValue = 0x1,
  // The value field holds a ValueHandle into the value log (WiscKey-style
  // key-value separation; see lsm/value_log.h).
  kValueHandle = 0x2,
};

// Largest tag value; used when building lookup keys so the probe sorts
// before every entry of the same user key with sequence <= snapshot.
inline constexpr ValueType kValueTypeForSeek = ValueType::kValueHandle;

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | static_cast<uint64_t>(t);
}

// Appends internal key (user_key + trailer) to *result.
inline void AppendInternalKey(std::string* result, const Slice& user_key,
                              SequenceNumber seq, ValueType t) {
  result->append(user_key.data(), user_key.size());
  PutFixed64(result, PackSequenceAndType(seq, t));
}

struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence;
  ValueType type;
};

// Returns false if internal_key is too short to carry a trailer.
inline bool ParseInternalKey(const Slice& internal_key,
                             ParsedInternalKey* result) {
  if (internal_key.size() < 8) return false;
  const uint64_t tag = DecodeFixed64(internal_key.data() +
                                     internal_key.size() - 8);
  result->user_key = Slice(internal_key.data(), internal_key.size() - 8);
  result->sequence = tag >> 8;
  const uint8_t type_byte = static_cast<uint8_t>(tag & 0xff);
  if (type_byte > static_cast<uint8_t>(ValueType::kValueHandle)) return false;
  result->type = static_cast<ValueType>(type_byte);
  return true;
}

inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

// Orders internal keys: user key ascending, then tag (sequence|type)
// descending, so that for equal user keys the newest entry comes first.
class InternalKeyComparator {
 public:
  explicit InternalKeyComparator(const Comparator* user_comparator)
      : user_comparator_(user_comparator) {}

  int Compare(const Slice& a, const Slice& b) const {
    int r = user_comparator_->Compare(ExtractUserKey(a), ExtractUserKey(b));
    if (r == 0) {
      const uint64_t atag = DecodeFixed64(a.data() + a.size() - 8);
      const uint64_t btag = DecodeFixed64(b.data() + b.size() - 8);
      if (atag > btag) {
        r = -1;
      } else if (atag < btag) {
        r = +1;
      }
    }
    return r;
  }

  const Comparator* user_comparator() const { return user_comparator_; }

 private:
  const Comparator* user_comparator_;
};

// A lookup key: the internal key for (user_key, snapshot sequence) that
// sorts before all entries visible at that snapshot.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber sequence) {
    AppendInternalKey(&rep_, user_key, sequence, kValueTypeForSeek);
  }

  Slice internal_key() const { return Slice(rep_); }
  Slice user_key() const { return Slice(rep_.data(), rep_.size() - 8); }

 private:
  std::string rep_;
};

}  // namespace monkeydb

#endif  // MONKEYDB_LSM_INTERNAL_KEY_H_
