// ValueLog: WiscKey-style key-value separation (paper Sec. 6: "decouples
// values from keys and stores values on a separate log. This technique is
// compatible with Monkey's core design").
//
// Values at or above DbOptions::value_separation_threshold are appended to
// an append-only log; the LSM-tree stores a small ValueHandle instead, so
// merges move only keys+handles (cutting write amplification by the
// value/entry size ratio) at the price of one extra I/O on non-zero-result
// lookups. Garbage collection of dead log entries is out of scope
// (documented future work, as in WiscKey's basic design).
//
// Log record format at `offset`:
//   fixed32 masked_crc(value) | fixed32 value_size | value bytes

#ifndef MONKEYDB_LSM_VALUE_LOG_H_
#define MONKEYDB_LSM_VALUE_LOG_H_

#include <map>
#include <memory>
#include <string>

#include "io/env.h"
#include "util/coding.h"
#include "util/mutex.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace monkeydb {

// Points at one value inside a value-log file.
struct ValueHandle {
  uint64_t file_number = 0;
  uint64_t offset = 0;
  uint32_t size = 0;  // Value bytes (excluding the 8-byte record header).

  void EncodeTo(std::string* dst) const {
    PutVarint64(dst, file_number);
    PutVarint64(dst, offset);
    PutVarint32(dst, size);
  }

  bool DecodeFrom(Slice* input) {
    uint64_t size64;
    if (!GetVarint64(input, &file_number) ||
        !GetVarint64(input, &offset) || !GetVarint64(input, &size64)) {
      return false;
    }
    size = static_cast<uint32_t>(size64);
    return true;
  }
};

class ValueLog {
 public:
  // Opens the value log inside `dbname` (creating a fresh active file with
  // a number above every existing one).
  static Status Open(Env* env, const std::string& dbname,
                     std::unique_ptr<ValueLog>* log);

  ValueLog(const ValueLog&) = delete;
  ValueLog& operator=(const ValueLog&) = delete;

  // Appends value to the active file; on success fills *handle.
  Status Add(const Slice& value, bool sync, ValueHandle* handle)
      EXCLUDES(mu_);

  // Reads the value a handle points at, verifying its checksum.
  Status Get(const ValueHandle& handle, std::string* value) EXCLUDES(mu_);

  // Both accessors take mu_: active_number_ and bytes_appended_ are
  // written by concurrent Add calls, so the previously lock-free reads
  // were a data race (surfaced by GUARDED_BY when mu_ was annotated).
  uint64_t active_file_number() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return active_number_;
  }
  uint64_t bytes_appended() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return bytes_appended_;
  }

 private:
  ValueLog(Env* env, std::string dir) : env_(env), dir_(std::move(dir)) {}

  std::string FileName(uint64_t number) const;
  // Looks up (or opens and caches) the reader for log file `number`. The
  // open itself runs with mu_ released so reads never serialize behind an
  // Add's append/fsync; racing cache misses are reconciled on re-acquire.
  Status ReaderFor(uint64_t number,
                   std::shared_ptr<RandomAccessFile>* reader)
      EXCLUDES(mu_);

  Env* env_;
  std::string dir_;

  mutable Mutex mu_;
  uint64_t active_number_ GUARDED_BY(mu_) = 1;
  uint64_t active_offset_ GUARDED_BY(mu_) = 0;
  uint64_t bytes_appended_ GUARDED_BY(mu_) = 0;
  std::unique_ptr<WritableFile> active_ GUARDED_BY(mu_);
  std::map<uint64_t, std::shared_ptr<RandomAccessFile>> readers_
      GUARDED_BY(mu_);
};

}  // namespace monkeydb

#endif  // MONKEYDB_LSM_VALUE_LOG_H_
