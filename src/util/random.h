// Deterministic pseudo-random utilities for workload generation.
//
// Includes the temporal-locality key distribution from the paper's Section 5:
// a coefficient c in [0, 1] such that the c most-recently-updated fraction of
// entries receives (1 - c) of the lookups.

#ifndef MONKEYDB_UTIL_RANDOM_H_
#define MONKEYDB_UTIL_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace monkeydb {

// splitmix64-seeded xorshift128+ generator: fast, reproducible, and good
// enough statistical quality for workload generation.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // splitmix64 expansion of the seed into the two lanes.
    uint64_t z = seed + 0x9E3779B97F4A7C15ULL;
    s0_ = Mix(&z);
    s1_ = Mix(&z);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Mix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

// Samples "recency ranks" in [0, n): rank 0 is the most recently updated
// entry, rank n-1 the least recently updated.
//
// With coefficient c, the c*n most recent entries receive (1-c) of lookups
// (paper Sec. 5, Fig. 11(D)). c = 0.5 yields the uniform distribution.
class TemporalLocalityGenerator {
 public:
  // c must be in [0, 1]; n > 0.
  TemporalLocalityGenerator(double c, uint64_t n) : c_(c), n_(n) {
    assert(c >= 0.0 && c <= 1.0);
    assert(n > 0);
  }

  uint64_t NextRank(Random* rng) const {
    // Split point: the first hot_count ranks are the "recent" set.
    uint64_t hot_count = static_cast<uint64_t>(c_ * static_cast<double>(n_));
    if (hot_count == 0) hot_count = (c_ > 0.0) ? 1 : 0;
    if (hot_count >= n_) hot_count = n_;
    const double hot_prob = 1.0 - c_;  // Probability mass on the recent set.
    const bool pick_hot = rng->Bernoulli(hot_prob);
    if (pick_hot && hot_count > 0) {
      return rng->Uniform(hot_count);
    }
    const uint64_t cold_count = n_ - hot_count;
    if (cold_count == 0) return rng->Uniform(n_);
    return hot_count + rng->Uniform(cold_count);
  }

 private:
  double c_;
  uint64_t n_;
};

// Zipfian-distributed values in [0, n): rank 0 is the most popular item.
// Standard YCSB-style generator (Gray et al.) with precomputed zeta.
class ZipfianGenerator {
 public:
  // theta in (0, 1); YCSB default 0.99. n > 0.
  explicit ZipfianGenerator(uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta) {
    assert(n > 0);
    assert(theta > 0.0 && theta < 1.0);
    zeta_n_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zeta_n_);
  }

  uint64_t Next(Random* rng) const {
    const double u = rng->NextDouble();
    const double uz = u * zeta_n_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const uint64_t v = static_cast<uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zeta_n_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace monkeydb

#endif  // MONKEYDB_UTIL_RANDOM_H_
