// Comparator: ordering abstraction for user keys.

#ifndef MONKEYDB_UTIL_COMPARATOR_H_
#define MONKEYDB_UTIL_COMPARATOR_H_

#include "util/slice.h"

namespace monkeydb {

class Comparator {
 public:
  virtual ~Comparator() = default;

  // Three-way comparison: <0, ==0, >0 if a is <, ==, > b.
  virtual int Compare(const Slice& a, const Slice& b) const = 0;

  // Name used to verify on-disk compatibility.
  virtual const char* Name() const = 0;
};

// Lexicographic byte-order comparator (the default). Singleton; do not
// delete the returned pointer.
const Comparator* BytewiseComparator();

}  // namespace monkeydb

#endif  // MONKEYDB_UTIL_COMPARATOR_H_
