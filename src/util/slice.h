// Slice: a non-owning view over a byte sequence, in the style of
// LevelDB/RocksDB. The referenced memory must outlive the Slice.

#ifndef MONKEYDB_UTIL_SLICE_H_
#define MONKEYDB_UTIL_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace monkeydb {

class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* d, size_t n) : data_(d), size_(n) {}
  // Implicit conversions from the common string types are intentional: keys
  // and values flow through the API as Slices.
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}    // NOLINT
  Slice(const char* s) : data_(s), size_(strlen(s)) {}               // NOLINT
  // A Slice over an rvalue std::string is a dangling view the moment the
  // full expression ends: `Slice s = key.ToString();` would read freed
  // memory on first use. Deleting the overload turns that typo into a
  // compile error; bind the string to a named local first. (Passing a
  // temporary as a Slice *argument* stays legal — it goes through the
  // const& overload and lives to the end of the call expression. The
  // string_view overload is not deleted for rvalues: a string_view is
  // itself a view, so there is no owner dying at expression end that this
  // signature could detect; monkey-lint's slice-dangling-source rule
  // covers what overload resolution cannot.)
  Slice(std::string&&) = delete;

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t n) const {
    assert(n < size_);
    return data_[n];
  }

  void clear() {
    data_ = "";
    size_ = 0;
  }

  // Drops the first n bytes from this slice.
  void remove_prefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToStringView() const {
    return std::string_view(data_, size_);
  }

  // Three-way comparison: <0, ==0, >0 if this is <, ==, > b.
  int compare(const Slice& b) const {
    const size_t min_len = size_ < b.size_ ? size_ : b.size_;
    int r = memcmp(data_, b.data_, min_len);
    if (r == 0) {
      if (size_ < b.size_) {
        r = -1;
      } else if (size_ > b.size_) {
        r = +1;
      }
    }
    return r;
  }

  bool starts_with(const Slice& x) const {
    return size_ >= x.size_ && memcmp(data_, x.data_, x.size_) == 0;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() && memcmp(a.data(), b.data(), a.size()) == 0;
}

inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }

}  // namespace monkeydb

#endif  // MONKEYDB_UTIL_SLICE_H_
