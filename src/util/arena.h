// Arena: bump allocator backing the memtable skiplist. All memory is freed
// at once when the arena is destroyed.

#ifndef MONKEYDB_UTIL_ARENA_H_
#define MONKEYDB_UTIL_ARENA_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace monkeydb {

class Arena {
 public:
  Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns a pointer to bytes bytes of memory (bytes > 0).
  char* Allocate(size_t bytes);

  // Like Allocate but with pointer alignment suitable for any object.
  char* AllocateAligned(size_t bytes);

  // Total memory footprint of the arena (used for memtable size accounting,
  // i.e. the paper's M_buffer).
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kBlockSize = 4096;

  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_ = nullptr;
  size_t alloc_bytes_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_{0};
};

inline char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

}  // namespace monkeydb

#endif  // MONKEYDB_UTIL_ARENA_H_
