// Arena: bump allocator backing the memtable skiplist and table builds.
// All memory is freed at once when the arena is destroyed.
//
// Single-threaded: exactly one thread allocates (MemoryUsage is safe to
// read concurrently). The concurrent memtable write path uses
// ConcurrentArena instead (util/concurrent_arena.h).

#ifndef MONKEYDB_UTIL_ARENA_H_
#define MONKEYDB_UTIL_ARENA_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/allocator.h"

namespace monkeydb {

class Arena : public Allocator {
 public:
  // The historical default block size. Deliberately small: the figure
  // benches size memtables in single-digit MiB and flush on MemoryUsage()
  // crossings, so the default granularity is part of the reproduced
  // experiment setup. Callers building multi-MiB memtables should pass a
  // larger block_size (fewer allocations, fewer TLB misses) — see
  // DbOptions::arena_block_size.
  static constexpr size_t kDefaultBlockSize = 4096;

  Arena() : Arena(kDefaultBlockSize) {}
  // block_size must be >= 1 KiB; it is the granularity MemoryUsage() grows
  // in (allocations larger than block_size / 4 get their own block).
  explicit Arena(size_t block_size)
      : block_size_(block_size < 1024 ? 1024 : block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns a pointer to bytes bytes of memory (bytes > 0).
  char* Allocate(size_t bytes) override;

  // Aligned allocation; align = 0 means alignof(std::max_align_t). The
  // skiplist requests kCacheLineSize (64) so node links and inline keys
  // straddle as few cache lines as possible.
  char* AllocateAligned(size_t bytes, size_t align = 0) override;

  // Total memory footprint of the arena (used for memtable size accounting,
  // i.e. the paper's M_buffer).
  size_t MemoryUsage() const override {
    return memory_usage_.load(std::memory_order_relaxed);
  }

  size_t block_size() const { return block_size_; }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  const size_t block_size_;
  char* alloc_ptr_ = nullptr;
  size_t alloc_bytes_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_{0};
};

inline char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

}  // namespace monkeydb

#endif  // MONKEYDB_UTIL_ARENA_H_
