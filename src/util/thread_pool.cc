#include "util/thread_pool.h"

#include <memory>

namespace monkeydb {

namespace {

// Completion tracking for one RunBatch call. The batch owner waits on cv
// until every wrapped task has reported in.
struct BatchState {
  explicit BatchState(size_t total) : remaining(total) {}

  void TaskDone() EXCLUDES(mu) {
    MutexLock lock(mu);
    if (--remaining == 0) cv.SignalAll();
  }

  Mutex mu;
  CondVar cv{&mu};
  size_t remaining GUARDED_BY(mu);
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  threads_.reserve(num_threads > 0 ? num_threads : 0);
  for (int i = 0; i < num_threads; i++) {
    threads_.emplace_back(&ThreadPool::WorkerMain, this);
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.SignalAll();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::WorkerMain() {
  mu_.Lock();
  while (true) {
    while (!shutting_down_ && queue_.empty()) work_cv_.Wait();
    if (queue_.empty()) {
      if (shutting_down_) {
        mu_.Unlock();
        return;
      }
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    mu_.Unlock();
    task();
    mu_.Lock();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.emplace_back(std::move(task));
  }
  work_cv_.Signal();
}

void ThreadPool::RunBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  auto state = std::make_shared<BatchState>(tasks.size());
  {
    MutexLock lock(mu_);
    for (std::function<void()>& task : tasks) {
      queue_.emplace_back([task = std::move(task), state] {
        task();
        state->TaskDone();
      });
    }
  }
  work_cv_.SignalAll();

  // Participate: drain queued work (this batch's tasks, in the common
  // single-scheduler case) until the batch completes, then wait for any
  // stragglers still running on pool threads.
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (!task) break;
    task();
  }
  MutexLock lock(state->mu);
  while (state->remaining != 0) state->cv.Wait();
}

}  // namespace monkeydb
