#include "util/thread_pool.h"

#include <atomic>
#include <memory>

namespace monkeydb {

namespace {

// Completion tracking for one RunBatch call. The batch owner waits on cv
// until every wrapped task has reported in.
struct BatchState {
  explicit BatchState(size_t total) : remaining(total) {}

  void TaskDone() {
    std::lock_guard<std::mutex> lock(mu);
    if (--remaining == 0) cv.notify_all();
  }

  std::mutex mu;
  std::condition_variable cv;
  size_t remaining;
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  threads_.reserve(num_threads > 0 ? num_threads : 0);
  for (int i = 0; i < num_threads; i++) {
    threads_.emplace_back(&ThreadPool::WorkerMain, this);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::WorkerMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutting_down_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::RunBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  auto state = std::make_shared<BatchState>(tasks.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::function<void()>& task : tasks) {
      queue_.emplace_back([task = std::move(task), state] {
        task();
        state->TaskDone();
      });
    }
  }
  work_cv_.notify_all();

  // Participate: drain queued work (this batch's tasks, in the common
  // single-scheduler case) until the batch completes, then wait for any
  // stragglers still running on pool threads.
  while (true) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    if (!task) break;
    task();
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->remaining == 0; });
}

}  // namespace monkeydb
