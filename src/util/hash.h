// Hash functions: a 64-bit xxHash64 implementation for Bloom filters and
// hash-partitioned caches, and CRC32C for on-disk integrity checks.

#ifndef MONKEYDB_UTIL_HASH_H_
#define MONKEYDB_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

#include "util/slice.h"

namespace monkeydb {

// xxHash64 over [data, data+len) with the given seed.
uint64_t XxHash64(const void* data, size_t len, uint64_t seed = 0);

inline uint64_t XxHash64(const Slice& s, uint64_t seed = 0) {
  return XxHash64(s.data(), s.size(), seed);
}

// CRC32C (Castagnoli). Software slicing-by-1 table implementation; adequate
// for our block sizes and fully portable.
uint32_t Crc32c(const void* data, size_t len);

inline uint32_t Crc32c(const Slice& s) { return Crc32c(s.data(), s.size()); }

// Masks a CRC so that a CRC of data that itself embeds CRCs stays robust
// (same trick as LevelDB).
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8ul;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace monkeydb

#endif  // MONKEYDB_UTIL_HASH_H_
