// Hash functions: a 64-bit xxHash64 implementation for Bloom filters and
// hash-partitioned caches, and CRC32C for on-disk integrity checks.

#ifndef MONKEYDB_UTIL_HASH_H_
#define MONKEYDB_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

#include "util/slice.h"

namespace monkeydb {

// xxHash64 over [data, data+len) with the given seed.
uint64_t XxHash64(const void* data, size_t len, uint64_t seed = 0);

inline uint64_t XxHash64(const Slice& s, uint64_t seed = 0) {
  return XxHash64(s.data(), s.size(), seed);
}

// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) over [data,
// data+len). Dispatches once per process to the fastest available
// implementation: the SSE4.2 / ARMv8 CRC32C instructions when the CPU has
// them (8 bytes per instruction), else portable slicing-by-8. All
// implementations are bit-identical — hardware CRC32C computes the same
// polynomial — so files written on one machine verify on any other.
uint32_t Crc32c(const void* data, size_t len);

inline uint32_t Crc32c(const Slice& s) { return Crc32c(s.data(), s.size()); }

// The portable slicing-by-8 implementation, always available regardless of
// CPU. Exposed so tests can check hardware/portable bit-identity and the
// micro bench can measure the dispatch speedup.
uint32_t Crc32cPortable(const void* data, size_t len);

// Name of the implementation Crc32c() dispatches to on this machine:
// "sse4.2", "armv8-crc", or "portable-slicing8".
const char* Crc32cImplName();

// Masks a CRC so that a CRC of data that itself embeds CRCs stays robust
// (same trick as LevelDB).
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8ul;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace monkeydb

#endif  // MONKEYDB_UTIL_HASH_H_
