#include "util/comparator.h"

namespace monkeydb {

namespace {

class BytewiseComparatorImpl : public Comparator {
 public:
  int Compare(const Slice& a, const Slice& b) const override {
    return a.compare(b);
  }
  const char* Name() const override { return "monkeydb.BytewiseComparator"; }
};

}  // namespace

const Comparator* BytewiseComparator() {
  static const BytewiseComparatorImpl* singleton = new BytewiseComparatorImpl;
  return singleton;
}

}  // namespace monkeydb
