// Allocator: the abstract bump-allocation contract shared by Arena
// (single-threaded, the classic memtable/table-build allocator) and
// ConcurrentArena (sharded CAS bump pointers over hugepage-backed blocks,
// for the concurrent memtable write path). All memory lives until the
// allocator is destroyed; there is no per-allocation free.

#ifndef MONKEYDB_UTIL_ALLOCATOR_H_
#define MONKEYDB_UTIL_ALLOCATOR_H_

#include <cstddef>

namespace monkeydb {

class Allocator {
 public:
  virtual ~Allocator() = default;

  // Returns a pointer to `bytes` bytes of memory (bytes > 0).
  virtual char* Allocate(size_t bytes) = 0;

  // Like Allocate but aligned to `align` bytes (a power of two, at most
  // kMaxAlign). align = 0 means "any object alignment"
  // (alignof(std::max_align_t)); the skiplist passes kCacheLineSize so a
  // node's hot links and inline key share as few cache lines as possible.
  virtual char* AllocateAligned(size_t bytes, size_t align = 0) = 0;

  // Total memory footprint (used for the memtable's M_buffer accounting).
  // Safe to call concurrently with allocations.
  virtual size_t MemoryUsage() const = 0;

  static constexpr size_t kCacheLineSize = 64;
  static constexpr size_t kMaxAlign = 4096;
};

}  // namespace monkeydb

#endif  // MONKEYDB_UTIL_ALLOCATOR_H_
