#include "util/hash.h"

#include <cstring>

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#endif

namespace monkeydb {

namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t Rotl64(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t Read64(const unsigned char* p) {
  uint64_t v;
  memcpy(&v, p, 8);
  return v;
}

inline uint32_t Read32(const unsigned char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl64(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  val = Round(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

}  // namespace

uint64_t XxHash64(const void* data, size_t len, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* end = p + len;
  uint64_t h;

  if (len >= 32) {
    const unsigned char* limit = end - 32;
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed + 0;
    uint64_t v4 = seed - kPrime1;
    do {
      v1 = Round(v1, Read64(p));
      p += 8;
      v2 = Round(v2, Read64(p));
      p += 8;
      v3 = Round(v3, Read64(p));
      p += 8;
      v4 = Round(v4, Read64(p));
      p += 8;
    } while (p <= limit);

    h = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(len);

  while (p + 8 <= end) {
    h ^= Round(0, Read64(p));
    h = Rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Read32(p)) * kPrime1;
    h = Rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= (*p) * kPrime5;
    h = Rotl64(h, 11) * kPrime1;
    p++;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

// --- CRC32C ----------------------------------------------------------------
//
// One runtime dispatch per process: Crc32c() resolves to the hardware
// CRC32C instructions (SSE4.2 crc32q / ARMv8 crc32cx) when the CPU
// supports them and to portable slicing-by-8 otherwise. The hardware
// instructions implement the same reflected Castagnoli polynomial, so
// every implementation here is bit-identical on all inputs (checked by
// hash_test and the micro bench).

namespace {

// Lazily built slicing-by-8 tables: t[0] is the classic byte-at-a-time
// table; t[k][b] advances byte b through k additional zero bytes, letting
// the loop fold 8 input bytes per iteration with 8 independent loads.
struct Crc32cTables {
  uint32_t t[8][256];
  Crc32cTables() {
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int j = 0; j < 8; j++) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      t[0][i] = crc;
    }
    for (int k = 1; k < 8; k++) {
      for (uint32_t i = 0; i < 256; i++) {
        t[k][i] = t[0][t[k - 1][i] & 0xFF] ^ (t[k - 1][i] >> 8);
      }
    }
  }
};

uint32_t Crc32cSlicing8(const void* data, size_t len) {
  static const Crc32cTables tables;
  const auto* t = tables.t;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  while (len >= 8) {
    uint64_t chunk;
    memcpy(&chunk, p, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    chunk = __builtin_bswap64(chunk);
#endif
    chunk ^= crc;
    crc = t[7][chunk & 0xFF] ^ t[6][(chunk >> 8) & 0xFF] ^
          t[5][(chunk >> 16) & 0xFF] ^ t[4][(chunk >> 24) & 0xFF] ^
          t[3][(chunk >> 32) & 0xFF] ^ t[2][(chunk >> 40) & 0xFF] ^
          t[1][(chunk >> 48) & 0xFF] ^ t[0][(chunk >> 56) & 0xFF];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MONKEYDB_CRC32C_X86 1

__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(const void* data,
                                                          size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t crc = 0xFFFFFFFFu;
  while (len >= 8) {
    uint64_t chunk;
    memcpy(&chunk, p, 8);
    crc = __builtin_ia32_crc32di(crc, chunk);
    p += 8;
    len -= 8;
  }
  uint32_t crc32 = static_cast<uint32_t>(crc);
  while (len-- > 0) {
    crc32 = __builtin_ia32_crc32qi(crc32, *p++);
  }
  return crc32 ^ 0xFFFFFFFFu;
}

bool Crc32cHardwareSupported() { return __builtin_cpu_supports("sse4.2"); }
const char* kCrc32cHardwareName = "sse4.2";

#elif defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define MONKEYDB_CRC32C_ARM 1

__attribute__((target("+crc"))) uint32_t Crc32cHardware(const void* data,
                                                        size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  while (len >= 8) {
    uint64_t chunk;
    memcpy(&chunk, p, 8);
    crc = __builtin_aarch64_crc32cx(crc, chunk);
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = __builtin_aarch64_crc32cb(crc, *p++);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool Crc32cHardwareSupported() {
#if defined(__linux__)
  // HWCAP_CRC32 == (1 << 7) on aarch64 Linux.
  return (getauxval(AT_HWCAP) & (1ul << 7)) != 0;
#else
  return false;
#endif
}
const char* kCrc32cHardwareName = "armv8-crc";

#endif

using Crc32cFn = uint32_t (*)(const void*, size_t);

struct Crc32cDispatch {
  Crc32cFn fn;
  const char* name;
};

Crc32cDispatch ResolveCrc32c() {
#if defined(MONKEYDB_CRC32C_X86) || defined(MONKEYDB_CRC32C_ARM)
  if (Crc32cHardwareSupported()) {
    return {&Crc32cHardware, kCrc32cHardwareName};
  }
#endif
  return {&Crc32cSlicing8, "portable-slicing8"};
}

const Crc32cDispatch& GetCrc32cDispatch() {
  static const Crc32cDispatch dispatch = ResolveCrc32c();
  return dispatch;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len) {
  return GetCrc32cDispatch().fn(data, len);
}

uint32_t Crc32cPortable(const void* data, size_t len) {
  return Crc32cSlicing8(data, len);
}

const char* Crc32cImplName() { return GetCrc32cDispatch().name; }

}  // namespace monkeydb
