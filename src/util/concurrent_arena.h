// ConcurrentArena: a thread-safe bump allocator for the concurrent
// memtable write path (DbOptions::allow_concurrent_memtable_write).
//
// Layout: memory is acquired in large blocks (default 2 MiB) backed by
// hugepages when the platform cooperates — the allocator tries, in order,
//   1. mmap(MAP_HUGETLB)            — explicit 2 MiB hugepages (needs
//                                     vm.nr_hugepages reservations),
//   2. mmap + madvise(MADV_HUGEPAGE) — transparent hugepages, no
//                                     privileges required,
//   3. plain anonymous mmap (or operator new off-Linux),
// and records which tier actually backs each block (Stats().backing, also
// surfaced as DbStats::arena_backing). Large memtables on 4 KiB pages
// thrash the TLB during skiplist descents; 2 MiB pages cover a 64 MiB
// buffer with 32 TLB entries instead of 16384.
//
// Concurrency: each of N cache-line-padded shards owns a chunk carved from
// the current block and hands out memory with a CAS bump pointer, so
// concurrent group-commit writers allocating skiplist nodes touch disjoint
// cache lines and never take a lock on the fast path. A shard's chunk is
// refilled under the arena mutex; the refill protocol parks the shard's
// bump pointer (nullptr) before replacing the chunk, and chunk memory is
// never reused, so a successful CAS proves the (ptr, end) pair the caller
// read was consistent. CAS failures and slow-path entries are counted
// (DbStats::arena_cas_retries / arena_slow_allocs) — they are the direct
// measure of allocator contention under multi-threaded inserts.

#ifndef MONKEYDB_UTIL_CONCURRENT_ARENA_H_
#define MONKEYDB_UTIL_CONCURRENT_ARENA_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/allocator.h"
#include "util/mutex.h"

namespace monkeydb {

class ConcurrentArena : public Allocator {
 public:
  static constexpr size_t kHugePageSize = 2 << 20;

  // Which page-backing tier a block ended up on.
  enum class Backing : int {
    kNone = 0,              // No block allocated yet.
    kHugeTlb = 1,           // mmap(MAP_HUGETLB): explicit hugepages.
    kTransparentHugePage = 2,  // madvise(MADV_HUGEPAGE) accepted.
    kPlain = 3,             // Plain pages (mmap or operator new).
  };

  // Cap on how aggressively hugepages are acquired. The
  // MONKEYDB_ARENA_HUGEPAGE environment variable ("auto" / "thp" /
  // "never") overrides the constructor's choice, so CI can force the
  // plain-pages fallback without a rebuild.
  enum class HugepageMode : int {
    kAuto = 0,             // MAP_HUGETLB, then THP, then plain.
    kTransparentOnly = 1,  // Skip MAP_HUGETLB (no reservations needed).
    kNever = 2,            // Plain pages only.
  };

  struct Options {
    // Size of each backing block. Rounded up to 2 MiB when a hugepage tier
    // is in play (MAP_HUGETLB requires it; THP needs aligned extents).
    size_t block_size = kHugePageSize;
    HugepageMode hugepage_mode = HugepageMode::kAuto;
    // Number of allocation shards; 0 = min(hardware_concurrency, 16)
    // rounded up to a power of two.
    int shards = 0;
    // Granularity of the per-shard chunks carved from a block.
    size_t chunk_size = 64 << 10;
  };

  struct StatsSnapshot {
    uint64_t blocks = 0;          // Backing blocks allocated, total...
    uint64_t hugetlb_blocks = 0;  // ...on explicit hugepages,
    uint64_t thp_blocks = 0;      // ...on madvised (transparent) pages,
    uint64_t plain_blocks = 0;    // ...on plain pages.
    uint64_t cas_retries = 0;     // Failed fast-path bump CASes.
    uint64_t slow_allocs = 0;     // Allocations that took the mutex.
    uint64_t shard_refills = 0;   // Chunk refills (subset of slow_allocs).
    Backing backing = Backing::kNone;  // Tier of the newest block.
  };

  ConcurrentArena() : ConcurrentArena(Options()) {}
  explicit ConcurrentArena(const Options& options);
  ~ConcurrentArena() override;

  ConcurrentArena(const ConcurrentArena&) = delete;
  ConcurrentArena& operator=(const ConcurrentArena&) = delete;

  char* Allocate(size_t bytes) override { return AllocateAligned(bytes, 1); }
  char* AllocateAligned(size_t bytes, size_t align = 0) override;

  // Bytes handed out to callers (summed over the per-shard counters), NOT
  // the mapped footprint: blocks are mapped in 2 MiB granules and chunked
  // across shards ahead of use, so counting mappings would trip the
  // engine's flush threshold long before the buffer holds that much data.
  // MappedBytes() reports the actual reservation.
  size_t MemoryUsage() const override {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.allocated.load(std::memory_order_relaxed);
    }
    return total;
  }

  size_t MappedBytes() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

  StatsSnapshot Stats() const;
  Backing backing() const {
    return static_cast<Backing>(backing_.load(std::memory_order_relaxed));
  }

  static const char* BackingName(Backing b);

 private:
  // One allocation shard. ptr == nullptr means parked: either the shard
  // has no chunk yet or a refill is in progress; allocators fall through
  // to the slow path. end is only written during a refill, after ptr has
  // been parked, so the fast path's CAS on ptr validates the pair.
  struct alignas(Allocator::kCacheLineSize) Shard {
    std::atomic<char*> ptr{nullptr};
    std::atomic<char*> end{nullptr};
    std::atomic<uint64_t> cas_retries{0};
    // Bytes handed out through this shard (fast and slow path); almost
    // always bumped by the shard's own thread, so the relaxed fetch_add
    // stays on this cache line.
    std::atomic<size_t> allocated{0};
  };

  Shard& ShardForThread();
  char* AllocateSlow(Shard& shard, size_t bytes, size_t align);
  // Carves `bytes` from the current block, mapping a new one if needed.
  char* CarveLocked(size_t bytes, size_t align) REQUIRES(mutex_);
  char* NewBlockLocked(size_t min_bytes) REQUIRES(mutex_);

  struct Block {
    char* base = nullptr;
    size_t mapped = 0;    // munmap length; 0 = operator new[] block.
    Backing backing = Backing::kPlain;
  };

  const size_t block_size_;
  const size_t chunk_size_;
  const HugepageMode hugepage_mode_;
  int shard_count_;  // Power of two.
  std::vector<Shard> shards_;

  Mutex mutex_;
  std::vector<Block> blocks_ GUARDED_BY(mutex_);
  char* block_ptr_ GUARDED_BY(mutex_) = nullptr;  // Bump cursor in the
  size_t block_remaining_ GUARDED_BY(mutex_) = 0;  // current block.

  std::atomic<size_t> memory_usage_{0};
  std::atomic<int> backing_{static_cast<int>(Backing::kNone)};
  std::atomic<uint64_t> blocks_count_{0};
  std::atomic<uint64_t> hugetlb_blocks_{0};
  std::atomic<uint64_t> thp_blocks_{0};
  std::atomic<uint64_t> plain_blocks_{0};
  std::atomic<uint64_t> slow_allocs_{0};
  std::atomic<uint64_t> shard_refills_{0};
};

}  // namespace monkeydb

#endif  // MONKEYDB_UTIL_CONCURRENT_ARENA_H_
