#include "util/status.h"

namespace monkeydb {

std::string Status::ToString() const {
  const char* label = nullptr;
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      label = "NotFound";
      break;
    case Code::kCorruption:
      label = "Corruption";
      break;
    case Code::kNotSupported:
      label = "NotSupported";
      break;
    case Code::kInvalidArgument:
      label = "InvalidArgument";
      break;
    case Code::kIoError:
      label = "IoError";
      break;
  }
  std::string out = label;
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace monkeydb
