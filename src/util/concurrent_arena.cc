#include "util/concurrent_arena.h"

#include <cstdlib>
#include <cstring>
#include <thread>

#ifdef __linux__
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace monkeydb {

namespace {

constexpr size_t kHugePage = ConcurrentArena::kHugePageSize;

size_t RoundUp(size_t x, size_t align) {
  return (x + align - 1) & ~(align - 1);
}

// Reads the MONKEYDB_ARENA_HUGEPAGE override ("auto" / "thp" / "never");
// anything else (including unset) keeps the configured mode.
ConcurrentArena::HugepageMode ApplyEnvOverride(
    ConcurrentArena::HugepageMode mode) {
  const char* env = getenv("MONKEYDB_ARENA_HUGEPAGE");
  if (env == nullptr) return mode;
  if (strcmp(env, "auto") == 0) return ConcurrentArena::HugepageMode::kAuto;
  if (strcmp(env, "thp") == 0) {
    return ConcurrentArena::HugepageMode::kTransparentOnly;
  }
  if (strcmp(env, "never") == 0) {
    return ConcurrentArena::HugepageMode::kNever;
  }
  return mode;
}

int ResolveShardCount(int requested) {
  int n = requested;
  if (n <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    n = static_cast<int>(hw == 0 ? 4 : hw);
    if (n > 16) n = 16;
  }
  // Round up to a power of two so the thread-id hash is a mask.
  int pow2 = 1;
  while (pow2 < n) pow2 <<= 1;
  return pow2;
}

}  // namespace

const char* ConcurrentArena::BackingName(Backing b) {
  switch (b) {
    case Backing::kNone:
      return "none";
    case Backing::kHugeTlb:
      return "hugetlb";
    case Backing::kTransparentHugePage:
      return "thp";
    case Backing::kPlain:
      return "plain";
  }
  return "unknown";
}

ConcurrentArena::ConcurrentArena(const Options& options)
    : block_size_(options.block_size < (64 << 10) ? (64 << 10)
                                                  : options.block_size),
      chunk_size_(options.chunk_size < 4096 ? 4096
                  : options.chunk_size > block_size_
                      ? block_size_
                      : options.chunk_size),
      hugepage_mode_(ApplyEnvOverride(options.hugepage_mode)),
      shard_count_(ResolveShardCount(options.shards)),
      shards_(static_cast<size_t>(shard_count_)) {}

// monkey-lint: io-under-mutex(fn) — teardown: no allocation can be in
// flight when the arena dies, so mutex_ is uncontended; the unmaps are
// the arena's own memory being returned.
ConcurrentArena::~ConcurrentArena() {
  MutexLock lock(mutex_);
  for (const Block& block : blocks_) {
#ifdef __linux__
    if (block.mapped != 0) {
      munmap(block.base, block.mapped);
      continue;
    }
#endif
    delete[] block.base;
  }
}

ConcurrentArena::Shard& ConcurrentArena::ShardForThread() {
  // A cheap per-thread shard id: hash the thread id once and cache it.
  // Collisions just mean two threads share a CAS bump pointer (correct,
  // slightly more retries).
  static std::atomic<uint32_t> next_id{0};
  thread_local uint32_t id =
      next_id.fetch_add(0x9E3779B9u, std::memory_order_relaxed);
  return shards_[(id >> 8) & static_cast<uint32_t>(shard_count_ - 1)];
}

char* ConcurrentArena::AllocateAligned(size_t bytes, size_t align) {
  assert(bytes > 0);
  if (align == 0) align = alignof(std::max_align_t);
  assert((align & (align - 1)) == 0 && align <= kMaxAlign);

  Shard& shard = ShardForThread();
  for (;;) {
    char* p = shard.ptr.load(std::memory_order_acquire);
    if (p == nullptr) break;  // Parked: no chunk, or refill in progress.
    char* e = shard.end.load(std::memory_order_acquire);
    const size_t slop =
        static_cast<size_t>(-reinterpret_cast<intptr_t>(p)) & (align - 1);
    if (bytes + slop > static_cast<size_t>(e - p)) break;  // Doesn't fit.
    // The chunk never moves and chunk memory is never reused, so if this
    // CAS succeeds, (p, e) was a consistent pair (refills park ptr first).
    if (shard.ptr.compare_exchange_weak(p, p + slop + bytes,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      shard.allocated.fetch_add(slop + bytes, std::memory_order_relaxed);
      return p + slop;
    }
    shard.cas_retries.fetch_add(1, std::memory_order_relaxed);
  }
  return AllocateSlow(shard, bytes, align);
}

char* ConcurrentArena::AllocateSlow(Shard& shard, size_t bytes,
                                    size_t align) {
  slow_allocs_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mutex_);

  // Another thread may have refilled this shard while we waited for the
  // mutex; retry the fast path a few times before discarding its chunk.
  for (int attempt = 0; attempt < 4; attempt++) {
    char* p = shard.ptr.load(std::memory_order_acquire);
    if (p == nullptr) break;
    char* e = shard.end.load(std::memory_order_acquire);
    const size_t slop =
        static_cast<size_t>(-reinterpret_cast<intptr_t>(p)) & (align - 1);
    if (bytes + slop > static_cast<size_t>(e - p)) break;
    if (shard.ptr.compare_exchange_weak(p, p + slop + bytes,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      shard.allocated.fetch_add(slop + bytes, std::memory_order_relaxed);
      return p + slop;
    }
    shard.cas_retries.fetch_add(1, std::memory_order_relaxed);
  }

  // Allocations that would burn most of a chunk get their own carve and
  // leave the shard's chunk alone.
  if (bytes + align > chunk_size_ / 2) {
    char* result = CarveLocked(bytes, align);
    if (result != nullptr) {
      shard.allocated.fetch_add(bytes, std::memory_order_relaxed);
    }
    return result;
  }

  // Refill protocol: park the bump pointer BEFORE touching end, so a fast-
  // path CAS racing with this refill can only succeed against the old
  // consistent (ptr, end) pair. The remainder of the old chunk is
  // abandoned (it stays in MappedBytes but never enters MemoryUsage —
  // only bytes handed out count toward the flush threshold).
  shard.ptr.exchange(nullptr, std::memory_order_acq_rel);
  char* base = CarveLocked(chunk_size_, align);
  const size_t slop =
      static_cast<size_t>(-reinterpret_cast<intptr_t>(base)) & (align - 1);
  char* result = base + slop;
  shard.end.store(base + chunk_size_, std::memory_order_release);
  shard.ptr.store(result + bytes, std::memory_order_release);
  shard.allocated.fetch_add(slop + bytes, std::memory_order_relaxed);
  shard_refills_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

char* ConcurrentArena::CarveLocked(size_t bytes, size_t align) {
  size_t slop =
      static_cast<size_t>(-reinterpret_cast<intptr_t>(block_ptr_)) &
      (align - 1);
  if (bytes + slop > block_remaining_) {
    char* base = NewBlockLocked(bytes + align);
    if (base == nullptr) return nullptr;
    slop = static_cast<size_t>(-reinterpret_cast<intptr_t>(block_ptr_)) &
           (align - 1);
  }
  char* result = block_ptr_ + slop;
  block_ptr_ += slop + bytes;
  block_remaining_ -= slop + bytes;
  return result;
}

// monkey-lint: io-under-mutex(fn) — park-before-refill by design: every
// thread that reaches the shared slow path needs bytes from the block
// being mapped, so waiting on mutex_ for the mmap IS the useful work.
// The fast path (TLS shard carve) never takes this lock.
char* ConcurrentArena::NewBlockLocked(size_t min_bytes) {
  size_t want = block_size_ < min_bytes ? min_bytes : block_size_;

  Block block;
#ifdef __linux__
  // Tier 1: explicit hugepages. Length must be hugepage-aligned; fails
  // cleanly (ENOMEM) unless vm.nr_hugepages has free reservations.
  if (hugepage_mode_ == HugepageMode::kAuto) {
    const size_t len = RoundUp(want, kHugePage);
    void* mem = mmap(nullptr, len, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (mem != MAP_FAILED) {
      block.base = static_cast<char*>(mem);
      block.mapped = len;
      block.backing = Backing::kHugeTlb;
    }
  }
  // Tier 2: transparent hugepages. Over-map by one hugepage and trim so
  // the kept region is 2 MiB-aligned — THP only backs aligned extents.
  if (block.base == nullptr && hugepage_mode_ != HugepageMode::kNever) {
    const size_t len = RoundUp(want, kHugePage);
    const size_t over = len + kHugePage;
    void* mem = mmap(nullptr, over, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem != MAP_FAILED) {
      char* raw = static_cast<char*>(mem);
      char* aligned = reinterpret_cast<char*>(
          RoundUp(reinterpret_cast<uintptr_t>(raw), kHugePage));
      const size_t head = static_cast<size_t>(aligned - raw);
      if (head != 0) munmap(raw, head);
      const size_t tail = kHugePage - head;
      if (tail != 0) munmap(aligned + len, tail);
      block.base = aligned;
      block.mapped = len;
      block.backing = madvise(aligned, len, MADV_HUGEPAGE) == 0
                          ? Backing::kTransparentHugePage
                          : Backing::kPlain;
    }
  }
  // Tier 3: plain pages.
  if (block.base == nullptr) {
    const size_t len = RoundUp(want, 4096);
    void* mem = mmap(nullptr, len, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem != MAP_FAILED) {
      block.base = static_cast<char*>(mem);
      block.mapped = len;
      block.backing = Backing::kPlain;
    }
  }
#endif
  if (block.base == nullptr) {
    // Off-Linux (or mmap exhausted): heap block, plain pages.
    block.base = new char[want];
    block.mapped = 0;
    block.backing = Backing::kPlain;
  }

  const size_t usable = block.mapped != 0 ? block.mapped : want;
  block_ptr_ = block.base;
  block_remaining_ = usable;
  memory_usage_.fetch_add(usable + sizeof(Block),
                          std::memory_order_relaxed);
  blocks_count_.fetch_add(1, std::memory_order_relaxed);
  switch (block.backing) {
    case Backing::kHugeTlb:
      hugetlb_blocks_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Backing::kTransparentHugePage:
      thp_blocks_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      plain_blocks_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  backing_.store(static_cast<int>(block.backing),
                 std::memory_order_relaxed);
  blocks_.push_back(block);
  return block.base;
}

ConcurrentArena::StatsSnapshot ConcurrentArena::Stats() const {
  StatsSnapshot s;
  s.blocks = blocks_count_.load(std::memory_order_relaxed);
  s.hugetlb_blocks = hugetlb_blocks_.load(std::memory_order_relaxed);
  s.thp_blocks = thp_blocks_.load(std::memory_order_relaxed);
  s.plain_blocks = plain_blocks_.load(std::memory_order_relaxed);
  s.slow_allocs = slow_allocs_.load(std::memory_order_relaxed);
  s.shard_refills = shard_refills_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    s.cas_retries += shard.cas_retries.load(std::memory_order_relaxed);
  }
  s.backing = backing();
  return s;
}

}  // namespace monkeydb
