// Little-endian fixed-width and varint encodings used by the WAL, block,
// table, and manifest formats.

#ifndef MONKEYDB_UTIL_CODING_H_
#define MONKEYDB_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace monkeydb {

// --- Fixed-width little-endian ---

inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));  // Little-endian hosts only.
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

// --- Varints (LEB128) ---

// Appends a varint-encoded value; uses 1-5 bytes (32-bit) or 1-10 (64-bit).
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

// Raw-buffer variant: writes into dst (which must hold at least 5 bytes,
// or exactly VarintLength(value)) and returns a pointer just past the
// encoded bytes. The allocation-free form the memtable hot path uses.
char* EncodeVarint32(char* dst, uint32_t value);

// Appends varint32(s.size()) followed by the bytes of s.
void PutLengthPrefixedSlice(std::string* dst, const Slice& s);

// Decoders parse from [p, limit) and return a pointer just past the parsed
// value, or nullptr on malformed input.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

// Slice-consuming variants: advance *input past the parsed value.
// Return false on malformed input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

// Number of bytes PutVarint{32,64} would emit.
int VarintLength(uint64_t v);

}  // namespace monkeydb

#endif  // MONKEYDB_UTIL_CODING_H_
