// Iterator: the common cursor abstraction over sorted key-value sequences
// (memtable, data blocks, tables, merged views). Keys/values returned are
// valid only until the next mutation of the iterator.

#ifndef MONKEYDB_UTIL_ITERATOR_H_
#define MONKEYDB_UTIL_ITERATOR_H_

#include "util/slice.h"
#include "util/status.h"

namespace monkeydb {

class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator() = default;

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void SeekToLast() = 0;
  // Positions at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  virtual void Prev() = 0;

  // REQUIRES: Valid().
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;

  virtual Status status() const = 0;
};

}  // namespace monkeydb

#endif  // MONKEYDB_UTIL_ITERATOR_H_
