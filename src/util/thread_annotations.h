// Clang Thread Safety Analysis macros (LevelDB/Abseil style).
//
// These attach compile-time lock contracts to data and functions:
//
//   Mutex mu_;
//   int counter_ GUARDED_BY(mu_);          // access requires mu_ held
//   void RehashLocked() REQUIRES(mu_);     // caller must hold mu_
//   void Poke() EXCLUDES(mu_);             // caller must NOT hold mu_
//
// Under Clang with -Wthread-safety (see the MONKEYDB_THREAD_SAFETY_ANALYSIS
// CMake option) violations are compile errors; under other compilers every
// macro expands to nothing, so the annotations are zero-cost documentation.
// Conventions for choosing annotations are documented in DESIGN.md
// ("Static analysis").

#ifndef MONKEYDB_UTIL_THREAD_ANNOTATIONS_H_
#define MONKEYDB_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define MONKEYDB_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define MONKEYDB_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

// Type attribute: the class is a lockable capability ("mutex").
#define CAPABILITY(x) MONKEYDB_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// Type attribute: RAII object that acquires a capability at construction
// and releases it at destruction (annotate the ctor/dtor with
// ACQUIRE/RELEASE).
#define SCOPED_CAPABILITY MONKEYDB_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Data member: may only be read or written while holding the given
// capability (e.g. GUARDED_BY(mu_)).
#define GUARDED_BY(x) MONKEYDB_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// Pointer data member: the pointer itself is unguarded, but the data it
// points at may only be accessed while holding the capability.
#define PT_GUARDED_BY(x) MONKEYDB_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// Function: the caller must hold the given capability/ies on entry (and
// still holds them on exit — internal Unlock/Lock pairs are allowed).
#define REQUIRES(...) \
  MONKEYDB_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

// Function: the caller must hold the capability/ies in shared (reader) mode.
#define REQUIRES_SHARED(...) \
  MONKEYDB_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

// Function: acquires the capability/ies (held on return, not on entry).
#define ACQUIRE(...) \
  MONKEYDB_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

// Function: releases the capability/ies (held on entry, not on return).
#define RELEASE(...) \
  MONKEYDB_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

// Function: the caller must NOT hold the given capability/ies (catches
// self-deadlock on non-reentrant mutexes).
#define EXCLUDES(...) \
  MONKEYDB_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Function: tells the analysis the capability is held in contexts it
// cannot see. Use only on assertion-style helpers.
#define ASSERT_CAPABILITY(x) \
  MONKEYDB_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

// Function: returns a reference to the capability guarding the returned or
// associated data.
#define RETURN_CAPABILITY(x) MONKEYDB_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Function: opt out of analysis for this function body. Every use must
// carry a comment justifying why the protocol cannot be expressed (see
// DESIGN.md "Static analysis" for the policy).
#define NO_THREAD_SAFETY_ANALYSIS \
  MONKEYDB_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // MONKEYDB_UTIL_THREAD_ANNOTATIONS_H_
