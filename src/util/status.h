// Status: lightweight error propagation without exceptions.
//
// Every fallible operation in MonkeyDB returns a Status (or fills an output
// parameter and returns a Status). A Status is cheap to copy in the OK case
// (a single pointer-sized field) and carries a code plus a message otherwise.

#ifndef MONKEYDB_UTIL_STATUS_H_
#define MONKEYDB_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace monkeydb {

// [[nodiscard]]: silently dropping a Status hides I/O and corruption
// errors, so the compiler rejects it (-Werror=unused-result). Intentional
// drops must go through IgnoreError(), which names the decision at the
// call site.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIoError = 5,
  };

  // Creates an OK status.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  // Factory functions for each error class.
  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = "") {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg = "") {
    return Status(Code::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg = "") {
    return Status(Code::kNotSupported, msg);
  }
  static Status InvalidArgument(std::string_view msg = "") {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IoError(std::string_view msg = "") {
    return Status(Code::kIoError, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIoError() const { return code_ == Code::kIoError; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  // Human-readable representation, e.g. "Corruption: bad block checksum".
  std::string ToString() const;

  // Explicitly discards this status. The only sanctioned way to drop a
  // Status on the floor — use it where failure is acceptable by design
  // (best-effort cleanup, benchmarks priming a cache) and say why in a
  // comment when it is not obvious.
  void IgnoreError() const {}

 private:
  Status(Code code, std::string_view msg) : code_(code), msg_(msg) {}

  Code code_;
  std::string msg_;
};

// Propagates a non-OK status to the caller. Usage:
//   MONKEYDB_RETURN_IF_ERROR(file->Read(...));
#define MONKEYDB_RETURN_IF_ERROR(expr)                    \
  do {                                                    \
    ::monkeydb::Status _st = (expr);                      \
    if (!_st.ok()) return _st;                            \
  } while (0)

}  // namespace monkeydb

#endif  // MONKEYDB_UTIL_STATUS_H_
