#include "util/arena.h"

namespace monkeydb {

char* Arena::AllocateFallback(size_t bytes) {
  if (bytes > block_size_ / 4) {
    // Large objects get their own block so we don't waste the remainder of
    // the current block.
    return AllocateNewBlock(bytes);
  }

  alloc_ptr_ = AllocateNewBlock(block_size_);
  alloc_bytes_remaining_ = block_size_;

  char* result = alloc_ptr_;
  alloc_ptr_ += bytes;
  alloc_bytes_remaining_ -= bytes;
  return result;
}

char* Arena::AllocateAligned(size_t bytes, size_t align) {
  if (align == 0) align = alignof(std::max_align_t);
  assert((align & (align - 1)) == 0 && align <= kMaxAlign);
  size_t current_mod = reinterpret_cast<uintptr_t>(alloc_ptr_) & (align - 1);
  size_t slop = (current_mod == 0 ? 0 : align - current_mod);
  size_t needed = bytes + slop;
  char* result;
  if (needed <= alloc_bytes_remaining_) {
    result = alloc_ptr_ + slop;
    alloc_ptr_ += needed;
    alloc_bytes_remaining_ -= needed;
  } else if (align <= alignof(std::max_align_t)) {
    // AllocateFallback always returns max-aligned memory (fresh block).
    result = AllocateFallback(bytes);
  } else {
    // A fresh block from operator new[] is aligned for max_align_t only;
    // larger alignments may need slop at the block head too.
    result = AllocateFallback(bytes + align - 1);
    uintptr_t mod = reinterpret_cast<uintptr_t>(result) & (align - 1);
    if (mod != 0) result += align - mod;
  }
  assert((reinterpret_cast<uintptr_t>(result) & (align - 1)) == 0);
  return result;
}

char* Arena::AllocateNewBlock(size_t block_bytes) {
  auto block = std::make_unique<char[]>(block_bytes);
  char* result = block.get();
  blocks_.push_back(std::move(block));
  memory_usage_.fetch_add(block_bytes + sizeof(char*),
                          std::memory_order_relaxed);
  return result;
}

}  // namespace monkeydb
