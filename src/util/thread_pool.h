// ThreadPool: a small fixed pool of worker threads executing batches of
// tasks. Built for compaction fan-out (range-partitioned subcompactions):
// the scheduling thread submits one batch, participates in executing it,
// and returns only when every task in the batch has finished.
//
// Submit() adds a fire-and-forget mode for the read path's prefetch
// pipeline: tasks are queued without any completion handshake, so the
// scheduling thread (a scan iterator crossing into a new block) never
// waits. Callers that need completion ordering track it themselves (the
// prefetch pipeline hands every task a shared state object).

#ifndef MONKEYDB_UTIL_THREAD_POOL_H_
#define MONKEYDB_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace monkeydb {

class ThreadPool {
 public:
  // Spawns num_threads workers (0 is allowed: RunBatch then executes every
  // task on the calling thread).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs every task and returns once all of them have completed. The
  // calling thread executes tasks too (it is one of the batch's workers),
  // so a pool of N threads gives N+1-way parallelism to the caller.
  // Tasks must not themselves call RunBatch on the same pool.
  void RunBatch(std::vector<std::function<void()>> tasks) EXCLUDES(mu_);

  // Queues one task for asynchronous execution and returns immediately.
  // The task runs on some pool thread (never the caller); queued tasks are
  // still drained at shutdown. REQUIRES: num_threads() >= 1 — with no
  // workers a submitted task would only run at destruction.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  // threads_ is immutable after construction, so no lock is needed.
  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerMain() EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_cv_{&mu_};  // Signaled on new work and at shutdown.
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool shutting_down_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  // Set in ctor, joined in dtor.
};

}  // namespace monkeydb

#endif  // MONKEYDB_UTIL_THREAD_POOL_H_
