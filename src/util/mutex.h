// Annotated synchronization primitives (LevelDB's port::Mutex/CondVar
// shape): thin wrappers over std::mutex / std::condition_variable that
// carry Clang Thread Safety Analysis capabilities, so lock discipline —
// which fields a mutex guards, which helpers require it held — is checked
// at compile time instead of living in comments.
//
// Every mutex in the engine goes through these wrappers; raw std::mutex is
// reserved for code the analysis cannot reach (none today). Conventions
// are documented in DESIGN.md ("Static analysis").

#ifndef MONKEYDB_UTIL_MUTEX_H_
#define MONKEYDB_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace monkeydb {

class CondVar;

// A standard (non-reentrant, exclusive) mutex carrying the "mutex"
// capability for the thread-safety analysis.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

  // Analysis-only assertion: tells the analyzer this thread holds the lock
  // in a context it cannot see through (no runtime check).
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock for one scope (std::lock_guard with annotations). The analysis
// treats the guarded region as holding the mutex from construction to
// destruction.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to one Mutex for its lifetime (LevelDB's
// port::CondVar). Wait() atomically releases the mutex, sleeps, and
// reacquires it before returning — so from the analysis's point of view
// the caller's lock set is unchanged across the call, which is exactly
// the contract REQUIRES-annotated callers rely on. Spurious wakeups are
// possible: always wait in a `while (!predicate) cv.Wait();` loop (a bare
// predicate lambda would be analyzed outside the caller's lock scope, so
// the explicit loop is also what keeps the guarded reads checkable).
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // REQUIRES: mu (the bound mutex) is held. The release/reacquire inside
  // is invisible to the analysis by design — see the class comment.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
  Mutex* const mu_;
};

// Scoped lock release: unlocks `mu` for the enclosing scope (when `release`
// is true) and relocks it on exit. The engine uses this for I/O windows —
// a compaction worker dropping mu_ around run builds, a group-commit
// leader dropping it around the WAL append — where some *other* protocol
// (single structural writer, the commit_in_flight_ interlock) protects the
// state touched inside the window.
//
// The juggling is deliberately hidden from the thread-safety analysis
// (NO_THREAD_SAFETY_ANALYSIS on both ends): the caller's REQUIRES(mu)
// contract — held at entry and exit — stays true, while the in-window
// protocol is exactly the kind of handoff the static analysis cannot
// express. The cost is that a guarded access *inside* the window is not
// flagged; every use must therefore state in a comment which protocol
// covers the window (see DESIGN.md "Static analysis").
class ScopedUnlock {
 public:
  explicit ScopedUnlock(Mutex* mu, bool release = true)
      NO_THREAD_SAFETY_ANALYSIS : mu_(mu), released_(release) {
    if (released_) mu_->Unlock();
  }
  ~ScopedUnlock() NO_THREAD_SAFETY_ANALYSIS {
    if (released_) mu_->Lock();
  }

  ScopedUnlock(const ScopedUnlock&) = delete;
  ScopedUnlock& operator=(const ScopedUnlock&) = delete;

 private:
  Mutex* const mu_;
  const bool released_;
};

}  // namespace monkeydb

#endif  // MONKEYDB_UTIL_MUTEX_H_
