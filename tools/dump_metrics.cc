// Drives an in-memory instrumented DB through a small mixed workload and
// prints DB::DumpMetrics() to stdout — the fixture behind the CI step that
// lints the Prometheus exposition (tools/metrics_lint.py).
//
//   dump_metrics [--json]
//
// The workload covers every metric family: writes (WAL, group commit),
// flushes and merges, point lookups with hits / misses / Bloom false
// positives across several levels, a MultiGet batch, and a short scan.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "io/env.h"
#include "lsm/db.h"
#include "monkey/monkey_db.h"

namespace {

std::string Key(int i) {
  char buf[24];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace monkeydb;

  bool json = false;
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "--json") == 0) json = true;
  }

  auto env = NewMemEnv();
  DbOptions options;
  options.env = env.get();
  options.buffer_size_bytes = 16 << 10;
  options.bits_per_entry = 5.0;
  options.expected_entries = 4000;
  options.enable_metrics = true;
  options.fpr_policy = monkey::NewMonkeyFprPolicy();

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, "/db", &db);
  if (!s.ok()) {
    fprintf(stderr, "Open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  WriteOptions wo;
  const std::string value(48, 'v');
  for (int i = 0; i < 4000; i++) {
    const std::string key = Key(i);
    s = db->Put(wo, key, value);
    if (!s.ok()) {
      fprintf(stderr, "Put failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (!db->Flush().ok()) return 1;

  ReadOptions ro;
  std::string out;
  for (int i = 0; i < 500; i++) {
    const std::string key = Key((i * 13) % 4000);
    (void)db->Get(ro, key, &out);          // Hits.
    const std::string missing = Key((i * 7) % 4000) + "x";
    (void)db->Get(ro, missing, &out);  // Zero-result.
  }
  std::vector<std::string> key_storage;
  for (int i = 0; i < 32; i++) key_storage.push_back(Key(i));
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());
  std::vector<std::string> values;
  (void)db->MultiGet(ro, keys, &values);
  auto it = db->NewIterator(ro);
  int scanned = 0;
  for (it->SeekToFirst(); it->Valid() && scanned < 500; it->Next()) {
    scanned++;
  }

  const std::string text = db->DumpMetrics(
      json ? DB::MetricsFormat::kJson : DB::MetricsFormat::kPrometheus);
  fwrite(text.data(), 1, text.size(), stdout);
  if (text.empty() || text.back() != '\n') fputc('\n', stdout);
  return 0;
}
