#!/usr/bin/env python3
"""Pretty-print a MonkeyDB Chrome-trace JSON dump as a span tree.

Input is the output of DB::DumpTrace() / `TRACE JSON` / GET /trace —
Chrome trace-event JSON with 'B'/'E'/'I' phases (DESIGN.md §16). Output
is one indented line per span with its duration, grouped by (pid, tid)
track, parents before children.

    tools/trace_view.py trace.json
    monkey_cli TRACE JSON | tools/trace_view.py -
    tools/trace_view.py --check trace.json   # exit 1 on nesting violations

Nesting violations — an 'E' with no open 'B' on its track, or a 'B' left
unclosed at end of track — are reported to stderr; --check turns them
into a non-zero exit status (trace_test.cc round-trips a recorded trace
through this script and asserts zero violations).

Stdlib only; no third-party imports.
"""

import argparse
import json
import sys


def load_events(path):
    if path == "-":
        doc = json.load(sys.stdin)
    else:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    if isinstance(doc, list):  # Bare traceEvents array is also legal.
        return doc
    return doc.get("traceEvents", [])


def format_args(args):
    parts = [
        "%s=%s" % (k, v) for k, v in sorted(args.items()) if k != "request_id"
    ]
    req = args.get("request_id")
    if req is not None:
        parts.append("req=%s" % req)
    return (" (" + ", ".join(parts) + ")") if parts else ""


def render_track(track_key, events, out, violations):
    """Renders one (pid, tid) track; appends violation strings."""
    pid, tid = track_key
    out.append("thread %s/%s:" % (pid, tid))
    stack = []  # Open 'B' events: (line_index, event).
    lines = []  # (depth, text, duration_us or None)
    for ev in events:
        phase = ev.get("ph")
        name = ev.get("name", "?")
        ts = float(ev.get("ts", 0.0))
        if phase == "B":
            idx = len(lines)
            lines.append([len(stack), name + format_args(ev.get("args", {})),
                          None])
            stack.append((idx, name, ts))
        elif phase == "E":
            if not stack:
                violations.append(
                    "tid %s: unmatched end '%s' at ts=%.3f" % (tid, name, ts))
                lines.append([0, "!unmatched end: " + name, None])
                continue
            idx, open_name, open_ts = stack.pop()
            if open_name != name:
                violations.append(
                    "tid %s: end '%s' closes begin '%s'" % (tid, name,
                                                            open_name))
            # End events carry the final args; prefer them.
            lines[idx][1] = name + format_args(ev.get("args", {}))
            lines[idx][2] = ts - open_ts
        elif phase == "I":
            lines.append([len(stack),
                          name + format_args(ev.get("args", {})) +
                          " [instant]", None])
    for idx, open_name, _ in stack:
        violations.append("tid %s: unclosed begin '%s'" % (tid, open_name))
        lines[idx][1] = "!unclosed begin: " + lines[idx][1]
    for depth, text, duration in lines:
        suffix = "" if duration is None else " %.1fus" % duration
        out.append("  " * (depth + 1) + text + suffix)


def main():
    parser = argparse.ArgumentParser(
        description="Render a MonkeyDB Chrome trace as a span tree.")
    parser.add_argument("path", help="trace JSON file, or - for stdin")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if the trace has nesting violations")
    opts = parser.parse_args()

    try:
        events = load_events(opts.path)
    except (OSError, ValueError) as e:
        print("trace_view: %s" % e, file=sys.stderr)
        return 2

    tracks = {}  # (pid, tid) -> [event], in file order (ts-sorted dumps).
    for ev in events:
        if ev.get("ph") not in ("B", "E", "I"):
            continue
        tracks.setdefault((ev.get("pid", 0), ev.get("tid", 0)),
                          []).append(ev)

    out = []
    violations = []
    for key in sorted(tracks):
        render_track(key, tracks[key], out, violations)
    print("\n".join(out))
    for v in violations:
        print("trace_view: violation: %s" % v, file=sys.stderr)
    if violations and opts.check:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
