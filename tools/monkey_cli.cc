// monkey_cli: a minimal RESP client for poking monkey_server.
//
//   monkey_cli [--host H] [--port P] SET k v        one command
//   monkey_cli --pipeline 100 SET k v               same command, pipelined
//   monkey_cli PING                                 liveness check
//
// With --pipeline N the command is encoded N times, sent as one write,
// and the N replies are read back (only the last is printed) — a direct
// probe of the server's per-tick coalescing.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "server/resp_client.h"

int main(int argc, char** argv) {
  using monkeydb::RespClient;
  using monkeydb::RespReply;
  using monkeydb::Status;

  std::string host = "127.0.0.1";
  int port = 6380;
  int pipeline = 1;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        fprintf(stderr, "%s requires a value\n", flag);
        exit(2);
      }
      return argv[++i];
    };
    if (args.empty() && arg == "--host") {
      host = next("--host");
    } else if (args.empty() && arg == "--port") {
      port = atoi(next("--port"));
    } else if (args.empty() && arg == "--pipeline") {
      pipeline = atoi(next("--pipeline"));
      if (pipeline < 1) {
        fprintf(stderr, "--pipeline must be >= 1\n");
        return 2;
      }
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) {
    fprintf(stderr,
            "usage: monkey_cli [--host H] [--port P] [--pipeline N] "
            "COMMAND [ARG...]\n");
    return 2;
  }

  RespClient client;
  Status s = client.Connect(host, port);
  if (!s.ok()) {
    fprintf(stderr, "monkey_cli: %s\n", s.ToString().c_str());
    return 1;
  }
  std::string batch;
  for (int i = 0; i < pipeline; ++i) {
    RespClient::EncodeCommand(args, &batch);
  }
  s = client.SendRaw(batch);
  if (!s.ok()) {
    fprintf(stderr, "monkey_cli: %s\n", s.ToString().c_str());
    return 1;
  }
  RespReply reply;
  for (int i = 0; i < pipeline; ++i) {
    s = client.ReadReply(&reply);
    if (!s.ok()) {
      fprintf(stderr, "monkey_cli: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  printf("%s\n", reply.ToString().c_str());
  return reply.type == RespReply::Type::kError ? 1 : 0;
}
