// monkey_cli: a minimal RESP client for poking monkey_server.
//
//   monkey_cli [--host H] [--port P] SET k v        one command
//   monkey_cli --pipeline 100 SET k v               same command, pipelined
//   monkey_cli PING                                 liveness check
//   monkey_cli --slowlog [n]                        SLOWLOG GET, pretty
//   monkey_cli --trace [ms]                         TRACE TREE, span text
//
// With --pipeline N the command is encoded N times, sent as one write,
// and the N replies are read back (only the last is printed) — a direct
// probe of the server's per-tick coalescing. --slowlog renders each
// entry's id/time/duration/args header and its captured span tree
// (DESIGN.md §16); --trace prints the server's flight-recorder contents
// as an indented span forest.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "server/resp_client.h"

namespace {

using monkeydb::RespClient;
using monkeydb::RespReply;
using monkeydb::Status;

// True when s is all digits (an optional value for --slowlog/--trace).
bool IsNumber(const char* s) {
  if (*s == '\0') return false;
  for (; *s != '\0'; ++s) {
    if (*s < '0' || *s > '9') return false;
  }
  return true;
}

int Fail(const Status& s) {
  fprintf(stderr, "monkey_cli: %s\n", s.ToString().c_str());
  return 1;
}

// SLOWLOG GET reply: array of [id, unix_secs, duration_us, args..., tree].
int PrintSlowlog(const RespReply& reply) {
  if (reply.type == RespReply::Type::kError) {
    fprintf(stderr, "monkey_cli: %s\n", reply.str.c_str());
    return 1;
  }
  if (reply.type != RespReply::Type::kArray) {
    printf("%s\n", reply.ToString().c_str());
    return 0;
  }
  if (reply.elements.empty()) {
    printf("(empty slowlog)\n");
    return 0;
  }
  for (const RespReply& e : reply.elements) {
    if (e.type != RespReply::Type::kArray || e.elements.size() < 5) {
      printf("%s\n", e.ToString().c_str());
      continue;
    }
    std::string cmdline;
    for (const RespReply& a : e.elements[3].elements) {
      if (!cmdline.empty()) cmdline += ' ';
      cmdline += a.str;
    }
    printf("#%lld  %.3f ms  at %lld  %s\n", e.elements[0].integer,
           static_cast<double>(e.elements[2].integer) / 1000.0,
           e.elements[1].integer, cmdline.c_str());
    const std::string& tree = e.elements[4].str;
    if (!tree.empty()) printf("%s", tree.c_str());
    printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 6380;
  int pipeline = 1;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        fprintf(stderr, "%s requires a value\n", flag);
        exit(2);
      }
      return argv[++i];
    };
    if (args.empty() && arg == "--host") {
      host = next("--host");
    } else if (args.empty() && arg == "--port") {
      port = atoi(next("--port"));
    } else if (args.empty() && arg == "--pipeline") {
      pipeline = atoi(next("--pipeline"));
      if (pipeline < 1) {
        fprintf(stderr, "--pipeline must be >= 1\n");
        return 2;
      }
    } else if (args.empty() && arg == "--slowlog") {
      // --slowlog [n]: SLOWLOG GET n, pretty-printed with span trees.
      std::vector<std::string> cmd = {"SLOWLOG", "GET"};
      if (i + 1 < argc && IsNumber(argv[i + 1])) cmd.push_back(argv[++i]);
      RespClient client;
      Status s = client.Connect(host, port);
      if (!s.ok()) return Fail(s);
      RespReply reply;
      s = client.Command(cmd, &reply);
      if (!s.ok()) return Fail(s);
      return PrintSlowlog(reply);
    } else if (args.empty() && arg == "--trace") {
      // --trace [ms]: TRACE TREE [ms], printed verbatim.
      std::vector<std::string> cmd = {"TRACE", "TREE"};
      if (i + 1 < argc && IsNumber(argv[i + 1])) cmd.push_back(argv[++i]);
      RespClient client;
      Status s = client.Connect(host, port);
      if (!s.ok()) return Fail(s);
      RespReply reply;
      s = client.Command(cmd, &reply);
      if (!s.ok()) return Fail(s);
      if (reply.type == RespReply::Type::kError) {
        fprintf(stderr, "monkey_cli: %s\n", reply.str.c_str());
        return 1;
      }
      printf("%s", reply.str.c_str());
      return 0;
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) {
    fprintf(stderr,
            "usage: monkey_cli [--host H] [--port P] [--pipeline N] "
            "COMMAND [ARG...]\n"
            "       monkey_cli [--host H] [--port P] --slowlog [n]\n"
            "       monkey_cli [--host H] [--port P] --trace [ms]\n");
    return 2;
  }

  RespClient client;
  Status s = client.Connect(host, port);
  if (!s.ok()) return Fail(s);
  std::string batch;
  for (int i = 0; i < pipeline; ++i) {
    RespClient::EncodeCommand(args, &batch);
  }
  s = client.SendRaw(batch);
  if (!s.ok()) return Fail(s);
  RespReply reply;
  for (int i = 0; i < pipeline; ++i) {
    s = client.ReadReply(&reply);
    if (!s.ok()) return Fail(s);
  }
  printf("%s\n", reply.ToString().c_str());
  return reply.type == RespReply::Type::kError ? 1 : 0;
}
