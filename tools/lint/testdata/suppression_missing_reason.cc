// Suppression machinery: an annotation with no reason is itself a
// finding. The drop below is silenced, but the bad-suppression
// meta-finding replaces it — an exception that cannot explain itself is
// not an exception.

#include "util/status.h"

namespace monkeydb {

void RemoveTempFile(Env* env, const std::string& tmp) {
  env->RemoveFile(tmp).IgnoreError();  // monkey-lint: status-sink

  // ^finding: bad-suppression @-2
}

}  // namespace monkeydb
