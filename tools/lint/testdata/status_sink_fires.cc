// status-sink: firing cases. Every dropped Status must carry an
// adjacent justification annotation; these carry none.

#include "util/status.h"

namespace monkeydb {

Status SyncDir(const std::string& dir) { return Status(); }

// Drop on a named local.
void BestEffortSync(const std::string& dir) {
  Status s = SyncDir(dir);
  s.IgnoreError();  // ^finding: status-sink
}

// Chained drop on a temporary returned by a member call.
void DropChained(Env* env, const std::string& path) {
  env->RemoveFile(path).IgnoreError();  // ^finding: status-sink
}

// (void)-cast of a project function whose declared return type is Status
// — same drop, different spelling.
void VoidCast(const std::string& dir) {
  (void)SyncDir(dir);  // ^finding: status-sink
}

}  // namespace monkeydb
