// slice-dangling-source: non-firing look-alikes. Each of these is one
// edit away from a firing case; a sloppier matcher would flag them.

#include "util/slice.h"

namespace monkeydb {

std::string RenderKey(int id) { return "key-" + std::to_string(id); }

// The sanctioned pattern: materialize the string in a named local that
// outlives the Slice, then view it.
void SeekToOwned(const Slice& internal_key) {
  std::string owned = internal_key.ToString();
  Slice target = owned;
  Use(target);
}

// A temporary in argument position is fine — it lives until the end of
// the full expression, which is the LevelDB calling convention.
void PassTemporaries() {
  Consume(std::to_string(42));
  Consume(RenderKey(7) + "/suffix");
}

// Returning a Slice over a parameter reference: the caller owns the
// bytes, they outlive this frame.
Slice ViewOf(const std::string& stable) { return stable; }

// A std::string local assigned from a temporary is a copy, not a view.
void CopyIntoString(const Slice& key) {
  std::string copy;
  copy = key.ToString();
  Consume(copy);
}

}  // namespace monkeydb
