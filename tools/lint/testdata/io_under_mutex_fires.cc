// io-under-mutex: firing cases. Blocking I/O, clock reads, and
// thread-pool waits must not run while an annotated mutex is held.

#include "util/mutex.h"

namespace monkeydb {

class TableCache {
 public:
  // Direct sink under a REQUIRES contract: the file read runs with mu_
  // held for the whole body.
  Status LoadIndexBlock() REQUIRES(mu_) {
    char scratch[64];
    return file_->Read(0, sizeof(scratch), scratch);  // ^finding: io-under-mutex
  }

  // Direct sink inside a MutexLock scope: a clock read is a vDSO call,
  // still a stall source under contention.
  void StampAccess() {
    MutexLock lock(&mu_);
    last_access_ = std::chrono::steady_clock::now();  // ^finding: io-under-mutex
  }

  // Transitive: the call itself looks innocent, but the callee reaches
  // an fsync.
  void Publish() {
    MutexLock lock(&mu_);
    AppendManifestRecord();  // ^finding: io-under-mutex
    published_ = true;
  }

  // Not a finding here: no lock held. This is the I/O-reaching leaf the
  // transitive case walks into.
  void AppendManifestRecord() {
    manifest_->Append("record");
    manifest_->Sync();
  }

 private:
  Mutex mu_;
};

}  // namespace monkeydb
