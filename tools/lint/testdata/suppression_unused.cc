// Suppression machinery: an annotation whose finding is gone must be
// removed — stale suppressions are reported as warnings so they cannot
// mask a future regression at the same site.

#include "util/mutex.h"

namespace monkeydb {

class LogCleaner {
 public:
  // monkey-lint: io-under-mutex — kept from before the flush moved to
  // the background thread; nothing here blocks any more.  ^warn-unused @-1
  void ResetCounters() {
    bytes_flushed_ = 0;
  }

  void Touch() {
    epoch_++;  // monkey-lint: status-sink — legacy annotation ^warn-unused
  }

 private:
  Mutex mu_;
};

}  // namespace monkeydb
