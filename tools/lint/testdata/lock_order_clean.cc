// lock-order: non-firing look-alikes. Nested locking is fine as long as
// every path agrees on one global order.

#include "util/mutex.h"

namespace monkeydb {

namespace {
// Generic helper locking a caller-supplied mutex: the parameter aliases
// a lock already represented at the call site, so it forms no node.
void FlushCounters(Mutex* mu) {
  MutexLock lock(mu);
}
}  // namespace

class Dispatcher {
 public:
  // Direct nesting in the canonical order: intake before dispatch.
  void Enqueue(int item) {
    MutexLock intake_lock(&intake_mu_);
    intake_depth_ += item;
    MutexLock dispatch_lock(&dispatch_mu_);
    dispatch_depth_++;
  }

  // Interprocedural edge in the same direction: still acyclic.
  void Promote() {
    MutexLock intake_lock(&intake_mu_);
    intake_depth_--;
    LockedDispatchCount();
  }

  int LockedDispatchCount() {
    MutexLock dispatch_lock(&dispatch_mu_);
    return dispatch_depth_;
  }

  // Needs the locks in the wrong order, so it releases dispatch_mu_
  // around the intake acquisition: the ScopedUnlock window means no
  // reverse edge is recorded.
  void Requeue() {
    MutexLock dispatch_lock(&dispatch_mu_);
    dispatch_depth_--;
    {
      ScopedUnlock window(&dispatch_mu_);
      MutexLock intake_lock(&intake_mu_);
      intake_depth_++;
    }
  }

  // Calling the generic helper while holding intake_mu_ adds no edge:
  // the helper's lock is not a resolvable global node.
  void ReportLoad() {
    MutexLock intake_lock(&intake_mu_);
    FlushCounters(&dispatch_mu_);
  }

 private:
  Mutex intake_mu_;
  Mutex dispatch_mu_;
};

}  // namespace monkeydb
