// Suppression machinery: documented annotations silence findings and are
// counted as suppressed, not active. Covers multi-rule annotations and
// function-scope (fn) binding.

#include "util/mutex.h"

namespace monkeydb {

class SegmentWriter {
 public:
  // One annotation, two rules: the close is both a dropped Status and
  // I/O under mu_, and both are justified at once.
  void Shutdown() {
    MutexLock lock(&mu_);
    stopped_ = true;
    // monkey-lint: status-sink, io-under-mutex — teardown: no reader can
    // contend on mu_ once stopped_ is set, and a failed close of a
    // segment we are abandoning is not actionable.
    log_->Close().IgnoreError();  // ^suppressed: status-sink ^suppressed: io-under-mutex
  }

  // Function-scope suppression: the (fn) form covers the whole body, so
  // the sink inside the loop is silenced without a per-line annotation.
  // monkey-lint: io-under-mutex(fn) — startup path: runs from the
  // constructor before any client thread exists to contend on mu_.
  void WarmIndex() {
    MutexLock lock(&mu_);
    for (int b = 0; b < 4; b++) {
      index_->ReadAhead(b * 4096, 4096);  // ^suppressed: io-under-mutex
    }
  }

 private:
  Mutex mu_;
};

}  // namespace monkeydb
