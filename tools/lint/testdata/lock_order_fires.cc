// lock-order: firing cases. Opposite-order acquisition of the same pair
// of mutexes, and a double-acquire of a non-reentrant std::mutex.

#include "util/mutex.h"

namespace monkeydb {

// AB/BA cycle, both edges direct. The cycle witness is rooted at the
// alphabetically-first node (Router::routes_mu_), so the finding lands
// on the stats_mu_ acquisition inside RecordRoute.
class Router {
 public:
  // Writer path: route table lock, then stats lock.
  void RecordRoute(int shard) {
    MutexLock table_lock(&routes_mu_);
    table_size_ += shard;
    MutexLock stats_lock(&stats_mu_);  // ^finding: lock-order
    stats_writes_++;
  }

  // Reporting path: stats lock, then route table lock — opposite order.
  int SnapshotLoad() {
    MutexLock stats_lock(&stats_mu_);
    int w = stats_writes_;
    MutexLock table_lock(&routes_mu_);
    return w + table_size_;
  }

 private:
  Mutex routes_mu_;
  Mutex stats_mu_;
};

// Same cycle, but one edge is interprocedural: EvictOne holds lru_mu_
// and calls into a helper that takes shard_mu_.
class Cache {
 public:
  void EvictOne() {
    MutexLock lru_lock(&lru_mu_);
    lru_bytes_ -= 1;
    TrimShard();  // ^finding: lock-order
  }

  void TrimShard() {
    MutexLock shard_lock(&shard_mu_);
    shard_entries_--;
  }

  void PinShardEntry() {
    MutexLock shard_lock(&shard_mu_);
    MutexLock lru_lock(&lru_mu_);
    lru_bytes_ += 1;
  }

 private:
  Mutex lru_mu_;
  Mutex shard_mu_;
};

// Self-edge: re-acquiring a plain (non-recursive) mutex that is already
// held deadlocks immediately.
class FlushScheduler {
 public:
  void Drain() {
    MutexLock lock(&mu_);
    pending_ = 0;
    // Inlined from a helper that still takes the lock itself.
    MutexLock again(&mu_);  // ^finding: lock-order
    drained_ = true;
  }

 private:
  Mutex mu_;
};

}  // namespace monkeydb
