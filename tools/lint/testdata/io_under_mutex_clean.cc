// io-under-mutex: non-firing look-alikes. The engine's sanctioned idioms
// for mixing locks and I/O — each would fire if written slightly worse.

#include "util/mutex.h"

namespace monkeydb {

class WalWriter {
 public:
  // The sanctioned idiom: drop the lock around the I/O with a
  // ScopedUnlock window. The sink runs, but not while mu_ is held.
  void FlushPending() {
    MutexLock lock(&mu_);
    std::string batch = pending_;
    pending_.clear();
    {
      ScopedUnlock window(&mu_);
      log_->Append(batch);
      log_->Sync();
    }
    synced_sequence_ = batch_sequence_;
  }

  // CondVar::Wait releases the mutex while sleeping — waiting under the
  // lock is the one blocking call the design permits.
  void WaitForSpace() REQUIRES(mu_) {
    while (queue_full_) {
      space_available_.Wait();
    }
  }

  // I/O with no lock held at all: ordinary unlocked read path.
  Status ReadRecord(uint64_t offset) {
    char scratch[64];
    return log_file_->Read(offset, sizeof(scratch), scratch);
  }

  // Pure in-memory work under the lock: no sink, no call that reaches
  // one.
  void Enqueue(const std::string& rec) {
    MutexLock lock(&mu_);
    pending_.append(rec);
    batch_sequence_++;
  }

 private:
  Mutex mu_;
};

}  // namespace monkeydb
