// status-sink: non-firing look-alikes. Checked statuses and (void) casts
// of non-Status values are all fine.

#include "util/status.h"

namespace monkeydb {

Status SyncDir(const std::string& dir) { return Status(); }
int PendingCount() { return 42; }

// The compliant path: check and propagate.
Status SyncAll(const std::string& dir) {
  Status s = SyncDir(dir);
  if (!s.ok()) {
    return s;
  }
  return Status();
}

// (void)-cast of a project function returning int: silencing a
// [[nodiscard]] counter is not a dropped Status.
void DropCount() {
  (void)PendingCount();
}

// (void)-cast of an external function the project cannot resolve: its
// return type is unknown, so the check stays quiet.
void DropExternal(int fd) {
  (void)posix_fadvise(fd, 0, 0, 0);
}

}  // namespace monkeydb
