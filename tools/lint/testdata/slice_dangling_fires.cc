// slice-dangling-source: firing cases. A Slice bound to a temporary or
// dying std::string is a read of freed memory waiting to happen.

#include "util/slice.h"

namespace monkeydb {

std::string DescribeEntry(int id) { return "entry-" + std::to_string(id); }

// A Slice local initialized from a .ToString() temporary: the string dies
// at the semicolon, the Slice lives on.
void SeekToCopy(const Slice& internal_key) {
  Slice target = internal_key.ToString();  // ^finding: slice-dangling-source
  Use(target);
}

// Assignment (not just initialization) to an existing Slice local from a
// concatenation temporary.
void RebindToConcat(const std::string& prefix) {
  Slice bound;
  bound = prefix + "/current";  // ^finding: slice-dangling-source
  Use(bound);
}

// Returning a Slice over a function-local std::string: the bytes die at
// function exit, before the caller can look at them.
Slice NameOfLevel(int level) {
  std::string name = "L" + std::to_string(level);
  return name;  // ^finding: slice-dangling-source
}

// Returning a Slice over a temporary produced by a project function whose
// declared return type is std::string by value.
Slice CurrentDescription() {
  return DescribeEntry(7);  // ^finding: slice-dangling-source
}

}  // namespace monkeydb
