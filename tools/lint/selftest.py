#!/usr/bin/env python3
"""monkey-lint self-test: run every checker over the marker-annotated
corpus in testdata/ and require exact agreement.

Each corpus file is analyzed as an isolated one-file project. Inline
markers state the expected outcome (see testdata/README.md):

    ^finding: <rule> [@+N|@-N]     active finding on this (offset) line
    ^suppressed: <rule> [@+N|@-N]  finding silenced by an annotation
    ^warn-unused [@+N|@-N]         unused-suppression warning

The comparison is an exact multiset match per file: extra findings,
missing findings, stray warnings, and surprise bad-suppression
meta-findings all fail. Files named *_clean.cc must carry no ^finding
markers at all — they are the non-firing half of each rule. As a guard
against marker rot, every rule in RULES must fire (actively or
suppressed) somewhere in the corpus.
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from monkeylint import RULES
from monkeylint.checks import ALL_CHECKS
from monkeylint.driver import apply_suppressions
from monkeylint.project import Project

TESTDATA = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "testdata")

MARKER_RE = re.compile(
    r"\^(finding|suppressed):\s*([a-z-]+)(?:\s*@([+-]\d+))?")
UNUSED_RE = re.compile(r"\^warn-unused(?:\s*@([+-]\d+))?")
WARN_LINE_RE = re.compile(r":(\d+): unused suppression")


def expectations(path):
    """Parse inline markers -> (findings, suppressed, unused) where the
    first two are sorted (line, rule) lists and the last is line numbers."""
    findings, suppressed, unused = [], [], []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            for kind, rule, off in MARKER_RE.findall(line):
                entry = (lineno + int(off or 0), rule)
                (findings if kind == "finding" else suppressed).append(entry)
            for off in UNUSED_RE.findall(line):
                unused.append(lineno + int(off or 0))
    return sorted(findings), sorted(suppressed), sorted(unused)


def analyze(path):
    """Run all checks + suppression filtering on one isolated file."""
    project = Project([path])
    raw = []
    for rule in RULES:
        raw.extend(ALL_CHECKS[rule](project))
    active, suppressed, warnings = apply_suppressions(project, raw)
    got_active = sorted((f.line, f.rule) for f in active)
    got_supp = sorted((f.line, f.rule) for (f, _s) in suppressed)
    got_unused = sorted(int(m.group(1)) for m in
                        (WARN_LINE_RE.search(w) for w in warnings) if m)
    return got_active, got_supp, got_unused


def diff(label, want, got):
    msgs = []
    for item in sorted(set(want) - set(got)):
        msgs.append(f"  missing {label}: {item}")
    for item in sorted(set(got) - set(want)):
        msgs.append(f"  unexpected {label}: {item}")
    # Multiset mismatch with equal sets (duplicate counts differ).
    if not msgs and want != got:
        msgs.append(f"  {label} multiplicity mismatch: want {want}, "
                    f"got {got}")
    return msgs


def main():
    files = sorted(f for f in os.listdir(TESTDATA) if f.endswith(".cc"))
    if not files:
        print("selftest: no corpus files found", file=sys.stderr)
        return 1

    failures = 0
    cases = 0
    fired_rules = set()
    for name in files:
        path = os.path.join(TESTDATA, name)
        want_f, want_s, want_u = expectations(path)
        if name.endswith("_clean.cc") and want_f:
            print(f"{name}: FAIL — _clean.cc files must not carry "
                  f"^finding markers: {want_f}")
            failures += 1
            continue
        got_f, got_s, got_u = analyze(path)
        fired_rules.update(r for (_l, r) in got_f + got_s)
        cases += len(want_f) + len(want_s) + len(want_u)

        msgs = (diff("finding", want_f, got_f)
                + diff("suppressed", want_s, got_s)
                + diff("unused-warning", [(l, "") for l in want_u],
                       [(l, "") for l in got_u]))
        if msgs:
            print(f"{name}: FAIL")
            print("\n".join(msgs))
            failures += 1
        else:
            print(f"{name}: ok ({len(want_f)} finding(s), "
                  f"{len(want_s)} suppressed, {len(want_u)} warning(s))")

    missing_rules = set(RULES) - fired_rules
    if missing_rules:
        print(f"corpus: FAIL — no corpus case exercises: "
              f"{', '.join(sorted(missing_rules))}")
        failures += 1

    print(f"selftest: {len(files)} corpus files, {cases} expectations, "
          f"{failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
