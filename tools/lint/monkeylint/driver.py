"""Driver: file discovery, check execution, suppression filtering,
reporting, exit code."""

import argparse
import glob
import json
import os
import sys

from . import RULES
from .checks import ALL_CHECKS
from .project import Finding, Project


def discover_files(compile_commands, root, subdir="src"):
    """Translation units under <root>/<subdir> from compile_commands.json,
    plus every header there (headers are parsed as standalone TUs — the
    lexer needs no includes)."""
    prefix = os.path.abspath(os.path.join(root, subdir)) + os.sep
    files = set()
    if compile_commands:
        with open(compile_commands, "r", encoding="utf-8") as f:
            for entry in json.load(f):
                p = entry["file"]
                if not os.path.isabs(p):
                    p = os.path.join(entry.get("directory", root), p)
                p = os.path.abspath(p)
                if p.startswith(prefix) and os.path.exists(p):
                    files.add(p)
        if not files:
            raise SystemExit(
                f"monkey_lint: no translation units under {prefix} in "
                f"{compile_commands} — is the build configured?")
    for h in glob.glob(os.path.join(root, subdir, "**", "*.h"),
                       recursive=True):
        files.add(os.path.abspath(h))
    return sorted(files)


def apply_suppressions(project, findings):
    """Split findings into (active, suppressed) and add meta-findings for
    suppressions that carry no reason. Returns (active, suppressed,
    warnings)."""
    active = []
    suppressed = []
    for f in findings:
        sf = project.source(f.file)
        s = sf.suppression_for(f.rule, f.line) if sf else None
        if s is None:
            active.append(f)
            continue
        s.used = True
        if not s.reason:
            active.append(Finding(
                "bad-suppression", f.file, s.line,
                f"suppression for '{f.rule}' has no reason — the contract "
                f"is `// monkey-lint: {f.rule} — <reason>`; an exception "
                f"that cannot explain itself is not an exception. "
                f"(suppressed finding: {f.message})"))
        else:
            suppressed.append((f, s))
    warnings = []
    for sf in project.files:
        for s in sf.suppressions:
            if not s.used:
                rules = ",".join(s.rules)
                warnings.append(
                    f"{sf.path}:{s.line}: unused suppression "
                    f"[{rules}] — the finding it silenced is gone; "
                    f"remove the annotation.")
    return active, suppressed, warnings


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="monkey_lint",
        description="MonkeyDB project-specific static analysis "
                    "(concurrency + lifetime invariants). "
                    "Rules: " + ", ".join(RULES))
    ap.add_argument("--compile-commands", metavar="JSON",
                    help="compile_commands.json exported by CMake; its "
                         "src/ translation units plus src/ headers form "
                         "the file set")
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--rule", action="append", choices=RULES,
                    help="run only this rule (repeatable; default: all)")
    ap.add_argument("--report", metavar="OUT.json",
                    help="write a JSON findings report")
    ap.add_argument("--list-files", action="store_true",
                    help="print the analyzed file set and exit")
    ap.add_argument("files", nargs="*",
                    help="explicit files to analyze (overrides discovery)")
    args = ap.parse_args(argv)

    if args.files:
        files = [os.path.abspath(f) for f in args.files]
    else:
        cc = args.compile_commands
        if not cc:
            for cand in ("build/compile_commands.json",
                         "compile_commands.json"):
                p = os.path.join(args.root, cand)
                if os.path.exists(p):
                    cc = p
                    break
        files = discover_files(cc, args.root)
    if args.list_files:
        print("\n".join(files))
        return 0

    project = Project(files)
    rules = args.rule or list(RULES)
    findings = []
    for rule in rules:
        findings.extend(ALL_CHECKS[rule](project))
    findings.sort(key=lambda f: (f.file, f.line, f.rule))

    active, suppressed, warnings = apply_suppressions(project, findings)

    rel = os.path.abspath(args.root)

    def short(p):
        return os.path.relpath(p, rel) if p.startswith(rel + os.sep) else p

    for f in active:
        print(f"{short(f.file)}:{f.line}: [{f.rule}] {f.message}")
    for w in warnings:
        print(f"warning: {w}", file=sys.stderr)

    if args.report:
        report = {
            "files_analyzed": len(files),
            "rules": rules,
            "findings": [dict(f.as_dict(), file=short(f.file))
                         for f in active],
            "suppressed": [
                {"rule": f.rule, "file": short(f.file), "line": f.line,
                 "reason": s.reason}
                for (f, s) in suppressed],
            "unused_suppressions": warnings,
        }
        with open(args.report, "w", encoding="utf-8") as out:
            json.dump(report, out, indent=2)

    n_supp = len(suppressed)
    print(f"monkey_lint: {len(files)} files, {len(active)} finding(s), "
          f"{n_supp} documented suppression(s).",
          file=sys.stderr)
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
