"""Lock-region analysis for one function body.

Computes, for every token index in the body, which mutexes are held:

  * REQUIRES(mu) / ACQUIRE(mu) annotations    -> held for the whole body
  * MutexLock l(mu_); / MutexLock l(&mu_);    -> held to end of its scope
  * mu_.Lock() ... mu_.Unlock()               -> held between the calls
  * mu_.AssertHeld();                         -> held to end of its scope
                                                 (an assertion, not an
                                                 acquisition: it feeds
                                                 held-state but never a
                                                 lock-order edge)
  * ScopedUnlock w(&mu_);                     -> UNHELD window to end of
                                                 its scope (the engine's
                                                 sanctioned I/O idiom).
                                                 A conditional release
                                                 (second arg) is treated
                                                 as released — that can
                                                 only lose findings,
                                                 never invent them.
"""

from .lexer import match_paren
from .model import normalize_lock_expr


class Interval:
    __slots__ = ("lo", "hi", "mutex", "held", "line", "kind")

    def __init__(self, lo, hi, mutex, held, line, kind):
        self.lo = lo
        self.hi = hi
        self.mutex = mutex
        self.held = held
        self.line = line
        self.kind = kind  # "req" | "lock" | "assert" | "window"


class LockRegions:
    def __init__(self, source, fn):
        self.source = source
        self.fn = fn
        self.intervals = []
        self._compute()

    def _expr_text(self, lo, hi):
        return "".join(t.text for t in self.source.tokens[lo:hi])

    def _first_arg(self, open_paren):
        """Normalized text of the first argument of the paren group at
        open_paren; returns (expr, close_idx)."""
        toks = self.source.tokens
        close = match_paren(toks, open_paren)
        depth = 0
        out = []
        for k in range(open_paren, close + 1):
            t = toks[k].text
            if t == "(":
                depth += 1
                if depth > 1:
                    out.append(t)
            elif t == ")":
                depth -= 1
                if depth >= 1:
                    out.append(t)
            elif t == "," and depth == 1:
                break
            else:
                out.append(t)
        return normalize_lock_expr("".join(out)), close

    def _scope_end(self, idx):
        """Index of the '}' closing the innermost scope containing idx."""
        toks = self.source.tokens
        depth = 0
        for k in range(idx, self.fn.body_end):
            t = toks[k].text
            if t == "{":
                depth += 1
            elif t == "}":
                if depth == 0:
                    return k
                depth -= 1
        return self.fn.body_end

    def _receiver(self, dot_idx):
        """Reconstruct the receiver expression ending at tokens[dot_idx]
        ('.' or '->')."""
        toks = self.source.tokens
        lo = self.fn.body_start + 1
        r = dot_idx
        depth = 0
        while r - 1 >= lo:
            tx = toks[r - 1].text
            if tx in (")", "]"):
                depth += 1
            elif tx in ("(", "["):
                if depth == 0:
                    break
                depth -= 1
            elif depth == 0 and toks[r - 1].kind != "ident" and tx not in (
                    ".", "->", "::"):
                break
            r -= 1
        return normalize_lock_expr(self._expr_text(r, dot_idx))

    def _compute(self):
        fn = self.fn
        toks = self.source.tokens
        lo, hi = fn.body_start + 1, fn.body_end
        for mu in fn.requires + fn.acquires:
            if mu in ("", "this"):
                continue
            self.intervals.append(Interval(lo, hi, mu, True, fn.line, "req"))
        k = lo
        while k < hi:
            t = toks[k]
            if t.kind == "ident" and t.text in ("MutexLock", "ScopedUnlock"):
                j = k + 1
                if j < hi and toks[j].kind == "ident":
                    j += 1
                if j < hi and toks[j].text in ("(", "{"):
                    if toks[j].text == "(":
                        mu, close = self._first_arg(j)
                    else:
                        close = match_paren(toks, j)
                        mu = normalize_lock_expr(
                            self._expr_text(j + 1, close))
                    end = self._scope_end(close)
                    if mu:
                        if t.text == "MutexLock":
                            self.intervals.append(
                                Interval(close, end, mu, True, t.line,
                                         "lock"))
                        else:
                            self.intervals.append(
                                Interval(close, end, mu, False, t.line,
                                         "window"))
                    k = close + 1
                    continue
            if (t.kind == "ident"
                    and t.text in ("Lock", "AssertHeld", "Unlock")
                    and k + 1 < hi and toks[k + 1].text == "("
                    and k >= 1 and toks[k - 1].text in (".", "->")):
                mu = self._receiver(k - 1)
                if mu:
                    if t.text == "Unlock":
                        if not self._close_manual(mu, k):
                            # Unlock of a lock held by contract (REQUIRES)
                            # or by an enclosing MutexLock: open an unheld
                            # window until the matching re-Lock (or body
                            # end). This is the manual unlock/relock idiom
                            # (e.g. backpressure sleeps).
                            self.intervals.append(Interval(
                                k, self._find_relock(mu, k, hi), mu, False,
                                t.line, "window"))
                    elif t.text == "Lock":
                        self.intervals.append(
                            Interval(k, hi, mu, True, t.line, "lock"))
                    else:
                        self.intervals.append(
                            Interval(k, self._scope_end(k), mu, True,
                                     t.line, "assert"))
            k += 1

    def _close_manual(self, mu, at):
        closed = False
        for iv in self.intervals:
            if (iv.kind == "lock" and iv.mutex == mu and iv.lo < at < iv.hi):
                iv.hi = at
                closed = True
        return closed

    def _find_relock(self, mu, at, hi):
        """First `mu.Lock()` after token `at`, or `hi` if none."""
        toks = self.source.tokens
        for k in range(at + 1, hi):
            if (toks[k].kind == "ident" and toks[k].text == "Lock"
                    and k + 1 < hi and toks[k + 1].text == "("
                    and k >= 1 and toks[k - 1].text in (".", "->")
                    and self._receiver(k - 1) == mu):
                return k
        return hi

    def held_at(self, idx):
        """Dict mutex -> (line, kind) for every mutex held at token index
        idx. Windows override enclosing acquisitions of the same mutex
        when opened later."""
        held = {}
        events = [iv for iv in self.intervals if iv.lo <= idx < iv.hi]
        events.sort(key=lambda iv: iv.lo)
        for iv in events:
            if iv.held:
                held[iv.mutex] = (iv.line, iv.kind)
            else:
                held.pop(iv.mutex, None)
        return held

    def acquisitions(self):
        """[(idx, mutex, line)] for every genuine in-body acquisition
        (MutexLock construction or manual Lock()), in source order."""
        out = [(iv.lo, iv.mutex, iv.line) for iv in self.intervals
               if iv.kind == "lock"]
        out.sort()
        return out
