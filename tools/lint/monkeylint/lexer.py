"""A small C++ lexer: good enough to be exact about what is code.

Produces a token stream with line numbers, with comments and preprocessor
directives captured separately (comments carry suppression annotations;
the token stream itself is pure code). Handles line comments, block
comments, string/char literals with escapes, raw strings R"delim(...)delim",
digraph-free modern C++, and preprocessor lines with backslash
continuations. It does not expand macros: the project's annotation macros
(REQUIRES, GUARDED_BY, ACQUIRE, ...) are exactly what the checks want to
see unexpanded.
"""

from dataclasses import dataclass
import re

# Multi-char operators we want kept whole (longest first).
_PUNCT3 = ("<<=", ">>=", "...", "->*")
_PUNCT2 = ("::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
           "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=")

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"\.?[0-9](?:[0-9a-zA-Z_.']|[eEpP][+-])*")


@dataclass
class Token:
    text: str
    line: int
    kind: str  # "ident", "num", "str", "char", "punct"

    def __repr__(self):
        return f"{self.text!r}@{self.line}"


@dataclass
class Comment:
    text: str  # Without the // or /* */ markers, stripped.
    line: int  # Line the comment starts on.
    end_line: int
    own_line: bool  # True if nothing but whitespace precedes it on its line.


class LexedFile:
    def __init__(self, path, tokens, comments):
        self.path = path
        self.tokens = tokens
        self.comments = comments


def lex(path, text=None):
    if text is None:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    tokens = []
    comments = []
    i = 0
    n = len(text)
    line = 1
    line_start = 0  # Offset of the current line's first character.
    at_line_start = True  # Only whitespace seen since the last newline.

    def advance_lines(s):
        nonlocal line
        line += s.count("\n")

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            line_start = i + 1
            at_line_start = True
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Preprocessor directive: swallow the whole logical line.
        if c == "#" and at_line_start:
            j = i
            while j < n:
                if text[j] == "\n":
                    if j > 0 and text[j - 1] == "\\":
                        advance_lines("\n")
                        j += 1
                        continue
                    break
                j += 1
            i = j
            continue
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                if j == -1:
                    j = n
                comments.append(Comment(text[i + 2:j].strip(), line, line,
                                        at_line_start))
                i = j
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                if j == -1:
                    j = n
                body = text[i + 2:j]
                start = line
                advance_lines(body)
                comments.append(Comment(body.strip(), start, line,
                                        at_line_start))
                i = j + 2
                continue
        at_line_start = False
        # Raw string literal.
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            m = re.match(r'R"([^()\\ \t\n]*)\(', text[i:])
            if m:
                delim = m.group(1)
                close = ")" + delim + '"'
                j = text.find(close, i + m.end())
                if j == -1:
                    j = n - len(close)
                lit = text[i:j + len(close)]
                tokens.append(Token(lit, line, "str"))
                advance_lines(lit)
                i = j + len(close)
                continue
        if c == '"' or c == "'":
            # Possibly prefixed literal was handled for R""; u8"" etc. land
            # here via the ident branch emitting the prefix — acceptable.
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == c or text[j] == "\n":
                    break
                j += 1
            lit = text[i:j + 1] if j < n else text[i:]
            tokens.append(Token(lit, line, "str" if c == '"' else "char"))
            advance_lines(lit)
            i = i + len(lit)
            continue
        m = _IDENT_RE.match(text, i)
        if m:
            tokens.append(Token(m.group(0), line, "ident"))
            i = m.end()
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = _NUM_RE.match(text, i)
            tokens.append(Token(m.group(0), line, "num"))
            i = m.end()
            continue
        matched = False
        for p in _PUNCT3:
            if text.startswith(p, i):
                tokens.append(Token(p, line, "punct"))
                i += len(p)
                matched = True
                break
        if matched:
            continue
        for p in _PUNCT2:
            if text.startswith(p, i):
                tokens.append(Token(p, line, "punct"))
                i += len(p)
                matched = True
                break
        if matched:
            continue
        tokens.append(Token(c, line, "punct"))
        i += 1

    return LexedFile(path, tokens, _merge_comment_blocks(comments))


def _merge_comment_blocks(comments):
    """Merge runs of own-line `//` comments on consecutive lines into one
    Comment block (line = first, end_line = last), so an annotation
    written as a multi-line comment covers the statement below the whole
    block. Trailing comments (code before them on the line) never merge."""
    merged = []
    for c in comments:
        prev = merged[-1] if merged else None
        if (prev is not None and prev.own_line and c.own_line
                and c.line == prev.end_line + 1):
            prev.text += "\n" + c.text
            prev.end_line = c.end_line
        else:
            merged.append(c)
    return merged


def match_paren(tokens, i):
    """tokens[i] must be an opener; returns index of its matching closer
    (or len(tokens)-1 if unbalanced)."""
    pairs = {"(": ")", "[": "]", "{": "}"}
    opener = tokens[i].text
    closer = pairs[opener]
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j].text
        if t == opener:
            depth += 1
        elif t == closer:
            depth -= 1
            if depth == 0:
                return j
    return len(tokens) - 1
