"""monkey-lint: project-specific static analysis for MonkeyDB.

Four checks encode the engine invariants that neither the compiler nor
Clang's -Wthread-safety can express (see DESIGN.md "Static analysis"):

  slice-dangling-source  Slice bound to a temporary std::string or to a
                         local that dies before the Slice.
  io-under-mutex         a call path reaching Env / file I/O, fsync,
                         ReadBatch, clock reads, or ThreadPool waits while
                         an annotated mutex is held (transitive over the
                         call graph, minus ScopedUnlock windows).
  lock-order             cycles in the static lock acquisition-order graph
                         (MutexLock nesting + REQUIRES/ACQUIRE contracts).
  status-sink            IgnoreError() / (void)-cast Status without an
                         adjacent justification annotation.

Findings are suppressible only via an inline

    // monkey-lint: <rule> -- <reason>

annotation (em dash, double dash, or colon before the reason all work), so
every exception in the tree is self-documenting. A suppression without a
reason is itself reported.

The analysis engine is a dependency-free C++ lexer/parser driven by the
file list of an exported compile_commands.json (plus the headers under
src/). It deliberately avoids libclang: the CI and container images this
gate must run in do not ship libclang or its Python bindings, and a
hermetic stdlib-only tool cannot rot when the toolchain image changes.
The trade-off (documented per check) is lexical rather than semantic type
resolution; the checks are tuned on the self-test corpus under
tools/lint/testdata/ so each rule provably fires and stays quiet.
"""

__version__ = "1.0"

RULES = (
    "slice-dangling-source",
    "io-under-mutex",
    "lock-order",
    "status-sink",
)
