"""io-under-mutex: no call path may reach blocking I/O, clock reads, or
thread-pool waits while an annotated mutex is held.

This is the design rule of PRs 1-3 ("apply outside mu_") that Clang's
-Wthread-safety cannot express: the analysis knows *which* lock guards
what, but not that a WAL fsync under mu_ stalls every reader. The check
computes lock-held regions per function (REQUIRES/ACQUIRE contracts,
MutexLock scopes, manual Lock/Unlock, AssertHeld), subtracts ScopedUnlock
windows — the engine's sanctioned I/O idiom, each of which must document
its covering protocol — and walks the call graph transitively: a call
under a held mutex that can reach an I/O sink anywhere downstream is a
finding, with the full chain in the message.

Sinks:
  * file/Env methods (receiver call):  Read ReadBatch ReadAhead Skip
    Append Sync Flush Close NewSequentialFile NewRandomAccessFile
    NewWritableFile GetChildren RemoveFile CreateDir GetFileSize
    RenameFile FileExists
  * bare/namespaced syscalls + clocks: pread pwrite fsync fdatasync
    syscall mmap munmap madvise posix_fadvise NowMicros now sleep_for
    sleep_until usleep nanosleep
  * thread-pool / thread waits (receiver call): RunBatch join

CondVar::Wait is deliberately NOT a sink: it releases the mutex while
sleeping — waiting under the lock is the one blocking call the design
permits.

Propagation trusts ScopedUnlock: I/O performed inside a window does not
mark the enclosing function as I/O-reaching for its callers, because the
window's contract is precisely "this function drops the caller's lock
around the I/O". The residual risk (a second, different mutex still held
across someone else's window) is the documented limit of the check.
"""

from ..model import extract_calls
from ..project import Finding
from ..regions import LockRegions

# Sinks that must be invoked as a member call (x.Read(...) / f->Sync()).
METHOD_SINKS = {
    "Read": "file read", "ReadBatch": "batched file read",
    "ReadAhead": "readahead hint", "Skip": "sequential-file skip",
    "Append": "file append", "Sync": "file sync / fsync",
    "Flush": "file flush", "Close": "file close",
    "NewSequentialFile": "file open", "NewRandomAccessFile": "file open",
    "NewWritableFile": "file open", "GetChildren": "directory listing",
    "RemoveFile": "file removal", "CreateDir": "mkdir",
    "GetFileSize": "file stat", "RenameFile": "rename",
    "FileExists": "file stat", "RunBatch": "thread-pool wait",
    "join": "thread join", "NowMicros": "clock read",
}
# Sinks that appear bare or namespace-qualified (::pread, clock::now()).
FREE_SINKS = {
    "pread": "pread syscall", "pwrite": "pwrite syscall",
    "fsync": "fsync syscall", "fdatasync": "fdatasync syscall",
    "syscall": "raw syscall", "mmap": "mmap syscall",
    "munmap": "munmap syscall", "madvise": "madvise syscall",
    "posix_fadvise": "posix_fadvise syscall", "now": "clock read",
    "sleep_for": "sleep", "sleep_until": "sleep",
    "usleep": "sleep", "nanosleep": "sleep",
}

RULE = "io-under-mutex"


def _call_is_sink(source, name, idx):
    toks = source.tokens
    prev = toks[idx - 1].text if idx > 0 else ""
    if name in METHOD_SINKS and prev in (".", "->"):
        return METHOD_SINKS[name]
    if name in FREE_SINKS and (prev in ("::",) or prev not in (".", "->")):
        return FREE_SINKS[name]
    return None


class Analysis:
    """Project-wide fixpoint: which functions can reach an I/O sink
    through calls made outside ScopedUnlock windows."""

    def __init__(self, project):
        self.project = project
        self.regions = {}      # id(fn) -> LockRegions
        self.calls = {}        # id(fn) -> [(name, line, idx, windowed)]
        self.reaches = {}      # id(fn) -> (call_name, why) witness or None
        self._prepare()
        self._fixpoint()
        self._mark_suppressions_used()

    def _prepare(self):
        for sf in self.project.files:
            for fn in sf.functions:
                reg = LockRegions(sf, fn)
                self.regions[id(fn)] = reg
                windows = [iv for iv in reg.intervals if not iv.held]
                out = []
                for (name, line, idx) in extract_calls(
                        sf.tokens, fn.body_start + 1, fn.body_end):
                    windowed = any(w.lo <= idx < w.hi for w in windows)
                    suppressed = sf.suppression_for(RULE, line) is not None
                    out.append((name, line, idx, windowed, suppressed, sf))
                self.calls[id(fn)] = out

    def _fixpoint(self):
        # Seed: direct sink calls outside windows. A sink call carrying an
        # io-under-mutex suppression is vouched-for at the source: it
        # neither fires nor marks its function as I/O-reaching, so one
        # annotation covers the whole class of chains through it (e.g. a
        # metrics clock read annotated once in the timer helper).
        for sf in self.project.files:
            for fn in sf.functions:
                for (name, line, idx, windowed, suppressed, src) in \
                        self.calls[id(fn)]:
                    if windowed:
                        continue
                    why = _call_is_sink(src, name, idx)
                    if why:
                        if suppressed:
                            src.suppression_for(RULE, line).used = True
                            continue
                        self.reaches[id(fn)] = (name, why, None)
                        break
        changed = True
        while changed:
            changed = False
            for sf in self.project.files:
                for fn in sf.functions:
                    if id(fn) in self.reaches:
                        continue
                    for (name, line, idx, windowed, suppressed, _s) in \
                            self.calls[id(fn)]:
                        if windowed or suppressed:
                            continue
                        for target in self.project.resolve(name):
                            if target is fn:
                                continue
                            if id(target) in self.reaches:
                                self.reaches[id(fn)] = (name, None, target)
                                changed = True
                                break
                        if id(fn) in self.reaches:
                            break

    def _mark_suppressions_used(self):
        """A suppression earns its keep by stopping propagation, not only
        by silencing a finding: credit any suppressed call that is a sink
        or resolves to an I/O-reaching function, so the unused-suppression
        warning stays quiet for annotations doing real work."""
        for sf in self.project.files:
            for fn in sf.functions:
                for (name, line, idx, _w, suppressed, src) in \
                        self.calls[id(fn)]:
                    if not suppressed:
                        continue
                    blocked = _call_is_sink(src, name, idx) or any(
                        id(t) in self.reaches
                        for t in self.project.resolve(name) if t is not fn)
                    if blocked:
                        s = src.suppression_for(RULE, line)
                        if s is not None:
                            s.used = True

    def chain(self, fn, limit=8):
        """Human-readable witness chain fn -> ... -> sink."""
        parts = [fn.qualname]
        cur = fn
        for _ in range(limit):
            w = self.reaches.get(id(cur))
            if w is None:
                break
            name, why, target = w
            if target is None:
                parts.append(f"{name} [{why}]")
                break
            parts.append(target.qualname)
            cur = target
        return " -> ".join(parts)

    def sink_reason(self, name, idx, source):
        return _call_is_sink(source, name, idx)


def run(project):
    analysis = Analysis(project)
    findings = []
    for sf in project.files:
        for fn in sf.functions:
            reg = analysis.regions[id(fn)]
            if not reg.intervals:
                continue
            for (name, line, idx, windowed, _sup, src) in \
                    analysis.calls[id(fn)]:
                held = reg.held_at(idx)
                if not held:
                    continue
                why = _call_is_sink(src, name, idx)
                target_chain = None
                if why is None:
                    for target in project.resolve(name):
                        if target is fn:
                            continue
                        if id(target) in analysis.reaches:
                            target_chain = analysis.chain(target)
                            break
                    if target_chain is None:
                        continue
                mus = ", ".join(
                    f"'{mu}' (held since line {ln})"
                    for mu, (ln, _kind) in sorted(held.items()))
                if why is not None:
                    detail = f"direct I/O sink [{why}]"
                else:
                    detail = f"reaches I/O via {target_chain}"
                findings.append(Finding(
                    RULE, sf.path, line,
                    f"in {fn.qualname}: call to '{name}' while holding "
                    f"{mus} — {detail}. Move the I/O outside the critical "
                    f"section or open a ScopedUnlock window with its "
                    f"covering protocol documented."))
    return findings
