from . import io_under_mutex
from . import lock_order
from . import slice_dangling
from . import status_sink

ALL_CHECKS = {
    "slice-dangling-source": slice_dangling.run,
    "io-under-mutex": io_under_mutex.run,
    "lock-order": lock_order.run,
    "status-sink": status_sink.run,
}
