"""lock-order: the static lock acquisition-order graph must be acyclic.

Nodes are mutexes qualified by their owning class (DB::mu_,
BlockCache::Shard::mu, ...). An edge A -> B is recorded when B is
acquired while A is held:

  * directly — a MutexLock (or manual Lock()) nested inside another
    MutexLock scope or inside a REQUIRES(A)/AssertHeld(A) context;
  * interprocedurally — a call made while holding A to a function that
    (transitively) acquires B, via ACQUIRE annotations, MutexLock scopes,
    or its own callees.

A cycle in this graph is a potential deadlock; a self-edge is a
double-acquire of a non-reentrant std::mutex. Mutexes named by a function
parameter (generic helpers like MutexLock's own constructor) are skipped:
they alias a caller lock that is already represented at the call site.

ScopedUnlock windows drop their mutex from the held set, so release-
then-acquire sequences do not create edges.
"""

import os

from ..project import Finding
from ..regions import LockRegions

RULE = "lock-order"


def _qualify(fn, mu):
    """Stable graph node for mutex expression `mu` acquired inside `fn`,
    or None when the expression cannot name a unique global lock."""
    if mu in ("", "this"):
        return None
    if any(ch in mu for ch in (".", "->", "[", "(")):
        return None  # Compound receiver: not resolvable textually.
    if mu in fn.params:
        return None  # Generic helper locking a caller-supplied mutex.
    if fn.class_name:
        return f"{fn.class_name}::{mu}"
    stem = os.path.splitext(os.path.basename(fn.file))[0]
    return f"{stem}::{mu}"


class Graph:
    def __init__(self):
        self.edges = {}  # src -> {dst: (file, line, via)}

    def add(self, src, dst, file, line, via):
        if src is None or dst is None or src == dst:
            if src is not None and src == dst:
                self.edges.setdefault(src, {}).setdefault(
                    src, (file, line, via))
            return
        self.edges.setdefault(src, {}).setdefault(dst, (file, line, via))

    def cycles(self):
        """Minimal cycle witnesses: one per strongly-connected component
        with a cycle, plus self-loops."""
        index = {}
        low = {}
        on_stack = {}
        stack = []
        sccs = []
        counter = [0]
        nodes = set(self.edges)
        for d in self.edges.values():
            nodes.update(d)

        def strongconnect(v):
            work = [(v, iter(self.edges.get(v, {})))]
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack[v] = True
            while work:
                node, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack[w] = True
                        work.append((w, iter(self.edges.get(w, {}))))
                        advanced = True
                        break
                    elif on_stack.get(w):
                        low[node] = min(low[node], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        comp.append(w)
                        if w == node:
                            break
                    sccs.append(comp)

        for v in sorted(nodes):
            if v not in index:
                strongconnect(v)

        out = []
        for comp in sccs:
            if len(comp) > 1:
                out.append(self._witness_cycle(comp))
            elif comp[0] in self.edges.get(comp[0], {}):
                v = comp[0]
                out.append([(v, v, self.edges[v][v])])
        return out

    def _witness_cycle(self, comp):
        comp_set = set(comp)
        start = sorted(comp)[0]
        # BFS back to start staying inside the component.
        prev = {start: None}
        queue = [start]
        while queue:
            v = queue.pop(0)
            for w in self.edges.get(v, {}):
                if w not in comp_set:
                    continue
                if w == start and v != start:
                    path = [start]
                    node = v
                    back = []
                    while node is not None:
                        back.append(node)
                        node = prev[node]
                    back.reverse()
                    path = back + [start]
                    return [(path[i], path[i + 1],
                             self.edges[path[i]][path[i + 1]])
                            for i in range(len(path) - 1)]
                if w not in prev:
                    prev[w] = v
                    queue.append(w)
        # Fallback: report the component's edges.
        v = comp[0]
        w = next(iter(self.edges.get(v, {})))
        return [(v, w, self.edges[v][w])]


def _transitive_acquires(project, regions):
    """qualname-independent fixpoint: id(fn) -> {node: (file, line)} of
    locks the function may acquire during its execution."""
    acq = {}
    for sf in project.files:
        for fn in sf.functions:
            own = {}
            for (idx, mu, line) in regions[id(fn)].acquisitions():
                node = _qualify(fn, mu)
                if node:
                    own[node] = (sf.path, line)
            for mu in fn.acquires:
                node = _qualify(fn, mu)
                if node:
                    own.setdefault(node, (sf.path, fn.line))
            acq[id(fn)] = own
    changed = True
    while changed:
        changed = False
        for sf in project.files:
            for fn in sf.functions:
                mine = acq[id(fn)]
                for (name, line, idx) in fn.calls:
                    for target in project.resolve(name):
                        if target is fn:
                            continue
                        for node, w in acq[id(target)].items():
                            if node not in mine:
                                mine[node] = w
                                changed = True
    return acq


def run(project):
    regions = {}
    for sf in project.files:
        for fn in sf.functions:
            regions[id(fn)] = LockRegions(sf, fn)
    acq = _transitive_acquires(project, regions)

    graph = Graph()
    for sf in project.files:
        for fn in sf.functions:
            reg = regions[id(fn)]
            # Direct nesting edges.
            for (idx, mu, line) in reg.acquisitions():
                dst = _qualify(fn, mu)
                held = reg.held_at(max(fn.body_start + 1, idx - 1))
                for h, (hline, _k) in held.items():
                    if h == mu:
                        continue
                    graph.add(_qualify(fn, h), dst, sf.path, line,
                              f"{fn.qualname} acquires '{mu}' while "
                              f"holding '{h}'")
                # Self-edge: same mutex already held at this acquisition.
                if mu in held:
                    graph.add(dst, dst, sf.path, line,
                              f"{fn.qualname} re-acquires '{mu}' (already "
                              f"held since line {held[mu][0]})")
            # Interprocedural edges.
            for (name, line, idx) in fn.calls:
                held = reg.held_at(idx)
                if not held:
                    continue
                targets = project.resolve(name)
                for target in targets:
                    if target is fn:
                        continue
                    for node, _w in acq[id(target)].items():
                        for h, _hl in held.items():
                            src = _qualify(fn, h)
                            if src == node:
                                continue  # Re-entry is the self-edge case.
                            graph.add(
                                src, node, sf.path, line,
                                f"{fn.qualname} holds '{h}' and calls "
                                f"{target.qualname} which acquires "
                                f"{node}")

    findings = []
    for cycle in graph.cycles():
        desc = " ; ".join(
            f"{src} -> {dst} ({os.path.basename(f)}:{ln}: {via})"
            for (src, dst, (f, ln, via)) in cycle)
        (f0, l0, _via0) = cycle[0][2]
        nodes = " -> ".join([c[0] for c in cycle] + [cycle[0][0]])
        findings.append(Finding(
            RULE, f0, l0,
            f"lock acquisition-order cycle {nodes}: {desc}. Pick one "
            f"global order for these mutexes and restructure the "
            f"acquisitions to follow it."))
    return findings
