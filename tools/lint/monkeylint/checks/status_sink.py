"""status-sink: silently dropped Status values must justify themselves.

The engine makes Status [[nodiscard]] and builds with
-Werror=unused-result (PR 4), so a dropped Status is always an explicit
act: `.IgnoreError()` or a `(void)` cast. Outside tests, every such drop
is one I/O error away from silent data loss, so each must carry an
adjacent `// monkey-lint: status-sink — <reason>` annotation naming why
ignoring is safe (best-effort cleanup, shutdown path, ...). The check
flags:

  * any `x.IgnoreError()` / `x->IgnoreError()` call;
  * any `(void)` cast of a call to a project function whose declared
    return type is Status.

The suppression machinery is the justification contract: an annotated
site is compliant, an unannotated one fails the gate.
"""

from ..project import Finding

RULE = "status-sink"


def _returns_status(project, name):
    defs = project.resolve(name)
    return bool(defs) and all(
        d.return_type.replace(" ", "") == "Status" for d in defs)


def run(project):
    findings = []
    for sf in project.files:
        toks = sf.tokens
        n = len(toks)
        for k, t in enumerate(toks):
            if (t.kind == "ident" and t.text == "IgnoreError"
                    and k > 0 and toks[k - 1].text in (".", "->")
                    and k + 1 < n and toks[k + 1].text == "("):
                findings.append(Finding(
                    RULE, sf.path, t.line,
                    "Status dropped via IgnoreError() with no "
                    "justification — annotate the drop with "
                    "`// monkey-lint: status-sink — <why ignoring is "
                    "safe>` or handle the error."))
                continue
            if (t.text == "(" and k + 2 < n and toks[k + 1].text == "void"
                    and toks[k + 2].text == ")"):
                # (void) cast: find the first call in the cast expression.
                m = k + 3
                call_name = None
                while m + 1 < n and toks[m].text != ";":
                    if (toks[m].kind == "ident"
                            and toks[m + 1].text == "("):
                        call_name = toks[m].text
                        break
                    m += 1
                if call_name and _returns_status(project, call_name):
                    findings.append(Finding(
                        RULE, sf.path, t.line,
                        f"Status returned by '{call_name}' dropped via "
                        f"(void) cast with no justification — annotate "
                        f"with `// monkey-lint: status-sink — <why>` or "
                        f"handle the error (prefer IgnoreError(): it "
                        f"names the decision)."))
    return findings
